// StreamLoader: cache and index machinery shared by the blocking
// operators (aggregation, join, trigger).
//
// TupleCache is the bounded FIFO every blocking operator fills between
// checks. The index classes layered on top (JoinHashIndex, PaneIndex)
// are *acceleration structures*: they never own liveness — a cached
// tuple is alive iff TupleCache::Live() says so — and every fast path
// built on them is required to reproduce, bit for bit, what a scan of
// the raw cache would have produced (tests/ops_test.cpp holds the
// oracles).

#ifndef STREAMLOADER_OPS_TUPLE_CACHE_H_
#define STREAMLOADER_OPS_TUPLE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "stt/tuple.h"
#include "stt/watermark.h"
#include "util/clock.h"

namespace sl::ops {

/// \brief Bounded FIFO tuple cache shared by the blocking operators.
///
/// Caches hold shared refs — caching a tuple retains the allocation the
/// producer minted instead of deep-copying it. Every cached tuple
/// carries an arrival sequence number so sliding operators can
/// distinguish tuples that arrived since the previous check, and so
/// index structures can test liveness without being notified of every
/// eviction.
class TupleCache {
 public:
  explicit TupleCache(size_t max_tuples) : max_tuples_(max_tuples) {}

  struct Entry {
    stt::TupleRef tuple;
    uint64_t seq;
  };

  /// Adds a tuple; returns the number of evicted (oldest) tuples.
  size_t Add(stt::TupleRef tuple) {
    Timestamp ts = tuple->timestamp();
    entries_.push_back({std::move(tuple), next_seq_++});
    if (max_ts_ == stt::kNoWatermark || ts > max_ts_) max_ts_ = ts;
    size_t evicted = 0;
    while (entries_.size() > max_tuples_) {
      entries_.pop_front();
      ++evicted;
    }
    capacity_evictions_ += evicted;
    return evicted;
  }

  /// Drops tuples whose event time is strictly before `cutoff`
  /// (sliding-window expiry). Event times are assumed roughly ordered;
  /// out-of-order stragglers are still swept because the scan covers the
  /// whole deque.
  void EvictOlderThan(Timestamp cutoff) {
    if (cutoff > time_cutoff_) time_cutoff_ = cutoff;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->tuple->timestamp() < cutoff) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// \brief True iff the entry that was added with (`seq`, `ts`) is
  /// still cached. Capacity eviction pops from the front (so the front
  /// seq is the oldest survivor) and time eviction only ever removes
  /// timestamps below the high-water cutoff; both bounds are monotonic,
  /// which is what lets indexes keep stale slots around and filter them
  /// lazily here instead of being told about each eviction.
  bool Live(uint64_t seq, Timestamp ts) const {
    if (entries_.empty()) return false;
    return seq >= entries_.front().seq && ts >= time_cutoff_;
  }

  const std::deque<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  void Clear() {
    entries_.clear();
    max_ts_ = stt::kNoWatermark;
  }

  /// Sequence number the next arrival will get.
  uint64_t next_seq() const { return next_seq_; }

  /// Total tuples ever dropped to the capacity bound (monotonic; callers
  /// snapshot it to detect "no capacity eviction since I last looked").
  uint64_t capacity_evictions() const { return capacity_evictions_; }

  /// Upper bound on the event time of any cached tuple since the last
  /// Clear (kNoWatermark when nothing was added). An upper bound is
  /// enough for the incremental-aggregation validity guard: if it is
  /// below the window end, every cached tuple is inside the window.
  Timestamp max_ts() const { return max_ts_; }

 private:
  size_t max_tuples_;
  std::deque<Entry> entries_;
  uint64_t next_seq_ = 0;
  uint64_t capacity_evictions_ = 0;
  Timestamp time_cutoff_ = std::numeric_limits<Timestamp>::min();
  Timestamp max_ts_ = stt::kNoWatermark;
};

/// The (timestamp, sensor, content) order event-time views are sorted
/// by, so results cannot depend on delivery order.
bool EventOrderLess(const stt::Tuple& a, const stt::Tuple& b);

/// Entries whose event time falls in [begin, end). When `sorted`, the
/// view is ordered by EventOrderLess instead of arrival order (group
/// iteration, float accumulation, pair enumeration all become
/// order-stable).
std::vector<const TupleCache::Entry*> WindowView(const TupleCache& cache,
                                                 Timestamp begin,
                                                 Timestamp end, bool sorted);

/// Earliest cached event time; stt::kNoWatermark when empty.
Timestamp OldestTs(const TupleCache& cache);

/// \brief Order-insensitive identity of a window view: FNV-1a over the
/// sorted arrival sequence numbers. Sequence numbers are unique per
/// cache, so (up to hash collision) equal signatures ⇔ equal tuple
/// sets — the sliding-aggregation dedup guard. A rerun under a
/// different delivery order assigns different seqs, but *set equality
/// between consecutive windows* is delivery-order independent, so the
/// skip/emit decision is too.
uint64_t SeqSignature(const std::vector<const TupleCache::Entry*>& view);
uint64_t SeqSignatureOf(std::vector<uint64_t> seqs);

/// \brief Event-time firing state shared by the blocking operators.
///
/// Windows end on the aligned grid (multiples of the blocking interval
/// `t`); an end fires once the lateness-adjusted input frontier passes
/// it, oldest first. The tumbling regime (window == 0) is the special
/// case of a sliding window exactly one interval wide, so one mechanism
/// serves both.
class EventWindow {
 public:
  EventWindow(Duration interval, Duration window)
      : interval_(interval), window_(window > 0 ? window : interval) {}

  /// Window width: the spec's sliding window, or one interval (tumbling).
  Duration effective_window() const { return window_; }

  bool initialized() const { return initialized_; }

  /// The latest fired window end — this operator's output promise.
  Timestamp fired_end() const { return fired_end_; }

  /// True when every window containing `ts` has already fired — the
  /// tuple can no longer contribute to any future window.
  bool IsLate(Timestamp ts) const {
    if (!initialized_) return false;
    return stt::AlignDown(ts + window_, interval_) <= fired_end_;
  }

  /// \brief Window ends newly covered by `horizon` (the input frontier
  /// minus the allowed lateness), oldest first. The first call anchors
  /// the grid at AlignDown(horizon), lowered to cover `oldest_cached`
  /// when tuples older than the horizon are waiting — ends before any
  /// data are empty and emit nothing, so the anchor choice is invisible
  /// in the output.
  std::vector<Timestamp> Advance(Timestamp horizon, Timestamp oldest_cached) {
    std::vector<Timestamp> ends;
    if (horizon == stt::kNoWatermark) return ends;
    if (!initialized_) {
      Timestamp anchor = stt::AlignDown(horizon, interval_);
      if (oldest_cached != stt::kNoWatermark) {
        anchor = std::min(anchor, stt::AlignDown(oldest_cached, interval_));
      }
      fired_end_ = anchor;
      initialized_ = true;
    }
    for (Timestamp e = fired_end_ + interval_; e <= horizon; e += interval_) {
      ends.push_back(e);
    }
    return ends;
  }

  /// Records that the window ending at `end` fired.
  void MarkFired(Timestamp end) { fired_end_ = end; }

  /// Expiry cutoff after firing: the earliest unfired window is
  /// [fired_end + interval - window, ...), so anything older can never
  /// be observed again.
  Timestamp EvictionCutoff() const { return fired_end_ + interval_ - window_; }

 private:
  Duration interval_;
  Duration window_;
  bool initialized_ = false;
  Timestamp fired_end_ = 0;
};

// ---------------------------------------------------------------------
// Join hash index.

/// \brief The equality semantics of the `==` operator, restated over a
/// key column so the hash index accepts exactly the pairs the predicate
/// interpreter would.
///
/// Quirks faithfully reproduced: int and double compare numerically
/// across types; -0.0 equals +0.0; and a NaN on either side makes the
/// three-way comparison return "neither less nor greater", i.e. *equal
/// to every numeric*. Null never equals anything (the conjunct
/// evaluates to null, which is non-true).
bool JoinKeyEquals(const stt::Value& a, const stt::Value& b);

/// \brief Hash + oddity flags of one tuple's key columns.
///
/// `hash` canonicalizes numerics to double (-0.0 → +0.0) so every pair
/// JoinKeyEquals accepts lands in one bucket — except NaN, which equals
/// everything and therefore cannot be bucketed: tuples whose key
/// contains a NaN are reported via `has_nan` and kept in a side list
/// probed on every lookup.
struct JoinKeyInfo {
  uint64_t hash = 0;
  bool has_null = false;  ///< some key column is null: matches nothing
  bool has_nan = false;   ///< some key column is NaN: matches everything
};
JoinKeyInfo MakeJoinKeyInfo(const stt::Tuple& t,
                            const std::vector<size_t>& cols);

/// \brief Hash index over one side of a join cache, keyed on that side's
/// equi-conjunct columns.
///
/// Slots keep (seq, tuple) and are appended in insertion order, so each
/// bucket enumerates candidates in exactly the order a scan of the
/// underlying cache would have visited them — the property that keeps
/// hash-join emission order bit-identical to the nested loop. Stale
/// slots (evicted from the cache) are filtered lazily by the caller via
/// TupleCache::Live() and swept here by Compact().
class JoinHashIndex {
 public:
  explicit JoinHashIndex(std::vector<size_t> cols) : cols_(std::move(cols)) {}

  struct Slot {
    uint64_t seq;
    stt::TupleRef tuple;
  };

  const std::vector<size_t>& cols() const { return cols_; }

  /// Indexes one cache entry. Null-keyed tuples are dropped (they can
  /// never match); NaN-keyed tuples go to the side list.
  void Insert(const TupleCache::Entry& entry);

  /// \brief Candidate slots for a probe key, in ascending seq
  /// (= cache arrival) order: the probe's bucket merged with the NaN
  /// side list. Pre-condition: !probe.has_null && !probe.has_nan (a
  /// null probe matches nothing; a NaN probe matches the whole cache,
  /// so the caller scans the cache directly).
  void Candidates(const JoinKeyInfo& probe,
                  std::vector<const Slot*>* out) const;

  /// Drops slots no longer live in `cache`. Called opportunistically;
  /// correctness never depends on it.
  void Compact(const TupleCache& cache);

  /// Slots currently stored (live + stale), for compaction scheduling.
  size_t slot_count() const { return slot_count_; }

  void Clear() {
    buckets_.clear();
    nan_slots_.clear();
    slot_count_ = 0;
  }

 private:
  std::vector<size_t> cols_;
  std::unordered_map<uint64_t, std::vector<Slot>> buckets_;
  std::vector<Slot> nan_slots_;
  size_t slot_count_ = 0;
};

// ---------------------------------------------------------------------
// Pane index (event-time windows).

/// \brief Per-pane sorted views for the event-time regime.
///
/// Event time is partitioned into panes of one blocking interval
/// (pane = AlignDown(ts, interval)); every aligned window [end - w, end)
/// is a run of consecutive panes, possibly cut at both edges when w is
/// not an interval multiple. Each pane keeps its entries sorted in
/// EventOrderLess order, re-sorting only when the pane took an insert
/// since the last view ("dirty"). Because panes partition by timestamp
/// and the sort key leads with the timestamp, concatenating ascending
/// panes *is* the globally sorted window view — a sliding flush
/// re-sorts only the panes that changed instead of the whole window.
class PaneIndex {
 public:
  explicit PaneIndex(Duration pane_width) : pane_width_(pane_width) {}

  void Insert(const TupleCache::Entry& entry);

  /// The sorted, live window view over [begin, end), equal to
  /// WindowView(cache, begin, end, /*sorted=*/true) up to ties between
  /// fully identical tuples. Pointers are into the index's own storage
  /// and are invalidated by the next Insert/DropBelow.
  std::vector<const TupleCache::Entry*> View(const TupleCache& cache,
                                             Timestamp begin,
                                             Timestamp end);

  /// Forgets panes that lie entirely below `cutoff` (mirrors
  /// TupleCache::EvictOlderThan; straggler slots inside the boundary
  /// pane are filtered out by the liveness check in View).
  void DropBelow(Timestamp cutoff);

  void Clear() { panes_.clear(); }

 private:
  struct Pane {
    std::vector<TupleCache::Entry> entries;
    bool dirty = false;
  };

  Duration pane_width_;
  std::map<Timestamp, Pane> panes_;  // keyed by pane start, ascending
};

}  // namespace sl::ops

#endif  // STREAMLOADER_OPS_TUPLE_CACHE_H_
