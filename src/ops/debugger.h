// StreamLoader: design-time, sample-based dataflow debugging.
//
// "By exploiting samples produced by the involved sensors, the user can
// easily debug the developed dataflow" (§1) and "check, step-by-step,
// their results on samples made available from the source" (P1). The
// DataflowDebugger instantiates the validated dataflow in memory (no
// network), feeds it sample tuples, and records what every node emits —
// the data the design environment displays under the canvas.

#ifndef STREAMLOADER_OPS_DEBUGGER_H_
#define STREAMLOADER_OPS_DEBUGGER_H_

#include <map>
#include <string>
#include <vector>

#include "dataflow/graph.h"
#include "dataflow/validate.h"
#include "ops/operator.h"
#include "pubsub/broker.h"

namespace sl::ops {

/// \brief A recorded trigger activation request.
struct ActivationRecord {
  bool activate = true;  ///< true = TriggerOn fired, false = TriggerOff
  std::vector<std::string> sensor_ids;
  Timestamp at = 0;

  std::string ToString() const;
};

/// \brief What one debugging run produced.
struct DebugResult {
  /// Validation outcome (the run only proceeds when report.ok()).
  dataflow::ValidationReport report;
  /// Tuples each node emitted, keyed by node name. Sources list the
  /// samples they were fed; sinks list what reached them. Refs share
  /// ownership with the run (same routing currency as the executor).
  std::map<std::string, std::vector<stt::TupleRef>> outputs;
  /// Trigger requests recorded instead of executed.
  std::vector<ActivationRecord> activations;

  /// Step-by-step rendering: per node (topological order), its schema
  /// and emitted tuples.
  std::string ToString(const dataflow::Dataflow& dataflow) const;
};

/// \brief Runs dataflows on samples at design time.
class DataflowDebugger {
 public:
  /// `broker` resolves source schemas; must outlive the debugger.
  explicit DataflowDebugger(const pubsub::Broker* broker) : broker_(broker) {}

  /// \brief Validates `dataflow` and, if sound, pushes `samples` (keyed
  /// by *source node name*) through an in-memory instantiation.
  ///
  /// Samples of all sources are interleaved by event time (mimicking
  /// arrival order), then every blocking operator is flushed once, in
  /// topological order, at one tick past the newest sample — so
  /// aggregates/joins/triggers show their effect on exactly the sample
  /// set. Fails when validation finds errors (the report is still
  /// embedded in the error message).
  Result<DebugResult> Run(
      const dataflow::Dataflow& dataflow,
      const std::map<std::string, std::vector<stt::Tuple>>& samples) const;

 private:
  const pubsub::Broker* broker_;
};

}  // namespace sl::ops

#endif  // STREAMLOADER_OPS_DEBUGGER_H_
