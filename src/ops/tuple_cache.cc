#include "ops/tuple_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "stt/value.h"

namespace sl::ops {

using stt::Value;
using stt::ValueType;

bool EventOrderLess(const stt::Tuple& a, const stt::Tuple& b) {
  if (a.timestamp() != b.timestamp()) return a.timestamp() < b.timestamp();
  if (a.sensor_id() != b.sensor_id()) return a.sensor_id() < b.sensor_id();
  return a.ToString() < b.ToString();
}

std::vector<const TupleCache::Entry*> WindowView(const TupleCache& cache,
                                                 Timestamp begin,
                                                 Timestamp end, bool sorted) {
  std::vector<const TupleCache::Entry*> view;
  for (const auto& entry : cache.entries()) {
    Timestamp ts = entry.tuple->timestamp();
    if (ts >= begin && ts < end) view.push_back(&entry);
  }
  if (sorted) {
    std::sort(view.begin(), view.end(),
              [](const TupleCache::Entry* a, const TupleCache::Entry* b) {
                return EventOrderLess(*a->tuple, *b->tuple);
              });
  }
  return view;
}

Timestamp OldestTs(const TupleCache& cache) {
  Timestamp low = stt::kNoWatermark;
  for (const auto& entry : cache.entries()) {
    Timestamp ts = entry.tuple->timestamp();
    if (low == stt::kNoWatermark || ts < low) low = ts;
  }
  return low;
}

uint64_t SeqSignatureOf(std::vector<uint64_t> seqs) {
  std::sort(seqs.begin(), seqs.end());
  uint64_t h = 1469598103934665603ull;
  for (uint64_t s : seqs) {
    for (int i = 0; i < 8; ++i) {
      h ^= (s >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

uint64_t SeqSignature(const std::vector<const TupleCache::Entry*>& view) {
  std::vector<uint64_t> seqs;
  seqs.reserve(view.size());
  for (const auto* e : view) seqs.push_back(e->seq);
  return SeqSignatureOf(std::move(seqs));
}

// ---------------------------------------------------------------------
// Join hash index.

bool JoinKeyEquals(const Value& a, const Value& b) {
  // Mirror of expr::EvalCompareOp's kEq: cross-type numerics compare as
  // doubles, everything else through Value::Compare. Both three-way
  // comparisons answer "neither less nor greater" for NaN, which makes
  // NaN equal to every numeric — kept intentionally so the index
  // accepts exactly what the predicate interpreter accepts. Null is the
  // one divergence from Value::Compare (where null == null): a null
  // operand makes `==` evaluate to null, which is non-true.
  if (a.is_null() || b.is_null()) return false;
  if (a.is_numeric() && b.is_numeric() && a.type() != b.type()) {
    double x = a.type() == ValueType::kInt ? static_cast<double>(a.AsInt())
                                           : a.AsDouble();
    double y = b.type() == ValueType::kInt ? static_cast<double>(b.AsInt())
                                           : b.AsDouble();
    return !(x < y) && !(x > y);
  }
  return Value::Compare(a, b) == 0;
}

JoinKeyInfo MakeJoinKeyInfo(const stt::Tuple& t,
                            const std::vector<size_t>& cols) {
  JoinKeyInfo info;
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (size_t col : cols) {
    const Value& v = t.value(col);
    if (v.is_null()) {
      // Null dominates every other flag: one null conjunct already makes
      // the whole predicate non-true, whatever the other columns hold.
      info.has_null = true;
      info.has_nan = false;
      return info;
    }
    if (info.has_nan) continue;  // hash is moot, but nulls still dominate
    if (v.is_numeric()) {
      // Canonicalize to double so int 5 and double 5.0 share a bucket,
      // and fold -0.0 into +0.0 (they compare equal).
      double d = v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                             : v.AsDouble();
      if (std::isnan(d)) {
        info.has_nan = true;
        continue;
      }
      if (d == 0.0) d = 0.0;
      mix(static_cast<uint64_t>(ValueType::kDouble));
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
      std::memcpy(&bits, &d, sizeof(bits));
      mix(bits);
    } else {
      mix(static_cast<uint64_t>(v.type()));
      mix(static_cast<uint64_t>(v.Hash()));
    }
  }
  info.hash = h;
  return info;
}

void JoinHashIndex::Insert(const TupleCache::Entry& entry) {
  JoinKeyInfo info = MakeJoinKeyInfo(*entry.tuple, cols_);
  if (info.has_null) return;  // can never satisfy the equi-conjuncts
  if (info.has_nan) {
    nan_slots_.push_back({entry.seq, entry.tuple});
  } else {
    buckets_[info.hash].push_back({entry.seq, entry.tuple});
  }
  ++slot_count_;
}

void JoinHashIndex::Candidates(const JoinKeyInfo& probe,
                               std::vector<const Slot*>* out) const {
  out->clear();
  auto it = buckets_.find(probe.hash);
  const std::vector<Slot>* bucket = it != buckets_.end() ? &it->second : nullptr;
  if (nan_slots_.empty()) {
    if (bucket == nullptr) return;
    out->reserve(bucket->size());
    for (const Slot& s : *bucket) out->push_back(&s);
    return;
  }
  // Merge the bucket with the NaN side list by seq: both are in
  // insertion order, and the combined stream must enumerate in cache
  // arrival order to reproduce the nested loop's emission order.
  size_t bi = 0, ni = 0;
  size_t bn = bucket != nullptr ? bucket->size() : 0;
  out->reserve(bn + nan_slots_.size());
  while (bi < bn || ni < nan_slots_.size()) {
    bool take_bucket =
        ni >= nan_slots_.size() ||
        (bi < bn && (*bucket)[bi].seq < nan_slots_[ni].seq);
    out->push_back(take_bucket ? &(*bucket)[bi++] : &nan_slots_[ni++]);
  }
}

void JoinHashIndex::Compact(const TupleCache& cache) {
  auto live = [&cache](const Slot& s) {
    return cache.Live(s.seq, s.tuple->timestamp());
  };
  size_t kept = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& slots = it->second;
    slots.erase(std::remove_if(slots.begin(), slots.end(),
                               [&](const Slot& s) { return !live(s); }),
                slots.end());
    if (slots.empty()) {
      it = buckets_.erase(it);
    } else {
      kept += slots.size();
      ++it;
    }
  }
  nan_slots_.erase(std::remove_if(nan_slots_.begin(), nan_slots_.end(),
                                  [&](const Slot& s) { return !live(s); }),
                   nan_slots_.end());
  slot_count_ = kept + nan_slots_.size();
}

// ---------------------------------------------------------------------
// Pane index.

void PaneIndex::Insert(const TupleCache::Entry& entry) {
  Timestamp start = stt::AlignDown(entry.tuple->timestamp(), pane_width_);
  Pane& pane = panes_[start];
  pane.entries.push_back(entry);
  pane.dirty = true;
}

std::vector<const TupleCache::Entry*> PaneIndex::View(const TupleCache& cache,
                                                      Timestamp begin,
                                                      Timestamp end) {
  std::vector<const TupleCache::Entry*> view;
  if (begin >= end) return view;
  auto it = panes_.lower_bound(stt::AlignDown(begin, pane_width_));
  for (; it != panes_.end() && it->first < end; ++it) {
    Pane& pane = it->second;
    if (pane.dirty) {
      std::sort(pane.entries.begin(), pane.entries.end(),
                [](const TupleCache::Entry& a, const TupleCache::Entry& b) {
                  return EventOrderLess(*a.tuple, *b.tuple);
                });
      pane.dirty = false;
    }
    bool edge = it->first < begin || it->first + pane_width_ > end;
    for (const TupleCache::Entry& e : pane.entries) {
      Timestamp ts = e.tuple->timestamp();
      if (edge && (ts < begin || ts >= end)) continue;
      if (!cache.Live(e.seq, ts)) continue;
      view.push_back(&e);
    }
  }
  return view;
}

void PaneIndex::DropBelow(Timestamp cutoff) {
  while (!panes_.empty()) {
    auto it = panes_.begin();
    if (it->first + pane_width_ <= cutoff) {
      panes_.erase(it);
    } else {
      break;
    }
  }
}

}  // namespace sl::ops
