// StreamLoader: runtime stream-processing operators (Table 1).
//
// An Operator is the executable form of a validated OpSpec. Operators
// are push-based: upstream calls Process(port, tuple) for every arriving
// tuple; whatever the operator emits flows to the EmitFn installed by
// the executor. Non-blocking operations emit from inside Process;
// blocking operations (aggregation, join, trigger) cache tuples and do
// their work in Flush, which the executor schedules every
// `interval()` on the event loop.

#ifndef STREAMLOADER_OPS_OPERATOR_H_
#define STREAMLOADER_OPS_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/op_spec.h"
#include "stt/tuple.h"
#include "stt/watermark.h"

namespace sl::ops {

/// Downstream push target installed by the executor. Receives shared
/// refs: the executor forwards the same ref to every out-edge.
using EmitFn = std::function<void(const stt::TupleRef&)>;

/// \brief Parallel-for over partitioned instances.
///
/// Runs `body(k)` for every k in [0, n) — possibly concurrently — and
/// returns only when every call has completed. The threaded runtime
/// installs one on partitioned wrappers so an N-way operator's shards
/// flush on their own threads; the discrete-event simulator installs
/// none and shards flush sequentially on the calling thread.
using ShardExecutor =
    std::function<void(size_t n, const std::function<void(size_t)>& body)>;

/// \brief Receiver of trigger activation requests.
///
/// Trigger On/Off operators do not know how streams are started or
/// stopped — the executor does ("the streams of the sensors {s1..sn}
/// are activated", Table 1). In the design-time debugger the handler
/// merely records requests.
class ActivationHandler {
 public:
  virtual ~ActivationHandler() = default;
  /// Requests activation of the named sensors' streams.
  virtual void ActivateSensors(const std::vector<std::string>& sensor_ids,
                               Timestamp at) = 0;
  /// Requests de-activation of the named sensors' streams.
  virtual void DeactivateSensors(const std::vector<std::string>& sensor_ids,
                                 Timestamp at) = 0;
};

/// \brief Live counters of one operator (the monitor samples these to
/// render "the number of tuples that each operation handles per second",
/// §3).
struct OperatorStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t flushes = 0;        ///< blocking operations: cache processings
  uint64_t trigger_fires = 0;  ///< triggers: times the condition held
  uint64_t dropped = 0;        ///< tuples evicted from a full cache
  size_t cache_size = 0;       ///< current cached tuples (blocking only)
  uint64_t late_dropped = 0;   ///< late tuples discarded (LatePolicy::kDrop)
  uint64_t late_routed = 0;    ///< late tuples sent to the late-side sink
  uint64_t batches = 0;         ///< columnar batches processed
  uint64_t batched_tuples = 0;  ///< tuples that arrived inside those batches
  /// Merged input low-watermark (min over ports); stt::kNoWatermark
  /// until every input port has carried one.
  Timestamp watermark_low = stt::kNoWatermark;
};

/// Which clock closes blocking windows.
enum class TimePolicy {
  /// Legacy behavior: windows expire and fire against the flush tick's
  /// event-loop time. Delivery delay shifts tuples between windows.
  kProcessing,
  /// Windows are aligned to event time and fire when the input
  /// watermark (minus the allowed lateness) passes their end —
  /// delivery-order independent within the lateness bound.
  kEvent,
};

/// What happens to a tuple that arrives behind the fired window horizon
/// (every window it belongs to has already fired). Only consulted under
/// TimePolicy::kEvent.
enum class LatePolicy {
  kAdmit,       ///< cache it anyway (it will age out unobserved)
  kDrop,        ///< discard it, counting stats().late_dropped
  kSideOutput,  ///< divert it to the late-side sink (stats().late_routed)
};

/// Event-time configuration shared by the blocking operators.
struct WatermarkOptions {
  TimePolicy time_policy = TimePolicy::kProcessing;
  LatePolicy late_policy = LatePolicy::kAdmit;
  /// Slack subtracted from the input watermark before windows fire: a
  /// window [b, e) fires once watermark - allowed_lateness >= e, so
  /// tuples delivered up to this much behind the frontier still count.
  Duration allowed_lateness = 0;
};

/// \brief Base class of all Table 1 operators.
class Operator {
 public:
  virtual ~Operator() = default;

  const std::string& name() const { return name_; }
  dataflow::OpKind kind() const { return kind_; }

  /// Schema of the tuples this operator emits.
  const stt::SchemaPtr& output_schema() const { return output_schema_; }

  /// The blocking interval; 0 for non-blocking operations.
  Duration interval() const { return interval_; }
  bool is_blocking() const { return interval_ > 0; }

  /// Installs the downstream push target (may be replaced on migration).
  void set_emit(EmitFn emit) { emit_ = std::move(emit); }

  /// Feeds one tuple into input `port` (0 except for join's right = 1).
  /// The tuple must conform to the input schema the operator was built
  /// with. The operator may retain the ref (blocking caches do); it must
  /// never mutate the pointee.
  virtual Status Process(size_t port, const stt::TupleRef& tuple) = 0;

  /// Convenience for callers still holding a tuple by value (tests,
  /// design-time tools): shares it and forwards.
  Status Process(size_t port, stt::Tuple tuple) {
    return Process(port, stt::Tuple::Share(std::move(tuple)));
  }

  // -- columnar batch execution -------------------------------------------

  /// One tuple of a batch that failed with the per-tuple error Process
  /// would have returned (the rest of the batch keeps flowing).
  struct BatchRowError {
    size_t row;
    Status status;
  };

  /// Per-call context for ProcessBatch. `on_row` (optional) is invoked
  /// with the batch row index right before that row's side effects
  /// (emissions / caching) happen, so a runtime can attribute per-tuple
  /// bookkeeping (ingest timestamps for latency percentiles) to the
  /// row being worked on. `errors` collects per-tuple failures in row
  /// order — exactly the statuses the per-tuple path would have logged.
  struct BatchContext {
    std::function<void(size_t)> on_row;
    std::vector<BatchRowError> errors;
  };

  /// True when this operator has a real columnar implementation for
  /// deliveries to `port` (stateless expression stages). Runtimes may
  /// then hand whole delivery runs to ProcessBatch instead of
  /// re-dispatching per tuple.
  virtual bool batchable(size_t port) const {
    (void)port;
    return false;
  }

  /// \brief Feeds a run of `count` same-port tuples at once.
  ///
  /// Semantically identical to calling Process(port, tuples[i]) in
  /// order — same emissions in the same order, same counters, same
  /// per-tuple errors (surfaced through `ctx->errors` instead of the
  /// return status) — but batchable operators evaluate their expression
  /// once over the whole run through the vectorized VM. The caller must
  /// have observed any piggybacked watermark *before* this call, just as
  /// it would before a per-tuple Process loop. The default falls back to
  /// the per-tuple path.
  virtual Status ProcessBatch(size_t port, const stt::TupleRef* tuples,
                              size_t count, BatchContext* ctx);

  /// Processes the cache (blocking operations). `now` is the virtual
  /// time of the flush tick (under TimePolicy::kEvent the blocking
  /// operations fire on watermark progress instead and `now` only dates
  /// side effects such as trigger activations). Non-blocking operations
  /// return OK.
  virtual Status Flush(Timestamp now);

  // -- event time ---------------------------------------------------------

  /// Installs the event-time configuration (executor, at build time).
  void set_watermark_options(const WatermarkOptions& options) {
    watermark_options_ = options;
  }
  const WatermarkOptions& watermark_options() const {
    return watermark_options_;
  }

  /// Folds the watermark piggybacked on a delivery to `port` into the
  /// input frontier. stt::kNoWatermark observations are ignored.
  /// Virtual so a partitioned wrapper can fan the observation out to its
  /// instances (whose event windows advance on their own frontiers).
  virtual void ObserveWatermark(size_t port, Timestamp watermark);

  /// Merged input frontier: min over ports (stt::kNoWatermark until all
  /// ports have carried one).
  Timestamp input_watermark() const { return frontier_.Min(); }

  /// \brief The watermark this operator's own output stream can promise.
  /// Pass-through operations forward the input frontier; blocking
  /// operations in event mode override this with their fired-window
  /// horizon (they may still emit results for windows the input frontier
  /// has passed but they have not fired yet).
  virtual Timestamp output_watermark() const { return frontier_.Min(); }

  /// Installs the late-side push target (LatePolicy::kSideOutput).
  void set_late_emit(EmitFn late_emit) { late_emit_ = std::move(late_emit); }

  const OperatorStats& stats() const { return stats_; }

  // -- key-partitioned parallelism ----------------------------------------

  /// Number of parallel key-partitioned instances behind this operator
  /// (1 for everything except the partitioned blocking wrapper).
  virtual size_t parallelism() const { return 1; }

  /// Counters of instance `k` (k < parallelism()); nullptr for
  /// single-instance operators. The monitor renders these as per-
  /// instance load and key-skew gauges.
  virtual const OperatorStats* instance_stats(size_t k) const {
    (void)k;
    return nullptr;
  }

  /// The instance a tuple delivered to `port` routes to; -1 means the
  /// tuple is broadcast to every instance (NaN join keys). Always 0 for
  /// single-instance operators. Used by the executor to attribute
  /// per-instance transfer counters without consuming the tuple.
  virtual int route_instance(size_t port, const stt::TupleRef& tuple) const {
    (void)port;
    (void)tuple;
    return 0;
  }

  /// Re-partitions cached state across `new_parallelism` instances
  /// (elastic scale-out/in). Only the partitioned wrapper implements
  /// this; everything else reports Unimplemented.
  virtual Status Rescale(size_t new_parallelism);

  /// Installs a parallel executor for per-instance flush work. Only the
  /// partitioned wrapper honors it; single-instance operators have no
  /// independent shards to run and ignore the installation.
  virtual void set_shard_executor(ShardExecutor executor) { (void)executor; }

  /// Resets the in/out counters (monitoring-window rollover); cache
  /// contents are untouched. Virtual so the partitioned wrapper can
  /// cascade the rollover to its instances.
  virtual void ResetWindowCounters();

  /// Tuples seen in the current monitoring window.
  uint64_t window_in() const { return window_in_; }
  uint64_t window_out() const { return window_out_; }

 protected:
  Operator(std::string name, dataflow::OpKind kind,
           stt::SchemaPtr output_schema, Duration interval)
      : name_(std::move(name)),
        kind_(kind),
        output_schema_(std::move(output_schema)),
        interval_(interval),
        frontier_(dataflow::ExpectedInputs(kind)) {}

  /// Emits one tuple downstream, updating counters.
  void Emit(const stt::TupleRef& tuple);

  /// Emits every tuple of a flush batch downstream.
  void EmitAll(const stt::RefBatch& batch);

  /// Counts one consumed tuple.
  void CountIn();

  /// True when windows close on watermark progress.
  bool event_time() const {
    return watermark_options_.time_policy == TimePolicy::kEvent;
  }

  /// \brief Applies the configured lateness policy to a tuple that
  /// arrived behind the fired horizon. Returns true when the caller
  /// should still cache it (kAdmit); false when it was dropped or
  /// diverted to the late side.
  bool ApplyLatePolicy(const stt::TupleRef& tuple);

  /// Pushes a tuple to the late-side sink directly (the partitioned
  /// wrapper routes its instances' late outputs through its own sink).
  void ForwardLate(const stt::TupleRef& tuple) {
    if (late_emit_) late_emit_(tuple);
  }

  OperatorStats stats_;

 private:
  std::string name_;
  dataflow::OpKind kind_;
  stt::SchemaPtr output_schema_;
  Duration interval_;
  EmitFn emit_;
  EmitFn late_emit_;
  WatermarkOptions watermark_options_;
  stt::WatermarkFrontier frontier_;
  uint64_t window_in_ = 0;
  uint64_t window_out_ = 0;
};

/// Options shared by operator construction.
struct OperatorOptions {
  /// Maximum tuples a blocking operation caches per input; the oldest
  /// tuple is evicted (and counted in stats().dropped) beyond this.
  /// Must be > 0 for blocking kinds — a zero cache would silently evict
  /// every tuple it admits (MakeOperator rejects it).
  size_t max_cache_tuples = 1 << 20;
  /// Handler for trigger activations; required for TriggerOn/Off.
  ActivationHandler* activation = nullptr;
  /// Event-time configuration for the blocking operations.
  WatermarkOptions watermark;
  /// Use the reference O(n·m) / full-recompute implementations of the
  /// blocking operators instead of the hash-join and incremental
  /// aggregation fast paths. The two are required to produce
  /// bit-identical output; this switch exists so tests and benchmarks
  /// can compare them.
  bool naive_blocking = false;
};

/// \brief Builds the runtime operator for a validated spec.
///
/// `input_schemas`/`input_names` must match the dataflow edge order
/// (join: left then right). Expressions are re-bound here; since the
/// Validator accepted the dataflow this cannot fail for validated input,
/// but the factory still checks everything (defense in depth for
/// programmatic use).
Result<std::unique_ptr<Operator>> MakeOperator(
    const std::string& name, dataflow::OpKind op,
    const dataflow::OpSpec& spec,
    const std::vector<stt::SchemaPtr>& input_schemas,
    const std::vector<std::string>& input_names,
    const OperatorOptions& options = {});

}  // namespace sl::ops

#endif  // STREAMLOADER_OPS_OPERATOR_H_
