#include "ops/operator.h"

namespace sl::ops {

Status Operator::Flush(Timestamp) { return Status::OK(); }

void Operator::Emit(const stt::TupleRef& tuple) {
  ++stats_.tuples_out;
  ++window_out_;
  if (emit_) emit_(tuple);
}

void Operator::EmitAll(const stt::RefBatch& batch) {
  for (const auto& tuple : batch.tuples()) Emit(tuple);
}

void Operator::CountIn() {
  ++stats_.tuples_in;
  ++window_in_;
}

void Operator::ResetWindowCounters() {
  window_in_ = 0;
  window_out_ = 0;
}

}  // namespace sl::ops
