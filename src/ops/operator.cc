#include "ops/operator.h"

namespace sl::ops {

Status Operator::Flush(Timestamp) { return Status::OK(); }

Status Operator::Rescale(size_t) {
  return Status::Unimplemented("operator '" + name_ +
                               "' is not key-partitioned");
}

Status Operator::ProcessBatch(size_t port, const stt::TupleRef* tuples,
                              size_t count, BatchContext* ctx) {
  // Per-tuple fallback: identical to the caller dispatching the run
  // itself, with failures diverted per row so one bad tuple does not
  // stop the rest of the batch (matching the runtimes' per-tuple error
  // handling, which logs and keeps going).
  for (size_t i = 0; i < count; ++i) {
    if (ctx != nullptr && ctx->on_row) ctx->on_row(i);
    Status s = Process(port, tuples[i]);
    if (!s.ok() && ctx != nullptr) {
      ctx->errors.push_back(BatchRowError{i, std::move(s)});
    }
  }
  return Status::OK();
}

void Operator::Emit(const stt::TupleRef& tuple) {
  ++stats_.tuples_out;
  ++window_out_;
  if (emit_) emit_(tuple);
}

void Operator::EmitAll(const stt::RefBatch& batch) {
  for (const auto& tuple : batch.tuples()) Emit(tuple);
}

void Operator::CountIn() {
  ++stats_.tuples_in;
  ++window_in_;
}

void Operator::ObserveWatermark(size_t port, Timestamp watermark) {
  frontier_.Observe(port, watermark);
  stats_.watermark_low = frontier_.Min();
}

bool Operator::ApplyLatePolicy(const stt::TupleRef& tuple) {
  switch (watermark_options_.late_policy) {
    case LatePolicy::kAdmit:
      return true;
    case LatePolicy::kDrop:
      ++stats_.late_dropped;
      return false;
    case LatePolicy::kSideOutput:
      // Without a late-side sink installed the tuple is still kept out
      // of the window (the policy's point), it just lands nowhere.
      ++stats_.late_routed;
      if (late_emit_) late_emit_(tuple);
      return false;
  }
  return true;
}

void Operator::ResetWindowCounters() {
  window_in_ = 0;
  window_out_ = 0;
}

}  // namespace sl::ops
