#include "ops/debugger.h"

#include <algorithm>
#include <memory>

#include "util/strings.h"

namespace sl::ops {

using dataflow::Dataflow;
using dataflow::Node;
using dataflow::NodeKind;

std::string ActivationRecord::ToString() const {
  return StrFormat("%s {%s} at %s", activate ? "ACTIVATE" : "DEACTIVATE",
                   Join(sensor_ids, ", ").c_str(),
                   FormatTimestamp(at).c_str());
}

std::string DebugResult::ToString(const Dataflow& dataflow) const {
  std::string out = "debug run of dataflow '" + dataflow.name() + "'\n";
  out += report.ToString();
  if (!EndsWith(out, "\n")) out += "\n";
  if (!report.ok()) return out;
  for (const auto& name : dataflow.topological_order()) {
    const Node& node = **dataflow.node(name);
    out += "-- " + node.ToString() + "\n";
    auto sit = report.schemas.find(name);
    if (sit != report.schemas.end()) {
      out += "   schema: " + sit->second->ToString() + "\n";
    }
    auto oit = outputs.find(name);
    size_t n = oit == outputs.end() ? 0 : oit->second.size();
    out += StrFormat("   emits %zu tuple(s)\n", n);
    size_t shown = std::min<size_t>(n, 5);
    for (size_t i = 0; i < shown; ++i) {
      out += "     " + oit->second[i]->ToString() + "\n";
    }
    if (n > shown) out += StrFormat("     ... %zu more\n", n - shown);
  }
  for (const auto& a : activations) {
    out += "!! " + a.ToString() + "\n";
  }
  return out;
}

namespace {

/// Records trigger requests without acting on them.
class RecordingActivation : public ActivationHandler {
 public:
  explicit RecordingActivation(std::vector<ActivationRecord>* records)
      : records_(records) {}
  void ActivateSensors(const std::vector<std::string>& ids,
                       Timestamp at) override {
    records_->push_back({true, ids, at});
  }
  void DeactivateSensors(const std::vector<std::string>& ids,
                         Timestamp at) override {
    records_->push_back({false, ids, at});
  }

 private:
  std::vector<ActivationRecord>* records_;
};

}  // namespace

Result<DebugResult> DataflowDebugger::Run(
    const Dataflow& dataflow,
    const std::map<std::string, std::vector<stt::Tuple>>& samples) const {
  DebugResult result;
  dataflow::Validator validator(broker_);
  SL_ASSIGN_OR_RETURN(result.report, validator.Validate(dataflow));
  if (!result.report.ok()) {
    return Status::ValidationError("cannot debug an unsound dataflow:\n" +
                                   result.report.ToString());
  }
  for (const auto& [source, tuples] : samples) {
    auto node = dataflow.node(source);
    if (!node.ok() || (*node)->kind != NodeKind::kSource) {
      return Status::InvalidArgument("samples provided for '" + source +
                                     "', which is not a source of the "
                                     "dataflow");
    }
    (void)tuples;
  }

  // Build the operators.
  RecordingActivation activation(&result.activations);
  OperatorOptions options;
  options.activation = &activation;
  std::map<std::string, std::unique_ptr<Operator>> operators;
  for (const auto& name : dataflow.OperatorNames()) {
    const Node& node = **dataflow.node(name);
    std::vector<stt::SchemaPtr> input_schemas;
    for (const auto& in : node.inputs) {
      input_schemas.push_back(result.report.schemas.at(in));
    }
    SL_ASSIGN_OR_RETURN(std::unique_ptr<Operator> op,
                        MakeOperator(name, node.op, node.spec, input_schemas,
                                     node.inputs, options));
    operators.emplace(name, std::move(op));
  }

  // Wire node -> downstream consumers; every emission is also recorded.
  // Delivery is breadth-first through an explicit work queue so that
  // emissions inside Flush cascade correctly.
  struct Delivery {
    std::string to;
    size_t port;
    stt::TupleRef tuple;
  };
  std::vector<Delivery> queue;
  Status sticky_status = Status::OK();

  auto fanout = [&](const std::string& from, const stt::TupleRef& tuple) {
    result.outputs[from].push_back(tuple);
    for (const auto& consumer : dataflow.Downstream(from)) {
      const Node& cnode = **dataflow.node(consumer);
      for (size_t port = 0; port < cnode.inputs.size(); ++port) {
        if (cnode.inputs[port] == from) {
          queue.push_back({consumer, port, tuple});
        }
      }
    }
  };

  for (auto& [name, op] : operators) {
    const std::string node_name = name;
    op->set_emit([&fanout, node_name](const stt::TupleRef& t) {
      fanout(node_name, t);
    });
  }

  auto drain = [&]() -> Status {
    while (!queue.empty()) {
      Delivery d = std::move(queue.front());
      queue.erase(queue.begin());
      const Node& node = **dataflow.node(d.to);
      if (node.kind == NodeKind::kSink) {
        result.outputs[d.to].push_back(d.tuple);
        continue;
      }
      SL_RETURN_IF_ERROR(operators.at(d.to)->Process(d.port, d.tuple));
    }
    return Status::OK();
  };

  // Feed samples interleaved by event time; each sample is shared once
  // and the same ref flows through the whole run.
  struct Feed {
    Timestamp ts;
    std::string source;
    stt::TupleRef tuple;
  };
  std::vector<Feed> feeds;
  Timestamp max_ts = 0;
  for (const auto& [source, tuples] : samples) {
    for (const auto& t : tuples) {
      feeds.push_back({t.timestamp(), source, stt::Tuple::Share(t)});
      max_ts = std::max(max_ts, t.timestamp());
    }
  }
  std::stable_sort(feeds.begin(), feeds.end(),
                   [](const Feed& a, const Feed& b) { return a.ts < b.ts; });
  for (const auto& feed : feeds) {
    fanout(feed.source, feed.tuple);
    SL_RETURN_IF_ERROR(drain());
  }

  // One flush per blocking operator, in topological order, so cascaded
  // blocking stages see their upstream's aggregates.
  Timestamp flush_at = max_ts + duration::kSecond;
  for (const auto& name : dataflow.OperatorNames()) {
    Operator* op = operators.at(name).get();
    if (op->is_blocking()) {
      SL_RETURN_IF_ERROR(op->Flush(flush_at));
      SL_RETURN_IF_ERROR(drain());
    }
  }
  SL_RETURN_IF_ERROR(sticky_status);
  return result;
}

}  // namespace sl::ops
