// Implementations of the nine Table 1 operators and their factory.
//
// Time convention: every window is half-open, [begin, end) — a tuple
// with timestamp() == end belongs to the *next* window (DESIGN.md §8).

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>

#include "dataflow/validate.h"
#include "expr/eval.h"
#include "expr/vector_program.h"
#include "ops/operator.h"
#include "ops/tuple_cache.h"
#include "stt/column_batch.h"
#include "util/strings.h"

namespace sl::ops {

namespace {

using dataflow::AggFunc;
using dataflow::AggregationSpec;
using dataflow::CullSpaceSpec;
using dataflow::CullTimeSpec;
using dataflow::FilterSpec;
using dataflow::JoinSpec;
using dataflow::OpKind;
using dataflow::TransformSpec;
using dataflow::TriggerSpec;
using dataflow::VirtualPropertySpec;
using stt::Tuple;
using stt::TupleRef;
using stt::Value;
using stt::ValueType;

/// Merges the vectorized VM's per-row errors (plus any post-evaluation
/// failures the caller appended) into the batch context in row order —
/// the order the per-tuple path would have surfaced them.
void ReportRowErrors(std::vector<expr::VectorProgram::RowError>* errors,
                     Operator::BatchContext* ctx) {
  if (errors->empty()) return;
  std::sort(errors->begin(), errors->end(),
            [](const expr::VectorProgram::RowError& a,
               const expr::VectorProgram::RowError& b) { return a.row < b.row; });
  for (auto& e : *errors) {
    ctx->errors.push_back(Operator::BatchRowError{e.row, std::move(e.status)});
  }
  errors->clear();
}

/// Transform/virtual-property post-pass: coerces non-null computed
/// values whose dynamic type differs from the declared output type
/// (exactly what the per-tuple path does after Eval), dropping rows
/// whose coercion fails from both the selection and the value column.
void CoerceComputed(stt::ColumnBatch* batch, ValueType out_type,
                    std::vector<Value>* values,
                    std::vector<expr::VectorProgram::RowError>* errors) {
  std::vector<uint32_t>& sel = batch->mutable_selection();
  size_t out = 0;
  for (size_t pos = 0; pos < values->size(); ++pos) {
    Value& v = (*values)[pos];
    if (!v.is_null() && v.type() != out_type) {
      Result<Value> cv = v.CoerceTo(out_type);
      if (!cv.ok()) {
        errors->push_back(expr::VectorProgram::RowError{sel[pos], cv.status()});
        continue;
      }
      v = std::move(cv).ValueOrDie();
    }
    sel[out] = sel[pos];
    (*values)[out] = std::move(v);
    ++out;
  }
  sel.resize(out);
  values->resize(out);
}

// ---------------------------------------------------------------------------
// Non-blocking operations: applied directly on each tuple (Table 1).
// ---------------------------------------------------------------------------

/// sigma(s, cond)
class FilterOperator : public Operator {
 public:
  FilterOperator(std::string name, stt::SchemaPtr schema,
                 expr::BoundExpr condition)
      : Operator(std::move(name), OpKind::kFilter, std::move(schema), 0),
        condition_(std::move(condition)),
        vector_(&condition_.program()) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(bool pass, condition_.EvalPredicate(*tuple));
    if (pass) Emit(tuple);
    return Status::OK();
  }

  bool batchable(size_t) const override { return true; }

  Status ProcessBatch(size_t, const TupleRef* tuples, size_t count,
                      BatchContext* ctx) override {
    stt::ColumnBatch batch(condition_.schema(), tuples, count);
    for (size_t i = 0; i < count; ++i) CountIn();
    ++stats_.batches;
    stats_.batched_tuples += count;
    row_errors_.clear();
    SL_RETURN_IF_ERROR(vector_.RunPredicate(&batch, &row_errors_));
    ReportRowErrors(&row_errors_, ctx);
    // Passing rows forward the *original* refs, exactly like the
    // per-tuple path.
    for (uint32_t row : batch.selection()) {
      if (ctx->on_row) ctx->on_row(row);
      Emit(tuples[row]);
    }
    return Status::OK();
  }

 private:
  expr::BoundExpr condition_;
  expr::VectorProgram vector_;
  std::vector<expr::VectorProgram::RowError> row_errors_;
};

/// diamond_trans(s): rewrite one attribute in place.
class TransformOperator : public Operator {
 public:
  TransformOperator(std::string name, stt::SchemaPtr out_schema,
                    size_t field_index, ValueType out_type,
                    expr::BoundExpr expression)
      : Operator(std::move(name), OpKind::kTransform, std::move(out_schema), 0),
        field_index_(field_index),
        out_type_(out_type),
        expression_(std::move(expression)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(Value v, expression_.Eval(*tuple));
    if (!v.is_null() && v.type() != out_type_) {
      SL_ASSIGN_OR_RETURN(v, v.CoerceTo(out_type_));
    }
    Emit(tuple->WithValueAt(output_schema(), field_index_, std::move(v)));
    return Status::OK();
  }

  bool batchable(size_t) const override { return true; }

  Status ProcessBatch(size_t, const TupleRef* tuples, size_t count,
                      BatchContext* ctx) override {
    stt::ColumnBatch batch(expression_.schema(), tuples, count);
    for (size_t i = 0; i < count; ++i) CountIn();
    ++stats_.batches;
    stats_.batched_tuples += count;
    row_errors_.clear();
    values_.clear();
    SL_RETURN_IF_ERROR(vector_.RunValues(&batch, &values_, &row_errors_));
    CoerceComputed(&batch, out_type_, &values_, &row_errors_);
    ReportRowErrors(&row_errors_, ctx);
    batch.OverwriteColumn(field_index_, std::move(values_), output_schema());
    const std::vector<uint32_t>& sel = batch.selection();
    for (size_t pos = 0; pos < sel.size(); ++pos) {
      if (ctx->on_row) ctx->on_row(sel[pos]);
      Emit(batch.MaterializeRow(pos));
    }
    return Status::OK();
  }

 private:
  size_t field_index_;
  ValueType out_type_;
  expr::BoundExpr expression_;
  expr::VectorProgram vector_{&expression_.program()};
  std::vector<expr::VectorProgram::RowError> row_errors_;
  std::vector<Value> values_;
};

/// s union <p, spec>: append a computed attribute.
class VirtualPropertyOperator : public Operator {
 public:
  VirtualPropertyOperator(std::string name, stt::SchemaPtr out_schema,
                          ValueType out_type, expr::BoundExpr specification)
      : Operator(std::move(name), OpKind::kVirtualProperty,
                 std::move(out_schema), 0),
        out_type_(out_type),
        specification_(std::move(specification)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(Value v, specification_.Eval(*tuple));
    if (!v.is_null() && v.type() != out_type_) {
      SL_ASSIGN_OR_RETURN(v, v.CoerceTo(out_type_));
    }
    Emit(tuple->WithAppended(output_schema(), std::move(v)));
    return Status::OK();
  }

  bool batchable(size_t) const override { return true; }

  Status ProcessBatch(size_t, const TupleRef* tuples, size_t count,
                      BatchContext* ctx) override {
    stt::ColumnBatch batch(specification_.schema(), tuples, count);
    for (size_t i = 0; i < count; ++i) CountIn();
    ++stats_.batches;
    stats_.batched_tuples += count;
    row_errors_.clear();
    values_.clear();
    SL_RETURN_IF_ERROR(vector_.RunValues(&batch, &values_, &row_errors_));
    CoerceComputed(&batch, out_type_, &values_, &row_errors_);
    ReportRowErrors(&row_errors_, ctx);
    batch.AppendColumn(std::move(values_), output_schema());
    const std::vector<uint32_t>& sel = batch.selection();
    for (size_t pos = 0; pos < sel.size(); ++pos) {
      if (ctx->on_row) ctx->on_row(sel[pos]);
      Emit(batch.MaterializeRow(pos));
    }
    return Status::OK();
  }

 private:
  ValueType out_type_;
  expr::BoundExpr specification_;
  expr::VectorProgram vector_{&specification_.program()};
  std::vector<expr::VectorProgram::RowError> row_errors_;
  std::vector<Value> values_;
};

/// Systematic (deterministic) decimator: keeps a (1 - rate) fraction of
/// the tuples routed through it, evenly spread, preserving order.
class Decimator {
 public:
  explicit Decimator(double rate) : keep_fraction_(1.0 - rate) {}

  bool Keep() {
    ++seen_;
    uint64_t target =
        static_cast<uint64_t>(keep_fraction_ * static_cast<double>(seen_));
    if (kept_ < target) {
      ++kept_;
      return true;
    }
    return false;
  }

 private:
  double keep_fraction_;
  uint64_t seen_ = 0;
  uint64_t kept_ = 0;
};

/// gamma_r(s, <t1, t2>): decimate tuples whose event time falls in the
/// interval; pass the rest unchanged.
class CullTimeOperator : public Operator {
 public:
  CullTimeOperator(std::string name, stt::SchemaPtr schema, CullTimeSpec spec)
      : Operator(std::move(name), OpKind::kCullTime, std::move(schema), 0),
        spec_(spec),
        decimator_(spec.rate) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    // Half-open [t_begin, t_end), matching the eviction cutoff of the
    // blocking caches — a closed upper bound would make back-to-back
    // cull intervals decimate their shared boundary granule twice.
    bool inside = tuple->timestamp() >= spec_.t_begin &&
                  tuple->timestamp() < spec_.t_end;
    if (!inside || decimator_.Keep()) Emit(tuple);
    return Status::OK();
  }

 private:
  CullTimeSpec spec_;
  Decimator decimator_;
};

/// gamma_r(s, <coord1, coord2>): decimate tuples located in the area;
/// tuples without a location pass unchanged.
class CullSpaceOperator : public Operator {
 public:
  CullSpaceOperator(std::string name, stt::SchemaPtr schema,
                    CullSpaceSpec spec)
      : Operator(std::move(name), OpKind::kCullSpace, std::move(schema), 0),
        box_(stt::NormalizeBBox(spec.corner1, spec.corner2)),
        decimator_(spec.rate) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    bool inside =
        tuple->location().has_value() && box_.Contains(*tuple->location());
    if (!inside || decimator_.Keep()) Emit(tuple);
    return Status::OK();
  }

 private:
  stt::BBox box_;
  Decimator decimator_;
};

// ---------------------------------------------------------------------------
// Blocking operations: maintain a cache of tuples processed every t
// time intervals (Table 1).
// ---------------------------------------------------------------------------

// TupleCache, WindowView, SeqSignature, EventWindow and the join/pane
// index structures live in ops/tuple_cache.h, shared with tests and
// benchmarks.

/// @_{t,{a1..an}}^{op}(s)
/// SplitMix64 finalizer: spreads a wrapper-assigned global sequence
/// number into a well-mixed 64-bit word so the XOR-combined window
/// signatures below behave like a random hash of the member set.
uint64_t MixGseq(uint64_t g) {
  g += 0x9e3779b97f4a7c15ull;
  g = (g ^ (g >> 30)) * 0xbf58476d1ce4e5b9ull;
  g = (g ^ (g >> 27)) * 0x94d049bb133111ebull;
  return g ^ (g >> 31);
}

class AggregationOperator : public Operator {
 public:
  AggregationOperator(std::string name, stt::SchemaPtr out_schema,
                      stt::SchemaPtr in_schema, AggregationSpec spec,
                      size_t max_cache, bool naive)
      : Operator(std::move(name), OpKind::kAggregation, std::move(out_schema),
                 spec.interval),
        in_schema_(std::move(in_schema)),
        spec_(std::move(spec)),
        naive_(naive),
        cache_(max_cache) {
    for (const auto& g : spec_.group_by) {
      group_indexes_.push_back(*in_schema_->FieldIndex(g));
    }
    for (const auto& a : spec_.attributes) {
      attr_indexes_.push_back(*in_schema_->FieldIndex(a));
    }
  }

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    if (event_time() && event_.IsLate(tuple->timestamp()) &&
        !ApplyLatePolicy(tuple)) {
      return Status::OK();
    }
    stats_.dropped += cache_.Add(tuple);
    const TupleCache::Entry& entry = cache_.entries().back();
    if (shard_mode_) {
      gseq_by_seq_.emplace(entry.seq,
                           GseqRec{entry.tuple->timestamp(), pending_gseq_});
      if (gseq_by_seq_.size() > 2 * cache_.size() + 64) SweepGseqs();
    }
    if (!naive_) IndexArrival(entry);
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (event_time()) return FlushEvent();
    // Processing-time regime (legacy): the window ends at the flush
    // tick. Expire tuples older than the sliding window, aggregate the
    // half-open view [-inf, now), retain survivors.
    if (naive_) return FlushProcessingNaive(now);
    return spec_.window == 0 ? FlushTumblingFast(now) : FlushSlidingFast(now);
  }

  Timestamp output_watermark() const override {
    if (!event_time()) return input_watermark();
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }

  // -- shard-mode hooks (key-partitioned wrapper) --------------------------
  //
  // In shard mode the operator is one of N key-partitioned instances:
  // it never deduplicates sliding windows itself (the wrapper decides
  // globally from the combined shard signatures), it tags every
  // emission with the window it belongs to, and its event grid anchors
  // on the wrapper-provided global oldest so all shards fire identical
  // end sequences.

  /// One recorded window signature: `tag` is the flush tick
  /// (processing regime) or the fired window end (event regime). The
  /// signature is the XOR of the mixed wrapper-level sequence numbers
  /// of the window's live members plus their count — commutative, so
  /// the wrapper can combine shard slices by XOR/sum into a value that
  /// does not depend on how many shards the members are spread over
  /// (which is what lets sliding-window dedup survive a rescale).
  struct ShardSig {
    Timestamp tag;
    uint64_t sig;
    uint64_t count;
  };

  void EnableShardMode(size_t) { shard_mode_ = true; }
  /// Wrapper-level sequence number stamped onto the next cached tuple
  /// (called immediately before each shard-mode Process).
  void SetPendingGseq(uint64_t gseq) { pending_gseq_ = gseq; }
  /// The wrapper-level sequence number a cached entry carries (rescale
  /// replay re-attaches these so signatures stay comparable).
  uint64_t GseqOf(uint64_t seq) const {
    auto it = gseq_by_seq_.find(seq);
    return it != gseq_by_seq_.end() ? it->second.gseq : seq;
  }
  Timestamp OldestCachedTs() const { return OldestTs(cache_); }
  void SetOldestOverride(Timestamp t) { oldest_override_ = t; }
  /// Tag of the window the currently captured emission belongs to.
  Timestamp shard_tag() const { return shard_tag_; }
  std::vector<ShardSig> TakeShardSigs() { return std::move(shard_sigs_); }

  // Rescale support: state export + event-grid restore.
  const TupleCache& shard_cache() const { return cache_; }
  Timestamp shard_fired_end() const {
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }
  /// Re-anchors a fresh event grid at `end` (interval-aligned): fires
  /// nothing, but IsLate and the next Advance behave as if this
  /// instance had fired up to `end` already.
  void RestoreFiredEnd(Timestamp end) {
    event_.Advance(end, stt::kNoWatermark);
  }

 private:
  /// One list of tuples to aggregate, tagged with its group key; groups
  /// are always emitted in ascending key order, whichever path built
  /// them, so grouping strategy never shows in the output.
  using GroupList =
      std::vector<std::pair<std::string, std::vector<const Tuple*>>>;

  /// The '\x1f'-joined display form of the group-by columns: the group
  /// identity every path shares. ToString (not raw bytes) keeps identity
  /// aligned with what the legacy std::map grouping used.
  std::string GroupKey(const Tuple& t) const {
    std::string key;
    for (size_t idx : group_indexes_) {
      key += t.value(idx).ToString();
      key += '\x1f';
    }
    return key;
  }

  /// Routes a fresh arrival into the regime's incremental structure.
  void IndexArrival(const TupleCache::Entry& e) {
    if (event_time()) {
      pane_.Insert(e);
      keys_by_seq_.emplace(e.seq,
                           KeyRec{e.tuple->timestamp(), GroupKey(*e.tuple)});
      if (keys_by_seq_.size() > 2 * cache_.size() + 64) SweepKeys();
    } else if (spec_.window == 0) {
      FoldIntoState(*e.tuple);
    } else {
      group_slots_[GroupKey(*e.tuple)].push_back(e);
      ++slot_count_;
      if (slot_count_ > 2 * cache_.size() + 64) CompactSlots();
    }
  }

  Status FlushProcessingNaive(Timestamp now) {
    if (spec_.window > 0) cache_.EvictOlderThan(now - spec_.window);
    auto view = WindowView(cache_, std::numeric_limits<Timestamp>::min(), now,
                           /*sorted=*/false);
    if (shard_mode_) {
      if (spec_.window > 0) shard_sigs_.push_back(ShardSigOfView(now, view));
      if (!view.empty()) EmitGroups(view, now);
    } else if (!view.empty() && ChangedSinceLastEmit(view)) {
      EmitGroups(view, now);
    }
    if (spec_.window == 0) cache_.Clear();  // tumbling
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  /// Tumbling fast path: the per-group running state already folded
  /// every arrival, so the flush is O(groups), not O(tuples) — provided
  /// the state still mirrors the cache. It stops mirroring when the
  /// capacity bound evicted a folded tuple, or when some cached tuple is
  /// stamped at/after `now` (outside the half-open window but folded
  /// in); both are detected and fall back to a full recompute.
  Status FlushTumblingFast(Timestamp now) {
    bool valid = cache_.capacity_evictions() == cap_evict_mark_ &&
                 (cache_.max_ts() == stt::kNoWatermark || cache_.max_ts() < now);
    if (valid) {
      if (!states_.empty()) EmitStates(now);
    } else {
      auto view = WindowView(cache_, std::numeric_limits<Timestamp>::min(),
                             now, /*sorted=*/false);
      if (!view.empty()) EmitGroups(view, now);
    }
    cache_.Clear();
    states_.clear();
    cap_evict_mark_ = cache_.capacity_evictions();
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  /// Sliding fast path: arrivals were bucketed by group key once, at
  /// Process time; the flush folds each group's live slots in arrival
  /// order — the same fold, in the same order, the naive path runs after
  /// re-deriving every key and rebuilding its ordered map.
  Status FlushSlidingFast(Timestamp now) {
    cache_.EvictOlderThan(now - spec_.window);
    GroupList groups;
    std::vector<uint64_t> seqs;
    for (auto& [key, slots] : group_slots_) {
      std::vector<const Tuple*> tuples;
      for (const TupleCache::Entry& e : slots) {
        Timestamp ts = e.tuple->timestamp();
        if (ts >= now || !cache_.Live(e.seq, ts)) continue;
        tuples.push_back(e.tuple.get());
        seqs.push_back(e.seq);
      }
      if (!tuples.empty()) groups.emplace_back(key, std::move(tuples));
    }
    bool emit;
    if (shard_mode_) {
      uint64_t sig = 0;
      for (uint64_t seq : seqs) sig ^= MixGseq(GseqOf(seq));
      shard_sigs_.push_back({now, sig, seqs.size()});
      emit = !groups.empty();
    } else {
      emit = !groups.empty() &&
             ChangedSignature(SeqSignatureOf(std::move(seqs)));
    }
    if (emit) {
      std::sort(groups.begin(), groups.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      EmitGrouped(groups, now);
    }
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  /// Event-time regime: fire every aligned window end the
  /// lateness-adjusted input frontier has passed, oldest first. The fast
  /// path reads each window as a concatenation of per-pane sorted runs
  /// (only dirty panes re-sort) instead of re-sorting the whole window,
  /// and reuses the group keys derived at Process time.
  Status FlushEvent() {
    Timestamp horizon = input_watermark();
    if (horizon == stt::kNoWatermark) return Status::OK();
    horizon -= watermark_options().allowed_lateness;
    Timestamp oldest = oldest_override_.value_or(OldestTs(cache_));
    for (Timestamp end : event_.Advance(horizon, oldest)) {
      Timestamp begin = end - event_.effective_window();
      auto view = naive_ ? WindowView(cache_, begin, end, /*sorted=*/true)
                         : pane_.View(cache_, begin, end);
      event_.MarkFired(end);
      if (shard_mode_) {
        if (spec_.window > 0) shard_sigs_.push_back(ShardSigOfView(end, view));
        if (view.empty()) continue;
      } else if (view.empty() || !ChangedSinceLastEmit(view)) {
        continue;
      }
      if (naive_) {
        EmitGroups(view, end);
      } else {
        EmitGroupsKeyed(view, end);
      }
    }
    if (event_.initialized()) {
      Timestamp cutoff = event_.EvictionCutoff();
      cache_.EvictOlderThan(cutoff);
      if (!naive_) pane_.DropBelow(cutoff);
    }
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  /// Sliding-regime dedup guard: emit only when the window's tuple set
  /// changed since the last emission — re-emitting an unchanged window
  /// every interval double-counts rows in the warehouse sink. Tumbling
  /// windows always contain fresh data, so they always pass.
  bool ChangedSinceLastEmit(const std::vector<const TupleCache::Entry*>& view) {
    if (spec_.window == 0) return true;
    return ChangedSignature(SeqSignature(view));
  }

  bool ChangedSignature(uint64_t sig) {
    if (spec_.window == 0) return true;
    if (last_signature_.has_value() && *last_signature_ == sig) return false;
    last_signature_ = sig;
    return true;
  }

  /// Naive grouping: re-derive every tuple's key and build an ordered
  /// map, exactly as the original implementation did.
  void EmitGroups(const std::vector<const TupleCache::Entry*>& view,
                  Timestamp end) {
    std::map<std::string, std::vector<const Tuple*>> by_key;
    for (const auto* entry : view) {
      by_key[GroupKey(*entry->tuple)].push_back(entry->tuple.get());
    }
    GroupList groups;
    groups.reserve(by_key.size());
    for (auto& [key, tuples] : by_key) {
      groups.emplace_back(key, std::move(tuples));
    }
    EmitGrouped(groups, end);
  }

  /// Fast event-time grouping: hash-group on the keys memoized at
  /// Process time, then order the groups for emission.
  void EmitGroupsKeyed(const std::vector<const TupleCache::Entry*>& view,
                       Timestamp end) {
    std::unordered_map<std::string, std::vector<const Tuple*>> by_key;
    for (const auto* entry : view) {
      auto it = keys_by_seq_.find(entry->seq);
      std::string key =
          it != keys_by_seq_.end() ? it->second.key : GroupKey(*entry->tuple);
      by_key[std::move(key)].push_back(entry->tuple.get());
    }
    GroupList groups;
    groups.reserve(by_key.size());
    for (auto& [key, tuples] : by_key) {
      groups.emplace_back(key, std::move(tuples));
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    EmitGrouped(groups, end);
  }

  /// Emits one aggregate per group (ascending key order), stamped with
  /// the last granule of the window ending at `end`.
  void EmitGrouped(const GroupList& groups, Timestamp end) {
    shard_tag_ = end;
    Timestamp out_ts =
        output_schema()->temporal_granularity().Truncate(end - 1);
    stt::RefBatch out(output_schema());
    for (const auto& [key, tuples] : groups) {
      std::vector<Value> values;
      // Group keys (taken from the first member).
      for (size_t idx : group_indexes_) {
        values.push_back(tuples.front()->value(idx));
      }
      if (spec_.func == AggFunc::kCount && attr_indexes_.empty()) {
        values.push_back(Value::Int(static_cast<int64_t>(tuples.size())));
      }
      for (size_t idx : attr_indexes_) {
        values.push_back(Aggregate(tuples, idx));
      }
      // Location: centroid of the group's located tuples.
      std::optional<stt::GeoPoint> loc = Centroid(tuples);
      out.Add(Tuple::Share(
          Tuple::MakeUnsafe(output_schema(), std::move(values), out_ts, loc)));
    }
    EmitAll(out);
  }

  Value Aggregate(const std::vector<const Tuple*>& tuples, size_t idx) const {
    int64_t count = 0;
    double sum = 0;
    const Value* min_v = nullptr;
    const Value* max_v = nullptr;
    for (const Tuple* t : tuples) {
      const Value& v = t->value(idx);
      if (v.is_null()) continue;
      ++count;
      if (v.is_numeric()) sum += *v.ToNumeric();
      if (min_v == nullptr || Value::Compare(v, *min_v) < 0) min_v = &v;
      if (max_v == nullptr || Value::Compare(v, *max_v) > 0) max_v = &v;
    }
    switch (spec_.func) {
      case AggFunc::kCount: return Value::Int(count);
      case AggFunc::kSum: return count > 0 ? Value::Double(sum) : Value::Null();
      case AggFunc::kAvg:
        return count > 0 ? Value::Double(sum / static_cast<double>(count))
                         : Value::Null();
      case AggFunc::kMin: return min_v != nullptr ? *min_v : Value::Null();
      case AggFunc::kMax: return max_v != nullptr ? *max_v : Value::Null();
    }
    return Value::Null();
  }

  static std::optional<stt::GeoPoint> Centroid(
      const std::vector<const Tuple*>& tuples) {
    double lat = 0, lon = 0;
    size_t n = 0;
    for (const Tuple* t : tuples) {
      if (t->location().has_value()) {
        lat += t->location()->lat;
        lon += t->location()->lon;
        ++n;
      }
    }
    if (n == 0) return std::nullopt;
    return stt::GeoPoint{lat / static_cast<double>(n),
                         lon / static_cast<double>(n)};
  }

  // ---------------------------------------------------------- running state

  /// Per-attribute running aggregate: the same count/sum/min/max fold
  /// Aggregate() runs over a group vector, advanced one tuple at a time
  /// in arrival order — the identical sequence of floating-point
  /// additions, so results match bit for bit.
  struct AttrState {
    int64_t count = 0;
    double sum = 0;
    std::optional<Value> min;
    std::optional<Value> max;
  };
  struct GroupState {
    std::vector<Value> key_values;  ///< from the group's first tuple
    int64_t total = 0;              ///< tuples folded (incl. null attrs)
    std::vector<AttrState> attrs;   ///< parallel to attr_indexes_
    double lat_sum = 0, lon_sum = 0;
    size_t located = 0;
  };

  void FoldIntoState(const Tuple& t) {
    GroupState& g = states_[GroupKey(t)];
    if (g.total == 0) {
      for (size_t idx : group_indexes_) g.key_values.push_back(t.value(idx));
      g.attrs.resize(attr_indexes_.size());
    }
    ++g.total;
    for (size_t i = 0; i < attr_indexes_.size(); ++i) {
      const Value& v = t.value(attr_indexes_[i]);
      if (v.is_null()) continue;
      AttrState& a = g.attrs[i];
      ++a.count;
      if (v.is_numeric()) a.sum += *v.ToNumeric();
      if (!a.min.has_value() || Value::Compare(v, *a.min) < 0) a.min = v;
      if (!a.max.has_value() || Value::Compare(v, *a.max) > 0) a.max = v;
    }
    if (t.location().has_value()) {
      g.lat_sum += t.location()->lat;
      g.lon_sum += t.location()->lon;
      ++g.located;
    }
  }

  void EmitStates(Timestamp now) {
    shard_tag_ = now;
    std::vector<const std::string*> keys;
    keys.reserve(states_.size());
    for (const auto& [key, g] : states_) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    Timestamp out_ts =
        output_schema()->temporal_granularity().Truncate(now - 1);
    stt::RefBatch out(output_schema());
    for (const std::string* key : keys) {
      const GroupState& g = states_.at(*key);
      std::vector<Value> values = g.key_values;
      if (spec_.func == AggFunc::kCount && attr_indexes_.empty()) {
        values.push_back(Value::Int(g.total));
      }
      for (const AttrState& a : g.attrs) {
        values.push_back(FromState(a));
      }
      std::optional<stt::GeoPoint> loc;
      if (g.located > 0) {
        loc = stt::GeoPoint{g.lat_sum / static_cast<double>(g.located),
                            g.lon_sum / static_cast<double>(g.located)};
      }
      out.Add(Tuple::Share(
          Tuple::MakeUnsafe(output_schema(), std::move(values), out_ts, loc)));
    }
    EmitAll(out);
  }

  Value FromState(const AttrState& a) const {
    switch (spec_.func) {
      case AggFunc::kCount: return Value::Int(a.count);
      case AggFunc::kSum:
        return a.count > 0 ? Value::Double(a.sum) : Value::Null();
      case AggFunc::kAvg:
        return a.count > 0 ? Value::Double(a.sum / static_cast<double>(a.count))
                           : Value::Null();
      case AggFunc::kMin:
        return a.min.has_value() ? *a.min : Value::Null();
      case AggFunc::kMax:
        return a.max.has_value() ? *a.max : Value::Null();
    }
    return Value::Null();
  }

  void CompactSlots() {
    size_t kept = 0;
    for (auto it = group_slots_.begin(); it != group_slots_.end();) {
      auto& slots = it->second;
      slots.erase(std::remove_if(slots.begin(), slots.end(),
                                 [this](const TupleCache::Entry& e) {
                                   return !cache_.Live(
                                       e.seq, e.tuple->timestamp());
                                 }),
                  slots.end());
      if (slots.empty()) {
        it = group_slots_.erase(it);
      } else {
        kept += slots.size();
        ++it;
      }
    }
    slot_count_ = kept;
  }

  void SweepKeys() {
    for (auto it = keys_by_seq_.begin(); it != keys_by_seq_.end();) {
      if (cache_.Live(it->first, it->second.ts)) {
        ++it;
      } else {
        it = keys_by_seq_.erase(it);
      }
    }
  }

  /// Shard-mode window signature of a flush view (its live members).
  ShardSig ShardSigOfView(
      Timestamp tag, const std::vector<const TupleCache::Entry*>& view) const {
    uint64_t sig = 0;
    for (const auto* entry : view) sig ^= MixGseq(GseqOf(entry->seq));
    return {tag, sig, view.size()};
  }

  void SweepGseqs() {
    for (auto it = gseq_by_seq_.begin(); it != gseq_by_seq_.end();) {
      if (cache_.Live(it->first, it->second.ts)) {
        ++it;
      } else {
        it = gseq_by_seq_.erase(it);
      }
    }
  }

  stt::SchemaPtr in_schema_;
  AggregationSpec spec_;
  std::vector<size_t> group_indexes_;
  std::vector<size_t> attr_indexes_;
  bool naive_;
  TupleCache cache_;
  EventWindow event_{spec_.interval, spec_.window};
  std::optional<uint64_t> last_signature_;
  // Tumbling processing-time: running per-group state + its validity mark.
  std::unordered_map<std::string, GroupState> states_;
  uint64_t cap_evict_mark_ = 0;
  // Sliding processing-time: arrivals bucketed by group key.
  std::unordered_map<std::string, std::vector<TupleCache::Entry>> group_slots_;
  size_t slot_count_ = 0;
  // Event-time: per-pane sorted runs + memoized group keys.
  PaneIndex pane_{spec_.interval};
  struct KeyRec {
    Timestamp ts;
    std::string key;
  };
  std::unordered_map<uint64_t, KeyRec> keys_by_seq_;
  // Shard mode (key-partitioned wrapper).
  bool shard_mode_ = false;
  std::optional<Timestamp> oldest_override_;
  Timestamp shard_tag_ = 0;
  std::vector<ShardSig> shard_sigs_;
  // Wrapper-level sequence numbers by cache seq (shard mode only).
  struct GseqRec {
    Timestamp ts;
    uint64_t gseq;
  };
  uint64_t pending_gseq_ = 0;
  std::unordered_map<uint64_t, GseqRec> gseq_by_seq_;
};

/// s1 |><|_{pred}^{t} s2
///
/// Three pairing strategies, all required to emit identical rows in
/// identical order:
///  - naive: enumerate the cross product, materialize every pair, then
///    evaluate the full predicate (the original implementation; kept as
///    the oracle behind OperatorOptions::naive_blocking);
///  - non-equi fast: same enumeration, but the predicate runs over a
///    zero-copy PairView and only matching pairs materialize;
///  - hash equi-join: the right cache is indexed on the predicate's
///    equi-conjunct columns; each left tuple probes its bucket and only
///    key-equal candidates see the residual predicate. Bucket slots
///    keep arrival order, so probing enumerates exactly the pairs the
///    nested loop would have accepted, in the same order.
class JoinOperator : public Operator {
 public:
  JoinOperator(std::string name, stt::SchemaPtr out_schema, JoinSpec spec,
               expr::BoundExpr predicate,
               std::optional<expr::BoundExpr> residual,
               std::vector<size_t> left_cols, std::vector<size_t> right_cols,
               size_t split, bool naive, size_t max_cache)
      : Operator(std::move(name), OpKind::kJoin, std::move(out_schema),
                 spec.interval),
        spec_(std::move(spec)),
        predicate_(std::move(predicate)),
        residual_(std::move(residual)),
        left_cols_(std::move(left_cols)),
        right_cols_(std::move(right_cols)),
        split_(split),
        naive_(naive),
        left_(max_cache),
        right_(max_cache),
        right_index_(right_cols_) {}

  Status Process(size_t port, const TupleRef& tuple) override {
    CountIn();
    if (port > 1) {
      return Status::InvalidArgument(
          StrFormat("join has inputs 0 and 1, got port %zu", port));
    }
    if (event_time() && event_.IsLate(tuple->timestamp()) &&
        !ApplyLatePolicy(tuple)) {
      return Status::OK();
    }
    TupleCache& cache = port == 0 ? left_ : right_;
    stats_.dropped += cache.Add(tuple);
    if (shard_mode_) {
      auto& arr = port == 0 ? left_arr_ : right_arr_;
      arr.emplace(cache.entries().back().seq,
                  ArrivalRec{pending_gseq_, pending_broadcast_,
                             tuple->timestamp()});
      if (arr.size() > 2 * cache.size() + 64) SweepArrivals(port);
    }
    if (port == 1 && hash_join() && !event_time()) {
      // The persistent index serves the processing-time regime; the
      // event-time regime indexes each fired window transiently.
      right_index_.Insert(right_.entries().back());
    }
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (event_time()) return FlushEvent();
    if (spec_.window > 0) {
      left_.EvictOlderThan(now - spec_.window);
      right_.EvictOlderThan(now - spec_.window);
    }
    const auto& tgran = output_schema()->temporal_granularity();
    stt::RefBatch out(output_schema());
    if (hash_join()) {
      SL_RETURN_IF_ERROR(ProbeAll(tgran, &out));
    } else {
      for (const auto& le : left_.entries()) {
        for (const auto& re : right_.entries()) {
          // Sliding regime: emit each surviving pair exactly once — on
          // the first check where both elements are cached together.
          if (spec_.window > 0 && le.seq < left_seen_ &&
              re.seq < right_seen_) {
            continue;
          }
          SetCurPair(le.seq, re.seq);
          SL_RETURN_IF_ERROR(naive_
                                 ? JoinPairNaive(*le.tuple, *re.tuple, tgran,
                                                 &out)
                                 : JoinPairFast(*le.tuple, *re.tuple,
                                                predicate_, tgran, &out));
        }
      }
    }
    EmitAll(out);
    if (spec_.window == 0) {
      left_.Clear();
      right_.Clear();
      right_index_.Clear();
      left_arr_.clear();
      right_arr_.clear();
    } else {
      left_seen_ = left_.next_seq();
      right_seen_ = right_.next_seq();
    }
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  Timestamp output_watermark() const override {
    if (!event_time()) return input_watermark();
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }

  // -- shard-mode hooks (key-partitioned wrapper) --------------------------
  //
  // A shard instance pairs only the keys routed to it; the wrapper
  // restores the single-instance emission order from the provenance tag
  // recorded alongside every pair. NaN keys are broadcast to every
  // shard (they match any key); a pair whose members are BOTH
  // broadcast would be produced by every shard, so shards > 0 suppress
  // it and shard 0 owns the emission.

  /// Provenance of one emitted pair.
  struct PairTag {
    Timestamp end;    ///< fired window end (0 in the processing regime)
    uint64_t lg, rg;  ///< wrapper arrival seqs (processing-regime order)
    TupleRef l, r;    ///< pair members (event-regime order)
  };
  /// One cached tuple with everything a rescale replay needs.
  struct ShardEntry {
    TupleRef tuple;
    uint64_t gseq;
    bool broadcast;
    bool seen;  ///< already paired before the last flush (sliding regime)
  };

  void EnableShardMode(size_t shard_index) {
    shard_mode_ = true;
    shard_index_ = shard_index;
  }
  /// Wrapper-level provenance of the arrival the next Process caches.
  void SetPendingArrival(uint64_t gseq, bool broadcast) {
    pending_gseq_ = gseq;
    pending_broadcast_ = broadcast;
  }
  Timestamp OldestCachedTs() const {
    Timestamp l = OldestTs(left_);
    Timestamp r = OldestTs(right_);
    if (l == stt::kNoWatermark) return r;
    if (r == stt::kNoWatermark) return l;
    return std::min(l, r);
  }
  void SetOldestOverride(Timestamp t) { oldest_override_ = t; }
  std::vector<PairTag> TakePairTags() { return std::move(pair_tags_); }

  // Rescale support: state export + event-grid restore.
  Timestamp shard_fired_end() const {
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }
  void RestoreFiredEnd(Timestamp end) {
    event_.Advance(end, stt::kNoWatermark);
  }
  void ExportShard(std::vector<ShardEntry>* lout,
                   std::vector<ShardEntry>* rout) const {
    for (const auto& e : left_.entries()) {
      const ArrivalRec& a = left_arr_.at(e.seq);
      lout->push_back({e.tuple, a.gseq, a.broadcast, e.seq < left_seen_});
    }
    for (const auto& e : right_.entries()) {
      const ArrivalRec& a = right_arr_.at(e.seq);
      rout->push_back({e.tuple, a.gseq, a.broadcast, e.seq < right_seen_});
    }
  }
  /// Marks everything cached so far as paired (rescale replays the
  /// already-seen tuples first, then calls this, then the unseen rest).
  void MarkAllSeen() {
    left_seen_ = left_.next_seq();
    right_seen_ = right_.next_seq();
  }

 private:
  bool hash_join() const { return !naive_ && !left_cols_.empty(); }

  /// Provenance of one cached arrival (shard mode only).
  struct ArrivalRec {
    uint64_t gseq;
    bool broadcast;
    Timestamp ts;
  };

  /// Stages the provenance tag of the pair about to be attempted
  /// (processing regime: wrapper orders by arrival seqs).
  void SetCurPair(uint64_t lseq, uint64_t rseq) {
    if (!shard_mode_) return;
    const ArrivalRec& l = left_arr_.at(lseq);
    const ArrivalRec& r = right_arr_.at(rseq);
    cur_ = {0, l.gseq, r.gseq, {}, {}};
    cur_suppress_ = shard_index_ > 0 && l.broadcast && r.broadcast;
  }
  /// Event-regime variant: the wrapper orders pairs within a fired end
  /// by the members' event order, so the tag carries the tuples.
  void SetCurPairEvent(Timestamp end, uint64_t lseq, uint64_t rseq,
                       const TupleRef& l, const TupleRef& r) {
    if (!shard_mode_) return;
    cur_ = {end, 0, 0, l, r};
    cur_suppress_ = shard_index_ > 0 && left_arr_.at(lseq).broadcast &&
                    right_arr_.at(rseq).broadcast;
  }
  /// Books the staged tag; false when the pair is a cross-shard
  /// duplicate (both members broadcast, owned by shard 0).
  bool RecordPair() {
    if (!shard_mode_) return true;
    if (cur_suppress_) return false;
    pair_tags_.push_back(cur_);
    return true;
  }

  void SweepArrivals(size_t port) {
    auto& arr = port == 0 ? left_arr_ : right_arr_;
    const TupleCache& cache = port == 0 ? left_ : right_;
    for (auto it = arr.begin(); it != arr.end();) {
      if (cache.Live(it->first, it->second.ts)) {
        ++it;
      } else {
        it = arr.erase(it);
      }
    }
  }

  /// Processing-time probe loop: left cache in arrival order, each tuple
  /// probing the right-side hash index. Candidates come back in right
  /// arrival order, reproducing the nested loop's emission order over
  /// the key-equal subset. Batch-aware: all probe keys are hashed in one
  /// tight pass up front, and a run of consecutive probes with the same
  /// key reuses the previous candidate list instead of re-walking the
  /// bucket (sensor streams are heavily key-clustered).
  Status ProbeAll(const stt::TemporalGranularity& tgran, stt::RefBatch* out) {
    if (right_index_.slot_count() > 2 * right_.size() + 64) {
      right_index_.Compact(right_);
    }
    probe_keys_.clear();
    probe_keys_.reserve(left_.size());
    for (const auto& le : left_.entries()) {
      probe_keys_.push_back(MakeJoinKeyInfo(*le.tuple, left_cols_));
    }
    std::vector<const JoinHashIndex::Slot*> cand;
    const Tuple* group = nullptr;  // previous probe with a reusable `cand`
    size_t group_hash = 0;
    size_t idx = 0;
    for (const auto& le : left_.entries()) {
      const JoinKeyInfo& probe = probe_keys_[idx++];
      if (probe.has_null) {  // a null key equals nothing
        group = nullptr;
        continue;
      }
      if (probe.has_nan) {
        // A NaN key compares equal to every numeric, so the bucket
        // cannot narrow anything: scan the whole right cache. (NaN keys
        // never form a reuse group — JoinKeyEquals would over-merge.)
        group = nullptr;
        for (const auto& re : right_.entries()) {
          SL_RETURN_IF_ERROR(
              TryCandidate(le, re.seq, *re.tuple, tgran, out));
        }
        continue;
      }
      if (group == nullptr || probe.hash != group_hash ||
          !LeftKeysEqual(*group, *le.tuple)) {
        right_index_.Candidates(probe, &cand);
        group = le.tuple.get();
        group_hash = probe.hash;
      }
      for (const auto* slot : cand) {
        if (!right_.Live(slot->seq, slot->tuple->timestamp())) continue;
        SL_RETURN_IF_ERROR(
            TryCandidate(le, slot->seq, *slot->tuple, tgran, out));
      }
    }
    return Status::OK();
  }

  Status TryCandidate(const TupleCache::Entry& le, uint64_t right_seq,
                      const Tuple& r, const stt::TemporalGranularity& tgran,
                      stt::RefBatch* out) {
    if (spec_.window > 0 && le.seq < left_seen_ && right_seq < right_seen_) {
      return Status::OK();
    }
    if (!KeysMatch(*le.tuple, r)) return Status::OK();
    SetCurPair(le.seq, right_seq);
    return EmitIfResidual(*le.tuple, r, tgran, out);
  }

  bool KeysMatch(const Tuple& l, const Tuple& r) const {
    for (size_t i = 0; i < left_cols_.size(); ++i) {
      if (!JoinKeyEquals(l.value(left_cols_[i]), r.value(right_cols_[i]))) {
        return false;
      }
    }
    return true;
  }

  /// Key equality between two *left* tuples (grouped-probe reuse check).
  bool LeftKeysEqual(const Tuple& a, const Tuple& b) const {
    for (size_t c : left_cols_) {
      if (!JoinKeyEquals(a.value(c), b.value(c))) return false;
    }
    return true;
  }

  /// Event-time regime. Each surviving pair fires at exactly one window
  /// end — the one whose closing granule contains the pair's event time
  /// max(l.ts, r.ts) — so no sequence bookkeeping is needed and the
  /// result is delivery-order independent.
  Status FlushEvent() {
    Timestamp horizon = input_watermark();
    if (horizon == stt::kNoWatermark) return Status::OK();
    horizon -= watermark_options().allowed_lateness;
    Timestamp oldest_left = OldestTs(left_);
    Timestamp oldest_right = OldestTs(right_);
    Timestamp oldest = oldest_left == stt::kNoWatermark ? oldest_right
                       : oldest_right == stt::kNoWatermark
                           ? oldest_left
                           : std::min(oldest_left, oldest_right);
    oldest = oldest_override_.value_or(oldest);
    const auto& tgran = output_schema()->temporal_granularity();
    for (Timestamp end : event_.Advance(horizon, oldest)) {
      Timestamp begin = end - event_.effective_window();
      auto lview = WindowView(left_, begin, end, /*sorted=*/true);
      auto rview = WindowView(right_, begin, end, /*sorted=*/true);
      event_.MarkFired(end);
      if (lview.empty() || rview.empty()) continue;
      stt::RefBatch out(output_schema());
      if (hash_join()) {
        SL_RETURN_IF_ERROR(ProbeWindow(lview, rview, end, tgran, &out));
      } else {
        for (const auto* le : lview) {
          for (const auto* re : rview) {
            // Both members are < end, so the pair time is < end;
            // skipping pairs older than the closing granule leaves each
            // pair with a unique firing end.
            Timestamp pair_ts =
                std::max(le->tuple->timestamp(), re->tuple->timestamp());
            if (pair_ts < end - interval()) continue;
            SetCurPairEvent(end, le->seq, re->seq, le->tuple, re->tuple);
            SL_RETURN_IF_ERROR(naive_
                                   ? JoinPairNaive(*le->tuple, *re->tuple,
                                                   tgran, &out)
                                   : JoinPairFast(*le->tuple, *re->tuple,
                                                  predicate_, tgran, &out));
          }
        }
      }
      EmitAll(out);
    }
    if (event_.initialized()) {
      left_.EvictOlderThan(event_.EvictionCutoff());
      right_.EvictOlderThan(event_.EvictionCutoff());
    }
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  /// One fired window, hash-joined: a transient index over the sorted
  /// right view (slot seq = view position, so candidates enumerate in
  /// view order), probed by the sorted left view.
  Status ProbeWindow(const std::vector<const TupleCache::Entry*>& lview,
                     const std::vector<const TupleCache::Entry*>& rview,
                     Timestamp end, const stt::TemporalGranularity& tgran,
                     stt::RefBatch* out) {
    JoinHashIndex index(right_cols_);
    for (size_t i = 0; i < rview.size(); ++i) {
      index.Insert({rview[i]->tuple, static_cast<uint64_t>(i)});
    }
    // Vectorized key pass over the probe side, then grouped probing as
    // in ProbeAll.
    probe_keys_.clear();
    probe_keys_.reserve(lview.size());
    for (const auto* le : lview) {
      probe_keys_.push_back(MakeJoinKeyInfo(*le->tuple, left_cols_));
    }
    std::vector<const JoinHashIndex::Slot*> cand;
    const Tuple* group = nullptr;
    size_t group_hash = 0;
    size_t idx = 0;
    for (const auto* le : lview) {
      const JoinKeyInfo& probe = probe_keys_[idx++];
      if (probe.has_null) {
        group = nullptr;
        continue;
      }
      const Tuple& l = *le->tuple;
      auto try_pair = [&](const TupleCache::Entry& rent) -> Status {
        const Tuple& r = *rent.tuple;
        Timestamp pair_ts = std::max(l.timestamp(), r.timestamp());
        if (pair_ts < end - interval()) return Status::OK();
        if (!KeysMatch(l, r)) return Status::OK();
        SetCurPairEvent(end, le->seq, rent.seq, le->tuple, rent.tuple);
        return EmitIfResidual(l, r, tgran, out);
      };
      if (probe.has_nan) {
        group = nullptr;
        for (const auto* re : rview) {
          SL_RETURN_IF_ERROR(try_pair(*re));
        }
        continue;
      }
      if (group == nullptr || probe.hash != group_hash ||
          !LeftKeysEqual(*group, l)) {
        index.Candidates(probe, &cand);
        group = le->tuple.get();
        group_hash = probe.hash;
      }
      for (const auto* slot : cand) {
        // Slot seq is the view position (keeps candidate enumeration in
        // view order); the view entry carries the cache seq.
        SL_RETURN_IF_ERROR(try_pair(*rview[slot->seq]));
      }
    }
    return Status::OK();
  }

  /// Materializes the concatenated tuple for a matching pair.
  void AddJoined(const Tuple& l, const Tuple& r, Timestamp ts,
                 stt::RefBatch* out) {
    if (!RecordPair()) return;
    std::vector<Value> values;
    values.reserve(l.values().size() + r.values().size());
    values.insert(values.end(), l.values().begin(), l.values().end());
    values.insert(values.end(), r.values().begin(), r.values().end());
    std::optional<stt::GeoPoint> loc =
        l.location().has_value() ? l.location() : r.location();
    out->Add(Tuple::Share(
        Tuple::MakeUnsafe(output_schema(), std::move(values), ts, loc)));
  }

  /// Original pairing: materialize first, then evaluate — every
  /// non-matching pair still pays for the concatenation. Retained
  /// verbatim as the reference implementation.
  Status JoinPairNaive(const Tuple& l, const Tuple& r,
                       const stt::TemporalGranularity& tgran,
                       stt::RefBatch* out) {
    std::vector<Value> values;
    values.reserve(l.values().size() + r.values().size());
    values.insert(values.end(), l.values().begin(), l.values().end());
    values.insert(values.end(), r.values().begin(), r.values().end());
    Timestamp ts = tgran.Truncate(std::max(l.timestamp(), r.timestamp()));
    std::optional<stt::GeoPoint> loc =
        l.location().has_value() ? l.location() : r.location();
    Tuple joined =
        Tuple::MakeUnsafe(output_schema(), std::move(values), ts, loc);
    SL_ASSIGN_OR_RETURN(bool match, predicate_.EvalPredicate(joined));
    if (match && RecordPair()) out->Add(Tuple::Share(std::move(joined)));
    return Status::OK();
  }

  /// Fast pairing: the predicate runs over a zero-copy view of the
  /// prospective pair; only matches materialize.
  Status JoinPairFast(const Tuple& l, const Tuple& r,
                      const expr::BoundExpr& pred,
                      const stt::TemporalGranularity& tgran,
                      stt::RefBatch* out) {
    Timestamp ts = tgran.Truncate(std::max(l.timestamp(), r.timestamp()));
    expr::PairView pair{&l, &r, split_, ts, output_schema().get()};
    SL_ASSIGN_OR_RETURN(bool match, pred.EvalPredicatePair(pair));
    if (match) AddJoined(l, r, ts, out);
    return Status::OK();
  }

  /// Key-equal candidate: only the residual (non-equi) part of the
  /// predicate is left to check.
  Status EmitIfResidual(const Tuple& l, const Tuple& r,
                        const stt::TemporalGranularity& tgran,
                        stt::RefBatch* out) {
    Timestamp ts = tgran.Truncate(std::max(l.timestamp(), r.timestamp()));
    bool match = true;
    if (residual_.has_value()) {
      expr::PairView pair{&l, &r, split_, ts, output_schema().get()};
      SL_ASSIGN_OR_RETURN(match, residual_->EvalPredicatePair(pair));
    }
    if (match) AddJoined(l, r, ts, out);
    return Status::OK();
  }

  JoinSpec spec_;
  expr::BoundExpr predicate_;
  /// Residual of the equi-conjunct decomposition; nullopt = vacuously
  /// true (every conjunct became a hash key).
  std::optional<expr::BoundExpr> residual_;
  /// Equi-conjunct key columns, side-local (left tuple / right tuple).
  std::vector<size_t> left_cols_;
  std::vector<size_t> right_cols_;
  size_t split_;
  bool naive_;
  TupleCache left_;
  TupleCache right_;
  JoinHashIndex right_index_;
  /// Probe-side key infos, hashed in one pass per probe loop (reused
  /// scratch).
  std::vector<JoinKeyInfo> probe_keys_;
  EventWindow event_{spec_.interval, spec_.window};
  // Sequence watermarks of the previous flush (processing-time sliding).
  uint64_t left_seen_ = 0;
  uint64_t right_seen_ = 0;
  // Shard mode (key-partitioned wrapper).
  bool shard_mode_ = false;
  size_t shard_index_ = 0;
  uint64_t pending_gseq_ = 0;
  bool pending_broadcast_ = false;
  std::unordered_map<uint64_t, ArrivalRec> left_arr_;
  std::unordered_map<uint64_t, ArrivalRec> right_arr_;
  PairTag cur_{};
  bool cur_suppress_ = false;
  std::vector<PairTag> pair_tags_;
  std::optional<Timestamp> oldest_override_;
};

/// (+)_{ON/OFF,t}(s, {s1..sn}, cond) — pass-through stream, periodic
/// condition check over the cache, side-effecting activation.
class TriggerOperator : public Operator {
 public:
  TriggerOperator(std::string name, OpKind kind, stt::SchemaPtr schema,
                  TriggerSpec spec, expr::BoundExpr condition,
                  ActivationHandler* activation, size_t max_cache)
      : Operator(std::move(name), kind, std::move(schema), spec.interval),
        spec_(std::move(spec)),
        condition_(std::move(condition)),
        activation_(activation),
        cache_(max_cache) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    Emit(tuple);  // pass-through, regardless of window lateness
    if (event_time() && event_.IsLate(tuple->timestamp()) &&
        !ApplyLatePolicy(tuple)) {
      return Status::OK();
    }
    stats_.dropped += cache_.Add(tuple);
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (event_time()) return FlushEvent(now);
    if (spec_.window > 0) cache_.EvictOlderThan(now - spec_.window);
    bool fired = false;
    for (const auto& entry : cache_.entries()) {
      SL_ASSIGN_OR_RETURN(bool hit, condition_.EvalPredicate(*entry.tuple));
      if (hit) {
        fired = true;
        break;
      }
    }
    if (fired) {
      if (shard_mode_) {
        fired_.push_back(now);
      } else {
        FireActivation(now);
      }
    }
    if (spec_.window == 0) cache_.Clear();
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  // No output_watermark override: the output stream is the pass-through
  // stream, so the input frontier is the right promise for it.

  // -- shard-mode hooks (key-partitioned wrapper) --------------------------
  //
  // A shard only sees its partition's tuples, so its condition hit is a
  // partial verdict: it records the windows that fired instead of
  // activating, and the wrapper ORs the verdicts across shards and
  // fires each window exactly once.

  void EnableShardMode(size_t) { shard_mode_ = true; }
  Timestamp OldestCachedTs() const { return OldestTs(cache_); }
  void SetOldestOverride(Timestamp t) { oldest_override_ = t; }
  /// Windows whose condition held since the last flush: the flush tick
  /// (processing regime) or the fired ends (event regime).
  std::vector<Timestamp> TakeFired() { return std::move(fired_); }

  // Rescale support: state export + event-grid restore.
  const TupleCache& shard_cache() const { return cache_; }
  Timestamp shard_fired_end() const {
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }
  void RestoreFiredEnd(Timestamp end) {
    event_.Advance(end, stt::kNoWatermark);
  }

 private:
  /// Event-time regime: the condition is checked once per aligned window
  /// end the frontier has passed; `now` only dates the activation side
  /// effect.
  Status FlushEvent(Timestamp now) {
    Timestamp horizon = input_watermark();
    if (horizon == stt::kNoWatermark) return Status::OK();
    horizon -= watermark_options().allowed_lateness;
    Timestamp oldest = oldest_override_.value_or(OldestTs(cache_));
    for (Timestamp end : event_.Advance(horizon, oldest)) {
      auto view = WindowView(cache_, end - event_.effective_window(), end,
                             /*sorted=*/true);
      event_.MarkFired(end);
      bool fired = false;
      for (const auto* entry : view) {
        SL_ASSIGN_OR_RETURN(bool hit, condition_.EvalPredicate(*entry->tuple));
        if (hit) {
          fired = true;
          break;
        }
      }
      if (fired) {
        if (shard_mode_) {
          fired_.push_back(end);
        } else {
          FireActivation(now);
        }
      }
    }
    if (event_.initialized()) cache_.EvictOlderThan(event_.EvictionCutoff());
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  void FireActivation(Timestamp now) {
    ++stats_.trigger_fires;
    if (activation_ != nullptr) {
      if (kind() == OpKind::kTriggerOn) {
        activation_->ActivateSensors(spec_.target_sensors, now);
      } else {
        activation_->DeactivateSensors(spec_.target_sensors, now);
      }
    }
  }

  TriggerSpec spec_;
  expr::BoundExpr condition_;
  ActivationHandler* activation_;
  TupleCache cache_;
  EventWindow event_{spec_.interval, spec_.window};
  // Shard mode (key-partitioned wrapper).
  bool shard_mode_ = false;
  std::optional<Timestamp> oldest_override_;
  std::vector<Timestamp> fired_;
};

// ---------------------------------------------------------------------------
// Key-partitioned parallelism: N shard instances behind one Operator.
//
// The wrapper is the splitter and the merger in one object: Process
// routes each tuple to the shard owning its partition key, Flush runs
// every shard and re-emits their results in the exact order the single
// instance would have produced — so to the executor (placement, edges,
// flush timers, watermarks) a partitioned operator is indistinguishable
// from a plain one, and to the sink an N-shard deployment is
// bit-identical to N = 1.
// ---------------------------------------------------------------------------

/// FNV-1a over the display form of the partition columns — the same
/// identity GroupKey uses, so a group always lands on one shard.
uint64_t PartitionHash(const Tuple& t, const std::vector<size_t>& cols) {
  uint64_t h = 14695981039346656037ull;
  for (size_t idx : cols) {
    for (unsigned char c : t.value(idx).ToString()) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0x1f;
    h *= 1099511628211ull;
  }
  return h;
}

/// Shared plumbing of the three partitioned wrappers: owns the shards,
/// fans watermark observations out to them (identical frontiers are
/// what keeps their event grids in lockstep), sums their gauges, and
/// captures their flush emissions for the kind-specific merge.
template <typename Inner>
class PartitionedBase : public Operator {
 public:
  using ShardFactory = std::function<Result<std::unique_ptr<Inner>>(size_t)>;

  PartitionedBase(std::string name, OpKind kind, stt::SchemaPtr out_schema,
                  Duration interval,
                  std::vector<std::unique_ptr<Inner>> shards,
                  ShardFactory factory)
      : Operator(std::move(name), kind, std::move(out_schema), interval),
        factory_(std::move(factory)) {
    AdoptShards(std::move(shards));
  }

  size_t parallelism() const override { return shards_.size(); }

  const OperatorStats* instance_stats(size_t k) const override {
    return k < shards_.size() ? &shards_[k]->stats() : nullptr;
  }

  void ObserveWatermark(size_t port, Timestamp watermark) override {
    Operator::ObserveWatermark(port, watermark);
    for (auto& s : shards_) s->ObserveWatermark(port, watermark);
  }

  void ResetWindowCounters() override {
    Operator::ResetWindowCounters();
    for (auto& s : shards_) s->ResetWindowCounters();
  }

  void set_shard_executor(ShardExecutor executor) override {
    shard_executor_ = std::move(executor);
  }

  Timestamp output_watermark() const override {
    // Min over shards. Identical frontiers and the shared oldest anchor
    // keep every shard's promise equal, so this is the N = 1 value.
    Timestamp min = stt::kNoWatermark;
    for (const auto& s : shards_) {
      Timestamp w = s->output_watermark();
      if (w == stt::kNoWatermark) return stt::kNoWatermark;
      if (min == stt::kNoWatermark || w < min) min = w;
    }
    return min;
  }

 protected:
  /// One emission captured during a shard flush, with the window tag it
  /// belonged to (aggregation only; joins carry provenance separately).
  struct CapturedRow {
    size_t shard;
    Timestamp tag;
    TupleRef tuple;
  };

  /// Takes ownership of a shard set, rewiring emit hooks. Outside a
  /// flush (trigger pass-through) shard emissions flow straight out.
  /// Captured emissions go to a per-shard buffer: during a parallel
  /// flush each shard's thread writes only its own buffer, and the
  /// buffers concatenate in shard index order — exactly the order the
  /// sequential shard-by-shard flush appends to one shared vector.
  void AdoptShards(std::vector<std::unique_ptr<Inner>> shards) {
    shards_ = std::move(shards);
    shard_captured_.resize(shards_.size());
    for (size_t k = 0; k < shards_.size(); ++k) {
      Inner* shard = shards_[k].get();
      shard->EnableShardMode(k);
      shard->set_emit([this, shard, k](const TupleRef& t) {
        if (capturing_) {
          shard_captured_[k].push_back({k, ShardTagOf(*shard), t});
        } else {
          Emit(t);
        }
      });
      shard->set_late_emit([this](const TupleRef& t) { ForwardLate(t); });
    }
  }

  /// Tag of the emission being captured; kinds that do not tag rows
  /// leave it at 0.
  virtual Timestamp ShardTagOf(const Inner& shard) const {
    (void)shard;
    return 0;
  }

  /// Flushes every shard — concurrently when a ShardExecutor is
  /// installed, in index order otherwise — with emissions diverted into
  /// the per-shard capture buffers, then concatenated into `captured_`
  /// for the caller's merge. Keys (and so emissions) are disjoint
  /// across shards and the concatenation is in shard index order, so
  /// the merged vector is identical either way.
  Status FlushShards(Timestamp now) {
    DiscardCaptured();
    capturing_ = true;
    std::vector<Status> statuses(shards_.size(), Status::OK());
    auto flush_one = [&](size_t k) { statuses[k] = shards_[k]->Flush(now); };
    if (shard_executor_ && shards_.size() > 1) {
      shard_executor_(shards_.size(), flush_one);
    } else {
      for (size_t k = 0; k < shards_.size(); ++k) flush_one(k);
    }
    capturing_ = false;
    size_t total = 0;
    for (const auto& rows : shard_captured_) total += rows.size();
    captured_.reserve(total);
    for (auto& rows : shard_captured_) {
      captured_.insert(captured_.end(), std::make_move_iterator(rows.begin()),
                       std::make_move_iterator(rows.end()));
      rows.clear();
    }
    for (const Status& status : statuses) {
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  /// Drops everything captured so far (both the merged vector and the
  /// per-shard buffers a suppressed rescale replay may have filled).
  void DiscardCaptured() {
    captured_.clear();
    for (auto& rows : shard_captured_) rows.clear();
  }

  /// Sums the cache/lateness gauges over the shards; the in/out/flush
  /// counters stay wrapper-maintained (a broadcast counts once).
  void RefreshGauges() {
    stats_.dropped = 0;
    stats_.cache_size = 0;
    stats_.late_dropped = 0;
    stats_.late_routed = 0;
    for (const auto& s : shards_) {
      stats_.dropped += s->stats().dropped;
      stats_.cache_size += s->stats().cache_size;
      stats_.late_dropped += s->stats().late_dropped;
      stats_.late_routed += s->stats().late_routed;
    }
  }

  /// Aligns every shard's event grid on the globally oldest cached
  /// event time, so all grids anchor (and from then on fire) the exact
  /// window-end sequence the single instance would have.
  void SyncEventOldest() {
    if (!event_time()) return;
    Timestamp oldest = stt::kNoWatermark;
    for (const auto& s : shards_) {
      Timestamp t = s->OldestCachedTs();
      if (t == stt::kNoWatermark) continue;
      if (oldest == stt::kNoWatermark || t < oldest) oldest = t;
    }
    for (auto& s : shards_) s->SetOldestOverride(oldest);
  }

  /// Highest fired window end across shards (kNoWatermark before any
  /// grid initialized) — the anchor a rescaled shard set restores.
  Timestamp FiredEnd() const {
    Timestamp fired = stt::kNoWatermark;
    for (const auto& s : shards_) {
      Timestamp f = s->shard_fired_end();
      if (f == stt::kNoWatermark) continue;
      if (fired == stt::kNoWatermark || f > fired) fired = f;
    }
    return fired;
  }

  /// Builds a fresh shard set of size `n`, event grids restored to the
  /// current fired end.
  Result<std::vector<std::unique_ptr<Inner>>> MakeShardSet(size_t n) {
    Timestamp fired = FiredEnd();
    std::vector<std::unique_ptr<Inner>> next;
    next.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      SL_ASSIGN_OR_RETURN(std::unique_ptr<Inner> shard, factory_(k));
      if (fired != stt::kNoWatermark) shard->RestoreFiredEnd(fired);
      next.push_back(std::move(shard));
    }
    return next;
  }

  std::vector<std::unique_ptr<Inner>> shards_;
  ShardFactory factory_;
  bool capturing_ = false;
  std::vector<CapturedRow> captured_;
  std::vector<std::vector<CapturedRow>> shard_captured_;
  ShardExecutor shard_executor_;
};

/// Aggregation splitter/merger. Routing is by group key (or a declared
/// subset of it), so every group is wholly owned by one shard; the merge
/// re-sorts each fired window's rows into the ascending-key order the
/// single instance emits, and re-creates the sliding-regime "emit only
/// when the window changed" dedup from the combined shard signatures
/// (a global window changed iff some shard's slice changed — shards
/// partition the window).
class PartitionedAggregation : public PartitionedBase<AggregationOperator> {
 public:
  PartitionedAggregation(
      std::string name, stt::SchemaPtr out_schema, const AggregationSpec& spec,
      std::vector<size_t> part_cols,
      std::vector<std::unique_ptr<AggregationOperator>> shards,
      ShardFactory factory)
      : PartitionedBase(std::move(name), OpKind::kAggregation,
                        std::move(out_schema), spec.interval,
                        std::move(shards), std::move(factory)),
        sliding_(spec.window > 0),
        group_count_(spec.group_by.size()),
        part_cols_(std::move(part_cols)) {}

  int route_instance(size_t, const TupleRef& tuple) const override {
    return static_cast<int>(PartitionHash(*tuple, part_cols_) %
                            shards_.size());
  }

  Status Process(size_t port, const TupleRef& tuple) override {
    CountIn();
    AggregationOperator* shard = shards_[route_instance(port, tuple)].get();
    // Every admitted tuple gets a wrapper-level sequence number; window
    // signatures hash these instead of per-cache seqs, so they stay
    // comparable across shard sets (a rescale replay re-attaches them).
    shard->SetPendingGseq(next_gseq_++);
    Status status = shard->Process(port, tuple);
    RefreshGauges();
    return status;
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    SyncEventOldest();
    SL_RETURN_IF_ERROR(FlushShards(now));
    std::vector<std::vector<AggregationOperator::ShardSig>> sigs;
    sigs.reserve(shards_.size());
    for (auto& s : shards_) sigs.push_back(s->TakeShardSigs());
    if (sliding_) {
      // Windows fire in lockstep across shards, so shard 0's signature
      // list enumerates every fired window in ascending order — also
      // the ones that produced no rows anywhere, which the single
      // instance skips without touching its dedup state. The shards
      // partition the window's members, so XOR-ing their signatures
      // (and summing their counts) yields a value that identifies the
      // member set independently of the shard count.
      for (size_t i = 0; i < sigs[0].size(); ++i) {
        uint64_t sig = 0;
        uint64_t count = 0;
        for (size_t k = 0; k < shards_.size(); ++k) {
          if (i >= sigs[k].size()) continue;
          sig ^= sigs[k][i].sig;
          count += sigs[k][i].count;
        }
        if (count == 0) continue;  // empty window: dedup state untouched
        bool changed = !has_last_ || sig != last_sig_ || count != last_count_;
        last_sig_ = sig;
        last_count_ = count;
        has_last_ = true;
        if (changed) EmitWindow(sigs[0][i].tag);
      }
    } else {
      std::vector<Timestamp> tags;
      tags.reserve(captured_.size());
      for (const auto& row : captured_) tags.push_back(row.tag);
      std::sort(tags.begin(), tags.end());
      tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
      for (Timestamp tag : tags) EmitWindow(tag);
    }
    RefreshGauges();
    return Status::OK();
  }

  Status Rescale(size_t n) override {
    if (n == 0) {
      return Status::InvalidArgument("parallelism must be at least 1");
    }
    if (n == shards_.size()) return Status::OK();
    SL_ASSIGN_OR_RETURN(auto next, MakeShardSet(n));
    std::vector<std::unique_ptr<AggregationOperator>> old =
        std::move(shards_);
    AdoptShards(std::move(next));
    // Shard-major replay through the normal Process path: every group
    // lives wholly inside one old and one new shard, so each group's
    // fold order (and with it every floating-point result) survives.
    // Each replayed tuple re-attaches the wrapper-level sequence number
    // it carried in the old shard set, which keeps the XOR-combined
    // window signatures — and with them the sliding-window dedup state
    // (last_sig_/last_count_) — valid across the repartition: an
    // unchanged window after the rescale is still recognized as
    // unchanged and not re-emitted.
    capturing_ = true;  // replayed Process must not leak emissions
    Status status = Status::OK();
    for (const auto& s : old) {
      for (const auto& e : s->shard_cache().entries()) {
        AggregationOperator* shard =
            shards_[route_instance(0, e.tuple)].get();
        shard->SetPendingGseq(s->GseqOf(e.seq));
        status = shard->Process(0, e.tuple);
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
    }
    capturing_ = false;
    DiscardCaptured();
    RefreshGauges();
    return status;
  }

 protected:
  Timestamp ShardTagOf(const AggregationOperator& shard) const override {
    return shard.shard_tag();
  }

 private:
  /// Emits one fired window's rows in ascending group-key order (keys
  /// are disjoint across shards, so this is a pure merge).
  void EmitWindow(Timestamp tag) {
    std::vector<std::pair<std::string, const TupleRef*>> rows;
    for (const auto& row : captured_) {
      if (row.tag != tag) continue;
      std::string key;
      for (size_t i = 0; i < group_count_; ++i) {
        key += row.tuple->value(i).ToString();
        key += '\x1f';
      }
      rows.emplace_back(std::move(key), &row.tuple);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& [key, tuple] : rows) Emit(*tuple);
  }

  bool sliding_;
  size_t group_count_;
  std::vector<size_t> part_cols_;
  uint64_t next_gseq_ = 0;
  uint64_t last_sig_ = 0;
  uint64_t last_count_ = 0;
  bool has_last_ = false;
};

/// Join splitter/merger. Routing hashes the equality-key columns (or a
/// declared subset): matching pairs share those keys, so they meet on
/// one shard. NaN keys compare equal to everything and are broadcast;
/// null keys match nothing and are parked on shard 0. The merge re-sorts
/// the pairs by the provenance each shard records — wrapper arrival
/// order in the processing regime, member event order per fired end in
/// the event regime — which is exactly the single instance's
/// enumeration order.
class PartitionedJoin : public PartitionedBase<JoinOperator> {
 public:
  PartitionedJoin(std::string name, stt::SchemaPtr out_schema,
                  const JoinSpec& spec, std::vector<size_t> part_left,
                  std::vector<size_t> part_right,
                  std::vector<std::unique_ptr<JoinOperator>> shards,
                  ShardFactory factory)
      : PartitionedBase(std::move(name), OpKind::kJoin,
                        std::move(out_schema), spec.interval,
                        std::move(shards), std::move(factory)),
        part_left_(std::move(part_left)),
        part_right_(std::move(part_right)) {}

  int route_instance(size_t port, const TupleRef& tuple) const override {
    JoinKeyInfo key =
        MakeJoinKeyInfo(*tuple, port == 0 ? part_left_ : part_right_);
    if (key.has_nan) return -1;  // equals every key: broadcast
    if (key.has_null) return 0;  // equals nothing: park on shard 0
    return static_cast<int>(key.hash % shards_.size());
  }

  Status Process(size_t port, const TupleRef& tuple) override {
    CountIn();
    if (port > 1) {
      return Status::InvalidArgument(
          StrFormat("join has inputs 0 and 1, got port %zu", port));
    }
    uint64_t gseq = port == 0 ? next_left_gseq_++ : next_right_gseq_++;
    int target = route_instance(port, tuple);
    Status status = Status::OK();
    if (target < 0) {
      for (auto& s : shards_) {
        s->SetPendingArrival(gseq, /*broadcast=*/true);
        status = s->Process(port, tuple);
        if (!status.ok()) break;
      }
    } else {
      shards_[target]->SetPendingArrival(gseq, /*broadcast=*/false);
      status = shards_[target]->Process(port, tuple);
    }
    RefreshGauges();
    return status;
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    SyncEventOldest();
    SL_RETURN_IF_ERROR(FlushShards(now));
    // Pair rows with their provenance: shard emissions and tag records
    // are kept in lockstep, so tags[k][i] describes shard k's i-th
    // captured row.
    std::vector<std::vector<JoinOperator::PairTag>> tags(shards_.size());
    for (size_t k = 0; k < shards_.size(); ++k) {
      tags[k] = shards_[k]->TakePairTags();
    }
    struct Item {
      const JoinOperator::PairTag* tag;
      const TupleRef* row;
    };
    std::vector<Item> items;
    items.reserve(captured_.size());
    std::vector<size_t> cursor(shards_.size(), 0);
    for (const auto& row : captured_) {
      items.push_back({&tags[row.shard][cursor[row.shard]++], &row.tuple});
    }
    bool event = event_time();
    std::stable_sort(
        items.begin(), items.end(), [event](const Item& a, const Item& b) {
          if (a.tag->end != b.tag->end) return a.tag->end < b.tag->end;
          if (!event) {
            if (a.tag->lg != b.tag->lg) return a.tag->lg < b.tag->lg;
            return a.tag->rg < b.tag->rg;
          }
          if (EventOrderLess(*a.tag->l, *b.tag->l)) return true;
          if (EventOrderLess(*b.tag->l, *a.tag->l)) return false;
          if (EventOrderLess(*a.tag->r, *b.tag->r)) return true;
          return false;
        });
    for (const auto& item : items) Emit(*item.row);
    RefreshGauges();
    return Status::OK();
  }

  Status Rescale(size_t n) override {
    if (n == 0) {
      return Status::InvalidArgument("parallelism must be at least 1");
    }
    if (n == shards_.size()) return Status::OK();
    // Export both caches with provenance, de-duplicating broadcast
    // copies (same wrapper seq on every shard) and restoring wrapper
    // arrival order.
    std::vector<JoinOperator::ShardEntry> lefts;
    std::vector<JoinOperator::ShardEntry> rights;
    for (const auto& s : shards_) s->ExportShard(&lefts, &rights);
    auto tidy = [](std::vector<JoinOperator::ShardEntry>* v) {
      std::stable_sort(v->begin(), v->end(),
                       [](const auto& a, const auto& b) {
                         return a.gseq < b.gseq;
                       });
      v->erase(std::unique(v->begin(), v->end(),
                           [](const auto& a, const auto& b) {
                             return a.gseq == b.gseq;
                           }),
               v->end());
    };
    tidy(&lefts);
    tidy(&rights);
    SL_ASSIGN_OR_RETURN(auto next, MakeShardSet(n));
    AdoptShards(std::move(next));
    capturing_ = true;  // replayed Process must not leak emissions
    auto feed = [this](const JoinOperator::ShardEntry& e,
                       size_t port) -> Status {
      int target = route_instance(port, e.tuple);
      if (target < 0) {
        for (auto& s : shards_) {
          s->SetPendingArrival(e.gseq, /*broadcast=*/true);
          SL_RETURN_IF_ERROR(s->Process(port, e.tuple));
        }
        return Status::OK();
      }
      shards_[target]->SetPendingArrival(e.gseq, /*broadcast=*/false);
      return shards_[target]->Process(port, e.tuple);
    };
    // Already-paired tuples first, then fix the seen marks over exactly
    // them, then the rest — reproducing each shard's sliding-regime
    // "pair once" bookkeeping for the new partitioning.
    Status status = Status::OK();
    for (const auto& e : lefts) {
      if (e.seen && !(status = feed(e, 0)).ok()) break;
    }
    if (status.ok()) {
      for (const auto& e : rights) {
        if (e.seen && !(status = feed(e, 1)).ok()) break;
      }
    }
    for (auto& s : shards_) s->MarkAllSeen();
    if (status.ok()) {
      for (const auto& e : lefts) {
        if (!e.seen && !(status = feed(e, 0)).ok()) break;
      }
    }
    if (status.ok()) {
      for (const auto& e : rights) {
        if (!e.seen && !(status = feed(e, 1)).ok()) break;
      }
    }
    capturing_ = false;
    DiscardCaptured();
    RefreshGauges();
    return status;
  }

 private:
  std::vector<size_t> part_left_;
  std::vector<size_t> part_right_;
  uint64_t next_left_gseq_ = 0;
  uint64_t next_right_gseq_ = 0;
};

/// Trigger splitter/merger. The pass-through stream flows straight out
/// in arrival order; the condition verdicts are partial (each shard only
/// sees its keys), so the wrapper ORs the shards' fired windows and
/// performs each activation exactly once.
class PartitionedTrigger : public PartitionedBase<TriggerOperator> {
 public:
  PartitionedTrigger(std::string name, OpKind kind, stt::SchemaPtr out_schema,
                     const TriggerSpec& spec, ActivationHandler* activation,
                     std::vector<size_t> part_cols,
                     std::vector<std::unique_ptr<TriggerOperator>> shards,
                     ShardFactory factory)
      : PartitionedBase(std::move(name), kind, std::move(out_schema),
                        spec.interval, std::move(shards), std::move(factory)),
        activation_(activation),
        targets_(spec.target_sensors),
        part_cols_(std::move(part_cols)) {}

  int route_instance(size_t, const TupleRef& tuple) const override {
    return static_cast<int>(PartitionHash(*tuple, part_cols_) %
                            shards_.size());
  }

  Status Process(size_t port, const TupleRef& tuple) override {
    CountIn();
    // The shard's pass-through emission flows straight out (capture is
    // off outside flushes), preserving arrival order.
    Status status = shards_[route_instance(port, tuple)]->Process(port, tuple);
    RefreshGauges();
    return status;
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    SyncEventOldest();
    SL_RETURN_IF_ERROR(FlushShards(now));
    std::vector<Timestamp> fired;
    for (auto& s : shards_) {
      auto f = s->TakeFired();
      fired.insert(fired.end(), f.begin(), f.end());
    }
    // One activation per fired window, ascending, however many shards
    // saw a hit in it.
    std::sort(fired.begin(), fired.end());
    fired.erase(std::unique(fired.begin(), fired.end()), fired.end());
    for (size_t i = 0; i < fired.size(); ++i) FireActivation(now);
    RefreshGauges();
    return Status::OK();
  }

  Status Rescale(size_t n) override {
    if (n == 0) {
      return Status::InvalidArgument("parallelism must be at least 1");
    }
    if (n == shards_.size()) return Status::OK();
    SL_ASSIGN_OR_RETURN(auto next, MakeShardSet(n));
    std::vector<std::unique_ptr<TriggerOperator>> old = std::move(shards_);
    AdoptShards(std::move(next));
    // Capture (and discard) the replayed pass-through emissions: they
    // already went downstream when the tuples first arrived.
    capturing_ = true;
    Status status = Status::OK();
    for (const auto& s : old) {
      for (const auto& e : s->shard_cache().entries()) {
        status = shards_[route_instance(0, e.tuple)]->Process(0, e.tuple);
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
    }
    capturing_ = false;
    DiscardCaptured();
    for (auto& s : shards_) s->TakeFired();  // verdicts of replayed flushes
    RefreshGauges();
    return status;
  }

 private:
  void FireActivation(Timestamp now) {
    ++stats_.trigger_fires;
    if (activation_ != nullptr) {
      if (kind() == OpKind::kTriggerOn) {
        activation_->ActivateSensors(targets_, now);
      } else {
        activation_->DeactivateSensors(targets_, now);
      }
    }
  }

  ActivationHandler* activation_;
  std::vector<std::string> targets_;
  std::vector<size_t> part_cols_;
};

}  // namespace

Result<std::unique_ptr<Operator>> MakeOperator(
    const std::string& name, dataflow::OpKind op,
    const dataflow::OpSpec& spec,
    const std::vector<stt::SchemaPtr>& input_schemas,
    const std::vector<std::string>& input_names,
    const OperatorOptions& options) {
  // Re-derive the output schema; this re-checks everything the Validator
  // checks at the operator level.
  SL_ASSIGN_OR_RETURN(
      stt::SchemaPtr out_schema,
      dataflow::Validator::DeriveSchema(op, spec, input_schemas, input_names));
  const stt::SchemaPtr& in = input_schemas[0];

  // A zero-sized cache would make a blocking operator a silent no-op:
  // TupleCache::Add immediately evicts the tuple it just admitted.
  if (dataflow::IsBlocking(op) && options.max_cache_tuples == 0) {
    return Status::InvalidArgument(
        "blocking operator '" + name +
        "' needs max_cache_tuples > 0 (a zero cache evicts every tuple "
        "immediately, so the operator would never produce anything)");
  }

  std::unique_ptr<Operator> built;
  switch (op) {
    case OpKind::kFilter: {
      const auto& s = std::get<FilterSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      built.reset(new FilterOperator(name, out_schema, std::move(cond)));
      break;
    }
    case OpKind::kTransform: {
      const auto& s = std::get<TransformSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.expression, in));
      SL_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(s.attribute));
      ValueType out_type = out_schema->fields()[idx].type;
      built.reset(
          new TransformOperator(name, out_schema, idx, out_type, std::move(e)));
      break;
    }
    case OpKind::kVirtualProperty: {
      const auto& s = std::get<VirtualPropertySpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.specification, in));
      ValueType out_type = out_schema->fields().back().type;
      built.reset(new VirtualPropertyOperator(name, out_schema, out_type,
                                              std::move(e)));
      break;
    }
    case OpKind::kCullTime: {
      const auto& s = std::get<CullTimeSpec>(spec);
      built.reset(new CullTimeOperator(name, out_schema, s));
      break;
    }
    case OpKind::kCullSpace: {
      const auto& s = std::get<CullSpaceSpec>(spec);
      built.reset(new CullSpaceOperator(name, out_schema, s));
      break;
    }
    case OpKind::kAggregation: {
      const auto& s = std::get<AggregationSpec>(spec);
      if (s.parallelism <= 1) {
        built.reset(new AggregationOperator(name, out_schema, in, s,
                                            options.max_cache_tuples,
                                            options.naive_blocking));
        break;
      }
      // Partitioned deployment: route by group key (or the declared
      // subset of it — either way every group is owned by one shard).
      const auto& part_names =
          s.partition_by.empty() ? s.group_by : s.partition_by;
      if (part_names.empty()) {
        return Status::InvalidArgument(
            "parallel aggregation '" + name +
            "' needs a partition key: declare group_by or partition_by");
      }
      for (const auto& p : s.partition_by) {
        if (std::find(s.group_by.begin(), s.group_by.end(), p) ==
            s.group_by.end()) {
          return Status::InvalidArgument(
              "partition_by attribute '" + p + "' of '" + name +
              "' is not among the group-by keys");
        }
      }
      std::vector<size_t> part_cols;
      for (const auto& p : part_names) {
        SL_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(p));
        part_cols.push_back(idx);
      }
      auto make_shard = [name, out_schema, in, s, options](size_t k)
          -> Result<std::unique_ptr<AggregationOperator>> {
        auto shard = std::make_unique<AggregationOperator>(
            name + "#" + std::to_string(k), out_schema, in, s,
            options.max_cache_tuples, options.naive_blocking);
        shard->set_watermark_options(options.watermark);
        return shard;
      };
      std::vector<std::unique_ptr<AggregationOperator>> shards;
      for (size_t k = 0; k < s.parallelism; ++k) {
        SL_ASSIGN_OR_RETURN(auto shard, make_shard(k));
        shards.push_back(std::move(shard));
      }
      built.reset(new PartitionedAggregation(name, out_schema, s,
                                             std::move(part_cols),
                                             std::move(shards), make_shard));
      break;
    }
    case OpKind::kJoin: {
      const auto& s = std::get<JoinSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr pred,
                          expr::BoundExpr::Parse(s.predicate, out_schema));
      // Split the predicate into hash keys + residual. The analysis runs
      // on the parsed tree (pred keeps it), resolved against the joined
      // schema with the left input's columns first.
      size_t split = input_schemas[0]->fields().size();
      dataflow::JoinPredicateAnalysis analysis =
          dataflow::AnalyzeJoinPredicate(pred.expr(), *out_schema, split);
      std::optional<expr::BoundExpr> residual;
      if (analysis.has_equi() && analysis.residual != nullptr) {
        SL_ASSIGN_OR_RETURN(
            expr::BoundExpr bound_residual,
            expr::BoundExpr::Bind(analysis.residual, out_schema));
        residual = std::move(bound_residual);
      }
      std::vector<size_t> left_cols;
      std::vector<size_t> right_cols;
      for (const dataflow::EquiConjunct& c : analysis.equi) {
        left_cols.push_back(c.left_index);
        right_cols.push_back(c.right_index - split);
      }
      if (s.parallelism <= 1) {
        built.reset(new JoinOperator(
            name, out_schema, s, std::move(pred), std::move(residual),
            std::move(left_cols), std::move(right_cols), split,
            options.naive_blocking, options.max_cache_tuples));
        break;
      }
      // Partitioned deployment: route by equality-key columns (or the
      // declared subset), side-local on each input — matching pairs
      // share those keys, so they meet on one shard.
      if (!analysis.has_equi()) {
        return Status::InvalidArgument(
            "parallel join '" + name +
            "' needs at least one equality conjunct to partition on");
      }
      std::vector<size_t> part_left;
      std::vector<size_t> part_right;
      if (s.partition_by.empty()) {
        part_left = left_cols;
        part_right = right_cols;
      } else {
        for (const auto& p : s.partition_by) {
          SL_ASSIGN_OR_RETURN(size_t idx, out_schema->FieldIndex(p));
          bool matched = false;
          for (const dataflow::EquiConjunct& c : analysis.equi) {
            if (c.left_index == idx || c.right_index == idx) {
              part_left.push_back(c.left_index);
              part_right.push_back(c.right_index - split);
              matched = true;
              break;
            }
          }
          if (!matched) {
            return Status::InvalidArgument(
                "partition_by attribute '" + p + "' of join '" + name +
                "' is not an equality-join key");
          }
        }
      }
      auto make_shard = [name, out_schema, s, split, options](size_t k)
          -> Result<std::unique_ptr<JoinOperator>> {
        SL_ASSIGN_OR_RETURN(expr::BoundExpr shard_pred,
                            expr::BoundExpr::Parse(s.predicate, out_schema));
        dataflow::JoinPredicateAnalysis shard_analysis =
            dataflow::AnalyzeJoinPredicate(shard_pred.expr(), *out_schema,
                                           split);
        std::optional<expr::BoundExpr> shard_residual;
        if (shard_analysis.has_equi() && shard_analysis.residual != nullptr) {
          SL_ASSIGN_OR_RETURN(
              expr::BoundExpr bound,
              expr::BoundExpr::Bind(shard_analysis.residual, out_schema));
          shard_residual = std::move(bound);
        }
        std::vector<size_t> shard_left;
        std::vector<size_t> shard_right;
        for (const dataflow::EquiConjunct& c : shard_analysis.equi) {
          shard_left.push_back(c.left_index);
          shard_right.push_back(c.right_index - split);
        }
        auto shard = std::make_unique<JoinOperator>(
            name + "#" + std::to_string(k), out_schema, s,
            std::move(shard_pred), std::move(shard_residual),
            std::move(shard_left), std::move(shard_right), split,
            options.naive_blocking, options.max_cache_tuples);
        shard->set_watermark_options(options.watermark);
        return shard;
      };
      std::vector<std::unique_ptr<JoinOperator>> shards;
      for (size_t k = 0; k < s.parallelism; ++k) {
        SL_ASSIGN_OR_RETURN(auto shard, make_shard(k));
        shards.push_back(std::move(shard));
      }
      built.reset(new PartitionedJoin(name, out_schema, s,
                                      std::move(part_left),
                                      std::move(part_right),
                                      std::move(shards), make_shard));
      break;
    }
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff: {
      const auto& s = std::get<TriggerSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      if (options.activation == nullptr) {
        return Status::InvalidArgument(
            "trigger operator '" + name +
            "' needs an ActivationHandler (OperatorOptions::activation)");
      }
      if (s.parallelism <= 1) {
        built.reset(new TriggerOperator(name, op, out_schema, s,
                                        std::move(cond), options.activation,
                                        options.max_cache_tuples));
        break;
      }
      // Partitioned deployment: triggers have no implicit grouping key,
      // so the partition key must be declared.
      if (s.partition_by.empty()) {
        return Status::InvalidArgument(
            "parallel trigger '" + name +
            "' requires an explicit partition_by");
      }
      std::vector<size_t> part_cols;
      for (const auto& p : s.partition_by) {
        SL_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(p));
        part_cols.push_back(idx);
      }
      auto make_shard = [name, op, out_schema, in, s, options](size_t k)
          -> Result<std::unique_ptr<TriggerOperator>> {
        SL_ASSIGN_OR_RETURN(expr::BoundExpr shard_cond,
                            expr::BoundExpr::Parse(s.condition, in));
        auto shard = std::make_unique<TriggerOperator>(
            name + "#" + std::to_string(k), op, out_schema, s,
            std::move(shard_cond), options.activation,
            options.max_cache_tuples);
        shard->set_watermark_options(options.watermark);
        return shard;
      };
      std::vector<std::unique_ptr<TriggerOperator>> shards;
      for (size_t k = 0; k < s.parallelism; ++k) {
        SL_ASSIGN_OR_RETURN(auto shard, make_shard(k));
        shards.push_back(std::move(shard));
      }
      built.reset(new PartitionedTrigger(name, op, out_schema, s,
                                         options.activation,
                                         std::move(part_cols),
                                         std::move(shards), make_shard));
      break;
    }
  }
  if (built == nullptr) {
    return Status::Internal("unreachable op kind in MakeOperator");
  }
  built->set_watermark_options(options.watermark);
  return built;
}

}  // namespace sl::ops
