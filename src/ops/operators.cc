// Implementations of the nine Table 1 operators and their factory.

#include <algorithm>
#include <deque>
#include <map>

#include "dataflow/validate.h"
#include "expr/eval.h"
#include "ops/operator.h"
#include "util/strings.h"

namespace sl::ops {

namespace {

using dataflow::AggFunc;
using dataflow::AggregationSpec;
using dataflow::CullSpaceSpec;
using dataflow::CullTimeSpec;
using dataflow::FilterSpec;
using dataflow::JoinSpec;
using dataflow::OpKind;
using dataflow::TransformSpec;
using dataflow::TriggerSpec;
using dataflow::VirtualPropertySpec;
using stt::Tuple;
using stt::TupleRef;
using stt::Value;
using stt::ValueType;

// ---------------------------------------------------------------------------
// Non-blocking operations: applied directly on each tuple (Table 1).
// ---------------------------------------------------------------------------

/// sigma(s, cond)
class FilterOperator : public Operator {
 public:
  FilterOperator(std::string name, stt::SchemaPtr schema,
                 expr::BoundExpr condition)
      : Operator(std::move(name), OpKind::kFilter, std::move(schema), 0),
        condition_(std::move(condition)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(bool pass, condition_.EvalPredicate(*tuple));
    if (pass) Emit(tuple);
    return Status::OK();
  }

 private:
  expr::BoundExpr condition_;
};

/// diamond_trans(s): rewrite one attribute in place.
class TransformOperator : public Operator {
 public:
  TransformOperator(std::string name, stt::SchemaPtr out_schema,
                    size_t field_index, ValueType out_type,
                    expr::BoundExpr expression)
      : Operator(std::move(name), OpKind::kTransform, std::move(out_schema), 0),
        field_index_(field_index),
        out_type_(out_type),
        expression_(std::move(expression)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(Value v, expression_.Eval(*tuple));
    if (!v.is_null() && v.type() != out_type_) {
      SL_ASSIGN_OR_RETURN(v, v.CoerceTo(out_type_));
    }
    Emit(tuple->WithValueAt(output_schema(), field_index_, std::move(v)));
    return Status::OK();
  }

 private:
  size_t field_index_;
  ValueType out_type_;
  expr::BoundExpr expression_;
};

/// s union <p, spec>: append a computed attribute.
class VirtualPropertyOperator : public Operator {
 public:
  VirtualPropertyOperator(std::string name, stt::SchemaPtr out_schema,
                          ValueType out_type, expr::BoundExpr specification)
      : Operator(std::move(name), OpKind::kVirtualProperty,
                 std::move(out_schema), 0),
        out_type_(out_type),
        specification_(std::move(specification)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(Value v, specification_.Eval(*tuple));
    if (!v.is_null() && v.type() != out_type_) {
      SL_ASSIGN_OR_RETURN(v, v.CoerceTo(out_type_));
    }
    Emit(tuple->WithAppended(output_schema(), std::move(v)));
    return Status::OK();
  }

 private:
  ValueType out_type_;
  expr::BoundExpr specification_;
};

/// Systematic (deterministic) decimator: keeps a (1 - rate) fraction of
/// the tuples routed through it, evenly spread, preserving order.
class Decimator {
 public:
  explicit Decimator(double rate) : keep_fraction_(1.0 - rate) {}

  bool Keep() {
    ++seen_;
    uint64_t target =
        static_cast<uint64_t>(keep_fraction_ * static_cast<double>(seen_));
    if (kept_ < target) {
      ++kept_;
      return true;
    }
    return false;
  }

 private:
  double keep_fraction_;
  uint64_t seen_ = 0;
  uint64_t kept_ = 0;
};

/// gamma_r(s, <t1, t2>): decimate tuples whose event time falls in the
/// interval; pass the rest unchanged.
class CullTimeOperator : public Operator {
 public:
  CullTimeOperator(std::string name, stt::SchemaPtr schema, CullTimeSpec spec)
      : Operator(std::move(name), OpKind::kCullTime, std::move(schema), 0),
        spec_(spec),
        decimator_(spec.rate) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    bool inside = tuple->timestamp() >= spec_.t_begin &&
                  tuple->timestamp() <= spec_.t_end;
    if (!inside || decimator_.Keep()) Emit(tuple);
    return Status::OK();
  }

 private:
  CullTimeSpec spec_;
  Decimator decimator_;
};

/// gamma_r(s, <coord1, coord2>): decimate tuples located in the area;
/// tuples without a location pass unchanged.
class CullSpaceOperator : public Operator {
 public:
  CullSpaceOperator(std::string name, stt::SchemaPtr schema,
                    CullSpaceSpec spec)
      : Operator(std::move(name), OpKind::kCullSpace, std::move(schema), 0),
        box_(stt::NormalizeBBox(spec.corner1, spec.corner2)),
        decimator_(spec.rate) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    bool inside =
        tuple->location().has_value() && box_.Contains(*tuple->location());
    if (!inside || decimator_.Keep()) Emit(tuple);
    return Status::OK();
  }

 private:
  stt::BBox box_;
  Decimator decimator_;
};

// ---------------------------------------------------------------------------
// Blocking operations: maintain a cache of tuples processed every t
// time intervals (Table 1).
// ---------------------------------------------------------------------------

/// Bounded FIFO tuple cache shared by the blocking operators. Caches hold
/// shared refs — caching a tuple retains the allocation the producer
/// minted instead of deep-copying it. Every cached tuple carries an
/// arrival sequence number so sliding operators can distinguish tuples
/// that arrived since the previous check.
class TupleCache {
 public:
  explicit TupleCache(size_t max_tuples) : max_tuples_(max_tuples) {}

  struct Entry {
    TupleRef tuple;
    uint64_t seq;
  };

  /// Adds a tuple; returns the number of evicted (oldest) tuples.
  size_t Add(TupleRef tuple) {
    entries_.push_back({std::move(tuple), next_seq_++});
    size_t evicted = 0;
    while (entries_.size() > max_tuples_) {
      entries_.pop_front();
      ++evicted;
    }
    return evicted;
  }

  /// Drops tuples whose event time is strictly before `cutoff`
  /// (sliding-window expiry). Event times are assumed roughly ordered;
  /// out-of-order stragglers are still swept because the scan covers the
  /// whole deque.
  void EvictOlderThan(Timestamp cutoff) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->tuple->timestamp() < cutoff) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const std::deque<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  /// Sequence number the next arrival will get.
  uint64_t next_seq() const { return next_seq_; }

 private:
  size_t max_tuples_;
  std::deque<Entry> entries_;
  uint64_t next_seq_ = 0;
};

/// @_{t,{a1..an}}^{op}(s)
class AggregationOperator : public Operator {
 public:
  AggregationOperator(std::string name, stt::SchemaPtr out_schema,
                      stt::SchemaPtr in_schema, AggregationSpec spec,
                      size_t max_cache)
      : Operator(std::move(name), OpKind::kAggregation, std::move(out_schema),
                 spec.interval),
        in_schema_(std::move(in_schema)),
        spec_(std::move(spec)),
        cache_(max_cache) {
    for (const auto& g : spec_.group_by) {
      group_indexes_.push_back(*in_schema_->FieldIndex(g));
    }
    for (const auto& a : spec_.attributes) {
      attr_indexes_.push_back(*in_schema_->FieldIndex(a));
    }
  }

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    stats_.dropped += cache_.Add(tuple);
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    // Sliding regime: expire tuples older than the window before the
    // aggregation, and retain the rest afterwards.
    if (spec_.window > 0) cache_.EvictOlderThan(now - spec_.window);
    if (cache_.size() == 0) {
      stats_.cache_size = 0;
      return Status::OK();
    }

    // Group cached tuples by the group-by key.
    std::map<std::string, std::vector<const Tuple*>> groups;
    for (const auto& entry : cache_.entries()) {
      const Tuple& t = *entry.tuple;
      std::string key;
      for (size_t idx : group_indexes_) {
        key += t.value(idx).ToString();
        key += '\x1f';
      }
      groups[key].push_back(&t);
    }

    Timestamp out_ts =
        output_schema()->temporal_granularity().Truncate(now - 1);
    stt::RefBatch out(output_schema());
    for (const auto& [key, tuples] : groups) {
      std::vector<Value> values;
      // Group keys (taken from the first member).
      for (size_t idx : group_indexes_) {
        values.push_back(tuples.front()->value(idx));
      }
      if (spec_.func == AggFunc::kCount && attr_indexes_.empty()) {
        values.push_back(Value::Int(static_cast<int64_t>(tuples.size())));
      }
      for (size_t idx : attr_indexes_) {
        values.push_back(Aggregate(tuples, idx));
      }
      // Location: centroid of the group's located tuples.
      std::optional<stt::GeoPoint> loc = Centroid(tuples);
      out.Add(Tuple::Share(
          Tuple::MakeUnsafe(output_schema(), std::move(values), out_ts, loc)));
    }
    EmitAll(out);
    if (spec_.window == 0) cache_.Clear();  // tumbling
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

 private:
  Value Aggregate(const std::vector<const Tuple*>& tuples, size_t idx) const {
    int64_t count = 0;
    double sum = 0;
    const Value* min_v = nullptr;
    const Value* max_v = nullptr;
    for (const Tuple* t : tuples) {
      const Value& v = t->value(idx);
      if (v.is_null()) continue;
      ++count;
      if (v.is_numeric()) sum += *v.ToNumeric();
      if (min_v == nullptr || Value::Compare(v, *min_v) < 0) min_v = &v;
      if (max_v == nullptr || Value::Compare(v, *max_v) > 0) max_v = &v;
    }
    switch (spec_.func) {
      case AggFunc::kCount: return Value::Int(count);
      case AggFunc::kSum: return count > 0 ? Value::Double(sum) : Value::Null();
      case AggFunc::kAvg:
        return count > 0 ? Value::Double(sum / static_cast<double>(count))
                         : Value::Null();
      case AggFunc::kMin: return min_v != nullptr ? *min_v : Value::Null();
      case AggFunc::kMax: return max_v != nullptr ? *max_v : Value::Null();
    }
    return Value::Null();
  }

  static std::optional<stt::GeoPoint> Centroid(
      const std::vector<const Tuple*>& tuples) {
    double lat = 0, lon = 0;
    size_t n = 0;
    for (const Tuple* t : tuples) {
      if (t->location().has_value()) {
        lat += t->location()->lat;
        lon += t->location()->lon;
        ++n;
      }
    }
    if (n == 0) return std::nullopt;
    return stt::GeoPoint{lat / static_cast<double>(n),
                         lon / static_cast<double>(n)};
  }

  stt::SchemaPtr in_schema_;
  AggregationSpec spec_;
  std::vector<size_t> group_indexes_;
  std::vector<size_t> attr_indexes_;
  TupleCache cache_;
};

/// s1 |><|_{pred}^{t} s2
class JoinOperator : public Operator {
 public:
  JoinOperator(std::string name, stt::SchemaPtr out_schema, JoinSpec spec,
               expr::BoundExpr predicate, size_t max_cache)
      : Operator(std::move(name), OpKind::kJoin, std::move(out_schema),
                 spec.interval),
        spec_(std::move(spec)),
        predicate_(std::move(predicate)),
        left_(max_cache),
        right_(max_cache) {}

  Status Process(size_t port, const TupleRef& tuple) override {
    CountIn();
    if (port > 1) {
      return Status::InvalidArgument(
          StrFormat("join has inputs 0 and 1, got port %zu", port));
    }
    stats_.dropped += (port == 0 ? left_ : right_).Add(tuple);
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (spec_.window > 0) {
      left_.EvictOlderThan(now - spec_.window);
      right_.EvictOlderThan(now - spec_.window);
    }
    const auto& tgran = output_schema()->temporal_granularity();
    stt::RefBatch out(output_schema());
    for (const auto& le : left_.entries()) {
      for (const auto& re : right_.entries()) {
        // Sliding regime: emit each surviving pair exactly once — on the
        // first check where both elements are cached together.
        if (spec_.window > 0 && le.seq < left_seen_ && re.seq < right_seen_) {
          continue;
        }
        const Tuple& l = *le.tuple;
        const Tuple& r = *re.tuple;
        std::vector<Value> values;
        values.reserve(l.values().size() + r.values().size());
        values.insert(values.end(), l.values().begin(), l.values().end());
        values.insert(values.end(), r.values().begin(), r.values().end());
        Timestamp ts = tgran.Truncate(std::max(l.timestamp(), r.timestamp()));
        std::optional<stt::GeoPoint> loc =
            l.location().has_value() ? l.location() : r.location();
        Tuple joined =
            Tuple::MakeUnsafe(output_schema(), std::move(values), ts, loc);
        SL_ASSIGN_OR_RETURN(bool match, predicate_.EvalPredicate(joined));
        if (match) out.Add(Tuple::Share(std::move(joined)));
      }
    }
    EmitAll(out);
    if (spec_.window == 0) {
      left_.Clear();
      right_.Clear();
    } else {
      left_seen_ = left_.next_seq();
      right_seen_ = right_.next_seq();
    }
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

 private:
  JoinSpec spec_;
  expr::BoundExpr predicate_;
  TupleCache left_;
  TupleCache right_;
  // Sequence watermarks of the previous flush (sliding mode).
  uint64_t left_seen_ = 0;
  uint64_t right_seen_ = 0;
};

/// (+)_{ON/OFF,t}(s, {s1..sn}, cond) — pass-through stream, periodic
/// condition check over the cache, side-effecting activation.
class TriggerOperator : public Operator {
 public:
  TriggerOperator(std::string name, OpKind kind, stt::SchemaPtr schema,
                  TriggerSpec spec, expr::BoundExpr condition,
                  ActivationHandler* activation, size_t max_cache)
      : Operator(std::move(name), kind, std::move(schema), spec.interval),
        spec_(std::move(spec)),
        condition_(std::move(condition)),
        activation_(activation),
        cache_(max_cache) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    stats_.dropped += cache_.Add(tuple);
    stats_.cache_size = cache_.size();
    Emit(tuple);  // pass-through
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (spec_.window > 0) cache_.EvictOlderThan(now - spec_.window);
    bool fired = false;
    for (const auto& entry : cache_.entries()) {
      SL_ASSIGN_OR_RETURN(bool hit, condition_.EvalPredicate(*entry.tuple));
      if (hit) {
        fired = true;
        break;
      }
    }
    if (fired) {
      ++stats_.trigger_fires;
      if (activation_ != nullptr) {
        if (kind() == OpKind::kTriggerOn) {
          activation_->ActivateSensors(spec_.target_sensors, now);
        } else {
          activation_->DeactivateSensors(spec_.target_sensors, now);
        }
      }
    }
    if (spec_.window == 0) cache_.Clear();
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

 private:
  TriggerSpec spec_;
  expr::BoundExpr condition_;
  ActivationHandler* activation_;
  TupleCache cache_;
};

}  // namespace

Result<std::unique_ptr<Operator>> MakeOperator(
    const std::string& name, dataflow::OpKind op,
    const dataflow::OpSpec& spec,
    const std::vector<stt::SchemaPtr>& input_schemas,
    const std::vector<std::string>& input_names,
    const OperatorOptions& options) {
  // Re-derive the output schema; this re-checks everything the Validator
  // checks at the operator level.
  SL_ASSIGN_OR_RETURN(
      stt::SchemaPtr out_schema,
      dataflow::Validator::DeriveSchema(op, spec, input_schemas, input_names));
  const stt::SchemaPtr& in = input_schemas[0];

  switch (op) {
    case OpKind::kFilter: {
      const auto& s = std::get<FilterSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      return std::unique_ptr<Operator>(
          new FilterOperator(name, out_schema, std::move(cond)));
    }
    case OpKind::kTransform: {
      const auto& s = std::get<TransformSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.expression, in));
      SL_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(s.attribute));
      ValueType out_type = out_schema->fields()[idx].type;
      return std::unique_ptr<Operator>(new TransformOperator(
          name, out_schema, idx, out_type, std::move(e)));
    }
    case OpKind::kVirtualProperty: {
      const auto& s = std::get<VirtualPropertySpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.specification, in));
      ValueType out_type = out_schema->fields().back().type;
      return std::unique_ptr<Operator>(new VirtualPropertyOperator(
          name, out_schema, out_type, std::move(e)));
    }
    case OpKind::kCullTime: {
      const auto& s = std::get<CullTimeSpec>(spec);
      return std::unique_ptr<Operator>(
          new CullTimeOperator(name, out_schema, s));
    }
    case OpKind::kCullSpace: {
      const auto& s = std::get<CullSpaceSpec>(spec);
      return std::unique_ptr<Operator>(
          new CullSpaceOperator(name, out_schema, s));
    }
    case OpKind::kAggregation: {
      const auto& s = std::get<AggregationSpec>(spec);
      return std::unique_ptr<Operator>(new AggregationOperator(
          name, out_schema, in, s, options.max_cache_tuples));
    }
    case OpKind::kJoin: {
      const auto& s = std::get<JoinSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr pred,
                          expr::BoundExpr::Parse(s.predicate, out_schema));
      return std::unique_ptr<Operator>(new JoinOperator(
          name, out_schema, s, std::move(pred), options.max_cache_tuples));
    }
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff: {
      const auto& s = std::get<TriggerSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      if (options.activation == nullptr) {
        return Status::InvalidArgument(
            "trigger operator '" + name +
            "' needs an ActivationHandler (OperatorOptions::activation)");
      }
      return std::unique_ptr<Operator>(
          new TriggerOperator(name, op, out_schema, s, std::move(cond),
                              options.activation, options.max_cache_tuples));
    }
  }
  return Status::Internal("unreachable op kind in MakeOperator");
}

}  // namespace sl::ops
