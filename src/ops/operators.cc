// Implementations of the nine Table 1 operators and their factory.
//
// Time convention: every window is half-open, [begin, end) — a tuple
// with timestamp() == end belongs to the *next* window (DESIGN.md §8).

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>

#include "dataflow/validate.h"
#include "expr/eval.h"
#include "ops/operator.h"
#include "util/strings.h"

namespace sl::ops {

namespace {

using dataflow::AggFunc;
using dataflow::AggregationSpec;
using dataflow::CullSpaceSpec;
using dataflow::CullTimeSpec;
using dataflow::FilterSpec;
using dataflow::JoinSpec;
using dataflow::OpKind;
using dataflow::TransformSpec;
using dataflow::TriggerSpec;
using dataflow::VirtualPropertySpec;
using stt::Tuple;
using stt::TupleRef;
using stt::Value;
using stt::ValueType;

// ---------------------------------------------------------------------------
// Non-blocking operations: applied directly on each tuple (Table 1).
// ---------------------------------------------------------------------------

/// sigma(s, cond)
class FilterOperator : public Operator {
 public:
  FilterOperator(std::string name, stt::SchemaPtr schema,
                 expr::BoundExpr condition)
      : Operator(std::move(name), OpKind::kFilter, std::move(schema), 0),
        condition_(std::move(condition)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(bool pass, condition_.EvalPredicate(*tuple));
    if (pass) Emit(tuple);
    return Status::OK();
  }

 private:
  expr::BoundExpr condition_;
};

/// diamond_trans(s): rewrite one attribute in place.
class TransformOperator : public Operator {
 public:
  TransformOperator(std::string name, stt::SchemaPtr out_schema,
                    size_t field_index, ValueType out_type,
                    expr::BoundExpr expression)
      : Operator(std::move(name), OpKind::kTransform, std::move(out_schema), 0),
        field_index_(field_index),
        out_type_(out_type),
        expression_(std::move(expression)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(Value v, expression_.Eval(*tuple));
    if (!v.is_null() && v.type() != out_type_) {
      SL_ASSIGN_OR_RETURN(v, v.CoerceTo(out_type_));
    }
    Emit(tuple->WithValueAt(output_schema(), field_index_, std::move(v)));
    return Status::OK();
  }

 private:
  size_t field_index_;
  ValueType out_type_;
  expr::BoundExpr expression_;
};

/// s union <p, spec>: append a computed attribute.
class VirtualPropertyOperator : public Operator {
 public:
  VirtualPropertyOperator(std::string name, stt::SchemaPtr out_schema,
                          ValueType out_type, expr::BoundExpr specification)
      : Operator(std::move(name), OpKind::kVirtualProperty,
                 std::move(out_schema), 0),
        out_type_(out_type),
        specification_(std::move(specification)) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    SL_ASSIGN_OR_RETURN(Value v, specification_.Eval(*tuple));
    if (!v.is_null() && v.type() != out_type_) {
      SL_ASSIGN_OR_RETURN(v, v.CoerceTo(out_type_));
    }
    Emit(tuple->WithAppended(output_schema(), std::move(v)));
    return Status::OK();
  }

 private:
  ValueType out_type_;
  expr::BoundExpr specification_;
};

/// Systematic (deterministic) decimator: keeps a (1 - rate) fraction of
/// the tuples routed through it, evenly spread, preserving order.
class Decimator {
 public:
  explicit Decimator(double rate) : keep_fraction_(1.0 - rate) {}

  bool Keep() {
    ++seen_;
    uint64_t target =
        static_cast<uint64_t>(keep_fraction_ * static_cast<double>(seen_));
    if (kept_ < target) {
      ++kept_;
      return true;
    }
    return false;
  }

 private:
  double keep_fraction_;
  uint64_t seen_ = 0;
  uint64_t kept_ = 0;
};

/// gamma_r(s, <t1, t2>): decimate tuples whose event time falls in the
/// interval; pass the rest unchanged.
class CullTimeOperator : public Operator {
 public:
  CullTimeOperator(std::string name, stt::SchemaPtr schema, CullTimeSpec spec)
      : Operator(std::move(name), OpKind::kCullTime, std::move(schema), 0),
        spec_(spec),
        decimator_(spec.rate) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    // Half-open [t_begin, t_end), matching the eviction cutoff of the
    // blocking caches — a closed upper bound would make back-to-back
    // cull intervals decimate their shared boundary granule twice.
    bool inside = tuple->timestamp() >= spec_.t_begin &&
                  tuple->timestamp() < spec_.t_end;
    if (!inside || decimator_.Keep()) Emit(tuple);
    return Status::OK();
  }

 private:
  CullTimeSpec spec_;
  Decimator decimator_;
};

/// gamma_r(s, <coord1, coord2>): decimate tuples located in the area;
/// tuples without a location pass unchanged.
class CullSpaceOperator : public Operator {
 public:
  CullSpaceOperator(std::string name, stt::SchemaPtr schema,
                    CullSpaceSpec spec)
      : Operator(std::move(name), OpKind::kCullSpace, std::move(schema), 0),
        box_(stt::NormalizeBBox(spec.corner1, spec.corner2)),
        decimator_(spec.rate) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    bool inside =
        tuple->location().has_value() && box_.Contains(*tuple->location());
    if (!inside || decimator_.Keep()) Emit(tuple);
    return Status::OK();
  }

 private:
  stt::BBox box_;
  Decimator decimator_;
};

// ---------------------------------------------------------------------------
// Blocking operations: maintain a cache of tuples processed every t
// time intervals (Table 1).
// ---------------------------------------------------------------------------

/// Bounded FIFO tuple cache shared by the blocking operators. Caches hold
/// shared refs — caching a tuple retains the allocation the producer
/// minted instead of deep-copying it. Every cached tuple carries an
/// arrival sequence number so sliding operators can distinguish tuples
/// that arrived since the previous check.
class TupleCache {
 public:
  explicit TupleCache(size_t max_tuples) : max_tuples_(max_tuples) {}

  struct Entry {
    TupleRef tuple;
    uint64_t seq;
  };

  /// Adds a tuple; returns the number of evicted (oldest) tuples.
  size_t Add(TupleRef tuple) {
    entries_.push_back({std::move(tuple), next_seq_++});
    size_t evicted = 0;
    while (entries_.size() > max_tuples_) {
      entries_.pop_front();
      ++evicted;
    }
    return evicted;
  }

  /// Drops tuples whose event time is strictly before `cutoff`
  /// (sliding-window expiry). Event times are assumed roughly ordered;
  /// out-of-order stragglers are still swept because the scan covers the
  /// whole deque.
  void EvictOlderThan(Timestamp cutoff) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->tuple->timestamp() < cutoff) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const std::deque<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  /// Sequence number the next arrival will get.
  uint64_t next_seq() const { return next_seq_; }

 private:
  size_t max_tuples_;
  std::deque<Entry> entries_;
  uint64_t next_seq_ = 0;
};

/// Entries whose event time falls in [begin, end). When `sorted`, the
/// view is ordered by (timestamp, sensor, content) instead of arrival
/// order, so event-time window results cannot depend on delivery order
/// (group iteration, float accumulation, pair enumeration all become
/// order-stable).
std::vector<const TupleCache::Entry*> WindowView(const TupleCache& cache,
                                                 Timestamp begin,
                                                 Timestamp end, bool sorted) {
  std::vector<const TupleCache::Entry*> view;
  for (const auto& entry : cache.entries()) {
    Timestamp ts = entry.tuple->timestamp();
    if (ts >= begin && ts < end) view.push_back(&entry);
  }
  if (sorted) {
    std::sort(view.begin(), view.end(),
              [](const TupleCache::Entry* a, const TupleCache::Entry* b) {
                if (a->tuple->timestamp() != b->tuple->timestamp()) {
                  return a->tuple->timestamp() < b->tuple->timestamp();
                }
                if (a->tuple->sensor_id() != b->tuple->sensor_id()) {
                  return a->tuple->sensor_id() < b->tuple->sensor_id();
                }
                return a->tuple->ToString() < b->tuple->ToString();
              });
  }
  return view;
}

/// Earliest cached event time; stt::kNoWatermark when empty.
Timestamp OldestTs(const TupleCache& cache) {
  Timestamp low = stt::kNoWatermark;
  for (const auto& entry : cache.entries()) {
    Timestamp ts = entry.tuple->timestamp();
    if (low == stt::kNoWatermark || ts < low) low = ts;
  }
  return low;
}

/// \brief Order-insensitive identity of a window view: FNV-1a over the
/// sorted arrival sequence numbers. Sequence numbers are unique per
/// cache, so (up to hash collision) equal signatures ⇔ equal tuple
/// sets — the sliding-aggregation dedup guard. A rerun under a
/// different delivery order assigns different seqs, but *set equality
/// between consecutive windows* is delivery-order independent, so the
/// skip/emit decision is too.
uint64_t SeqSignature(const std::vector<const TupleCache::Entry*>& view) {
  std::vector<uint64_t> seqs;
  seqs.reserve(view.size());
  for (const auto* e : view) seqs.push_back(e->seq);
  std::sort(seqs.begin(), seqs.end());
  uint64_t h = 1469598103934665603ull;
  for (uint64_t s : seqs) {
    for (int i = 0; i < 8; ++i) {
      h ^= (s >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// \brief Event-time firing state shared by the blocking operators.
///
/// Windows end on the aligned grid (multiples of the blocking interval
/// `t`); an end fires once the lateness-adjusted input frontier passes
/// it, oldest first. The tumbling regime (window == 0) is the special
/// case of a sliding window exactly one interval wide, so one mechanism
/// serves both.
class EventWindow {
 public:
  EventWindow(Duration interval, Duration window)
      : interval_(interval), window_(window > 0 ? window : interval) {}

  /// Window width: the spec's sliding window, or one interval (tumbling).
  Duration effective_window() const { return window_; }

  bool initialized() const { return initialized_; }

  /// The latest fired window end — this operator's output promise.
  Timestamp fired_end() const { return fired_end_; }

  /// True when every window containing `ts` has already fired — the
  /// tuple can no longer contribute to any future window.
  bool IsLate(Timestamp ts) const {
    if (!initialized_) return false;
    return stt::AlignDown(ts + window_, interval_) <= fired_end_;
  }

  /// \brief Window ends newly covered by `horizon` (the input frontier
  /// minus the allowed lateness), oldest first. The first call anchors
  /// the grid at AlignDown(horizon), lowered to cover `oldest_cached`
  /// when tuples older than the horizon are waiting — ends before any
  /// data are empty and emit nothing, so the anchor choice is invisible
  /// in the output.
  std::vector<Timestamp> Advance(Timestamp horizon, Timestamp oldest_cached) {
    std::vector<Timestamp> ends;
    if (horizon == stt::kNoWatermark) return ends;
    if (!initialized_) {
      Timestamp anchor = stt::AlignDown(horizon, interval_);
      if (oldest_cached != stt::kNoWatermark) {
        anchor = std::min(anchor, stt::AlignDown(oldest_cached, interval_));
      }
      fired_end_ = anchor;
      initialized_ = true;
    }
    for (Timestamp e = fired_end_ + interval_; e <= horizon; e += interval_) {
      ends.push_back(e);
    }
    return ends;
  }

  /// Records that the window ending at `end` fired.
  void MarkFired(Timestamp end) { fired_end_ = end; }

  /// Expiry cutoff after firing: the earliest unfired window is
  /// [fired_end + interval - window, ...), so anything older can never
  /// be observed again.
  Timestamp EvictionCutoff() const { return fired_end_ + interval_ - window_; }

 private:
  Duration interval_;
  Duration window_;
  bool initialized_ = false;
  Timestamp fired_end_ = 0;
};

/// @_{t,{a1..an}}^{op}(s)
class AggregationOperator : public Operator {
 public:
  AggregationOperator(std::string name, stt::SchemaPtr out_schema,
                      stt::SchemaPtr in_schema, AggregationSpec spec,
                      size_t max_cache)
      : Operator(std::move(name), OpKind::kAggregation, std::move(out_schema),
                 spec.interval),
        in_schema_(std::move(in_schema)),
        spec_(std::move(spec)),
        cache_(max_cache) {
    for (const auto& g : spec_.group_by) {
      group_indexes_.push_back(*in_schema_->FieldIndex(g));
    }
    for (const auto& a : spec_.attributes) {
      attr_indexes_.push_back(*in_schema_->FieldIndex(a));
    }
  }

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    if (event_time() && event_.IsLate(tuple->timestamp()) &&
        !ApplyLatePolicy(tuple)) {
      return Status::OK();
    }
    stats_.dropped += cache_.Add(tuple);
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (event_time()) return FlushEvent();
    // Processing-time regime (legacy): the window ends at the flush
    // tick. Expire tuples older than the sliding window, aggregate the
    // half-open view [-inf, now), retain survivors.
    if (spec_.window > 0) cache_.EvictOlderThan(now - spec_.window);
    auto view = WindowView(cache_, std::numeric_limits<Timestamp>::min(), now,
                           /*sorted=*/false);
    if (!view.empty() && ChangedSinceLastEmit(view)) EmitGroups(view, now);
    if (spec_.window == 0) cache_.Clear();  // tumbling
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  Timestamp output_watermark() const override {
    if (!event_time()) return input_watermark();
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }

 private:
  /// Event-time regime: fire every aligned window end the
  /// lateness-adjusted input frontier has passed, oldest first.
  Status FlushEvent() {
    Timestamp horizon = input_watermark();
    if (horizon == stt::kNoWatermark) return Status::OK();
    horizon -= watermark_options().allowed_lateness;
    for (Timestamp end : event_.Advance(horizon, OldestTs(cache_))) {
      auto view = WindowView(cache_, end - event_.effective_window(), end,
                             /*sorted=*/true);
      event_.MarkFired(end);
      if (!view.empty() && ChangedSinceLastEmit(view)) EmitGroups(view, end);
    }
    if (event_.initialized()) cache_.EvictOlderThan(event_.EvictionCutoff());
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  /// Sliding-regime dedup guard: emit only when the window's tuple set
  /// changed since the last emission — re-emitting an unchanged window
  /// every interval double-counts rows in the warehouse sink. Tumbling
  /// windows always contain fresh data, so they always pass.
  bool ChangedSinceLastEmit(const std::vector<const TupleCache::Entry*>& view) {
    if (spec_.window == 0) return true;
    uint64_t sig = SeqSignature(view);
    if (last_signature_.has_value() && *last_signature_ == sig) return false;
    last_signature_ = sig;
    return true;
  }

  /// Groups the view by the group-by key and emits one aggregate per
  /// group, stamped with the last granule of the window ending at `end`.
  void EmitGroups(const std::vector<const TupleCache::Entry*>& view,
                  Timestamp end) {
    std::map<std::string, std::vector<const Tuple*>> groups;
    for (const auto* entry : view) {
      const Tuple& t = *entry->tuple;
      std::string key;
      for (size_t idx : group_indexes_) {
        key += t.value(idx).ToString();
        key += '\x1f';
      }
      groups[key].push_back(&t);
    }

    Timestamp out_ts =
        output_schema()->temporal_granularity().Truncate(end - 1);
    stt::RefBatch out(output_schema());
    for (const auto& [key, tuples] : groups) {
      std::vector<Value> values;
      // Group keys (taken from the first member).
      for (size_t idx : group_indexes_) {
        values.push_back(tuples.front()->value(idx));
      }
      if (spec_.func == AggFunc::kCount && attr_indexes_.empty()) {
        values.push_back(Value::Int(static_cast<int64_t>(tuples.size())));
      }
      for (size_t idx : attr_indexes_) {
        values.push_back(Aggregate(tuples, idx));
      }
      // Location: centroid of the group's located tuples.
      std::optional<stt::GeoPoint> loc = Centroid(tuples);
      out.Add(Tuple::Share(
          Tuple::MakeUnsafe(output_schema(), std::move(values), out_ts, loc)));
    }
    EmitAll(out);
  }

  Value Aggregate(const std::vector<const Tuple*>& tuples, size_t idx) const {
    int64_t count = 0;
    double sum = 0;
    const Value* min_v = nullptr;
    const Value* max_v = nullptr;
    for (const Tuple* t : tuples) {
      const Value& v = t->value(idx);
      if (v.is_null()) continue;
      ++count;
      if (v.is_numeric()) sum += *v.ToNumeric();
      if (min_v == nullptr || Value::Compare(v, *min_v) < 0) min_v = &v;
      if (max_v == nullptr || Value::Compare(v, *max_v) > 0) max_v = &v;
    }
    switch (spec_.func) {
      case AggFunc::kCount: return Value::Int(count);
      case AggFunc::kSum: return count > 0 ? Value::Double(sum) : Value::Null();
      case AggFunc::kAvg:
        return count > 0 ? Value::Double(sum / static_cast<double>(count))
                         : Value::Null();
      case AggFunc::kMin: return min_v != nullptr ? *min_v : Value::Null();
      case AggFunc::kMax: return max_v != nullptr ? *max_v : Value::Null();
    }
    return Value::Null();
  }

  static std::optional<stt::GeoPoint> Centroid(
      const std::vector<const Tuple*>& tuples) {
    double lat = 0, lon = 0;
    size_t n = 0;
    for (const Tuple* t : tuples) {
      if (t->location().has_value()) {
        lat += t->location()->lat;
        lon += t->location()->lon;
        ++n;
      }
    }
    if (n == 0) return std::nullopt;
    return stt::GeoPoint{lat / static_cast<double>(n),
                         lon / static_cast<double>(n)};
  }

  stt::SchemaPtr in_schema_;
  AggregationSpec spec_;
  std::vector<size_t> group_indexes_;
  std::vector<size_t> attr_indexes_;
  TupleCache cache_;
  EventWindow event_{spec_.interval, spec_.window};
  std::optional<uint64_t> last_signature_;
};

/// s1 |><|_{pred}^{t} s2
class JoinOperator : public Operator {
 public:
  JoinOperator(std::string name, stt::SchemaPtr out_schema, JoinSpec spec,
               expr::BoundExpr predicate, size_t max_cache)
      : Operator(std::move(name), OpKind::kJoin, std::move(out_schema),
                 spec.interval),
        spec_(std::move(spec)),
        predicate_(std::move(predicate)),
        left_(max_cache),
        right_(max_cache) {}

  Status Process(size_t port, const TupleRef& tuple) override {
    CountIn();
    if (port > 1) {
      return Status::InvalidArgument(
          StrFormat("join has inputs 0 and 1, got port %zu", port));
    }
    if (event_time() && event_.IsLate(tuple->timestamp()) &&
        !ApplyLatePolicy(tuple)) {
      return Status::OK();
    }
    stats_.dropped += (port == 0 ? left_ : right_).Add(tuple);
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (event_time()) return FlushEvent();
    if (spec_.window > 0) {
      left_.EvictOlderThan(now - spec_.window);
      right_.EvictOlderThan(now - spec_.window);
    }
    const auto& tgran = output_schema()->temporal_granularity();
    stt::RefBatch out(output_schema());
    for (const auto& le : left_.entries()) {
      for (const auto& re : right_.entries()) {
        // Sliding regime: emit each surviving pair exactly once — on the
        // first check where both elements are cached together.
        if (spec_.window > 0 && le.seq < left_seen_ && re.seq < right_seen_) {
          continue;
        }
        SL_RETURN_IF_ERROR(JoinPair(*le.tuple, *re.tuple, tgran, &out));
      }
    }
    EmitAll(out);
    if (spec_.window == 0) {
      left_.Clear();
      right_.Clear();
    } else {
      left_seen_ = left_.next_seq();
      right_seen_ = right_.next_seq();
    }
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  Timestamp output_watermark() const override {
    if (!event_time()) return input_watermark();
    return event_.initialized() ? event_.fired_end() : stt::kNoWatermark;
  }

 private:
  /// Event-time regime. Each surviving pair fires at exactly one window
  /// end — the one whose closing granule contains the pair's event time
  /// max(l.ts, r.ts) — so no sequence bookkeeping is needed and the
  /// result is delivery-order independent.
  Status FlushEvent() {
    Timestamp horizon = input_watermark();
    if (horizon == stt::kNoWatermark) return Status::OK();
    horizon -= watermark_options().allowed_lateness;
    Timestamp oldest_left = OldestTs(left_);
    Timestamp oldest_right = OldestTs(right_);
    Timestamp oldest = oldest_left == stt::kNoWatermark ? oldest_right
                       : oldest_right == stt::kNoWatermark
                           ? oldest_left
                           : std::min(oldest_left, oldest_right);
    const auto& tgran = output_schema()->temporal_granularity();
    for (Timestamp end : event_.Advance(horizon, oldest)) {
      Timestamp begin = end - event_.effective_window();
      auto lview = WindowView(left_, begin, end, /*sorted=*/true);
      auto rview = WindowView(right_, begin, end, /*sorted=*/true);
      event_.MarkFired(end);
      if (lview.empty() || rview.empty()) continue;
      stt::RefBatch out(output_schema());
      for (const auto* le : lview) {
        for (const auto* re : rview) {
          // Both members are < end, so the pair time is < end; skipping
          // pairs older than the closing granule leaves each pair with a
          // unique firing end.
          Timestamp pair_ts =
              std::max(le->tuple->timestamp(), re->tuple->timestamp());
          if (pair_ts < end - interval()) continue;
          SL_RETURN_IF_ERROR(JoinPair(*le->tuple, *re->tuple, tgran, &out));
        }
      }
      EmitAll(out);
    }
    if (event_.initialized()) {
      left_.EvictOlderThan(event_.EvictionCutoff());
      right_.EvictOlderThan(event_.EvictionCutoff());
    }
    stats_.cache_size = left_.size() + right_.size();
    return Status::OK();
  }

  /// Concatenates one (left, right) pair, evaluates the predicate on the
  /// joined tuple, and adds it to `out` on a match.
  Status JoinPair(const Tuple& l, const Tuple& r,
                  const stt::TemporalGranularity& tgran, stt::RefBatch* out) {
    std::vector<Value> values;
    values.reserve(l.values().size() + r.values().size());
    values.insert(values.end(), l.values().begin(), l.values().end());
    values.insert(values.end(), r.values().begin(), r.values().end());
    Timestamp ts = tgran.Truncate(std::max(l.timestamp(), r.timestamp()));
    std::optional<stt::GeoPoint> loc =
        l.location().has_value() ? l.location() : r.location();
    Tuple joined =
        Tuple::MakeUnsafe(output_schema(), std::move(values), ts, loc);
    SL_ASSIGN_OR_RETURN(bool match, predicate_.EvalPredicate(joined));
    if (match) out->Add(Tuple::Share(std::move(joined)));
    return Status::OK();
  }

  JoinSpec spec_;
  expr::BoundExpr predicate_;
  TupleCache left_;
  TupleCache right_;
  EventWindow event_{spec_.interval, spec_.window};
  // Sequence watermarks of the previous flush (processing-time sliding).
  uint64_t left_seen_ = 0;
  uint64_t right_seen_ = 0;
};

/// (+)_{ON/OFF,t}(s, {s1..sn}, cond) — pass-through stream, periodic
/// condition check over the cache, side-effecting activation.
class TriggerOperator : public Operator {
 public:
  TriggerOperator(std::string name, OpKind kind, stt::SchemaPtr schema,
                  TriggerSpec spec, expr::BoundExpr condition,
                  ActivationHandler* activation, size_t max_cache)
      : Operator(std::move(name), kind, std::move(schema), spec.interval),
        spec_(std::move(spec)),
        condition_(std::move(condition)),
        activation_(activation),
        cache_(max_cache) {}

  Status Process(size_t, const TupleRef& tuple) override {
    CountIn();
    Emit(tuple);  // pass-through, regardless of window lateness
    if (event_time() && event_.IsLate(tuple->timestamp()) &&
        !ApplyLatePolicy(tuple)) {
      return Status::OK();
    }
    stats_.dropped += cache_.Add(tuple);
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  Status Flush(Timestamp now) override {
    ++stats_.flushes;
    if (event_time()) return FlushEvent(now);
    if (spec_.window > 0) cache_.EvictOlderThan(now - spec_.window);
    bool fired = false;
    for (const auto& entry : cache_.entries()) {
      SL_ASSIGN_OR_RETURN(bool hit, condition_.EvalPredicate(*entry.tuple));
      if (hit) {
        fired = true;
        break;
      }
    }
    if (fired) FireActivation(now);
    if (spec_.window == 0) cache_.Clear();
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  // No output_watermark override: the output stream is the pass-through
  // stream, so the input frontier is the right promise for it.

 private:
  /// Event-time regime: the condition is checked once per aligned window
  /// end the frontier has passed; `now` only dates the activation side
  /// effect.
  Status FlushEvent(Timestamp now) {
    Timestamp horizon = input_watermark();
    if (horizon == stt::kNoWatermark) return Status::OK();
    horizon -= watermark_options().allowed_lateness;
    for (Timestamp end : event_.Advance(horizon, OldestTs(cache_))) {
      auto view = WindowView(cache_, end - event_.effective_window(), end,
                             /*sorted=*/true);
      event_.MarkFired(end);
      bool fired = false;
      for (const auto* entry : view) {
        SL_ASSIGN_OR_RETURN(bool hit, condition_.EvalPredicate(*entry->tuple));
        if (hit) {
          fired = true;
          break;
        }
      }
      if (fired) FireActivation(now);
    }
    if (event_.initialized()) cache_.EvictOlderThan(event_.EvictionCutoff());
    stats_.cache_size = cache_.size();
    return Status::OK();
  }

  void FireActivation(Timestamp now) {
    ++stats_.trigger_fires;
    if (activation_ != nullptr) {
      if (kind() == OpKind::kTriggerOn) {
        activation_->ActivateSensors(spec_.target_sensors, now);
      } else {
        activation_->DeactivateSensors(spec_.target_sensors, now);
      }
    }
  }

  TriggerSpec spec_;
  expr::BoundExpr condition_;
  ActivationHandler* activation_;
  TupleCache cache_;
  EventWindow event_{spec_.interval, spec_.window};
};

}  // namespace

Result<std::unique_ptr<Operator>> MakeOperator(
    const std::string& name, dataflow::OpKind op,
    const dataflow::OpSpec& spec,
    const std::vector<stt::SchemaPtr>& input_schemas,
    const std::vector<std::string>& input_names,
    const OperatorOptions& options) {
  // Re-derive the output schema; this re-checks everything the Validator
  // checks at the operator level.
  SL_ASSIGN_OR_RETURN(
      stt::SchemaPtr out_schema,
      dataflow::Validator::DeriveSchema(op, spec, input_schemas, input_names));
  const stt::SchemaPtr& in = input_schemas[0];

  // A zero-sized cache would make a blocking operator a silent no-op:
  // TupleCache::Add immediately evicts the tuple it just admitted.
  if (dataflow::IsBlocking(op) && options.max_cache_tuples == 0) {
    return Status::InvalidArgument(
        "blocking operator '" + name +
        "' needs max_cache_tuples > 0 (a zero cache evicts every tuple "
        "immediately, so the operator would never produce anything)");
  }

  std::unique_ptr<Operator> built;
  switch (op) {
    case OpKind::kFilter: {
      const auto& s = std::get<FilterSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      built.reset(new FilterOperator(name, out_schema, std::move(cond)));
      break;
    }
    case OpKind::kTransform: {
      const auto& s = std::get<TransformSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.expression, in));
      SL_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(s.attribute));
      ValueType out_type = out_schema->fields()[idx].type;
      built.reset(
          new TransformOperator(name, out_schema, idx, out_type, std::move(e)));
      break;
    }
    case OpKind::kVirtualProperty: {
      const auto& s = std::get<VirtualPropertySpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.specification, in));
      ValueType out_type = out_schema->fields().back().type;
      built.reset(new VirtualPropertyOperator(name, out_schema, out_type,
                                              std::move(e)));
      break;
    }
    case OpKind::kCullTime: {
      const auto& s = std::get<CullTimeSpec>(spec);
      built.reset(new CullTimeOperator(name, out_schema, s));
      break;
    }
    case OpKind::kCullSpace: {
      const auto& s = std::get<CullSpaceSpec>(spec);
      built.reset(new CullSpaceOperator(name, out_schema, s));
      break;
    }
    case OpKind::kAggregation: {
      const auto& s = std::get<AggregationSpec>(spec);
      built.reset(new AggregationOperator(name, out_schema, in, s,
                                          options.max_cache_tuples));
      break;
    }
    case OpKind::kJoin: {
      const auto& s = std::get<JoinSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr pred,
                          expr::BoundExpr::Parse(s.predicate, out_schema));
      built.reset(new JoinOperator(name, out_schema, s, std::move(pred),
                                   options.max_cache_tuples));
      break;
    }
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff: {
      const auto& s = std::get<TriggerSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      if (options.activation == nullptr) {
        return Status::InvalidArgument(
            "trigger operator '" + name +
            "' needs an ActivationHandler (OperatorOptions::activation)");
      }
      built.reset(new TriggerOperator(name, op, out_schema, s, std::move(cond),
                                      options.activation,
                                      options.max_cache_tuples));
      break;
    }
  }
  if (built == nullptr) {
    return Status::Internal("unreachable op kind in MakeOperator");
  }
  built->set_watermark_options(options.watermark);
  return built;
}

}  // namespace sl::ops
