// StreamLoader: the wall-clock multithreaded runtime — the second
// execution mode next to the deterministic discrete-event simulator.
//
// The simulator (exec/executor.h) runs everything on one virtual-clock
// event loop and is the semantic reference. The ThreadedRuntime executes
// the *same* validated dataflow with the *same* operator objects on real
// worker threads: one worker per operator/sink stage, one bounded SPSC
// ring per dataflow edge (exec/spsc_queue.h), credit-based backpressure
// from sinks back to the sources (a full ring = zero credits blocks the
// producer), and watermarks piggybacked on every queued tuple exactly as
// the simulator piggybacks them on network transfers.
//
// Equivalence contract. Thread timing is nondeterministic, so the
// runtime aligns the blocking operators' flush schedule with
// punctuation messages instead of raw timers: punct(B) enters every
// source channel for each flush boundary
// B = deploy_time + interval + flush_stagger_ms * depth + k * interval,
// *before* any tuple whose ingestion time equals B (mirroring the event
// loop's tie-break, where a periodic flush re-armed earlier always runs
// before a same-instant delivery). A stage fires Flush(B) when the
// punctuation minimum over its input ports passes B, then forwards the
// punctuation downstream after the flush emissions. Window membership
// in the blocking operators is decided by tuple timestamps against the
// flush-tick time (half-open, ts < B), so as long as no simulated
// network delay carries a tuple across a flush boundary (delays are
// a few ms; boundaries are staggered 50 ms apart), the threaded run
// produces the identical multiset of sink rows — enforced by the
// SimVsThreadedOracleTest battery (tests/threaded_test.cpp).
//
// Two ingestion modes share that contract:
//  - Trace replay (RunTrace/Feed): the driver thread replays a
//    simulator-captured trace (ExecutorOptions::source_tap) in global
//    virtual order and mints the punctuation inline.
//  - Live ingestion (StartLive/WaitLive/RunLive): one feed thread per
//    source plays that source's events on the wall clock and mints the
//    full punctuation schedule itself — the wall-clock analogue of
//    flush timers. No driver-side global ordering exists, and none is
//    needed: blocking operators only act at punctuation barriers, and
//    each channel still delivers its source's tuples in virtual order
//    with punct(B) ahead of any tuple stamped >= B.
//
// Execution modes, orthogonal to ingestion: dedicated worker threads
// (one per stage, the default), a bounded per-node worker pool
// (ThreadedOptions::pool_size) multiplexing every stage over N pooled
// workers with cooperative quantum scheduling, per-instance shard
// threads (shard_threads) flushing a partitioned operator's shards
// concurrently, and batch-aware channel transfer (batch_max) coalescing
// consecutive emissions into one ring message.

#ifndef STREAMLOADER_EXEC_THREADED_RUNTIME_H_
#define STREAMLOADER_EXEC_THREADED_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "dataflow/graph.h"
#include "exec/spsc_queue.h"
#include "monitor/monitor.h"
#include "ops/debugger.h"
#include "ops/operator.h"
#include "pubsub/broker.h"
#include "sinks/factory.h"
#include "stt/tuple.h"
#include "stt/watermark.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sl::exec {

/// \brief Which runtime executes a deployment. The discrete-event
/// simulator stays the default and the correctness oracle; kThreaded
/// selects the wall-clock worker-pool runtime (this header), reached
/// through StreamLoader::RunThreaded or a ThreadedRuntime directly.
enum class ExecutionMode {
  kSimulated,  ///< deterministic single-threaded simulation (default)
  kThreaded,   ///< worker threads + SPSC queues + real clocks
};

/// \brief Configuration of a ThreadedRuntime.
struct ThreadedOptions {
  /// Per-edge SPSC ring capacity (rounded up to a power of two). This
  /// is the edge's credit pool: a full ring blocks the producer until
  /// the consumer pops, which is how sink pressure reaches the sources.
  size_t queue_capacity = 1024;
  /// Blocking-operation cache bound (as ExecutorOptions).
  size_t max_cache_tuples = 1 << 20;
  /// Reference implementations of the blocking operators (as
  /// ExecutorOptions::naive_blocking).
  bool naive_blocking = false;
  /// Event-time configuration handed to every operator.
  ops::WatermarkOptions watermark;
  /// Flush-schedule stagger, replicated from the simulator: a blocking
  /// operator at topological depth d first flushes at
  /// deploy_time + interval + flush_stagger_ms * d.
  Duration flush_stagger_ms = 50;
  /// Virtual time of the reference deployment (anchors the flush
  /// boundaries; use the simulated run's deploy timestamp).
  Timestamp deploy_time = 0;
  /// Busy-wait this many wall-clock nanoseconds per sink write — a
  /// deliberately slow consumer for backpressure stress tests.
  int64_t sink_delay_ns = 0;
  /// Count sink deliveries without writing them (benchmarks that
  /// measure transport, not sink retention).
  bool count_only_sinks = false;
  /// Per-node worker-pool size. 0 (default) keeps one dedicated thread
  /// per stage; N > 0 multiplexes every stage of the node over N pooled
  /// workers: a stage with runnable input is queued, a worker claims it,
  /// runs one bounded quantum and either requeues it (more input) or
  /// parks it idle. Blocked producers help-run their consumer instead
  /// of parking, so a pool of any size stays deadlock-free.
  size_t pool_size = 0;
  /// Per-instance shard threads. > 1 installs a TaskPool-backed
  /// ShardExecutor of this many threads on every partitioned operator,
  /// so an N-way operator's shards flush concurrently instead of
  /// sequentially on the stage thread. 0/1 = shared stage thread.
  size_t shard_threads = 0;
  /// Batch-aware channel transfer: up to this many consecutive
  /// emissions (or consecutive same-source trace events between flush
  /// boundaries) coalesce into one ring message. 1 (default) = off.
  size_t batch_max = 1;
  /// Columnar execution of batched rings: a kBatch message arriving at
  /// a batch-capable stage (ops::Operator::batchable) is handed to
  /// ProcessBatch as one columnar run instead of one Process call per
  /// item. Semantically identical to the per-tuple loop (same rows,
  /// same error logging, same counters); on by default because it only
  /// engages when batch_max > 1 already coalesces runs.
  bool columnar_batch = true;
  /// Live-mode pacing: virtual milliseconds that elapse per wall-clock
  /// millisecond (e.g. 1000.0 replays one virtual second per wall
  /// millisecond). 0 = unpaced: feed threads run flat out. Ordering,
  /// not pacing, carries correctness — pacing only shapes wall-clock
  /// latency and throughput measurements.
  double time_scale = 0;
  /// StreamLoader::RunThreaded only: run even though the session's
  /// network has a non-zero fault plan installed. The threaded runtime
  /// does not simulate network faults, so results then diverge from a
  /// faulty simulation; without this flag RunThreaded fails fast.
  bool allow_fault_plan = false;
};

/// \brief One tuple entering a source, with its virtual ingestion time
/// and the source watermark at that instant (what
/// ExecutorOptions::source_tap records from a simulated run).
struct TraceEvent {
  Timestamp at = 0;
  std::string source;
  stt::TupleRef tuple;
  Timestamp watermark = stt::kNoWatermark;
};
using InputTrace = std::vector<TraceEvent>;

/// \brief End-to-end latency percentiles over every tuple that reached
/// a sink (wall-clock nanoseconds from Feed to sink delivery).
struct LatencySummary {
  uint64_t count = 0;
  int64_t p50_ns = 0;
  int64_t p95_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;
};

/// \brief Everything a threaded run produces.
struct ThreadedRunResult {
  /// Sorted Tuple::ToString rows per collect sink.
  std::map<std::string, std::vector<std::string>> sink_rows;
  /// Sorted rows diverted by LatePolicy::kSideOutput.
  std::vector<std::string> late_rows;
  uint64_t tuples_fed = 0;
  uint64_t tuples_delivered = 0;  ///< tuples arriving at sinks
  uint64_t process_errors = 0;
  uint64_t backpressure_waits = 0;  ///< producer stalls on full rings
  std::map<std::string, ops::OperatorStats> op_stats;
  std::vector<ops::ActivationRecord> activations;  ///< trigger requests
  double wall_seconds = 0;
  double tuples_per_sec = 0;  ///< delivered / wall_seconds
  LatencySummary latency;
  /// One final monitor sample per stage; queue_depth carries the
  /// deepest input ring observed, backpressure_waits the stalls charged
  /// to this stage's full inputs.
  std::vector<monitor::OperatorSample> stage_samples;
};

/// \brief Executes one validated dataflow on worker threads.
///
/// Lifecycle: construct → Start() → Feed()* → Finish(end_time), or
/// Abort() at any point for a hard stop (shutdown-while-draining). The
/// driver thread (the caller of Feed/Finish) plays the sources; it
/// blocks when a source edge is out of credits, which is the intended
/// backpressure behavior.
class ThreadedRuntime {
 public:
  ThreadedRuntime(dataflow::Dataflow dataflow, const pubsub::Broker* broker,
                  sinks::SinkContext sink_context = {},
                  ThreadedOptions options = {});
  ~ThreadedRuntime();

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  /// Validates the dataflow, builds operators/sinks/channels and spawns
  /// one worker thread per stage.
  Status Start();

  /// Feeds one tuple into `source` at virtual time `at` (trace times
  /// must be non-decreasing). Emits any flush punctuation due before
  /// `at` first, so a tuple stamped exactly on a boundary lands after
  /// the flush — the simulator's tie-break. Blocks while the source's
  /// out-edges are saturated (backpressure).
  Status Feed(const std::string& source, const stt::TupleRef& tuple,
              Timestamp at, Timestamp watermark = stt::kNoWatermark);

  /// Advances virtual time without data (emits due punctuation).
  void AdvanceTime(Timestamp now);

  /// Emits punctuation up to `end_time`, closes every source with an
  /// end-of-stream marker, drains and joins all workers, and returns
  /// the collected rows, stats, samples and latency percentiles.
  Result<ThreadedRunResult> Finish(Timestamp end_time);

  /// Hard stop: workers abandon queued work and exit promptly; queued
  /// tuples are dropped. Safe to call concurrently with a blocked
  /// Feed (it unblocks the credit wait).
  void Abort();

  /// Live per-stage gauges (thread-safe; queue_depth is the current
  /// deepest input ring). For monitor integration and tests.
  std::vector<monitor::OperatorSample> SampleStages() const;

  /// Convenience: Start, replay `trace` in order, Finish(end_time).
  Result<ThreadedRunResult> RunTrace(const InputTrace& trace,
                                     Timestamp end_time);

  // -- live wall-clock ingestion ------------------------------------------

  /// Starts live ingestion: spawns one feed thread per source. Each
  /// thread plays its source's share of `trace` in virtual-time order
  /// (paced against the wall clock when time_scale > 0) and mints the
  /// full flush-punctuation schedule up to `end_time` itself — the
  /// wall-clock analogue of per-stage flush timers: when a boundary's
  /// deadline passes, punct(B) is sent even though no tuple carried the
  /// clock forward. Sources without events still get a feed thread, so
  /// punctuation and end-of-stream flow on every channel. Returns
  /// immediately; do not call Feed/AdvanceTime/Finish afterwards.
  Status StartLive(const InputTrace& trace, Timestamp end_time);

  /// Joins the live feed threads, drains and joins all workers, and
  /// returns the collected result (as Finish, which StartLive already
  /// scheduled: feeds send their own punctuation-to-end and EOS).
  Result<ThreadedRunResult> WaitLive();

  /// Convenience: StartLive + WaitLive.
  Result<ThreadedRunResult> RunLive(const InputTrace& trace,
                                    Timestamp end_time);

 private:
  struct Channel;
  struct Stage;
  struct Message;
  class Recorder;

  Status Build();
  void StageLoop(Stage* stage);
  /// One bounded drain round over the stage's runnable inputs; returns
  /// whether any message was consumed. The unit of work a pooled worker
  /// runs per claim; the dedicated StageLoop calls it in a loop.
  bool RunStageQuantum(Stage* stage);
  /// True when some open, non-barrier-blocked input ring is non-empty.
  /// Owner-thread only (reads worker-owned punctuation state).
  bool HasRunnableInput(const Stage* stage) const;
  void HandleData(Stage* stage, size_t input_idx, Message& message);
  void HandleBatch(Stage* stage, size_t input_idx, Message& message);
  void HandlePunct(Stage* stage, size_t input_idx, Timestamp time);
  void AdvanceFrontier(Stage* stage);
  /// Seals the stage's pending emission buffer into its output rings
  /// (one kBatch — or kData for a single tuple — per output).
  void FlushEmitBuffers(Stage* stage);
  void PushBlocking(Channel* channel, Message&& message);
  void EmitPunct(Timestamp time);
  monitor::OperatorSample SampleStage(const Stage& stage, bool final) const;

  // -- pooled scheduling ---------------------------------------------------
  void ScheduleStage(Stage* stage);
  Stage* PopReady();
  /// Claims `stage` if idle/queued and runs one quantum inline (a
  /// blocked producer helping its consumer). False when another thread
  /// holds it — which means it is making progress elsewhere.
  bool TryHelp(Stage* stage);
  /// Returns a claimed stage to the scheduler: requeues it when
  /// runnable, idles it otherwise (re-checking for a racing push).
  void ReleaseStage(Stage* stage);
  void PoolLoop();
  void JoinWorkers();

  // -- live ingestion ------------------------------------------------------
  void FeedLoop(const std::string& source, std::vector<TraceEvent> events);
  /// Sleeps (in abortable slices) until `at`'s wall deadline under
  /// time_scale pacing; returns immediately when unpaced or aborted.
  void PaceUntil(Timestamp at);
  Result<ThreadedRunResult> FinishCollect();

  dataflow::Dataflow dataflow_;
  const pubsub::Broker* broker_;
  sinks::SinkContext sink_context_;
  ThreadedOptions options_;

  std::map<std::string, std::unique_ptr<ops::Operator>> operators_;
  std::map<std::string, std::unique_ptr<sinks::Sink>> sinks_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::map<std::string, std::vector<Channel*>> source_channels_;
  std::vector<Channel*> all_source_channels_;
  std::unique_ptr<Recorder> recorder_;

  /// The union flush schedule: min-heap of upcoming boundaries, one
  /// recurring entry per blocking stage.
  struct Boundary {
    Timestamp at;
    Duration interval;
    bool operator>(const Boundary& other) const { return at > other.at; }
  };
  std::priority_queue<Boundary, std::vector<Boundary>, std::greater<Boundary>>
      boundaries_;
  Timestamp last_punct_ = stt::kNoWatermark;
  Timestamp virtual_now_ = 0;

  // started_/finished_ are atomics because Abort may race a blocked
  // Feed from another thread (the shutdown-while-draining case).
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  std::atomic<bool> abort_{false};
  std::atomic<uint64_t> fed_{0};
  Mutex late_mu_;
  std::vector<std::string> late_rows_ SL_GUARDED_BY(late_mu_);
  Mutex join_mu_;  ///< makes worker joins idempotent under races
  std::chrono::steady_clock::time_point wall_start_;

  // -- pooled scheduling (pool_size > 0) -----------------------------------
  // Ready hints: a stage appears here while its run_state is kQueued.
  // PopReady validates each hint with a CAS, so stale entries (a helper
  // stole the stage) are dropped harmlessly.
  Mutex ready_mu_;
  std::deque<Stage*> ready_ SL_GUARDED_BY(ready_mu_);
  WaitGate pool_gate_;
  std::vector<std::thread> pool_threads_;
  std::atomic<size_t> stages_done_{0};

  // -- shard threads (shard_threads > 1) -----------------------------------
  std::unique_ptr<TaskPool> shard_pool_;

  // -- live ingestion ------------------------------------------------------
  bool live_ = false;
  /// The deduplicated union flush schedule up to the live end time;
  /// every feed thread walks it with its own cursor.
  std::vector<Timestamp> punct_schedule_;
  std::vector<std::thread> feed_threads_;
};

}  // namespace sl::exec

#endif  // STREAMLOADER_EXEC_THREADED_RUNTIME_H_
