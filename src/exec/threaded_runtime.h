// StreamLoader: the wall-clock multithreaded runtime — the second
// execution mode next to the deterministic discrete-event simulator.
//
// The simulator (exec/executor.h) runs everything on one virtual-clock
// event loop and is the semantic reference. The ThreadedRuntime executes
// the *same* validated dataflow with the *same* operator objects on real
// worker threads: one worker per operator/sink stage, one bounded SPSC
// ring per dataflow edge (exec/spsc_queue.h), credit-based backpressure
// from sinks back to the sources (a full ring = zero credits blocks the
// producer), and watermarks piggybacked on every queued tuple exactly as
// the simulator piggybacks them on network transfers.
//
// Equivalence contract. Thread timing is nondeterministic, so the
// runtime replays a *trace* (the tuples that entered each source, with
// their virtual ingestion times — captured from a simulated run via
// ExecutorOptions::source_tap) and aligns the blocking operators' flush
// schedule with punctuation messages instead of timers: the driver
// emits punct(B) into every source channel for each flush boundary
// B = deploy_time + interval + flush_stagger_ms * depth + k * interval,
// *before* any tuple whose ingestion time equals B (mirroring the event
// loop's tie-break, where a periodic flush re-armed earlier always runs
// before a same-instant delivery). A stage fires Flush(B) when the
// punctuation minimum over its input ports passes B, then forwards the
// punctuation downstream after the flush emissions. Window membership
// in the blocking operators is decided by tuple timestamps against the
// flush-tick time (half-open, ts < B), so as long as no simulated
// network delay carries a tuple across a flush boundary (delays are
// a few ms; boundaries are staggered 50 ms apart), the threaded run
// produces the identical multiset of sink rows — enforced by the
// SimVsThreadedOracleTest battery (tests/threaded_test.cpp).

#ifndef STREAMLOADER_EXEC_THREADED_RUNTIME_H_
#define STREAMLOADER_EXEC_THREADED_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "dataflow/graph.h"
#include "monitor/monitor.h"
#include "ops/debugger.h"
#include "ops/operator.h"
#include "pubsub/broker.h"
#include "sinks/factory.h"
#include "stt/tuple.h"
#include "stt/watermark.h"
#include "util/status.h"

namespace sl::exec {

/// \brief Which runtime executes a deployment. The discrete-event
/// simulator stays the default and the correctness oracle; kThreaded
/// selects the wall-clock worker-pool runtime (this header), reached
/// through StreamLoader::RunThreaded or a ThreadedRuntime directly.
enum class ExecutionMode {
  kSimulated,  ///< deterministic single-threaded simulation (default)
  kThreaded,   ///< worker threads + SPSC queues + real clocks
};

/// \brief Configuration of a ThreadedRuntime.
struct ThreadedOptions {
  /// Per-edge SPSC ring capacity (rounded up to a power of two). This
  /// is the edge's credit pool: a full ring blocks the producer until
  /// the consumer pops, which is how sink pressure reaches the sources.
  size_t queue_capacity = 1024;
  /// Blocking-operation cache bound (as ExecutorOptions).
  size_t max_cache_tuples = 1 << 20;
  /// Reference implementations of the blocking operators (as
  /// ExecutorOptions::naive_blocking).
  bool naive_blocking = false;
  /// Event-time configuration handed to every operator.
  ops::WatermarkOptions watermark;
  /// Flush-schedule stagger, replicated from the simulator: a blocking
  /// operator at topological depth d first flushes at
  /// deploy_time + interval + flush_stagger_ms * d.
  Duration flush_stagger_ms = 50;
  /// Virtual time of the reference deployment (anchors the flush
  /// boundaries; use the simulated run's deploy timestamp).
  Timestamp deploy_time = 0;
  /// Busy-wait this many wall-clock nanoseconds per sink write — a
  /// deliberately slow consumer for backpressure stress tests.
  int64_t sink_delay_ns = 0;
  /// Count sink deliveries without writing them (benchmarks that
  /// measure transport, not sink retention).
  bool count_only_sinks = false;
};

/// \brief One tuple entering a source, with its virtual ingestion time
/// and the source watermark at that instant (what
/// ExecutorOptions::source_tap records from a simulated run).
struct TraceEvent {
  Timestamp at = 0;
  std::string source;
  stt::TupleRef tuple;
  Timestamp watermark = stt::kNoWatermark;
};
using InputTrace = std::vector<TraceEvent>;

/// \brief End-to-end latency percentiles over every tuple that reached
/// a sink (wall-clock nanoseconds from Feed to sink delivery).
struct LatencySummary {
  uint64_t count = 0;
  int64_t p50_ns = 0;
  int64_t p95_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;
};

/// \brief Everything a threaded run produces.
struct ThreadedRunResult {
  /// Sorted Tuple::ToString rows per collect sink.
  std::map<std::string, std::vector<std::string>> sink_rows;
  /// Sorted rows diverted by LatePolicy::kSideOutput.
  std::vector<std::string> late_rows;
  uint64_t tuples_fed = 0;
  uint64_t tuples_delivered = 0;  ///< tuples arriving at sinks
  uint64_t process_errors = 0;
  uint64_t backpressure_waits = 0;  ///< producer stalls on full rings
  std::map<std::string, ops::OperatorStats> op_stats;
  std::vector<ops::ActivationRecord> activations;  ///< trigger requests
  double wall_seconds = 0;
  double tuples_per_sec = 0;  ///< delivered / wall_seconds
  LatencySummary latency;
  /// One final monitor sample per stage; queue_depth carries the
  /// deepest input ring observed, backpressure_waits the stalls charged
  /// to this stage's full inputs.
  std::vector<monitor::OperatorSample> stage_samples;
};

/// \brief Executes one validated dataflow on worker threads.
///
/// Lifecycle: construct → Start() → Feed()* → Finish(end_time), or
/// Abort() at any point for a hard stop (shutdown-while-draining). The
/// driver thread (the caller of Feed/Finish) plays the sources; it
/// blocks when a source edge is out of credits, which is the intended
/// backpressure behavior.
class ThreadedRuntime {
 public:
  ThreadedRuntime(dataflow::Dataflow dataflow, const pubsub::Broker* broker,
                  sinks::SinkContext sink_context = {},
                  ThreadedOptions options = {});
  ~ThreadedRuntime();

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  /// Validates the dataflow, builds operators/sinks/channels and spawns
  /// one worker thread per stage.
  Status Start();

  /// Feeds one tuple into `source` at virtual time `at` (trace times
  /// must be non-decreasing). Emits any flush punctuation due before
  /// `at` first, so a tuple stamped exactly on a boundary lands after
  /// the flush — the simulator's tie-break. Blocks while the source's
  /// out-edges are saturated (backpressure).
  Status Feed(const std::string& source, const stt::TupleRef& tuple,
              Timestamp at, Timestamp watermark = stt::kNoWatermark);

  /// Advances virtual time without data (emits due punctuation).
  void AdvanceTime(Timestamp now);

  /// Emits punctuation up to `end_time`, closes every source with an
  /// end-of-stream marker, drains and joins all workers, and returns
  /// the collected rows, stats, samples and latency percentiles.
  Result<ThreadedRunResult> Finish(Timestamp end_time);

  /// Hard stop: workers abandon queued work and exit promptly; queued
  /// tuples are dropped. Safe to call concurrently with a blocked
  /// Feed (it unblocks the credit wait).
  void Abort();

  /// Live per-stage gauges (thread-safe; queue_depth is the current
  /// deepest input ring). For monitor integration and tests.
  std::vector<monitor::OperatorSample> SampleStages() const;

  /// Convenience: Start, replay `trace` in order, Finish(end_time).
  Result<ThreadedRunResult> RunTrace(const InputTrace& trace,
                                     Timestamp end_time);

 private:
  struct Channel;
  struct Stage;
  struct Message;
  class Recorder;

  Status Build();
  void StageLoop(Stage* stage);
  void HandleData(Stage* stage, size_t input_idx, Message& message);
  void HandlePunct(Stage* stage, size_t input_idx, Timestamp time);
  void AdvanceFrontier(Stage* stage);
  void PushBlocking(Channel* channel, Message&& message);
  void EmitPunct(Timestamp time);
  monitor::OperatorSample SampleStage(const Stage& stage, bool final) const;

  dataflow::Dataflow dataflow_;
  const pubsub::Broker* broker_;
  sinks::SinkContext sink_context_;
  ThreadedOptions options_;

  std::map<std::string, std::unique_ptr<ops::Operator>> operators_;
  std::map<std::string, std::unique_ptr<sinks::Sink>> sinks_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::map<std::string, std::vector<Channel*>> source_channels_;
  std::vector<Channel*> all_source_channels_;
  std::unique_ptr<Recorder> recorder_;

  /// The union flush schedule: min-heap of upcoming boundaries, one
  /// recurring entry per blocking stage.
  struct Boundary {
    Timestamp at;
    Duration interval;
    bool operator>(const Boundary& other) const { return at > other.at; }
  };
  std::priority_queue<Boundary, std::vector<Boundary>, std::greater<Boundary>>
      boundaries_;
  Timestamp last_punct_ = stt::kNoWatermark;
  Timestamp virtual_now_ = 0;

  // started_/finished_ are atomics because Abort may race a blocked
  // Feed from another thread (the shutdown-while-draining case).
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  std::atomic<bool> abort_{false};
  std::atomic<uint64_t> fed_{0};
  std::mutex late_mu_;
  std::vector<std::string> late_rows_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace sl::exec

#endif  // STREAMLOADER_EXEC_THREADED_RUNTIME_H_
