// StreamLoader: the SCN controller + executor (Figure 1's "Translator /
// Executor / Monitor" plane over the programmable network).
//
// Deploy() takes a DSN description, reconstructs the operator graph,
// binds sources to the sensors published in the broker, generates one
// process per operation, places the processes on network nodes
// (Placer), and wires tuple movement through the simulated network with
// the QoS parameters of the DSN flows. Blocking operations get periodic
// Flush events; the monitor samples everything; overload triggers
// workload-driven re-assignment (migration) — "which node is in charge
// of executing an operation and when the assignment changes" (§3).

#ifndef STREAMLOADER_EXEC_EXECUTOR_H_
#define STREAMLOADER_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataflow/graph.h"
#include "dataflow/render.h"
#include "dsn/spec.h"
#include "exec/placement.h"
#include "exec/scn_log.h"
#include "monitor/monitor.h"
#include "net/event_loop.h"
#include "net/network.h"
#include "ops/operator.h"
#include "pubsub/broker.h"
#include "sensors/simulator.h"
#include "sinks/factory.h"
#include "sinks/streams.h"

namespace sl::exec {

/// Identifies one deployed dataflow.
using DeploymentId = uint64_t;

/// \brief Executor configuration.
struct ExecutorOptions {
  PlacementStrategy placement = PlacementStrategy::kLeastLoaded;
  /// Work units a node spends per tuple processed.
  double work_per_tuple = 1.0;
  /// Blocking-operation cache bound (per input).
  size_t max_cache_tuples = 1 << 20;
  /// Run the blocking operators' reference implementations (nested-loop
  /// join, full per-flush aggregation recompute) instead of the indexed
  /// fast paths. Output is identical either way; tests use this to
  /// cross-check whole pipelines.
  bool naive_blocking = false;
  /// Re-assign operators away from nodes above this utilization on each
  /// monitor tick (0 disables auto-rebalancing).
  double rebalance_threshold = 1.0;
  /// Approximate per-tuple network framing overhead in bytes.
  size_t tuple_overhead_bytes = 24;
  /// Schedule optimization (§1: "optimize the schedule for the execution
  /// of the dataflow"): blocking operators flush `flush_stagger_ms` *
  /// depth after the interval boundary, where depth is the operator's
  /// topological position — so a downstream aggregation/join/trigger
  /// sees its upstream's freshly flushed results in the *same* interval
  /// instead of one interval later. 0 disables staggering (all flushes
  /// land exactly on the boundary).
  Duration flush_stagger_ms = 50;
  /// Reliable tuple delivery: transfers are acked and retransmitted on
  /// timeout (net::TransferOptions). Off by default — the fair-weather
  /// pipeline needs no acks and keeps the seed's exact event schedule.
  bool reliable_delivery = false;
  /// Initial ack timeout for reliable delivery (doubles per retry).
  Duration ack_timeout_ms = 250;
  /// Retransmit budget per tuple transfer.
  int max_retransmits = 4;
  /// Period of the crash-detection heartbeat; 0 (default) disables
  /// detection — and keeps the loop free of periodic timers for
  /// RunUntilIdle-driven callers.
  Duration heartbeat_ms = 0;
  /// Consecutive missed heartbeats before a node is declared dead and
  /// its operator/sink processes are re-placed on surviving nodes.
  int heartbeat_misses = 2;
  /// \brief Event-time configuration handed to every operator
  /// (ops::WatermarkOptions). The default processing-time policy keeps
  /// the seed's exact behavior; TimePolicy::kEvent makes the blocking
  /// operators fire on the watermarks the executor piggybacks on tuple
  /// deliveries — delivery-order independent within allowed_lateness.
  /// LatePolicy::kSideOutput adds one LateSink per deployment
  /// (LateSinkOf) receiving the diverted late tuples.
  ops::WatermarkOptions watermark;
  /// \brief Elastic scaling of key-partitioned blocking operators
  /// (deployed with parallelism > 1): on each monitor tick the policy
  /// compares every instance group's per-instance input rate against the
  /// band below, doubling the instance count on overload and halving it
  /// when underloaded. Off by default — fixed parallelism keeps runs
  /// reproducible without a monitor.
  bool elastic_scaling = false;
  /// Per-instance input rate (tuples/s) above which an instance group
  /// doubles (up to elastic_max_instances).
  double elastic_high_load = 1000.0;
  /// Per-instance input rate below which an instance group halves (down
  /// to elastic_min_instances). Keep well under elastic_high_load / 2:
  /// the gap is the hysteresis that prevents grow/shrink oscillation.
  double elastic_low_load = 100.0;
  size_t elastic_min_instances = 1;
  size_t elastic_max_instances = 8;
  /// Monitor ticks an operator sits out after a rescale before the
  /// policy may touch it again (the rescale itself perturbs the rates).
  int elastic_cooldown_ticks = 2;
  /// \brief Observer of every tuple entering a source, invoked with the
  /// source node name, the tuple, the virtual ingestion time and the
  /// broker watermark piggybacked on the delivery. This is how the
  /// sim-vs-threaded differential harness captures an exec::InputTrace
  /// from a simulated run for replay through the ThreadedRuntime
  /// (exec/threaded_runtime.h). Applies to every deployment; no effect
  /// on execution.
  std::function<void(const std::string& source, const stt::TupleRef& tuple,
                     Timestamp at, Timestamp watermark)>
      source_tap;
  /// \brief Columnar batch execution: consecutive same-edge deliveries
  /// into a batch-capable operator (ops::Operator::batchable) are
  /// coalesced and handed to ProcessBatch as one columnar run instead of
  /// one Process call per tuple. Pending runs are flushed before any
  /// event that could observe operator state (flush timers, monitor
  /// samples, stats reads, redeployment actions) and at a same-instant
  /// barrier, so sink output and per-operator counters are bit-identical
  /// to the per-tuple path for a single active deployment. With several
  /// concurrently active deployments *and* injected network faults, the
  /// relative order of fault-RNG draws may differ (batching reorders
  /// work across deployments within one instant). Off by default.
  bool columnar_batch = false;
};

/// \brief Cumulative counters of one deployment.
struct DeploymentStats {
  uint64_t tuples_ingested = 0;   ///< tuples entering via sources
  uint64_t tuples_delivered = 0;  ///< tuples arriving at sinks
  uint64_t qos_violations = 0;    ///< transfers exceeding a flow's max_latency
  uint64_t process_errors = 0;    ///< operator/sink errors (logged, stream continues)
  uint64_t activations = 0;       ///< trigger activation requests executed
  uint64_t migrations = 0;        ///< operator re-assignments
  uint64_t retransmits = 0;       ///< reliable-delivery retransmissions
  uint64_t messages_lost = 0;     ///< tuple transfers conclusively lost
  uint64_t node_failures = 0;     ///< confirmed crashes of hosting nodes
  uint64_t recoveries = 0;        ///< processes re-placed after a crash
  /// Reliable-delivery retransmissions / conclusive losses attributed to
  /// the receiving operator *instance*, keyed "op#k" — the routed
  /// instance is known at send time from the key hash; "op#*" collects
  /// broadcast-routed tuples (NaN join keys). Only populated for edges
  /// into partitioned operators; the scalar totals above count
  /// everything.
  std::map<std::string, uint64_t> instance_retransmits;
  std::map<std::string, uint64_t> instance_lost;

  bool operator==(const DeploymentStats&) const = default;

  /// One-line dump for failing-seed diagnostics.
  std::string ToString() const;
};

/// \brief The executor. Also the ActivationHandler for all deployed
/// triggers: activation requests are routed to the sensor fleet.
class Executor : public ops::ActivationHandler {
 public:
  Executor(net::EventLoop* loop, net::Network* network,
           pubsub::Broker* broker, monitor::Monitor* monitor,
           sinks::SinkContext sink_context, ExecutorOptions options = {});
  ~Executor() override;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Routes trigger activations to this fleet (optional; without one,
  /// activations are only logged and counted).
  void set_fleet(sensors::SensorFleet* fleet) { fleet_ = fleet; }

  /// Installs (or clears) the source tap after construction — how a
  /// live StreamLoader session attaches the trace capture for a
  /// threaded replay (see ExecutorOptions::source_tap).
  void set_source_tap(
      std::function<void(const std::string&, const stt::TupleRef&, Timestamp,
                         Timestamp)>
          tap) {
    options_.source_tap = std::move(tap);
  }

  /// \brief Deploys a DSN spec: lift to a dataflow, validate against
  /// the broker, place, wire, start flush timers, subscribe sources.
  Result<DeploymentId> Deploy(const dsn::DsnSpec& spec);

  /// Stops a deployment: cancels timers, unsubscribes sources,
  /// releases node processes. In-flight messages are dropped on arrival:
  /// delivery callbacks hold a weak reference to the deployment record,
  /// so they are safe no-ops after Undeploy — and remain so even when
  /// the Executor itself is destroyed with transfers still in flight.
  Status Undeploy(DeploymentId id);

  /// On-the-fly operator replacement (P3: "operators in the dataflow are
  /// modified on the fly"): swaps the spec of one operator in a running
  /// deployment; its cache is discarded, its placement kept. The new
  /// spec must derive the same output schema.
  Status ReplaceOperator(DeploymentId id, const std::string& op_name,
                         const dataflow::OpSpec& new_spec);

  /// Node currently executing an operator or sink.
  Result<std::string> AssignedNode(DeploymentId id,
                                   const std::string& name) const;

  /// Migrates one operator to `target_node` (also used internally by
  /// auto-rebalancing). Simulates the state transfer of blocking caches.
  Status MigrateOperator(DeploymentId id, const std::string& op_name,
                         const std::string& target_node);

  /// \brief Elastic scale-out/in of a key-partitioned operator:
  /// re-partitions the cached state across `new_parallelism` instances
  /// (ops::Operator::Rescale) and adjusts the hosting node's process
  /// count by the difference. Only operators deployed with
  /// parallelism > 1 in their spec support this; the re-partitioning
  /// hand-off is billed as node work proportional to the cache, and the
  /// action is counted as a migration. Also used by the elastic_scaling
  /// policy on monitor ticks.
  Status RescaleOperator(DeploymentId id, const std::string& op_name,
                         size_t new_parallelism);

  /// \brief Drains a node for maintenance: migrates every operator and
  /// sink process of every active deployment off `node_id` (placement
  /// chooses the targets, excluding the drained node). Afterwards the
  /// node hosts no processes and can be removed from the network (P3:
  /// on-the-fly network reconfiguration). Sources of sensors managed by
  /// the node keep entering there — move or remove the sensors first if
  /// the node is going away entirely.
  Status DrainNode(const std::string& node_id);

  /// The deployed dataflow (for introspection / the live canvas).
  Result<const dataflow::Dataflow*> DeployedDataflow(DeploymentId id) const;

  Result<const DeploymentStats*> stats(DeploymentId id) const;

  /// Stats of one operator in a deployment.
  Result<ops::OperatorStats> OperatorStatsOf(DeploymentId id,
                                             const std::string& name) const;

  /// The sink object of a deployment (e.g. to read a CollectSink).
  Result<sinks::Sink*> SinkOf(DeploymentId id, const std::string& name) const;

  /// \brief The deployment's late-side sink (tuples diverted by
  /// LatePolicy::kSideOutput), or nullptr when the policy does not route
  /// late data. Late tuples are written locally by the operator's node —
  /// they took their network hop already; re-shipping them would distort
  /// the fault model.
  Result<sinks::LateSink*> LateSinkOf(DeploymentId id) const;

  /// Ids of active deployments.
  std::vector<DeploymentId> ActiveDeployments() const;

  /// The SCN command log: every network-configuration action taken.
  const ScnLog& scn_log() const { return scn_log_; }

  /// \brief Live canvas annotations for a deployment: the node in charge
  /// of each operation plus the latest monitoring rates (when a monitor
  /// report exists). Feed to dataflow::RenderLiveCanvas.
  Result<std::map<std::string, dataflow::NodeAnnotation>> LiveAnnotations(
      DeploymentId id) const;

  // ActivationHandler:
  void ActivateSensors(const std::vector<std::string>& sensor_ids,
                       Timestamp at) override;
  void DeactivateSensors(const std::vector<std::string>& sensor_ids,
                         Timestamp at) override;

 private:
  struct Edge {
    std::string to;
    size_t port = 0;
    bool to_sink = false;
    dsn::QosParams qos;
  };
  struct DeployedOperator {
    std::unique_ptr<ops::Operator> op;
    std::string node_id;
    net::EventLoop::TimerId flush_timer = 0;
  };
  struct DeployedSink {
    std::unique_ptr<sinks::Sink> sink;
    std::string node_id;
  };
  struct Deployment {
    DeploymentId id = 0;
    bool active = false;
    dataflow::Dataflow dataflow;
    std::map<std::string, DeployedOperator> operators;
    std::map<std::string, DeployedSink> sinks;
    std::map<std::string, std::string> source_nodes;
    std::map<std::string, std::vector<Edge>> edges;  // by producer
    std::vector<pubsub::Broker::SubscriptionId> subscriptions;
    /// Late-side sink (LatePolicy::kSideOutput only, else nullptr).
    std::unique_ptr<sinks::LateSink> late_sink;
    DeploymentStats stats;
    /// \brief Columnar coalescing buffer (ExecutorOptions::columnar_batch):
    /// one run of consecutive deliveries into the same (operator, port),
    /// with each tuple's piggybacked watermark. Drained by DrainPending.
    struct PendingBatch {
      std::string op;
      size_t port = 0;
      std::vector<stt::TupleRef> tuples;
      std::vector<Timestamp> watermarks;
      /// A same-instant drain event is already queued on the loop.
      bool barrier_scheduled = false;
      /// Re-entrancy latch: a drain in progress must not recurse when
      /// the batch's own emissions route back through the executor.
      bool draining = false;
    };
    PendingBatch pending;
    /// Weak self-reference handed to event-loop callbacks: a callback
    /// firing after the deployment (or the whole executor) is gone
    /// locks nothing and returns, instead of dereferencing freed state.
    std::weak_ptr<Deployment> self;
  };

  /// Fans a tuple emitted by `producer` (on `producer_node`) out along
  /// its edges through the network. `watermark` is the producer stream's
  /// event-time promise at send time; it rides along with the tuple
  /// (piggybacked, no extra network traffic) and is folded into the
  /// receiving operator's input frontier on delivery.
  void Route(Deployment* deployment, const std::string& producer,
             const std::string& producer_node, const stt::TupleRef& tuple,
             Timestamp watermark);

  /// Network node where a sensor's tuples enter (query-bound sources).
  std::string ResolveOrigin(const std::string& sensor_id) const;

  /// Delivers a tuple (and its piggybacked watermark) at its destination
  /// operator/sink.
  void Deliver(Deployment* deployment, const Edge& edge,
               const stt::TupleRef& tuple, Timestamp watermark);

  /// \brief Flushes the deployment's coalesced delivery run (columnar
  /// batching) through ops::Operator::ProcessBatch, segmented so the
  /// piggybacked watermarks advance the operator's frontier at exactly
  /// the per-tuple points. No-op when the buffer is empty or already
  /// draining. Const because observation paths (stats, sinks) must be
  /// able to drain; Deployment state is reached via the shared_ptr.
  void DrainPending(Deployment* deployment) const;

  /// Drains the pending run of every deployment (monitor/global paths).
  void DrainAllPending() const;

  /// Operator samples for the monitor (resets window counters).
  std::vector<monitor::OperatorSample> SampleOperators(Duration window);

  /// Auto-rebalance hook run on each monitor tick.
  void OnMonitorTick(const monitor::MonitorReport& report);

  /// Elastic-scaling policy (options_.elastic_scaling): grows/shrinks
  /// the instance count of partitioned operators from per-instance load.
  void ElasticTick(const monitor::MonitorReport& report);

  /// Heartbeat tick: polls node liveness, declares a node dead after
  /// `heartbeat_misses` consecutive down-polls, then recovers its
  /// processes (P4-style fault handling).
  void OnHeartbeat();

  /// Re-places every operator/sink process of `dep` stranded on the dead
  /// `node_id` onto surviving nodes; counts recoveries.
  void RecoverDeployment(DeploymentId id, Deployment* dep,
                         const std::string& node_id);

  size_t TupleBytes(const stt::Tuple& tuple) const;


  net::EventLoop* loop_;
  net::Network* network_;
  pubsub::Broker* broker_;
  monitor::Monitor* monitor_;
  sinks::SinkContext sink_context_;
  ExecutorOptions options_;
  Placer placer_;
  sensors::SensorFleet* fleet_ = nullptr;
  DeploymentId next_id_ = 1;
  /// shared_ptr (not unique_ptr): transfer callbacks in flight on the
  /// event loop hold weak references; see Deployment::self.
  std::map<DeploymentId, std::shared_ptr<Deployment>> deployments_;
  /// Crash detection (heartbeat_ms > 0): consecutive missed beats per
  /// node, and nodes already declared dead (so a crash recovers once).
  net::EventLoop::TimerId heartbeat_timer_ = 0;
  std::map<std::string, int> missed_heartbeats_;
  /// Elastic scaling: running monitor-tick counter and the tick of each
  /// operator's last rescale ("dataflow/op"), for cooldown enforcement.
  uint64_t monitor_ticks_ = 0;
  std::map<std::string, uint64_t> last_rescale_tick_;
  std::set<std::string> dead_nodes_;
  /// Per-deployment activation adapters (type-erased; see executor.cc).
  std::map<DeploymentId, std::shared_ptr<void>> deployment_details_;
  ScnLog scn_log_;
};

}  // namespace sl::exec

#endif  // STREAMLOADER_EXEC_EXECUTOR_H_
