#include "exec/executor.h"

#include <algorithm>

#include "dataflow/validate.h"
#include "dsn/translate.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sl::exec {

using dataflow::Dataflow;
using dataflow::Node;
using dataflow::NodeKind;

namespace {

/// Columnar batching: cap on a coalesced delivery run — bounds the
/// TupleRef buffer and keeps per-batch scratch vectors cache-sized.
constexpr size_t kMaxPendingBatch = 1024;

/// Per-deployment activation adapter: attributes trigger activations to
/// their deployment before forwarding to the executor.
class DeploymentActivation : public ops::ActivationHandler {
 public:
  DeploymentActivation(Executor* executor, DeploymentStats* stats)
      : executor_(executor), stats_(stats) {}

  void ActivateSensors(const std::vector<std::string>& ids,
                       Timestamp at) override {
    ++stats_->activations;
    executor_->ActivateSensors(ids, at);
  }
  void DeactivateSensors(const std::vector<std::string>& ids,
                         Timestamp at) override {
    ++stats_->activations;
    executor_->DeactivateSensors(ids, at);
  }

 private:
  Executor* executor_;
  DeploymentStats* stats_;
};

}  // namespace

// Held by Deployment through a shared_ptr<void> so the header does not
// need the adapter type.
struct ExecutorDetail {
  std::unique_ptr<DeploymentActivation> activation;
};

std::string DeploymentStats::ToString() const {
  std::string out = StrFormat(
      "ingested %llu delivered %llu qos_violations %llu process_errors %llu "
      "activations %llu migrations %llu retransmits %llu messages_lost %llu "
      "node_failures %llu recoveries %llu",
      static_cast<unsigned long long>(tuples_ingested),
      static_cast<unsigned long long>(tuples_delivered),
      static_cast<unsigned long long>(qos_violations),
      static_cast<unsigned long long>(process_errors),
      static_cast<unsigned long long>(activations),
      static_cast<unsigned long long>(migrations),
      static_cast<unsigned long long>(retransmits),
      static_cast<unsigned long long>(messages_lost),
      static_cast<unsigned long long>(node_failures),
      static_cast<unsigned long long>(recoveries));
  for (const auto& [key, n] : instance_retransmits) {
    out += StrFormat(" rtx[%s]=%llu", key.c_str(),
                     static_cast<unsigned long long>(n));
  }
  for (const auto& [key, n] : instance_lost) {
    out += StrFormat(" lost[%s]=%llu", key.c_str(),
                     static_cast<unsigned long long>(n));
  }
  return out;
}

Executor::Executor(net::EventLoop* loop, net::Network* network,
                   pubsub::Broker* broker, monitor::Monitor* monitor,
                   sinks::SinkContext sink_context, ExecutorOptions options)
    : loop_(loop),
      network_(network),
      broker_(broker),
      monitor_(monitor),
      sink_context_(std::move(sink_context)),
      options_(options),
      placer_(network, options.placement) {
  if (monitor_ != nullptr) {
    monitor_->set_operator_sampler(
        [this](Duration window) { return SampleOperators(window); });
    monitor_->set_tick_listener(
        [this](const monitor::MonitorReport& report) { OnMonitorTick(report); });
    monitor_->set_fault_sampler([this] {
      monitor::FaultSample sample;
      const net::Network::FaultStats& fs = network_->fault_stats();
      sample.messages_dropped = fs.messages_dropped;
      sample.messages_duplicated = fs.messages_duplicated;
      for (const auto& [id, dep] : deployments_) {
        sample.retransmits += dep->stats.retransmits;
        sample.messages_lost += dep->stats.messages_lost;
        sample.node_failures += dep->stats.node_failures;
        sample.recoveries += dep->stats.recoveries;
        for (const auto& [name, deployed] : dep->operators) {
          sample.late_dropped += deployed.op->stats().late_dropped;
          sample.late_routed += deployed.op->stats().late_routed;
        }
      }
      return sample;
    });
  }
  if (options_.heartbeat_ms > 0) {
    heartbeat_timer_ = loop_->SchedulePeriodic(options_.heartbeat_ms,
                                               [this] { OnHeartbeat(); });
  }
}

Executor::~Executor() {
  if (heartbeat_timer_ != 0) {
    loop_->Cancel(heartbeat_timer_);
    heartbeat_timer_ = 0;
  }
  for (auto& [id, dep] : deployments_) {
    if (dep->active) {
      Status s = Undeploy(id);
      (void)s;
    }
  }
  // Detach the monitor's callbacks into this executor; the monitor may
  // keep ticking (it usually outlives us in composition order).
  if (monitor_ != nullptr) {
    monitor_->set_operator_sampler(nullptr);
    monitor_->set_tick_listener(nullptr);
    monitor_->set_fault_sampler(nullptr);
  }
}

size_t Executor::TupleBytes(const stt::Tuple& tuple) const {
  // The value portion is memoized in the tuple itself, so a tuple routed
  // across many edges (or re-routed downstream) is measured once.
  return options_.tuple_overhead_bytes + tuple.ApproxValueBytes();
}

Result<DeploymentId> Executor::Deploy(const dsn::DsnSpec& spec) {
  // 1. Lift the DSN description back to an operator graph.
  SL_ASSIGN_OR_RETURN(Dataflow dataflow, dsn::TranslateFromDsn(spec));

  // 2. Soundness check against the live sensor registry.
  dataflow::Validator validator(broker_);
  SL_ASSIGN_OR_RETURN(dataflow::ValidationReport report,
                      validator.Validate(dataflow));
  if (!report.ok()) {
    return Status::ValidationError("cannot deploy '" + spec.name + "':\n" +
                                   report.ToString());
  }

  auto deployment = std::make_shared<Deployment>();
  Deployment* dep = deployment.get();
  dep->id = next_id_++;
  dep->self = deployment;
  dep->dataflow = std::move(dataflow);
  auto detail = std::make_shared<ExecutorDetail>();
  detail->activation =
      std::make_unique<DeploymentActivation>(this, &dep->stats);
  if (options_.watermark.late_policy == ops::LatePolicy::kSideOutput) {
    dep->late_sink = std::make_unique<sinks::LateSink>(spec.name + "/late");
  }

  // QoS lookup for edges.
  auto qos_of = [&spec](const std::string& from,
                        const std::string& to) -> dsn::QosParams {
    for (const auto& f : spec.flows) {
      if (f.from == from && f.to == to) return f.qos;
    }
    return dsn::QosParams{};
  };

  // 3. Bind sources, generate and place processes (topological order, so
  // upstream placements inform locality).
  Duration stagger_depth = 0;  // grows along the topological order
  for (const auto& name : dep->dataflow.topological_order()) {
    const Node& node = **dep->dataflow.node(name);
    switch (node.kind) {
      case NodeKind::kSource: {
        if (node.by_query) {
          // Characteristic-bound source: tuples enter at their producing
          // sensor's node, resolved per tuple (future joiners included).
          dep->source_nodes[name] = "";
          scn_log_.Record(loop_->Now(), ScnCommandKind::kBindSource, dep->id,
                          name, node.source_query.ToString());
          break;
        }
        SL_ASSIGN_OR_RETURN(pubsub::SensorInfo info,
                            broker_->Find(node.sensor_id));
        std::string origin = info.node_id;
        if (origin.empty() || !network_->HasNode(origin)) {
          // Sensors not pinned to a node enter at the least-loaded one.
          SL_ASSIGN_OR_RETURN(origin, placer_.LeastLoadedNode());
        }
        dep->source_nodes[name] = origin;
        scn_log_.Record(loop_->Now(), ScnCommandKind::kBindSource, dep->id,
                        name, node.sensor_id + " @ " + origin);
        break;
      }
      case NodeKind::kOperator: {
        std::vector<stt::SchemaPtr> input_schemas;
        std::vector<std::string> upstream_nodes;
        for (const auto& in : node.inputs) {
          input_schemas.push_back(report.schemas.at(in));
          auto src_it = dep->source_nodes.find(in);
          if (src_it != dep->source_nodes.end()) {
            upstream_nodes.push_back(src_it->second);
          } else {
            auto op_it = dep->operators.find(in);
            if (op_it != dep->operators.end()) {
              upstream_nodes.push_back(op_it->second.node_id);
            }
          }
        }
        ops::OperatorOptions op_options;
        op_options.max_cache_tuples = options_.max_cache_tuples;
        op_options.naive_blocking = options_.naive_blocking;
        op_options.activation = detail->activation.get();
        op_options.watermark = options_.watermark;
        SL_ASSIGN_OR_RETURN(std::unique_ptr<ops::Operator> op,
                            ops::MakeOperator(name, node.op, node.spec,
                                              input_schemas, node.inputs,
                                              op_options));
        SL_ASSIGN_OR_RETURN(std::string placed,
                            placer_.Place(upstream_nodes));
        // A key-partitioned operator deploys as an instance group: N
        // co-located processes behind one splitter/merger address, so
        // the node is billed one process per instance.
        size_t instances = op->parallelism();
        SL_RETURN_IF_ERROR(network_->AdjustProcessCount(
            placed, static_cast<int>(instances)));
        if (monitor_ != nullptr) {
          monitor_->RecordAssignment(dep->dataflow.name(), name, "", placed);
        }
        scn_log_.Record(loop_->Now(), ScnCommandKind::kDeployService, dep->id,
                        name,
                        instances > 1 ? placed + StrFormat(" x%zu", instances)
                                      : placed);
        DeployedOperator deployed;
        deployed.op = std::move(op);
        deployed.node_id = placed;
        // Emission: route from wherever the operator currently runs,
        // piggybacking the operator's current output watermark.
        ops::Operator* op_ptr = deployed.op.get();
        op_ptr->set_emit([this, dep, name](const stt::TupleRef& t) {
          auto it = dep->operators.find(name);
          if (it == dep->operators.end()) return;
          Route(dep, name, it->second.node_id, t,
                it->second.op->output_watermark());
        });
        // Late-side output stays local to the operator's node: the tuple
        // already took its network hop; see Executor::LateSinkOf.
        if (dep->late_sink != nullptr) {
          op_ptr->set_late_emit([dep](const stt::TupleRef& t) {
            Status s = dep->late_sink->Write(t);
            (void)s;
          });
        }
        // Blocking operations: periodic cache processing. The flush is
        // staggered by topological depth (schedule optimization, §1) so
        // cascaded blocking stages consume fresh upstream flushes within
        // the same interval.
        if (op_ptr->is_blocking()) {
          Duration offset = options_.flush_stagger_ms * stagger_depth;
          ++stagger_depth;
          deployed.flush_timer = loop_->SchedulePeriodic(
              op_ptr->interval(),
              [this, dep, name] {
                auto it = dep->operators.find(name);
                if (it == dep->operators.end() || !dep->active) return;
                // A flush observes cached state: settle any coalesced
                // deliveries first so the cache is per-tuple-identical.
                DrainPending(dep);
                ops::Operator* op = it->second.op.get();
                double work = static_cast<double>(op->stats().cache_size) *
                              options_.work_per_tuple;
                Status s = op->Flush(loop_->Now());
                if (!s.ok()) {
                  ++dep->stats.process_errors;
                  SL_LOG(kError) << "flush of " << name
                                 << " failed: " << s.ToString();
                }
                if (work > 0) {
                  Status ws = network_->ReportWork(it->second.node_id, work);
                  (void)ws;
                }
              },
              /*first_at=*/loop_->Now() + op_ptr->interval() + offset);
        }
        dep->operators.emplace(name, std::move(deployed));
        break;
      }
      case NodeKind::kSink: {
        SL_ASSIGN_OR_RETURN(std::unique_ptr<sinks::Sink> sink,
                            sinks::MakeSink(name, node.sink, node.sink_target,
                                            sink_context_));
        std::vector<std::string> upstream_nodes;
        auto op_it = dep->operators.find(node.inputs[0]);
        if (op_it != dep->operators.end()) {
          upstream_nodes.push_back(op_it->second.node_id);
        }
        SL_ASSIGN_OR_RETURN(std::string placed,
                            placer_.Place(upstream_nodes));
        SL_RETURN_IF_ERROR(network_->AdjustProcessCount(placed, +1));
        if (monitor_ != nullptr) {
          monitor_->RecordAssignment(dep->dataflow.name(), name, "", placed);
        }
        scn_log_.Record(loop_->Now(), ScnCommandKind::kDeployService, dep->id,
                        name, placed);
        dep->sinks.emplace(name, DeployedSink{std::move(sink), placed});
        break;
      }
    }
  }

  // 4. Wire edges with their QoS.
  for (const auto& name : dep->dataflow.topological_order()) {
    const Node& node = **dep->dataflow.node(name);
    for (size_t port = 0; port < node.inputs.size(); ++port) {
      Edge edge;
      edge.to = name;
      edge.port = port;
      edge.to_sink = node.kind == NodeKind::kSink;
      edge.qos = qos_of(node.inputs[port], name);
      scn_log_.Record(
          loop_->Now(), ScnCommandKind::kConfigureFlow, dep->id,
          node.inputs[port] + " -> " + name,
          StrFormat("max_latency=%s priority=%d",
                    FormatDuration(edge.qos.max_latency).c_str(),
                    edge.qos.priority));
      dep->edges[node.inputs[port]].push_back(std::move(edge));
    }
  }

  // 5. Subscribe sources to their sensors (or their queries).
  dep->active = true;
  for (const auto& name : dep->dataflow.SourceNames()) {
    const Node& node = **dep->dataflow.node(name);
    std::string source_name = name;
    if (node.by_query) {
      // The merged stream's watermark is the min over matching sensors —
      // queried fresh per tuple so late joiners lower it correctly.
      pubsub::DiscoveryQuery query = node.source_query;
      auto sub = broker_->SubscribeDataByQuery(
          node.source_query,
          [this, dep, source_name, query](const stt::TupleRef& tuple) {
            if (!dep->active) return;
            ++dep->stats.tuples_ingested;
            const Timestamp wm = broker_->WatermarkOf(query);
            if (options_.source_tap) {
              options_.source_tap(source_name, tuple, loop_->Now(), wm);
            }
            Route(dep, source_name, ResolveOrigin(tuple->sensor_id()), tuple,
                  wm);
          });
      dep->subscriptions.push_back(sub);
      continue;
    }
    std::string sensor_id = node.sensor_id;
    auto sub = broker_->SubscribeData(
        node.sensor_id,
        [this, dep, source_name, sensor_id](const stt::TupleRef& tuple) {
          if (!dep->active) return;
          ++dep->stats.tuples_ingested;
          const Timestamp wm = broker_->WatermarkOf(sensor_id);
          if (options_.source_tap) {
            options_.source_tap(source_name, tuple, loop_->Now(), wm);
          }
          Route(dep, source_name, dep->source_nodes.at(source_name), tuple,
                wm);
        });
    if (!sub.ok()) return sub.status();
    dep->subscriptions.push_back(*sub);
  }

  if (monitor_ != nullptr) {
    monitor_->Log("deployed dataflow '" + dep->dataflow.name() + "' (" +
                  StrFormat("%zu operators, %zu sinks",
                            dep->operators.size(), dep->sinks.size()) +
                  ")");
  }
  scn_log_.Record(loop_->Now(), ScnCommandKind::kStartDataflow, dep->id,
                  dep->dataflow.name(), "");

  // Keep the activation adapter alive with the deployment.
  deployment_details_.emplace(dep->id, std::move(detail));
  DeploymentId id = dep->id;
  deployments_.emplace(id, std::move(deployment));
  return id;
}

std::string Executor::ResolveOrigin(const std::string& sensor_id) const {
  auto info = broker_->Find(sensor_id);
  if (info.ok() && !info->node_id.empty() &&
      network_->HasNode(info->node_id)) {
    return info->node_id;
  }
  // Unpinned (or just-departed) sensors: enter at a deterministic node.
  auto ids = network_->NodeIds();
  return ids.empty() ? std::string() : ids.front();
}

void Executor::Route(Deployment* dep, const std::string& producer,
                     const std::string& producer_node,
                     const stt::TupleRef& tuple, Timestamp watermark) {
  // A pending run precedes this tuple in delivery order: process it
  // before scheduling new transfers so network-side effects (work,
  // fault draws) keep the per-tuple sequence. Re-entrant calls during a
  // drain see an empty buffer and fall straight through.
  if (options_.columnar_batch) DrainPending(dep);
  auto edges_it = dep->edges.find(producer);
  if (edges_it == dep->edges.end()) return;
  size_t bytes = TupleBytes(*tuple);
  for (const Edge& edge : edges_it->second) {
    std::string target_node;
    // Per-instance fault attribution: for a partitioned receiver the
    // routed instance is a pure function of the key, so it is known at
    // send time — retransmits/losses land on "op#k" ("op#*" when the
    // tuple broadcasts to every instance, e.g. NaN join keys).
    std::string instance_key;
    if (edge.to_sink) {
      target_node = dep->sinks.at(edge.to).node_id;
    } else {
      const DeployedOperator& target_op = dep->operators.at(edge.to);
      target_node = target_op.node_id;
      if (target_op.op->parallelism() > 1) {
        int inst = target_op.op->route_instance(edge.port, tuple);
        instance_key =
            edge.to + "#" + (inst < 0 ? "*" : std::to_string(inst));
      }
    }
    // QoS accounting: a transfer that cannot meet the flow's latency
    // bound counts as a violation (the SCN would re-provision the path).
    if (edge.qos.max_latency > 0) {
      auto delay = network_->TransferDelay(producer_node, target_node, bytes);
      if (delay.ok() && *delay > edge.qos.max_latency) {
        ++dep->stats.qos_violations;
      }
    }
    // The network hop captures a shared ref, not a deep copy: every
    // out-edge of every deployment forwards the same allocation. The
    // deployment itself is captured weakly so a message landing after
    // Undeploy (or executor destruction) is a no-op.
    Edge edge_copy = edge;
    std::weak_ptr<Deployment> weak = dep->self;
    net::TransferOptions transfer_options;
    if (options_.reliable_delivery) {
      transfer_options.reliable = true;
      transfer_options.ack_timeout = options_.ack_timeout_ms;
      transfer_options.max_retransmits = options_.max_retransmits;
      transfer_options.on_retransmit = [weak, instance_key](int) {
        if (auto d = weak.lock()) {
          ++d->stats.retransmits;
          if (!instance_key.empty()) {
            ++d->stats.instance_retransmits[instance_key];
          }
        }
      };
    }
    transfer_options.on_lost = [weak, instance_key] {
      if (auto d = weak.lock()) {
        ++d->stats.messages_lost;
        if (!instance_key.empty()) ++d->stats.instance_lost[instance_key];
      }
    };
    // The watermark rides inside the delivery callback — event-time
    // progress piggybacks on data transfers, adding no network messages
    // and leaving the zero-fault event schedule untouched.
    Status s = network_->Transfer(
        producer_node, target_node, bytes,
        [this, weak, edge_copy, tuple, watermark] {
          auto d = weak.lock();
          if (!d || !d->active) return;
          Deliver(d.get(), edge_copy, tuple, watermark);
        },
        std::move(transfer_options));
    if (!s.ok()) {
      ++dep->stats.process_errors;
      SL_LOG(kError) << "transfer " << producer << " -> " << edge.to
                     << " failed: " << s.ToString();
    }
  }
}

void Executor::Deliver(Deployment* dep, const Edge& edge,
                       const stt::TupleRef& tuple, Timestamp watermark) {
  if (options_.columnar_batch && !edge.to_sink) {
    auto op_it = dep->operators.find(edge.to);
    if (op_it != dep->operators.end() &&
        op_it->second.op->parallelism() == 1 &&
        op_it->second.op->batchable(edge.port)) {
      Deployment::PendingBatch& pb = dep->pending;
      // A run covers one (operator, port): a delivery elsewhere seals it.
      if (!pb.tuples.empty() && (pb.op != edge.to || pb.port != edge.port)) {
        DrainPending(dep);
      }
      if (pb.tuples.empty()) {
        pb.op = edge.to;
        pb.port = edge.port;
      }
      pb.tuples.push_back(tuple);
      pb.watermarks.push_back(watermark);
      if (pb.tuples.size() >= kMaxPendingBatch) {
        DrainPending(dep);
      } else if (!pb.barrier_scheduled) {
        // Same-instant barrier: the loop's FIFO tie-break runs it after
        // every already-queued event of this instant, so the run is
        // processed before simulated time moves — no event scheduled
        // from the batch can land earlier than it would have per-tuple.
        pb.barrier_scheduled = true;
        std::weak_ptr<Deployment> weak = dep->self;
        loop_->Schedule(loop_->Now(), [this, weak] {
          if (auto d = weak.lock()) {
            d->pending.barrier_scheduled = false;
            DrainPending(d.get());
          }
        });
      }
      return;
    }
  }
  // Anything that is not appended to the pending run (sink writes,
  // non-batchable operators) must observe fully processed state.
  DrainPending(dep);
  if (edge.to_sink) {
    auto it = dep->sinks.find(edge.to);
    if (it == dep->sinks.end()) return;
    Status ws = network_->ReportWork(it->second.node_id,
                                     options_.work_per_tuple);
    (void)ws;
    Status s = it->second.sink->Write(tuple);
    if (s.ok()) {
      ++dep->stats.tuples_delivered;
    } else {
      ++dep->stats.process_errors;
      SL_LOG(kError) << "sink " << edge.to << " failed: " << s.ToString();
    }
    return;
  }
  auto it = dep->operators.find(edge.to);
  if (it == dep->operators.end()) return;
  Status ws =
      network_->ReportWork(it->second.node_id, options_.work_per_tuple);
  (void)ws;
  // Fold the piggybacked watermark into the input frontier *before*
  // processing: the promise was made when the tuple was sent, so it
  // holds on arrival (reordered deliveries only make it conservative —
  // max-merge per port keeps the frontier monotone).
  it->second.op->ObserveWatermark(edge.port, watermark);
  Status s = it->second.op->Process(edge.port, tuple);
  if (!s.ok()) {
    ++dep->stats.process_errors;
    SL_LOG(kError) << "operator " << edge.to << " failed: " << s.ToString();
  }
}

void Executor::DrainPending(Deployment* dep) const {
  Deployment::PendingBatch& pb = dep->pending;
  if (pb.draining || pb.tuples.empty()) return;
  pb.draining = true;
  const std::string op_name = std::move(pb.op);
  const size_t port = pb.port;
  std::vector<stt::TupleRef> tuples = std::move(pb.tuples);
  std::vector<Timestamp> watermarks = std::move(pb.watermarks);
  pb.op.clear();
  pb.tuples.clear();
  pb.watermarks.clear();
  auto it = dep->operators.find(op_name);
  if (it != dep->operators.end() && dep->active) {
    ops::Operator* op = it->second.op.get();
    const size_t n = tuples.size();
    Status ws = network_->ReportWork(
        it->second.node_id,
        options_.work_per_tuple * static_cast<double>(n));
    (void)ws;
    ops::Operator::BatchContext ctx;
    // Watermark-segmented processing: per-tuple delivery observes every
    // piggybacked watermark before its Process call, but an observation
    // is a state no-op unless it advances the frontier (w <= min over
    // ports implies w <= this port's max). Segments end exactly where
    // the next observation would matter, so every tuple is processed
    // under the identical frontier state as the per-tuple path.
    size_t i = 0;
    while (i < n) {
      op->ObserveWatermark(port, watermarks[i]);
      const Timestamp frontier = op->input_watermark();
      size_t j = i + 1;
      while (j < n) {
        const Timestamp w = watermarks[j];
        if (w != stt::kNoWatermark &&
            (frontier == stt::kNoWatermark || w > frontier)) {
          break;
        }
        ++j;
      }
      ctx.errors.clear();
      Status s = op->ProcessBatch(port, &tuples[i], j - i, &ctx);
      for (const ops::Operator::BatchRowError& e : ctx.errors) {
        ++dep->stats.process_errors;
        SL_LOG(kError) << "operator " << op_name
                       << " failed: " << e.status.ToString();
      }
      if (!s.ok()) {
        ++dep->stats.process_errors;
        SL_LOG(kError) << "operator " << op_name
                       << " failed: " << s.ToString();
      }
      i = j;
    }
  }
  pb.draining = false;
}

void Executor::DrainAllPending() const {
  for (const auto& [id, dep] : deployments_) DrainPending(dep.get());
}

Status Executor::Undeploy(DeploymentId id) {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound(StrFormat("no deployment %llu",
                                      static_cast<unsigned long long>(id)));
  }
  Deployment* dep = it->second.get();
  if (!dep->active) {
    return Status::FailedPrecondition(
        StrFormat("deployment %llu is already stopped",
                  static_cast<unsigned long long>(id)));
  }
  // Settle coalesced deliveries while still active — tuples already
  // delivered must reach their operator before the stop, as per-tuple.
  DrainPending(dep);
  dep->active = false;
  for (auto sub : dep->subscriptions) broker_->Unsubscribe(sub);
  dep->subscriptions.clear();
  for (auto& [name, op] : dep->operators) {
    if (op.flush_timer != 0) {
      loop_->Cancel(op.flush_timer);
      op.flush_timer = 0;
    }
    Status s = network_->AdjustProcessCount(
        op.node_id, -static_cast<int>(op.op->parallelism()));
    (void)s;
  }
  for (auto& [name, sink] : dep->sinks) {
    Status fs = sink.sink->Finish();
    (void)fs;
    Status s = network_->AdjustProcessCount(sink.node_id, -1);
    (void)s;
  }
  if (monitor_ != nullptr) {
    monitor_->Log("undeployed dataflow '" + dep->dataflow.name() + "'");
  }
  scn_log_.Record(loop_->Now(), ScnCommandKind::kStopDataflow, dep->id,
                  dep->dataflow.name(), "");
  return Status::OK();
}

Status Executor::ReplaceOperator(DeploymentId id, const std::string& op_name,
                                 const dataflow::OpSpec& new_spec) {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound(StrFormat("no deployment %llu",
                                      static_cast<unsigned long long>(id)));
  }
  Deployment* dep = it->second.get();
  if (!dep->active) {
    return Status::FailedPrecondition("deployment is stopped");
  }
  auto op_it = dep->operators.find(op_name);
  if (op_it == dep->operators.end()) {
    return Status::NotFound("no operator '" + op_name + "' in deployment");
  }
  // Settle coalesced deliveries into the outgoing operator before it is
  // swapped out (its pending input must not land in the replacement).
  DrainPending(dep);
  const Node& node = **dep->dataflow.node(op_name);
  // The replacement spec chooses the operation kind; a TriggerSpec keeps
  // the original On/Off polarity.
  dataflow::OpKind new_kind =
      dataflow::SpecKind(new_spec, node.op != dataflow::OpKind::kTriggerOff);

  // Recompute the input schemas.
  dataflow::Validator validator(broker_);
  SL_ASSIGN_OR_RETURN(dataflow::ValidationReport report,
                      validator.Validate(dep->dataflow));
  if (!report.ok()) {
    return Status::ValidationError(
        "running dataflow no longer validates:\n" + report.ToString());
  }
  std::vector<stt::SchemaPtr> input_schemas;
  for (const auto& in : node.inputs) {
    input_schemas.push_back(report.schemas.at(in));
  }

  auto detail_it = deployment_details_.find(id);
  ops::OperatorOptions op_options;
  op_options.max_cache_tuples = options_.max_cache_tuples;
  op_options.naive_blocking = options_.naive_blocking;
  op_options.watermark = options_.watermark;
  op_options.activation =
      detail_it != deployment_details_.end()
          ? static_cast<ExecutorDetail*>(detail_it->second.get())
                ->activation.get()
          : nullptr;
  SL_ASSIGN_OR_RETURN(std::unique_ptr<ops::Operator> new_op,
                      ops::MakeOperator(op_name, new_kind, new_spec,
                                        input_schemas, node.inputs,
                                        op_options));
  // The downstream wiring is schema-typed: the replacement must keep it.
  if (!new_op->output_schema()->Equals(
          *op_it->second.op->output_schema())) {
    return Status::ValidationError(
        "replacement for '" + op_name +
        "' changes the output schema; downstream operators would break");
  }
  // The replacement may change the instance-group size.
  int group_delta = static_cast<int>(new_op->parallelism()) -
                    static_cast<int>(op_it->second.op->parallelism());
  if (group_delta != 0) {
    Status ps =
        network_->AdjustProcessCount(op_it->second.node_id, group_delta);
    (void)ps;
  }
  // Swap: cancel the old flush timer, install the new operator.
  if (op_it->second.flush_timer != 0) {
    loop_->Cancel(op_it->second.flush_timer);
    op_it->second.flush_timer = 0;
  }
  op_it->second.op = std::move(new_op);
  ops::Operator* op_ptr = op_it->second.op.get();
  op_ptr->set_emit([this, dep, op_name](const stt::TupleRef& t) {
    auto oit = dep->operators.find(op_name);
    if (oit == dep->operators.end()) return;
    Route(dep, op_name, oit->second.node_id, t,
          oit->second.op->output_watermark());
  });
  if (dep->late_sink != nullptr) {
    op_ptr->set_late_emit([dep](const stt::TupleRef& t) {
      Status s = dep->late_sink->Write(t);
      (void)s;
    });
  }
  if (op_ptr->is_blocking()) {
    // Recompute the flush stagger depth: blocking operators preceding
    // this one in the topological order.
    Duration depth = 0;
    for (const auto& n : dep->dataflow.topological_order()) {
      if (n == op_name) break;
      auto oit = dep->operators.find(n);
      if (oit != dep->operators.end() && oit->second.op->is_blocking()) {
        ++depth;
      }
    }
    op_it->second.flush_timer = loop_->SchedulePeriodic(
        op_ptr->interval(),
        [this, dep, op_name] {
          auto oit = dep->operators.find(op_name);
          if (oit == dep->operators.end() || !dep->active) return;
          DrainPending(dep);
          ops::Operator* op = oit->second.op.get();
          double work = static_cast<double>(op->stats().cache_size) *
                        options_.work_per_tuple;
          Status s = op->Flush(loop_->Now());
          if (!s.ok()) ++dep->stats.process_errors;
          if (work > 0) {
            Status ws = network_->ReportWork(oit->second.node_id, work);
            (void)ws;
          }
        },
        /*first_at=*/loop_->Now() + op_ptr->interval() +
            options_.flush_stagger_ms * depth);
  }
  // Update the conceptual dataflow so the live canvas reflects the edit.
  // (Dataflow is immutable; rebuild it with the new spec.)
  dataflow::DataflowBuilder builder(dep->dataflow.name());
  for (const auto& n : dep->dataflow.topological_order()) {
    Node copy = **dep->dataflow.node(n);
    if (copy.name == op_name) {
      copy.spec = new_spec;
      copy.op = new_kind;
    }
    switch (copy.kind) {
      case NodeKind::kSource:
        builder.AddSource(copy.name, copy.sensor_id);
        break;
      case NodeKind::kOperator:
        builder.AddOperator(copy.name, copy.op, copy.spec, copy.inputs);
        break;
      case NodeKind::kSink:
        builder.AddSink(copy.name, copy.inputs[0], copy.sink,
                        copy.sink_target);
        break;
    }
  }
  SL_ASSIGN_OR_RETURN(dep->dataflow, builder.Build());
  if (monitor_ != nullptr) {
    monitor_->Log("replaced operator '" + op_name + "' in dataflow '" +
                  dep->dataflow.name() + "'");
  }
  scn_log_.Record(loop_->Now(), ScnCommandKind::kReplaceService, dep->id,
                  op_name, dataflow::SpecToString(new_kind, new_spec));
  return Status::OK();
}

Result<std::string> Executor::AssignedNode(DeploymentId id,
                                           const std::string& name) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  auto op_it = it->second->operators.find(name);
  if (op_it != it->second->operators.end()) return op_it->second.node_id;
  auto sink_it = it->second->sinks.find(name);
  if (sink_it != it->second->sinks.end()) return sink_it->second.node_id;
  return Status::NotFound("no operator or sink '" + name +
                          "' in deployment");
}

Status Executor::MigrateOperator(DeploymentId id, const std::string& op_name,
                                 const std::string& target_node) {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  Deployment* dep = it->second.get();
  if (!dep->active) return Status::FailedPrecondition("deployment stopped");
  auto op_it = dep->operators.find(op_name);
  if (op_it == dep->operators.end()) {
    return Status::NotFound("no operator '" + op_name + "' in deployment");
  }
  if (!network_->HasNode(target_node)) {
    return Status::NotFound("no node '" + target_node + "'");
  }
  std::string from = op_it->second.node_id;
  if (from == target_node) return Status::OK();
  // The cache estimate below must reflect every delivered tuple.
  DrainPending(dep);
  // Simulate the state hand-off: blocking caches move over the network.
  // A failed hand-off (source crashed or partitioned — the crash-recovery
  // path) loses the cache state but does not block the re-placement.
  size_t state_bytes =
      64 + op_it->second.op->stats().cache_size * 64;  // estimate
  Status transfer_status =
      network_->Transfer(from, target_node, state_bytes, [] {});
  if (!transfer_status.ok()) {
    SL_LOG(kWarning) << "state hand-off of '" << op_name
                     << "' lost: " << transfer_status.ToString();
  }
  // An instance group migrates as a unit (instances are co-located).
  int group = static_cast<int>(op_it->second.op->parallelism());
  SL_RETURN_IF_ERROR(network_->AdjustProcessCount(from, -group));
  SL_RETURN_IF_ERROR(network_->AdjustProcessCount(target_node, +group));
  op_it->second.node_id = target_node;
  ++dep->stats.migrations;
  if (monitor_ != nullptr) {
    monitor_->RecordAssignment(dep->dataflow.name(), op_name, from,
                               target_node);
    monitor_->Log("migrated '" + op_name + "' from " + from + " to " +
                  target_node);
  }
  scn_log_.Record(loop_->Now(), ScnCommandKind::kMigrateService, dep->id,
                  op_name, from + " => " + target_node);
  return Status::OK();
}

Status Executor::RescaleOperator(DeploymentId id, const std::string& op_name,
                                 size_t new_parallelism) {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  Deployment* dep = it->second.get();
  if (!dep->active) return Status::FailedPrecondition("deployment stopped");
  auto op_it = dep->operators.find(op_name);
  if (op_it == dep->operators.end()) {
    return Status::NotFound("no operator '" + op_name + "' in deployment");
  }
  // Re-partitioning observes (and redistributes) the cached state.
  DrainPending(dep);
  ops::Operator* op = op_it->second.op.get();
  size_t old_parallelism = op->parallelism();
  if (new_parallelism == old_parallelism) return Status::OK();
  // The re-partitioning hand-off reuses the migration cost model: the
  // cached state is re-read and re-routed across the new instance set,
  // billed as node work proportional to the cache. Instances are
  // co-located, so no network transfer is simulated.
  double work = static_cast<double>(op->stats().cache_size) *
                options_.work_per_tuple;
  SL_RETURN_IF_ERROR(op->Rescale(new_parallelism));
  if (work > 0) {
    Status ws = network_->ReportWork(op_it->second.node_id, work);
    (void)ws;
  }
  SL_RETURN_IF_ERROR(network_->AdjustProcessCount(
      op_it->second.node_id, static_cast<int>(new_parallelism) -
                                 static_cast<int>(old_parallelism)));
  ++dep->stats.migrations;
  if (monitor_ != nullptr) {
    monitor_->Log(StrFormat("rescaled '%s' from %zu to %zu instances",
                            op_name.c_str(), old_parallelism,
                            new_parallelism));
  }
  scn_log_.Record(loop_->Now(), ScnCommandKind::kMigrateService, dep->id,
                  op_name,
                  StrFormat("parallelism %zu => %zu", old_parallelism,
                            new_parallelism));
  return Status::OK();
}

Status Executor::DrainNode(const std::string& node_id) {
  if (!network_->HasNode(node_id)) {
    return Status::NotFound("no node '" + node_id + "'");
  }
  if (network_->num_nodes() < 2) {
    return Status::FailedPrecondition(
        "cannot drain the only node of the network");
  }
  DrainAllPending();
  for (auto& [id, dep] : deployments_) {
    if (!dep->active) continue;
    // Operators: reuse the migration path (state transfer + logging).
    std::vector<std::string> ops_to_move;
    for (const auto& [name, deployed] : dep->operators) {
      if (deployed.node_id == node_id) ops_to_move.push_back(name);
    }
    for (const auto& name : ops_to_move) {
      SL_ASSIGN_OR_RETURN(std::string target, placer_.Place({}, node_id));
      SL_RETURN_IF_ERROR(MigrateOperator(id, name, target));
    }
    // Sinks: relocate the process; no cache state to move.
    for (auto& [name, deployed] : dep->sinks) {
      if (deployed.node_id != node_id) continue;
      SL_ASSIGN_OR_RETURN(std::string target, placer_.Place({}, node_id));
      SL_RETURN_IF_ERROR(network_->AdjustProcessCount(node_id, -1));
      SL_RETURN_IF_ERROR(network_->AdjustProcessCount(target, +1));
      if (monitor_ != nullptr) {
        monitor_->RecordAssignment(dep->dataflow.name(), name, node_id,
                                   target);
      }
      scn_log_.Record(loop_->Now(), ScnCommandKind::kMigrateService, id, name,
                      node_id + " => " + target);
      deployed.node_id = target;
      ++dep->stats.migrations;
    }
  }
  if (monitor_ != nullptr) {
    monitor_->Log("drained node '" + node_id + "'");
  }
  return Status::OK();
}

Result<const dataflow::Dataflow*> Executor::DeployedDataflow(
    DeploymentId id) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  return &it->second->dataflow;
}

Result<const DeploymentStats*> Executor::stats(DeploymentId id) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  DrainPending(it->second.get());
  return &it->second->stats;
}

Result<ops::OperatorStats> Executor::OperatorStatsOf(
    DeploymentId id, const std::string& name) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  DrainPending(it->second.get());
  auto op_it = it->second->operators.find(name);
  if (op_it == it->second->operators.end()) {
    return Status::NotFound("no operator '" + name + "' in deployment");
  }
  return op_it->second.op->stats();
}

Result<sinks::Sink*> Executor::SinkOf(DeploymentId id,
                                      const std::string& name) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  // Coalesced deliveries may still carry tuples bound for this sink's
  // upstream; settle them so the sink contents are read-after-write.
  DrainPending(it->second.get());
  auto sink_it = it->second->sinks.find(name);
  if (sink_it == it->second->sinks.end()) {
    return Status::NotFound("no sink '" + name + "' in deployment");
  }
  return sink_it->second.sink.get();
}

Result<sinks::LateSink*> Executor::LateSinkOf(DeploymentId id) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  DrainPending(it->second.get());
  return it->second->late_sink.get();
}

Result<std::map<std::string, dataflow::NodeAnnotation>>
Executor::LiveAnnotations(DeploymentId id) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Status::NotFound("no such deployment");
  }
  DrainPending(it->second.get());
  const Deployment* dep = it->second.get();
  std::map<std::string, dataflow::NodeAnnotation> annotations;
  for (const auto& [name, deployed] : dep->operators) {
    dataflow::NodeAnnotation a;
    a.node_id = deployed.node_id;
    a.cache_size = deployed.op->stats().cache_size;
    a.trigger_fires = deployed.op->stats().trigger_fires;
    annotations[name] = a;
  }
  for (const auto& [name, deployed] : dep->sinks) {
    dataflow::NodeAnnotation a;
    a.node_id = deployed.node_id;
    annotations[name] = a;
  }
  for (const auto& [name, node] : dep->source_nodes) {
    dataflow::NodeAnnotation a;
    a.node_id = node;
    annotations[name] = a;
  }
  // Merge the latest monitoring rates when available.
  if (monitor_ != nullptr && monitor_->latest() != nullptr) {
    for (const auto& sample : monitor_->latest()->operators) {
      if (sample.dataflow != dep->dataflow.name()) continue;
      auto a = annotations.find(sample.op_name);
      if (a == annotations.end()) continue;
      a->second.in_per_sec = sample.in_per_sec;
      a->second.out_per_sec = sample.out_per_sec;
    }
  }
  return annotations;
}

std::vector<DeploymentId> Executor::ActiveDeployments() const {
  std::vector<DeploymentId> ids;
  for (const auto& [id, dep] : deployments_) {
    if (dep->active) ids.push_back(id);
  }
  return ids;
}

void Executor::ActivateSensors(const std::vector<std::string>& sensor_ids,
                               Timestamp at) {
  for (const auto& id : sensor_ids) {
    if (monitor_ != nullptr) {
      monitor_->Log("trigger: activate sensor '" + id + "'");
    }
    scn_log_.Record(loop_->Now(), ScnCommandKind::kActivateStream, 0, id, "");
    if (fleet_ != nullptr) {
      Status s = fleet_->Activate(id);
      if (!s.ok()) {
        SL_LOG(kWarning) << "activation of " << id
                         << " failed: " << s.ToString();
      }
    }
  }
  (void)at;
}

void Executor::DeactivateSensors(const std::vector<std::string>& sensor_ids,
                                 Timestamp at) {
  for (const auto& id : sensor_ids) {
    if (monitor_ != nullptr) {
      monitor_->Log("trigger: deactivate sensor '" + id + "'");
    }
    scn_log_.Record(loop_->Now(), ScnCommandKind::kDeactivateStream, 0, id,
                    "");
    if (fleet_ != nullptr) {
      Status s = fleet_->Deactivate(id);
      if (!s.ok()) {
        SL_LOG(kWarning) << "deactivation of " << id
                         << " failed: " << s.ToString();
      }
    }
  }
  (void)at;
}

std::vector<monitor::OperatorSample> Executor::SampleOperators(
    Duration window) {
  // Rates must count every delivered tuple of the window, including the
  // run still sitting in the coalescing buffer.
  DrainAllPending();
  std::vector<monitor::OperatorSample> samples;
  double seconds = static_cast<double>(window) / 1000.0;
  if (seconds <= 0) seconds = 1e-3;
  for (auto& [id, dep] : deployments_) {
    if (!dep->active) continue;
    for (auto& [name, deployed] : dep->operators) {
      const ops::Operator* op = deployed.op.get();
      monitor::OperatorSample sample;
      sample.dataflow = dep->dataflow.name();
      sample.op_name = name;
      sample.node_id = deployed.node_id;
      sample.in_per_sec = static_cast<double>(op->window_in()) / seconds;
      sample.out_per_sec = static_cast<double>(op->window_out()) / seconds;
      sample.total_in = op->stats().tuples_in;
      sample.total_out = op->stats().tuples_out;
      sample.cache_size = op->stats().cache_size;
      sample.trigger_fires = op->stats().trigger_fires;
      sample.late_dropped = op->stats().late_dropped;
      sample.late_routed = op->stats().late_routed;
      sample.batches = op->stats().batches;
      if (sample.batches > 0) {
        sample.batch_fill = static_cast<double>(op->stats().batched_tuples) /
                            static_cast<double>(sample.batches);
      }
      // Watermark lag: how far event time trails the virtual clock; -1
      // until the operator's inputs have carried a watermark.
      Timestamp wm = op->stats().watermark_low;
      sample.watermark_lag_ms = wm == stt::kNoWatermark ? -1 : loop_->Now() - wm;
      // Key-partitioned instance groups: per-instance cumulative load
      // and the skew gauge (max/mean) — 1.0 is a perfectly uniform key
      // distribution, parallelism means every key landed on one instance.
      size_t par = op->parallelism();
      sample.parallelism = par;
      if (par > 1) {
        uint64_t max_in = 0;
        uint64_t sum_in = 0;
        for (size_t k = 0; k < par; ++k) {
          const ops::OperatorStats* inst = op->instance_stats(k);
          uint64_t in = inst != nullptr ? inst->tuples_in : 0;
          sample.instance_load.push_back(in);
          max_in = std::max(max_in, in);
          sum_in += in;
        }
        if (sum_in > 0) {
          sample.key_skew = static_cast<double>(max_in) *
                            static_cast<double>(par) /
                            static_cast<double>(sum_in);
        }
      }
      samples.push_back(std::move(sample));
      deployed.op->ResetWindowCounters();
    }
  }
  return samples;
}

void Executor::OnMonitorTick(const monitor::MonitorReport& report) {
  ++monitor_ticks_;
  if (options_.elastic_scaling) ElasticTick(report);
  if (options_.rebalance_threshold <= 0) return;
  for (const auto& node : report.nodes) {
    if (node.utilization <= options_.rebalance_threshold) continue;
    // Move the hottest operator off the overloaded node.
    const monitor::OperatorSample* hottest = nullptr;
    for (const auto& op : report.operators) {
      if (op.node_id != node.node_id) continue;
      if (hottest == nullptr || op.in_per_sec > hottest->in_per_sec) {
        hottest = &op;
      }
    }
    if (hottest == nullptr) continue;
    auto target = placer_.LeastLoadedNode(node.node_id);
    if (!target.ok() || *target == node.node_id) continue;
    // Find the deployment owning this operator.
    for (auto& [id, dep] : deployments_) {
      if (!dep->active || dep->dataflow.name() != hottest->dataflow) continue;
      if (dep->operators.count(hottest->op_name) == 0) continue;
      Status s = MigrateOperator(id, hottest->op_name, *target);
      if (!s.ok()) {
        SL_LOG(kWarning) << "auto-migration failed: " << s.ToString();
      }
      break;
    }
  }
}

void Executor::ElasticTick(const monitor::MonitorReport& report) {
  for (const auto& sample : report.operators) {
    // Locate the live operator; only wrapper-deployed (key-partitioned)
    // operators support Rescale — detected by their per-instance
    // counters, so a group shrunk to one instance can still grow back.
    DeploymentId owner_id = 0;
    ops::Operator* op = nullptr;
    for (auto& [id, dep] : deployments_) {
      if (!dep->active || dep->dataflow.name() != sample.dataflow) continue;
      auto op_it = dep->operators.find(sample.op_name);
      if (op_it == dep->operators.end()) continue;
      owner_id = id;
      op = op_it->second.op.get();
      break;
    }
    if (op == nullptr || op->instance_stats(0) == nullptr) continue;
    std::string key = sample.dataflow + "/" + sample.op_name;
    auto last = last_rescale_tick_.find(key);
    if (last != last_rescale_tick_.end() &&
        monitor_ticks_ - last->second <
            static_cast<uint64_t>(options_.elastic_cooldown_ticks)) {
      continue;
    }
    size_t par = op->parallelism();
    double per_instance = sample.in_per_sec / static_cast<double>(par);
    size_t target = par;
    if (per_instance > options_.elastic_high_load &&
        par < options_.elastic_max_instances) {
      target = std::min(par * 2, options_.elastic_max_instances);
    } else if (per_instance < options_.elastic_low_load &&
               par > options_.elastic_min_instances) {
      target = std::max(par / 2, options_.elastic_min_instances);
    }
    if (target == par) continue;
    Status s = RescaleOperator(owner_id, sample.op_name, target);
    if (s.ok()) {
      last_rescale_tick_[key] = monitor_ticks_;
    } else {
      SL_LOG(kWarning) << "elastic rescale of '" << sample.op_name
                       << "' failed: " << s.ToString();
    }
  }
}

void Executor::OnHeartbeat() {
  for (const auto& node_id : network_->NodeIds()) {
    if (network_->NodeIsUp(node_id)) {
      missed_heartbeats_.erase(node_id);
      // A restarted node becomes a placement candidate again; processes
      // recovered elsewhere stay where they are (no fail-back).
      dead_nodes_.erase(node_id);
      continue;
    }
    int missed = ++missed_heartbeats_[node_id];
    if (missed < options_.heartbeat_misses || dead_nodes_.count(node_id) > 0) {
      continue;
    }
    dead_nodes_.insert(node_id);
    if (monitor_ != nullptr) {
      monitor_->Log(StrFormat("node '%s' declared dead after %d missed "
                              "heartbeats",
                              node_id.c_str(), missed));
    }
    for (auto& [id, dep] : deployments_) {
      if (!dep->active) continue;
      bool affected = false;
      for (const auto& [name, deployed] : dep->operators) {
        if (deployed.node_id == node_id) {
          affected = true;
          break;
        }
      }
      for (const auto& [name, deployed] : dep->sinks) {
        if (affected) break;
        if (deployed.node_id == node_id) affected = true;
      }
      if (!affected) continue;
      ++dep->stats.node_failures;
      RecoverDeployment(id, dep.get(), node_id);
    }
  }
}

void Executor::RecoverDeployment(DeploymentId id, Deployment* dep,
                                 const std::string& node_id) {
  // Deliveries already accepted predate the crash: settle them first.
  DrainPending(dep);
  // Operators: reuse the migration machinery. The simulated state
  // hand-off originates on the dead node and is conclusively lost — a
  // crash loses blocking caches, which the lost transfer models.
  std::vector<std::string> ops_to_move;
  for (const auto& [name, deployed] : dep->operators) {
    if (deployed.node_id == node_id) ops_to_move.push_back(name);
  }
  for (const auto& name : ops_to_move) {
    auto target = placer_.Place({}, node_id);
    if (!target.ok()) {
      SL_LOG(kWarning) << "no live node to recover '" << name
                       << "': " << target.status().ToString();
      return;
    }
    Status s = MigrateOperator(id, name, *target);
    if (!s.ok()) {
      SL_LOG(kWarning) << "recovery of '" << name
                       << "' failed: " << s.ToString();
      continue;
    }
    ++dep->stats.recoveries;
  }
  // Sinks: relocate the process; there is no cache state to lose.
  for (auto& [name, deployed] : dep->sinks) {
    if (deployed.node_id != node_id) continue;
    auto target = placer_.Place({}, node_id);
    if (!target.ok()) break;
    Status s1 = network_->AdjustProcessCount(node_id, -1);
    (void)s1;
    Status s2 = network_->AdjustProcessCount(*target, +1);
    (void)s2;
    if (monitor_ != nullptr) {
      monitor_->RecordAssignment(dep->dataflow.name(), name, node_id,
                                 *target);
    }
    scn_log_.Record(loop_->Now(), ScnCommandKind::kMigrateService, id, name,
                    node_id + " => " + *target + " (crash recovery)");
    deployed.node_id = *target;
    ++dep->stats.migrations;
    ++dep->stats.recoveries;
  }
  if (monitor_ != nullptr) {
    monitor_->Log("recovered deployment '" + dep->dataflow.name() +
                  "' off dead node '" + node_id + "'");
  }
}

}  // namespace sl::exec
