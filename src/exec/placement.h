// StreamLoader: operator placement strategies.
//
// "operations [are] located on the machines that, depending on workload,
// apply the logic specified in the conceptual dataflow" (§3). The Placer
// picks the node for each operator process at deployment, and the
// executor re-invokes it when workload-driven re-assignment migrates an
// operation (Figure 3's "when the assignment changes").

#ifndef STREAMLOADER_EXEC_PLACEMENT_H_
#define STREAMLOADER_EXEC_PLACEMENT_H_

#include <string>
#include <vector>

#include "net/network.h"

namespace sl::exec {

enum class PlacementStrategy {
  kRoundRobin,     ///< cycle through the nodes (baseline)
  kLeastLoaded,    ///< node with the lowest work-per-capacity this window
  kSensorLocality, ///< co-locate with the majority upstream node
};

const char* PlacementStrategyToString(PlacementStrategy strategy);
Result<PlacementStrategy> PlacementStrategyFromString(const std::string& name);

/// \brief Chooses nodes for operator processes.
class Placer {
 public:
  Placer(net::Network* network, PlacementStrategy strategy)
      : network_(network), strategy_(strategy) {}

  PlacementStrategy strategy() const { return strategy_; }

  /// \brief Picks the node for a new process whose upstream producers
  /// run on `upstream_nodes` (sensor-managing nodes for sources,
  /// operator nodes otherwise; empty entries are ignored).
  /// `exclude` (optional) is never chosen unless it is the only node.
  Result<std::string> Place(const std::vector<std::string>& upstream_nodes,
                            const std::string& exclude = "");

  /// Node with the lowest current load (work/capacity, then process
  /// count, then id).
  Result<std::string> LeastLoadedNode(const std::string& exclude = "") const;

 private:
  net::Network* network_;
  PlacementStrategy strategy_;
  size_t round_robin_next_ = 0;
};

}  // namespace sl::exec

#endif  // STREAMLOADER_EXEC_PLACEMENT_H_
