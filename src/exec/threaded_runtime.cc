#include "exec/threaded_runtime.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "dataflow/validate.h"
#include "exec/spsc_queue.h"
#include "sinks/streams.h"
#include "util/logging.h"

namespace sl::exec {

using dataflow::Node;
using dataflow::NodeKind;

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Burns wall-clock time without sleeping (slow-sink stress knob; a
/// sleep would round up to scheduler quanta and hide the queue math).
void SpinFor(int64_t ns) {
  const int64_t until = NowNs() + ns;
  while (NowNs() < until) {
  }
}

}  // namespace

/// What flows through a channel: a tuple with its piggybacked watermark
/// and ingestion stamp, a batch of such tuples, a flush punctuation, or
/// end-of-stream.
struct ThreadedRuntime::Message {
  enum class Kind : uint8_t { kData, kPunct, kEos, kBatch };
  /// One tuple of a kBatch run with its own lineage. The per-item
  /// watermark is what a kData message would have carried; the batch
  /// folds them into one sealed message watermark (their max — safe
  /// because the per-port frontier is a max-merge and is only consulted
  /// at punctuation barriers, which FIFO-follow the whole batch).
  struct Item {
    stt::TupleRef tuple;
    Timestamp watermark = stt::kNoWatermark;
    int64_t ingest_ns = 0;
  };
  Kind kind = Kind::kData;
  stt::TupleRef tuple;
  std::vector<Item> items;  // kBatch: coalesced run of data tuples
  Timestamp watermark = stt::kNoWatermark;  // kData/kBatch: promise
  Timestamp time = 0;                       // kPunct: virtual time reached
  int64_t ingest_ns = 0;  // kData: wall clock at Feed (0 = untracked)
};

/// One dataflow edge: an SPSC ring plus the consumer hookup and the
/// gauges the monitor samples. The ring's bounded capacity is the
/// edge's credit pool; `space` is where a credit-starved producer
/// parks. All gauge counters are relaxed atomics — they are read
/// cross-thread by SampleStages while both ends keep running.
struct ThreadedRuntime::Channel {
  explicit Channel(size_t capacity) : ring(capacity) {}

  SpscRing<Message> ring;
  Stage* consumer = nullptr;
  size_t port = 0;        ///< input port at the consumer
  size_t input_idx = 0;   ///< position in consumer->inputs
  WaitGate space;         ///< producers wait here for credits
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> peak_depth{0};
  std::atomic<uint64_t> backpressure_waits{0};
  std::atomic<uint64_t> bytes{0};  ///< Tuple::ApproxValueBytes charged
};

/// One worker: an operator or sink plus its input channels (one per
/// port), output channels (one per downstream edge), punctuation state
/// and flush schedule. Fields below the thread are touched only by the
/// owning worker; the atomics are shared with SampleStages.
struct ThreadedRuntime::Stage {
  std::string name;
  ops::Operator* op = nullptr;  // owned by ThreadedRuntime::operators_
  sinks::Sink* sink = nullptr;  // owned by ThreadedRuntime::sinks_
  size_t parallelism = 1;
  std::vector<Channel*> inputs;
  std::vector<Channel*> outputs;
  WaitGate work;  ///< worker parks here when all inputs are empty
  std::thread thread;

  // Worker-thread state. Punctuation doubles as a cross-port barrier:
  // an input whose punct_in is ahead of punct_min has delivered a
  // boundary the other ports have not reached, and must not be drained
  // further — otherwise a two-port stage (join) would admit the fast
  // port's future tuples into a window the laggard port has yet to
  // close, diverging from the simulator where the flush timer fires
  // before any later-virtual-time delivery.
  std::vector<Timestamp> punct_in;  ///< last punctuation per input
  std::vector<bool> input_closed;   ///< end-of-stream reached per input
  Timestamp punct_min = 0;
  size_t eos_count = 0;      ///< closed inputs (owner thread)
  Duration interval = 0;     ///< blocking operators only
  Timestamp next_flush = 0;  ///< 0 = non-blocking, no flush schedule
  int64_t current_ingest_ns = 0;  ///< lineage for emissions in Process
  std::vector<int64_t> latencies_ns;  ///< sinks: Feed-to-delivery
  /// Pending batched emissions (batch_max > 1), sealed into one kBatch
  /// per output at the batch bound, before punctuation is forwarded,
  /// and at the end of every quantum.
  std::vector<Message::Item> emit_buffer;
  /// Columnar-run scratch (columnar_batch): contiguous TupleRef view of
  /// the current kBatch message and the per-run error/lineage context.
  /// Worker-owned; reused so steady state allocates nothing.
  std::vector<stt::TupleRef> batch_refs;
  ops::Operator::BatchContext batch_ctx;

  // Pooled scheduling (pool_size > 0): the claim token that keeps the
  // worker-owned state above single-threaded even though any pool
  // worker (or a helping producer) may run the stage. Transitions:
  // kIdle->kQueued (ScheduleStage, with a ready-deque hint),
  // kQueued->kRunning (PopReady/TryHelp claim), kRunning->kRunningDirty
  // (a producer pushed mid-run), kRunning->kIdle (clean release; a
  // dirty mark makes the release CAS fail and forces a re-check).
  enum RunState : int { kIdle = 0, kQueued = 1, kRunning = 2, kDirty = 3 };
  std::atomic<int> run_state{kIdle};
  std::atomic<bool> done{false};  ///< all inputs closed, EOS forwarded

  // Gauges (relaxed atomics, sampled cross-thread).
  std::atomic<uint64_t> in_count{0};
  std::atomic<uint64_t> out_count{0};
  std::atomic<uint64_t> process_errors{0};
  std::atomic<size_t> cache_gauge{0};
  std::atomic<uint64_t> quanta{0};  ///< pooled/help quanta executed
};

/// Thread-safe trigger activation recorder: trigger stages run on their
/// own workers, so requests from different operators can interleave.
class ThreadedRuntime::Recorder : public ops::ActivationHandler {
 public:
  void ActivateSensors(const std::vector<std::string>& ids,
                       Timestamp at) override {
    MutexLock lock(&mu_);
    records_.push_back({true, ids, at});
  }
  void DeactivateSensors(const std::vector<std::string>& ids,
                         Timestamp at) override {
    MutexLock lock(&mu_);
    records_.push_back({false, ids, at});
  }
  std::vector<ops::ActivationRecord> Take() {
    MutexLock lock(&mu_);
    return std::move(records_);
  }

 private:
  Mutex mu_;
  std::vector<ops::ActivationRecord> records_ SL_GUARDED_BY(mu_);
};

ThreadedRuntime::ThreadedRuntime(dataflow::Dataflow dataflow,
                                 const pubsub::Broker* broker,
                                 sinks::SinkContext sink_context,
                                 ThreadedOptions options)
    : dataflow_(std::move(dataflow)),
      broker_(broker),
      sink_context_(std::move(sink_context)),
      options_(std::move(options)),
      recorder_(std::make_unique<Recorder>()) {
  virtual_now_ = options_.deploy_time;
}

ThreadedRuntime::~ThreadedRuntime() {
  if (started_ && !finished_) Abort();
}

Status ThreadedRuntime::Build() {
  dataflow::Validator validator(broker_);
  SL_ASSIGN_OR_RETURN(dataflow::ValidationReport report,
                      validator.Validate(dataflow_));
  if (!report.ok()) {
    return Status::ValidationError(
        "threaded runtime: cannot execute an unsound dataflow:\n" +
        report.ToString());
  }

  // Operators and sinks, with the same options the simulator would use.
  for (const auto& name : dataflow_.OperatorNames()) {
    const Node& node = **dataflow_.node(name);
    std::vector<stt::SchemaPtr> input_schemas;
    for (const auto& in : node.inputs) {
      input_schemas.push_back(report.schemas.at(in));
    }
    ops::OperatorOptions op_options;
    op_options.max_cache_tuples = options_.max_cache_tuples;
    op_options.naive_blocking = options_.naive_blocking;
    op_options.watermark = options_.watermark;
    op_options.activation = recorder_.get();
    SL_ASSIGN_OR_RETURN(std::unique_ptr<ops::Operator> op,
                        ops::MakeOperator(name, node.op, node.spec,
                                          input_schemas, node.inputs,
                                          op_options));
    operators_.emplace(name, std::move(op));
  }
  // Per-instance shard threads: partitioned operators get a TaskPool-
  // backed executor so an N-way operator's shards flush concurrently.
  // Shard flush bodies only touch per-shard state and per-shard capture
  // buffers (never the channel rings), so they cannot block each other.
  if (options_.shard_threads > 1) {
    for (auto& [name, op] : operators_) {
      if (op->parallelism() <= 1) continue;
      if (shard_pool_ == nullptr) {
        shard_pool_ = std::make_unique<TaskPool>(options_.shard_threads);
      }
      TaskPool* pool = shard_pool_.get();
      op->set_shard_executor(
          [pool](size_t n, const std::function<void(size_t)>& body) {
            pool->ParallelFor(n, body);
          });
    }
  }
  for (const auto& name : dataflow_.SinkNames()) {
    const Node& node = **dataflow_.node(name);
    SL_ASSIGN_OR_RETURN(
        std::unique_ptr<sinks::Sink> sink,
        sinks::MakeSink(name, node.sink, node.sink_target, sink_context_));
    sinks_.emplace(name, std::move(sink));
  }

  // Stages, with the simulator's flush stagger: blocking operators
  // fire interval + stagger * depth after deploy, depth counting the
  // blocking operators preceding them in topological order.
  std::map<std::string, Stage*> stage_of;
  Duration stagger_depth = 0;
  for (const auto& name : dataflow_.topological_order()) {
    const Node& node = **dataflow_.node(name);
    if (node.kind == NodeKind::kSource) continue;
    auto stage = std::make_unique<Stage>();
    stage->name = name;
    if (node.kind == NodeKind::kOperator) {
      stage->op = operators_.at(name).get();
      stage->parallelism = stage->op->parallelism();
      if (stage->op->is_blocking()) {
        stage->interval = stage->op->interval();
        stage->next_flush = options_.deploy_time + stage->interval +
                            options_.flush_stagger_ms * stagger_depth;
        ++stagger_depth;
        boundaries_.push({stage->next_flush, stage->interval});
      }
    } else {
      stage->sink = sinks_.at(name).get();
    }
    stage_of[name] = stage.get();
    stages_.push_back(std::move(stage));
  }

  // Channels: one ring per edge, input order = port order.
  for (auto& stage : stages_) {
    const Node& node = **dataflow_.node(stage->name);
    for (size_t port = 0; port < node.inputs.size(); ++port) {
      auto channel = std::make_unique<Channel>(options_.queue_capacity);
      channel->consumer = stage.get();
      channel->port = port;
      channel->input_idx = stage->inputs.size();
      stage->inputs.push_back(channel.get());
      stage->punct_in.push_back(options_.deploy_time);
      stage->input_closed.push_back(false);
      const std::string& producer = node.inputs[port];
      const Node& pnode = **dataflow_.node(producer);
      if (pnode.kind == NodeKind::kSource) {
        source_channels_[producer].push_back(channel.get());
        all_source_channels_.push_back(channel.get());
      } else {
        stage_of.at(producer)->outputs.push_back(channel.get());
      }
      channels_.push_back(std::move(channel));
    }
    stage->punct_min = options_.deploy_time;
  }

  // Emission wiring: operator emissions carry the operator's current
  // output watermark (as the simulator's Route does) and the lineage
  // stamp of the input being processed; late-side diversions go to the
  // shared (mutex-guarded) late row collection.
  for (auto& stage : stages_) {
    if (stage->op == nullptr) continue;
    Stage* s = stage.get();
    if (options_.batch_max > 1) {
      // Batch-aware transfer: emissions accumulate in the stage's
      // buffer (with the watermark a kData message would have carried)
      // and seal into one ring message at the batch bound, before any
      // punctuation goes out, and at the end of every quantum.
      s->op->set_emit([this, s](const stt::TupleRef& t) {
        s->out_count.fetch_add(1, std::memory_order_relaxed);
        if (s->outputs.empty()) return;
        s->emit_buffer.push_back(
            {t, s->op->output_watermark(), s->current_ingest_ns});
        if (s->emit_buffer.size() >= options_.batch_max) FlushEmitBuffers(s);
      });
    } else {
      s->op->set_emit([this, s](const stt::TupleRef& t) {
        s->out_count.fetch_add(1, std::memory_order_relaxed);
        Message m;
        m.kind = Message::Kind::kData;
        m.tuple = t;
        m.watermark = s->op->output_watermark();
        m.ingest_ns = s->current_ingest_ns;
        for (Channel* out : s->outputs) {
          Message copy = m;
          PushBlocking(out, std::move(copy));
        }
      });
    }
    s->op->set_late_emit([this](const stt::TupleRef& t) {
      MutexLock lock(&late_mu_);
      late_rows_.push_back(t->ToString());
    });
  }
  return Status::OK();
}

Status ThreadedRuntime::Start() {
  if (started_) {
    return Status::FailedPrecondition("threaded runtime already started");
  }
  SL_RETURN_IF_ERROR(Build());
  started_ = true;
  wall_start_ = std::chrono::steady_clock::now();
  if (options_.pool_size > 0) {
    // Per-node worker pool: the node's stages multiplex over pool_size
    // workers via the run_state claim protocol instead of getting one
    // dedicated thread each.
    pool_threads_.reserve(options_.pool_size);
    for (size_t i = 0; i < options_.pool_size; ++i) {
      pool_threads_.emplace_back([this] { PoolLoop(); });
    }
  } else {
    for (auto& stage : stages_) {
      Stage* s = stage.get();
      s->thread = std::thread([this, s] { StageLoop(s); });
    }
  }
  return Status::OK();
}

void ThreadedRuntime::EmitPunct(Timestamp time) {
  for (Channel* channel : all_source_channels_) {
    Message m;
    m.kind = Message::Kind::kPunct;
    m.time = time;
    PushBlocking(channel, std::move(m));
  }
}

void ThreadedRuntime::AdvanceTime(Timestamp now) {
  while (!boundaries_.empty() && boundaries_.top().at <= now) {
    Boundary b = boundaries_.top();
    boundaries_.pop();
    if (b.at > last_punct_) {
      EmitPunct(b.at);
      last_punct_ = b.at;
    }
    boundaries_.push({b.at + b.interval, b.interval});
  }
  virtual_now_ = std::max(virtual_now_, now);
}

Status ThreadedRuntime::Feed(const std::string& source,
                             const stt::TupleRef& tuple, Timestamp at,
                             Timestamp watermark) {
  if (!started_ || finished_) {
    return Status::FailedPrecondition("threaded runtime is not running");
  }
  auto it = source_channels_.find(source);
  if (it == source_channels_.end()) {
    return Status::NotFound("'" + source + "' is not a source of dataflow '" +
                            dataflow_.name() + "'");
  }
  // Punctuation for boundaries <= `at` goes first: a flush at B must
  // not see a tuple ingested at B (the simulator's tie-break — the
  // re-armed flush timer has the smaller sequence number).
  AdvanceTime(at);
  fed_.fetch_add(1, std::memory_order_relaxed);
  Message m;
  m.kind = Message::Kind::kData;
  m.tuple = tuple;
  m.watermark = watermark;
  m.ingest_ns = NowNs();
  for (Channel* channel : it->second) {
    Message copy = m;
    PushBlocking(channel, std::move(copy));
  }
  return Status::OK();
}

void ThreadedRuntime::PushBlocking(Channel* channel, Message&& message) {
  // Byte gauge per edge. This deliberately calls the tuple's memoized
  // ApproxValueBytes from whichever thread produces the edge — the
  // memoization must be (and now is) an atomic, see stt/tuple.h.
  if (message.tuple != nullptr) {
    channel->bytes.fetch_add(message.tuple->ApproxValueBytes(),
                             std::memory_order_relaxed);
  }
  for (const Message::Item& item : message.items) {
    channel->bytes.fetch_add(item.tuple->ApproxValueBytes(),
                             std::memory_order_relaxed);
  }
  if (!channel->ring.TryPush(message)) {
    // Out of credits: the consumer is behind.
    channel->backpressure_waits.fetch_add(1, std::memory_order_relaxed);
    if (options_.pool_size > 0) {
      // Pooled mode: parking could deadlock the pool (every worker
      // blocked pushing into rings only pooled workers drain). Instead
      // the producer help-runs its consumer inline; a failed claim
      // means another thread is draining it right now, and the chain
      // of helpers bottoms out at the sinks, which never push.
      for (;;) {
        if (channel->ring.TryPush(message)) break;
        if (abort_.load(std::memory_order_relaxed)) return;  // dropped
        if (!TryHelp(channel->consumer)) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    } else {
      // Dedicated workers: park until a pop returns a credit
      // (backpressure) or the run is aborted.
      bool pushed = channel->space.Await(
          [&] { return channel->ring.TryPush(message); },
          [&] { return abort_.load(std::memory_order_relaxed); });
      if (!pushed) return;  // aborted; the message is dropped
    }
  }
  const uint64_t depth =
      channel->pushed.fetch_add(1, std::memory_order_relaxed) + 1 -
      channel->popped.load(std::memory_order_relaxed);
  if (depth > channel->peak_depth.load(std::memory_order_relaxed)) {
    channel->peak_depth.store(depth, std::memory_order_relaxed);
  }
  if (options_.pool_size > 0) {
    ScheduleStage(channel->consumer);
  } else {
    channel->consumer->work.Notify();
  }
}

void ThreadedRuntime::HandleData(Stage* stage, size_t input_idx,
                                 Message& message) {
  stage->in_count.fetch_add(1, std::memory_order_relaxed);
  if (stage->op != nullptr) {
    Channel* channel = stage->inputs[input_idx];
    stage->current_ingest_ns = message.ingest_ns;
    stage->op->ObserveWatermark(channel->port, message.watermark);
    Status status = stage->op->Process(channel->port, message.tuple);
    if (!status.ok()) {
      stage->process_errors.fetch_add(1, std::memory_order_relaxed);
      SL_LOG(kError) << "threaded process of " << stage->name
                     << " failed: " << status.ToString();
    }
    return;
  }
  if (options_.sink_delay_ns > 0) SpinFor(options_.sink_delay_ns);
  if (message.ingest_ns > 0) {
    stage->latencies_ns.push_back(NowNs() - message.ingest_ns);
  }
  if (!options_.count_only_sinks) {
    Status status = stage->sink->Write(message.tuple);
    if (!status.ok()) {
      stage->process_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ThreadedRuntime::HandleBatch(Stage* stage, size_t input_idx,
                                  Message& message) {
  if (stage->op != nullptr) {
    Channel* channel = stage->inputs[input_idx];
    // One frontier fold for the whole run: the sealed watermark is the
    // max over the items' per-tuple promises, the per-port fold is a
    // max-merge, and the frontier is only consulted at punctuation
    // barriers, which FIFO-follow the batch — so this is equivalent to
    // observing each item's watermark in turn.
    stage->op->ObserveWatermark(channel->port, message.watermark);
    if (options_.columnar_batch && stage->op->batchable(channel->port)) {
      // Columnar run: the whole message goes through ProcessBatch; the
      // lineage stamp is applied per row just before its emissions via
      // the on_row hook (same point the per-tuple loop would set it).
      stage->in_count.fetch_add(message.items.size(),
                                std::memory_order_relaxed);
      stage->batch_refs.clear();
      for (const Message::Item& item : message.items) {
        stage->batch_refs.push_back(item.tuple);
      }
      stage->batch_ctx.errors.clear();
      stage->batch_ctx.on_row = [stage, &message](size_t row) {
        stage->current_ingest_ns = message.items[row].ingest_ns;
      };
      Status status =
          stage->op->ProcessBatch(channel->port, stage->batch_refs.data(),
                                  stage->batch_refs.size(), &stage->batch_ctx);
      for (const ops::Operator::BatchRowError& e : stage->batch_ctx.errors) {
        stage->process_errors.fetch_add(1, std::memory_order_relaxed);
        SL_LOG(kError) << "threaded process of " << stage->name
                       << " failed: " << e.status.ToString();
      }
      if (!status.ok()) {
        stage->process_errors.fetch_add(1, std::memory_order_relaxed);
        SL_LOG(kError) << "threaded process of " << stage->name
                       << " failed: " << status.ToString();
      }
      stage->batch_ctx.on_row = nullptr;
      return;
    }
    for (const Message::Item& item : message.items) {
      stage->in_count.fetch_add(1, std::memory_order_relaxed);
      stage->current_ingest_ns = item.ingest_ns;
      Status status = stage->op->Process(channel->port, item.tuple);
      if (!status.ok()) {
        stage->process_errors.fetch_add(1, std::memory_order_relaxed);
        SL_LOG(kError) << "threaded process of " << stage->name
                       << " failed: " << status.ToString();
      }
    }
    return;
  }
  for (const Message::Item& item : message.items) {
    stage->in_count.fetch_add(1, std::memory_order_relaxed);
    if (options_.sink_delay_ns > 0) SpinFor(options_.sink_delay_ns);
    if (item.ingest_ns > 0) {
      stage->latencies_ns.push_back(NowNs() - item.ingest_ns);
    }
    if (!options_.count_only_sinks) {
      Status status = stage->sink->Write(item.tuple);
      if (!status.ok()) {
        stage->process_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ThreadedRuntime::FlushEmitBuffers(Stage* stage) {
  if (stage->emit_buffer.empty()) return;
  if (stage->emit_buffer.size() == 1) {
    // A lone buffered tuple travels as plain kData (no batch overhead).
    const Message::Item& item = stage->emit_buffer.front();
    Message m;
    m.kind = Message::Kind::kData;
    m.tuple = item.tuple;
    m.watermark = item.watermark;
    m.ingest_ns = item.ingest_ns;
    for (Channel* out : stage->outputs) {
      Message copy = m;
      PushBlocking(out, std::move(copy));
    }
  } else {
    Message m;
    m.kind = Message::Kind::kBatch;
    m.items = std::move(stage->emit_buffer);
    // output_watermark() is monotone, so the last item carries the max.
    m.watermark = m.items.back().watermark;
    for (size_t i = 0; i + 1 < stage->outputs.size(); ++i) {
      Message copy = m;
      PushBlocking(stage->outputs[i], std::move(copy));
    }
    if (!stage->outputs.empty()) {
      PushBlocking(stage->outputs.back(), std::move(m));
    }
  }
  stage->emit_buffer.clear();
}

void ThreadedRuntime::HandlePunct(Stage* stage, size_t input_idx,
                                  Timestamp time) {
  if (time > stage->punct_in[input_idx]) stage->punct_in[input_idx] = time;
  AdvanceFrontier(stage);
}

void ThreadedRuntime::AdvanceFrontier(Stage* stage) {
  // The frontier is the min punctuation over the inputs still open; a
  // closed input stops constraining it (no further data can arrive).
  bool any_open = false;
  Timestamp new_min = 0;
  for (size_t i = 0; i < stage->punct_in.size(); ++i) {
    if (stage->input_closed[i]) continue;
    if (!any_open || stage->punct_in[i] < new_min) {
      new_min = stage->punct_in[i];
    }
    any_open = true;
  }
  if (!any_open || new_min <= stage->punct_min) return;
  stage->punct_min = new_min;
  if (stage->op != nullptr && stage->next_flush > 0) {
    // Fire every boundary the punctuation minimum just passed, in
    // order — the flush cascade (emissions land downstream before the
    // punctuation is forwarded) reproduces the staggered schedule.
    while (stage->next_flush <= new_min) {
      stage->current_ingest_ns = 0;  // flush emissions have no lineage
      Status status = stage->op->Flush(stage->next_flush);
      if (!status.ok()) {
        stage->process_errors.fetch_add(1, std::memory_order_relaxed);
        SL_LOG(kError) << "threaded flush of " << stage->name
                       << " failed: " << status.ToString();
      }
      stage->next_flush += stage->interval;
    }
  }
  // Seal pending batched emissions (data processed earlier in this
  // round plus anything the flush cascade produced) before forwarding
  // the punctuation — per-channel FIFO keeps data ahead of its barrier.
  if (stage->op != nullptr) FlushEmitBuffers(stage);
  Message m;
  m.kind = Message::Kind::kPunct;
  m.time = new_min;
  for (Channel* out : stage->outputs) {
    Message copy = m;
    PushBlocking(out, std::move(copy));
  }
}

bool ThreadedRuntime::HasRunnableInput(const Stage* stage) const {
  for (size_t i = 0; i < stage->inputs.size(); ++i) {
    if (stage->input_closed[i]) continue;
    if (stage->punct_in[i] > stage->punct_min) continue;
    if (!stage->inputs[i]->ring.Empty()) return true;
  }
  return false;
}

bool ThreadedRuntime::RunStageQuantum(Stage* stage) {
  const size_t n_inputs = stage->inputs.size();
  Message message;
  bool progress = false;
  for (size_t i = 0; i < n_inputs; ++i) {
    if (stage->input_closed[i]) continue;
    // Barrier: an input whose punctuation is ahead of the stage
    // frontier already delivered a boundary the other open ports have
    // not confirmed — draining it further would admit its future
    // tuples into a window the laggard port has yet to close.
    if (stage->punct_in[i] > stage->punct_min) continue;
    Channel* channel = stage->inputs[i];
    // Bounded drain per round keeps multi-port stages fair: a firehose
    // on one port cannot starve the other port's punctuation. In pool
    // mode the same bound is the scheduling quantum — a stage yields
    // its worker after it.
    size_t budget = 256;
    while (budget-- > 0 && channel->ring.TryPop(&message)) {
      channel->popped.fetch_add(1, std::memory_order_relaxed);
      channel->space.Notify();
      progress = true;
      if (message.kind == Message::Kind::kEos) {
        stage->input_closed[i] = true;
        ++stage->eos_count;
        // A closed input no longer constrains the frontier; the
        // remaining open ports may now advance it.
        AdvanceFrontier(stage);
        break;
      }
      if (message.kind == Message::Kind::kData) {
        HandleData(stage, i, message);
      } else if (message.kind == Message::Kind::kBatch) {
        HandleBatch(stage, i, message);
      } else {
        HandlePunct(stage, i, message.time);
        // The punctuation may have left this port ahead of a slower
        // sibling: stop draining it until the frontier catches up.
        if (stage->punct_in[i] > stage->punct_min) break;
      }
      if (abort_.load(std::memory_order_relaxed)) return progress;
    }
    if (abort_.load(std::memory_order_relaxed)) return progress;
  }
  if (stage->op != nullptr) {
    stage->cache_gauge.store(stage->op->stats().cache_size,
                             std::memory_order_relaxed);
    // Seal pending batched emissions before the stage yields or parks —
    // a buffered tuple must never wait on more input arriving.
    FlushEmitBuffers(stage);
  }
  if (stage->eos_count >= n_inputs &&
      !stage->done.load(std::memory_order_relaxed)) {
    // All inputs closed and drained: close downstream, exactly once.
    for (Channel* out : stage->outputs) {
      Message m;
      m.kind = Message::Kind::kEos;
      PushBlocking(out, std::move(m));
    }
    stage->done.store(true, std::memory_order_release);
    stages_done_.fetch_add(1, std::memory_order_relaxed);
    pool_gate_.Notify();
  }
  return progress;
}

void ThreadedRuntime::StageLoop(Stage* stage) {
  while (!stage->done.load(std::memory_order_relaxed)) {
    const bool progress = RunStageQuantum(stage);
    if (abort_.load(std::memory_order_relaxed)) return;
    if (!progress && !stage->done.load(std::memory_order_relaxed)) {
      stage->work.Await([&] { return HasRunnableInput(stage); },
                        [&] { return abort_.load(std::memory_order_relaxed); });
      if (abort_.load(std::memory_order_relaxed)) return;
    }
  }
}

// -- pooled scheduling -------------------------------------------------------
//
// run_state is the claim token: whoever CASes a stage into kRunning is
// its worker for one quantum, which keeps the worker-owned stage state
// single-threaded with the handoff ordered by the CAS itself. The
// release protocol closes the classic lost-wakeup race without a
// rescan: a producer that pushes while the stage runs either marks it
// dirty (the release CAS fails and the runner re-checks) or finds it
// idle afterwards and queues it.

void ThreadedRuntime::ScheduleStage(Stage* stage) {
  for (;;) {
    int state = stage->run_state.load();
    if (state == Stage::kQueued || state == Stage::kDirty) return;
    if (state == Stage::kIdle) {
      int expected = Stage::kIdle;
      if (stage->run_state.compare_exchange_weak(expected, Stage::kQueued)) {
        {
          MutexLock lock(&ready_mu_);
          ready_.push_back(stage);
        }
        pool_gate_.Notify();
        return;
      }
    } else {  // kRunning: tell the runner to re-check before idling
      int expected = Stage::kRunning;
      if (stage->run_state.compare_exchange_weak(expected, Stage::kDirty)) {
        return;
      }
    }
  }
}

ThreadedRuntime::Stage* ThreadedRuntime::PopReady() {
  MutexLock lock(&ready_mu_);
  while (!ready_.empty()) {
    Stage* stage = ready_.front();
    ready_.pop_front();
    // Validate the hint: a helper may have claimed the stage already
    // (stale entry — drop it; its claim token moved to a newer entry).
    int expected = Stage::kQueued;
    if (stage->run_state.compare_exchange_strong(expected, Stage::kRunning)) {
      return stage;
    }
  }
  return nullptr;
}

void ThreadedRuntime::ReleaseStage(Stage* stage) {
  for (;;) {
    if (stage->done.load(std::memory_order_relaxed) ||
        abort_.load(std::memory_order_relaxed)) {
      stage->run_state.store(Stage::kIdle);
      return;
    }
    if (HasRunnableInput(stage)) {
      // Requeue at the back: FIFO fairness across the node's stages.
      stage->run_state.store(Stage::kQueued);
      {
        MutexLock lock(&ready_mu_);
        ready_.push_back(stage);
      }
      pool_gate_.Notify();
      return;
    }
    int expected = Stage::kRunning;
    if (stage->run_state.compare_exchange_strong(expected, Stage::kIdle)) {
      return;  // clean release; the next push queues the stage
    }
    // A producer pushed mid-run (kDirty): re-check with the claim held.
    stage->run_state.store(Stage::kRunning);
  }
}

bool ThreadedRuntime::TryHelp(Stage* stage) {
  int expected = Stage::kIdle;
  if (!stage->run_state.compare_exchange_strong(expected, Stage::kRunning)) {
    expected = Stage::kQueued;
    if (!stage->run_state.compare_exchange_strong(expected, Stage::kRunning)) {
      return false;  // claimed elsewhere — it is making progress
    }
  }
  stage->quanta.fetch_add(1, std::memory_order_relaxed);
  RunStageQuantum(stage);
  ReleaseStage(stage);
  return true;
}

void ThreadedRuntime::PoolLoop() {
  const size_t total = stages_.size();
  while (!abort_.load(std::memory_order_relaxed) &&
         stages_done_.load(std::memory_order_relaxed) < total) {
    Stage* stage = PopReady();
    if (stage == nullptr) {
      pool_gate_.Await(
          [&] {
            if (abort_.load(std::memory_order_relaxed)) return true;
            if (stages_done_.load(std::memory_order_relaxed) >= total) {
              return true;
            }
            MutexLock lock(&ready_mu_);
            return !ready_.empty();
          },
          [&] { return abort_.load(std::memory_order_relaxed); });
      continue;
    }
    stage->quanta.fetch_add(1, std::memory_order_relaxed);
    RunStageQuantum(stage);
    ReleaseStage(stage);
  }
}

void ThreadedRuntime::JoinWorkers() {
  // Feed threads (live mode) first: they are the producers the worker
  // drain depends on. The mutex makes joining idempotent when Abort
  // races Finish/WaitLive from another thread.
  MutexLock lock(&join_mu_);
  for (auto& thread : feed_threads_) {
    if (thread.joinable()) thread.join();
  }
  for (auto& stage : stages_) {
    if (stage->thread.joinable()) stage->thread.join();
  }
  for (auto& thread : pool_threads_) {
    if (thread.joinable()) thread.join();
  }
}

Result<ThreadedRunResult> ThreadedRuntime::Finish(Timestamp end_time) {
  if (!started_) {
    return Status::FailedPrecondition("threaded runtime was never started");
  }
  if (finished_) {
    return Status::FailedPrecondition("threaded runtime already finished");
  }
  if (live_) {
    return Status::FailedPrecondition(
        "live runs finish via WaitLive (the feed threads already own the "
        "punctuation schedule and end-of-stream)");
  }
  AdvanceTime(end_time);
  for (Channel* channel : all_source_channels_) {
    Message m;
    m.kind = Message::Kind::kEos;
    PushBlocking(channel, std::move(m));
  }
  return FinishCollect();
}

Result<ThreadedRunResult> ThreadedRuntime::FinishCollect() {
  JoinWorkers();
  finished_ = true;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();

  ThreadedRunResult result;
  result.tuples_fed = fed_.load(std::memory_order_relaxed);
  result.activations = recorder_->Take();
  {
    MutexLock lock(&late_mu_);
    result.late_rows = late_rows_;
  }
  std::sort(result.late_rows.begin(), result.late_rows.end());

  std::vector<int64_t> latencies;
  for (auto& stage : stages_) {
    result.process_errors +=
        stage->process_errors.load(std::memory_order_relaxed);
    if (stage->op != nullptr) {
      result.op_stats[stage->name] = stage->op->stats();
    } else {
      result.tuples_delivered +=
          stage->in_count.load(std::memory_order_relaxed);
      latencies.insert(latencies.end(), stage->latencies_ns.begin(),
                       stage->latencies_ns.end());
      if (auto* collect = dynamic_cast<sinks::CollectSink*>(stage->sink)) {
        std::vector<std::string> rows;
        rows.reserve(collect->tuples().size());
        for (const auto& t : collect->tuples()) rows.push_back(t->ToString());
        std::sort(rows.begin(), rows.end());
        result.sink_rows[stage->name] = std::move(rows);
      }
    }
    for (Channel* channel : stage->inputs) {
      result.backpressure_waits +=
          channel->backpressure_waits.load(std::memory_order_relaxed);
    }
    result.stage_samples.push_back(SampleStage(*stage, /*final=*/true));
  }

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](size_t p) {
      size_t idx = std::min(latencies.size() - 1, latencies.size() * p / 100);
      return latencies[idx];
    };
    result.latency.count = latencies.size();
    result.latency.p50_ns = pct(50);
    result.latency.p95_ns = pct(95);
    result.latency.p99_ns = pct(99);
    result.latency.max_ns = latencies.back();
  }
  result.wall_seconds = wall;
  if (wall > 0) {
    result.tuples_per_sec = static_cast<double>(result.tuples_delivered) / wall;
  }
  return result;
}

void ThreadedRuntime::Abort() {
  if (!started_ || finished_) return;
  abort_.store(true, std::memory_order_relaxed);
  for (auto& stage : stages_) stage->work.Notify();
  for (auto& channel : channels_) channel->space.Notify();
  pool_gate_.Notify();
  JoinWorkers();
  finished_ = true;
}

monitor::OperatorSample ThreadedRuntime::SampleStage(const Stage& stage,
                                                     bool final) const {
  monitor::OperatorSample sample;
  sample.dataflow = dataflow_.name();
  sample.op_name = stage.name;
  sample.node_id = "worker";
  sample.total_in = stage.in_count.load(std::memory_order_relaxed);
  sample.total_out = stage.out_count.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  if (elapsed > 0) {
    sample.in_per_sec = static_cast<double>(sample.total_in) / elapsed;
    sample.out_per_sec = static_cast<double>(sample.total_out) / elapsed;
  }
  sample.cache_size = stage.cache_gauge.load(std::memory_order_relaxed);
  sample.parallelism = stage.parallelism;
  sample.pool_size = options_.pool_size;
  sample.quanta = stage.quanta.load(std::memory_order_relaxed);
  if (final && stage.op != nullptr) {
    // Final samples only: the operator's plain counters are safe to
    // read once its worker has joined.
    const ops::OperatorStats& op_stats = stage.op->stats();
    sample.batches = op_stats.batches;
    if (op_stats.batches > 0) {
      sample.batch_fill = static_cast<double>(op_stats.batched_tuples) /
                          static_cast<double>(op_stats.batches);
    }
  }
  if (final && stage.op != nullptr && stage.op->parallelism() > 1) {
    // Per-instance load and key skew, computed as the simulator's
    // monitor does. Final samples only: the shard counters are plain
    // fields, safe to read once the workers have joined.
    const size_t par = stage.op->parallelism();
    uint64_t max_in = 0;
    uint64_t sum_in = 0;
    for (size_t k = 0; k < par; ++k) {
      const ops::OperatorStats* inst = stage.op->instance_stats(k);
      uint64_t in = inst != nullptr ? inst->tuples_in : 0;
      sample.instance_load.push_back(in);
      max_in = std::max(max_in, in);
      sum_in += in;
    }
    if (sum_in > 0) {
      sample.key_skew = static_cast<double>(max_in) *
                        static_cast<double>(par) /
                        static_cast<double>(sum_in);
    }
  }
  uint64_t depth = 0;
  for (const Channel* channel : stage.inputs) {
    uint64_t d;
    if (final) {
      d = channel->peak_depth.load(std::memory_order_relaxed);
    } else {
      const uint64_t pushed = channel->pushed.load(std::memory_order_relaxed);
      const uint64_t popped = channel->popped.load(std::memory_order_relaxed);
      d = pushed > popped ? pushed - popped : 0;
    }
    depth = std::max(depth, d);
    sample.backpressure_waits +=
        channel->backpressure_waits.load(std::memory_order_relaxed);
  }
  sample.queue_depth = static_cast<size_t>(depth);
  return sample;
}

std::vector<monitor::OperatorSample> ThreadedRuntime::SampleStages() const {
  std::vector<monitor::OperatorSample> samples;
  samples.reserve(stages_.size());
  for (const auto& stage : stages_) {
    samples.push_back(SampleStage(*stage, /*final=*/false));
  }
  return samples;
}

Result<ThreadedRunResult> ThreadedRuntime::RunTrace(const InputTrace& trace,
                                                    Timestamp end_time) {
  SL_RETURN_IF_ERROR(Start());
  if (options_.batch_max <= 1) {
    for (const TraceEvent& event : trace) {
      SL_RETURN_IF_ERROR(Feed(event.source, event.tuple, event.at,
                              event.watermark));
    }
    return Finish(end_time);
  }
  // Batch-aware replay: runs of consecutive same-source events that
  // stay below the next flush boundary coalesce into one ring message.
  // Crossing a boundary would reorder data past its punctuation, so the
  // run stops there.
  size_t i = 0;
  while (i < trace.size()) {
    const TraceEvent& first = trace[i];
    auto it = source_channels_.find(first.source);
    if (it == source_channels_.end()) {
      return Status::NotFound("'" + first.source +
                              "' is not a source of dataflow '" +
                              dataflow_.name() + "'");
    }
    AdvanceTime(first.at);
    // After AdvanceTime every scheduled boundary is strictly ahead of
    // first.at, so events below the heap top batch safely.
    const Timestamp limit = boundaries_.empty()
                                ? std::numeric_limits<Timestamp>::max()
                                : boundaries_.top().at;
    size_t j = i + 1;
    while (j < trace.size() && j - i < options_.batch_max &&
           trace[j].source == first.source && trace[j].at < limit) {
      ++j;
    }
    fed_.fetch_add(j - i, std::memory_order_relaxed);
    Message m;
    if (j - i == 1) {
      m.kind = Message::Kind::kData;
      m.tuple = first.tuple;
      m.watermark = first.watermark;
      m.ingest_ns = NowNs();
    } else {
      m.kind = Message::Kind::kBatch;
      m.items.reserve(j - i);
      const int64_t now_ns = NowNs();
      Timestamp wm = stt::kNoWatermark;
      for (size_t k = i; k < j; ++k) {
        m.items.push_back({trace[k].tuple, trace[k].watermark, now_ns});
        if (trace[k].watermark != stt::kNoWatermark &&
            (wm == stt::kNoWatermark || trace[k].watermark > wm)) {
          wm = trace[k].watermark;
        }
      }
      m.watermark = wm;
      AdvanceTime(trace[j - 1].at);  // bookkeeping; no boundary <= it
    }
    for (Channel* channel : it->second) {
      Message copy = m;
      PushBlocking(channel, std::move(copy));
    }
    i = j;
  }
  return Finish(end_time);
}

// -- live wall-clock ingestion -----------------------------------------------

void ThreadedRuntime::PaceUntil(Timestamp at) {
  if (options_.time_scale <= 0) return;
  // Virtual milliseconds after deploy -> wall nanoseconds after start.
  const double wall_ns = static_cast<double>(at - options_.deploy_time) *
                         1e6 / options_.time_scale;
  const auto deadline =
      wall_start_ + std::chrono::nanoseconds(static_cast<int64_t>(wall_ns));
  while (!abort_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    // Abortable slices: never oversleep a shutdown by more than ~1 ms.
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
        remaining, std::chrono::milliseconds(1)));
  }
}

void ThreadedRuntime::FeedLoop(const std::string& source,
                               std::vector<TraceEvent> events) {
  const std::vector<Channel*>& channels = source_channels_.at(source);
  size_t next_punct = 0;
  // Timer-minted punctuation: every boundary due at or before `through`
  // goes out before any tuple stamped at or past it — the simulator
  // tie-break, enforced per source thread. Under pacing each boundary
  // waits for its own wall deadline, which is what makes it a flush
  // timer: it fires even when the next tuple is far in the future.
  auto mint_through = [&](Timestamp through) {
    while (next_punct < punct_schedule_.size() &&
           punct_schedule_[next_punct] <= through) {
      const Timestamp boundary = punct_schedule_[next_punct++];
      PaceUntil(boundary);
      if (abort_.load(std::memory_order_relaxed)) return;
      for (Channel* channel : channels) {
        Message m;
        m.kind = Message::Kind::kPunct;
        m.time = boundary;
        PushBlocking(channel, std::move(m));
      }
    }
  };
  size_t i = 0;
  while (i < events.size() && !abort_.load(std::memory_order_relaxed)) {
    mint_through(events[i].at);
    PaceUntil(events[i].at);
    if (abort_.load(std::memory_order_relaxed)) return;
    // Unpaced runs may coalesce events up to (not across) the next
    // boundary; paced runs feed tuple by tuple — every tuple has its
    // own wall deadline.
    size_t j = i + 1;
    if (options_.batch_max > 1 && options_.time_scale <= 0) {
      const Timestamp limit = next_punct < punct_schedule_.size()
                                  ? punct_schedule_[next_punct]
                                  : std::numeric_limits<Timestamp>::max();
      while (j < events.size() && j - i < options_.batch_max &&
             events[j].at < limit) {
        ++j;
      }
    }
    fed_.fetch_add(j - i, std::memory_order_relaxed);
    Message m;
    if (j - i == 1) {
      m.kind = Message::Kind::kData;
      m.tuple = events[i].tuple;
      m.watermark = events[i].watermark;
      m.ingest_ns = NowNs();
    } else {
      m.kind = Message::Kind::kBatch;
      m.items.reserve(j - i);
      const int64_t now_ns = NowNs();
      Timestamp wm = stt::kNoWatermark;
      for (size_t k = i; k < j; ++k) {
        m.items.push_back({events[k].tuple, events[k].watermark, now_ns});
        if (events[k].watermark != stt::kNoWatermark &&
            (wm == stt::kNoWatermark || events[k].watermark > wm)) {
          wm = events[k].watermark;
        }
      }
      m.watermark = wm;
    }
    for (Channel* channel : channels) {
      Message copy = m;
      PushBlocking(channel, std::move(copy));
    }
    i = j;
  }
  // Tail: the rest of the flush schedule (on its wall deadlines when
  // paced), then end-of-stream.
  mint_through(std::numeric_limits<Timestamp>::max());
  if (abort_.load(std::memory_order_relaxed)) return;
  for (Channel* channel : channels) {
    Message m;
    m.kind = Message::Kind::kEos;
    PushBlocking(channel, std::move(m));
  }
}

Status ThreadedRuntime::StartLive(const InputTrace& trace,
                                  Timestamp end_time) {
  SL_RETURN_IF_ERROR(Start());
  live_ = true;
  // Precompute the union flush schedule once. Every feed thread mints
  // the full (deduplicated) schedule into its own source's channels —
  // exactly what the trace-replay driver spreads over EmitPunct calls —
  // so each stage's min-over-open-inputs barrier sees the identical
  // punctuation stream on every port.
  while (!boundaries_.empty() && boundaries_.top().at <= end_time) {
    Boundary b = boundaries_.top();
    boundaries_.pop();
    if (b.at > last_punct_) {
      punct_schedule_.push_back(b.at);
      last_punct_ = b.at;
    }
    boundaries_.push({b.at + b.interval, b.interval});
  }
  // Partition the trace by source; every source feeds — one without
  // events still carries the punctuation schedule and end-of-stream.
  std::map<std::string, std::vector<TraceEvent>> per_source;
  for (const auto& entry : source_channels_) per_source[entry.first];
  for (const TraceEvent& event : trace) {
    auto it = per_source.find(event.source);
    if (it == per_source.end()) {
      return Status::NotFound("'" + event.source +
                              "' is not a source of dataflow '" +
                              dataflow_.name() + "'");
    }
    it->second.push_back(event);
  }
  feed_threads_.reserve(per_source.size());
  for (auto& entry : per_source) {
    std::string source = entry.first;
    std::vector<TraceEvent> events = std::move(entry.second);
    feed_threads_.emplace_back(
        [this, source = std::move(source),
         events = std::move(events)]() mutable {
          FeedLoop(source, std::move(events));
        });
  }
  return Status::OK();
}

Result<ThreadedRunResult> ThreadedRuntime::WaitLive() {
  if (!started_) {
    return Status::FailedPrecondition("threaded runtime was never started");
  }
  if (!live_) {
    return Status::FailedPrecondition(
        "not a live run: trace replay finishes via Finish");
  }
  if (finished_) {
    return Status::FailedPrecondition("threaded runtime already finished");
  }
  return FinishCollect();
}

Result<ThreadedRunResult> ThreadedRuntime::RunLive(const InputTrace& trace,
                                                   Timestamp end_time) {
  SL_RETURN_IF_ERROR(StartLive(trace, end_time));
  return WaitLive();
}

}  // namespace sl::exec
