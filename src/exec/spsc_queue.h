// StreamLoader: single-producer/single-consumer ring buffers — the
// channels of the wall-clock threaded runtime (exec/threaded_runtime.h).
//
// Every dataflow edge becomes one SpscRing: the upstream stage's worker
// thread is the only producer, the downstream stage's worker thread the
// only consumer. The bounded capacity doubles as the edge's credit pool
// for backpressure: a producer that finds the ring full is out of
// credits and must wait until the consumer pops (each pop returns one
// credit), so pressure propagates transitively from slow sinks back to
// the sources. WaitGate supplies the sleep/wake half: waits are bounded
// (the condition is re-polled every millisecond), so a lost wakeup can
// cost latency but never liveness.

#ifndef STREAMLOADER_EXEC_SPSC_QUEUE_H_
#define STREAMLOADER_EXEC_SPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace sl::exec {

/// \brief Bounded lock-free SPSC ring over a power-of-two slot array.
///
/// The classic two-index scheme: the producer owns head_ (next write),
/// the consumer owns tail_ (next read). Each side publishes its index
/// with a release store and reads the other's with an acquire load, and
/// additionally caches the last value it saw of the opposite index so
/// the common non-full/non-empty path touches only its own cache line.
/// Exactly one thread may call TryPush and one thread TryPop; any
/// thread may call SizeApprox/Empty (the result is a snapshot).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cap_ = cap;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer only. Moves from `item` and returns true when a slot (a
  /// credit) is available; leaves `item` untouched and returns false
  /// when the ring is full.
  bool TryPush(T& item) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ >= cap_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= cap_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Moves the oldest element into `*out`; false when
  /// the ring is empty.
  bool TryPop(T* out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    *out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot of the queued element count (any thread).
  size_t SizeApprox() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }

  bool Empty() const { return SizeApprox() == 0; }

  size_t capacity() const { return cap_; }

 private:
  size_t cap_ = 0;
  size_t mask_ = 0;
  std::vector<T> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};  // written by the producer
  alignas(64) std::atomic<uint64_t> tail_{0};  // written by the consumer
  alignas(64) uint64_t tail_cache_ = 0;  // producer's view of tail_
  alignas(64) uint64_t head_cache_ = 0;  // consumer's view of head_
};

/// \brief Bounded sleep/wake rendezvous for ring producers (waiting for
/// credits) and stage workers (waiting for input).
///
/// Notify is cheap when nobody waits: it reads one atomic flag and
/// returns. The waiter publishes the flag, re-checks its condition and
/// then parks on the condition variable with a 1 ms bound, so the
/// unavoidable flag/publish race window (a notifier can read the flag
/// just before the waiter sets it) degrades to at most one poll period
/// of added latency — correctness never depends on a wakeup arriving.
class WaitGate {
 public:
  /// Wakes the current waiter, if any.
  void Notify() SL_EXCLUDES(mu_) {
    if (!waiting_.load(std::memory_order_seq_cst)) return;
    MutexLock lock(&mu_);
    cv_.NotifyAll();
  }

  /// Blocks until `ready()` returns true (-> true) or `aborted()`
  /// returns true (-> false). `ready` may have side effects (e.g. a
  /// TryPush attempt); it is re-invoked on every wakeup or poll tick.
  template <typename ReadyFn, typename AbortFn>
  bool Await(ReadyFn ready, AbortFn aborted) SL_EXCLUDES(mu_) {
    if (ready()) return true;
    MutexLock lock(&mu_);
    waiting_.store(true, std::memory_order_seq_cst);
    for (;;) {
      if (ready()) break;
      if (aborted()) {
        waiting_.store(false, std::memory_order_seq_cst);
        return false;
      }
      cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
    }
    waiting_.store(false, std::memory_order_seq_cst);
    return true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::atomic<bool> waiting_{false};
};

/// \brief Small persistent thread pool with a blocking parallel-for.
///
/// Backs the partitioned-instance shard threads: the threaded runtime
/// hands each partitioned wrapper a ShardExecutor that forwards to one
/// of these, so an N-way operator's shards flush concurrently instead
/// of sharing their stage's thread. ParallelFor is serialized (one
/// batch at a time); the calling thread helps execute the batch, so
/// the pool adds parallelism without ever being a liveness dependency.
/// Batch bodies must not block on each other — shard flushes are
/// independent by construction (they write per-shard capture buffers,
/// never the channel rings).
class TaskPool {
 public:
  explicit TaskPool(size_t threads) {
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  ~TaskPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& worker : workers_) worker.join();
  }

  /// Runs `body(i)` for every i in [0, n); returns when all completed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body)
      SL_EXCLUDES(run_mu_, mu_) {
    if (n == 0) return;
    if (n == 1 || workers_.empty()) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    MutexLock serialize(&run_mu_);
    Batch batch;
    batch.body = &body;
    batch.n = n;
    {
      MutexLock lock(&mu_);
      batch_ = &batch;
    }
    cv_.NotifyAll();
    Run(&batch);  // the caller helps
    // The batch lives on this stack frame: wait until every index ran
    // AND no worker still holds the pointer (`active_` covers the gap
    // between a worker's last claim attempt and its release).
    MutexLock lock(&mu_);
    batch_ = nullptr;
    while (batch.done.load(std::memory_order_acquire) < n || active_ > 0) {
      done_cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
    }
  }

  size_t thread_count() const { return workers_.size(); }

 private:
  struct Batch {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  static void Run(Batch* batch) {
    for (;;) {
      const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->n) return;
      (*batch->body)(i);
      batch->done.fetch_add(1, std::memory_order_release);
    }
  }

  void WorkerLoop() SL_EXCLUDES(mu_) {
    for (;;) {
      Batch* claimed = nullptr;
      {
        MutexLock lock(&mu_);
        if (stop_) return;
        Batch* batch = batch_;
        if (batch != nullptr &&
            batch->next.load(std::memory_order_relaxed) < batch->n) {
          ++active_;
          claimed = batch;
        } else {
          cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
          continue;
        }
      }
      Run(claimed);
      {
        MutexLock lock(&mu_);
        --active_;
      }
      done_cv_.NotifyAll();
    }
  }

  Mutex run_mu_;  // serializes ParallelFor callers
  Mutex mu_;
  CondVar cv_;
  CondVar done_cv_;
  Batch* batch_ SL_GUARDED_BY(mu_) = nullptr;
  size_t active_ SL_GUARDED_BY(mu_) = 0;  // workers inside Run
  bool stop_ SL_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace sl::exec

#endif  // STREAMLOADER_EXEC_SPSC_QUEUE_H_
