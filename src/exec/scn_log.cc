#include "exec/scn_log.h"

#include "util/strings.h"

namespace sl::exec {

const char* ScnCommandKindToString(ScnCommandKind kind) {
  switch (kind) {
    case ScnCommandKind::kBindSource: return "BIND_SOURCE";
    case ScnCommandKind::kDeployService: return "DEPLOY_SERVICE";
    case ScnCommandKind::kConfigureFlow: return "CONFIGURE_FLOW";
    case ScnCommandKind::kStartDataflow: return "START_DATAFLOW";
    case ScnCommandKind::kStopDataflow: return "STOP_DATAFLOW";
    case ScnCommandKind::kMigrateService: return "MIGRATE_SERVICE";
    case ScnCommandKind::kReplaceService: return "REPLACE_SERVICE";
    case ScnCommandKind::kActivateStream: return "ACTIVATE_STREAM";
    case ScnCommandKind::kDeactivateStream: return "DEACTIVATE_STREAM";
  }
  return "?";
}

std::string ScnCommand::ToString() const {
  std::string out = FormatTimestamp(at);
  out += "  ";
  out += ScnCommandKindToString(kind);
  if (!subject.empty()) {
    out += " ";
    out += subject;
  }
  if (!detail.empty()) {
    out += " -> ";
    out += detail;
  }
  return out;
}

void ScnLog::Record(Timestamp at, ScnCommandKind kind, uint64_t deployment,
                    std::string subject, std::string detail) {
  ScnCommand cmd;
  cmd.at = at;
  cmd.kind = kind;
  cmd.deployment = deployment;
  cmd.subject = std::move(subject);
  cmd.detail = std::move(detail);
  commands_.push_back(std::move(cmd));
}

std::vector<ScnCommand> ScnLog::ForDeployment(uint64_t deployment) const {
  std::vector<ScnCommand> out;
  for (const auto& cmd : commands_) {
    if (cmd.deployment == deployment) out.push_back(cmd);
  }
  return out;
}

std::string ScnLog::ToScript() const {
  std::string out;
  for (const auto& cmd : commands_) {
    out += cmd.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace sl::exec
