#include "exec/placement.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace sl::exec {

const char* PlacementStrategyToString(PlacementStrategy strategy) {
  switch (strategy) {
    case PlacementStrategy::kRoundRobin: return "round_robin";
    case PlacementStrategy::kLeastLoaded: return "least_loaded";
    case PlacementStrategy::kSensorLocality: return "sensor_locality";
  }
  return "?";
}

Result<PlacementStrategy> PlacementStrategyFromString(
    const std::string& name) {
  std::string n = ToLower(name);
  if (n == "round_robin" || n == "roundrobin")
    return PlacementStrategy::kRoundRobin;
  if (n == "least_loaded" || n == "leastloaded")
    return PlacementStrategy::kLeastLoaded;
  if (n == "sensor_locality" || n == "locality")
    return PlacementStrategy::kSensorLocality;
  return Status::ParseError("unknown placement strategy '" + name + "'");
}

Result<std::string> Placer::LeastLoadedNode(const std::string& exclude) const {
  std::vector<std::string> ids = network_->NodeIds();
  if (ids.empty()) return Status::FailedPrecondition("network has no nodes");
  const net::NodeState* best = nullptr;
  std::string best_id;
  for (const auto& id : ids) {
    if (id == exclude && ids.size() > 1) continue;
    if (!network_->NodeIsUp(id)) continue;  // never place on a crashed node
    const net::NodeState* state = *network_->node(id);
    if (best == nullptr) {
      best = state;
      best_id = id;
      continue;
    }
    double load_a = state->work_in_window / state->config.capacity_per_sec;
    double load_b = best->work_in_window / best->config.capacity_per_sec;
    if (load_a < load_b ||
        (load_a == load_b && state->process_count < best->process_count)) {
      best = state;
      best_id = id;
    }
  }
  if (best == nullptr) {
    return Status::FailedPrecondition("network has no live nodes");
  }
  return best_id;
}

Result<std::string> Placer::Place(
    const std::vector<std::string>& upstream_nodes,
    const std::string& exclude) {
  std::vector<std::string> ids = network_->NodeIds();
  if (ids.empty()) return Status::FailedPrecondition("network has no nodes");

  switch (strategy_) {
    case PlacementStrategy::kRoundRobin: {
      for (size_t attempt = 0; attempt < ids.size(); ++attempt) {
        const std::string& id = ids[round_robin_next_ % ids.size()];
        ++round_robin_next_;
        if ((id != exclude || ids.size() == 1) && network_->NodeIsUp(id)) {
          return id;
        }
      }
      return ids[0];
    }
    case PlacementStrategy::kLeastLoaded:
      return LeastLoadedNode(exclude);
    case PlacementStrategy::kSensorLocality: {
      // Majority vote over the (known) upstream nodes.
      std::map<std::string, size_t> votes;
      for (const auto& up : upstream_nodes) {
        if (!up.empty() && up != exclude && network_->NodeIsUp(up)) {
          ++votes[up];
        }
      }
      if (!votes.empty()) {
        auto best = std::max_element(
            votes.begin(), votes.end(), [](const auto& a, const auto& b) {
              return a.second < b.second ||
                     (a.second == b.second && a.first > b.first);
            });
        return best->first;
      }
      return LeastLoadedNode(exclude);
    }
  }
  return Status::Internal("unreachable placement strategy");
}

}  // namespace sl::exec
