// StreamLoader: the SCN command log.
//
// The SCN protocol stack "interprets the DSN description and dynamically
// coordinates the network configurations" [8]. Every configuration
// action the executor takes — deploying a service to a node, binding a
// source to a sensor, configuring a flow with its QoS, migrating or
// replacing a service, activating or de-activating a sensor stream — is
// recorded as an ScnCommand, so the exact actuation sequence of a
// dataflow is observable and replayable as a script (demo P2: "we will
// show its translation in the DSN/SCN language and deployment at
// network level").

#ifndef STREAMLOADER_EXEC_SCN_LOG_H_
#define STREAMLOADER_EXEC_SCN_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.h"

namespace sl::exec {

enum class ScnCommandKind {
  kBindSource,        ///< source service bound to a sensor at its node
  kDeployService,     ///< operator/sink process placed on a node
  kConfigureFlow,     ///< flow provisioned with QoS parameters
  kStartDataflow,     ///< all services live, subscriptions open
  kStopDataflow,      ///< deployment torn down
  kMigrateService,    ///< process moved between nodes
  kReplaceService,    ///< operator logic swapped on the fly
  kActivateStream,    ///< trigger started a sensor stream
  kDeactivateStream,  ///< trigger stopped a sensor stream
};

const char* ScnCommandKindToString(ScnCommandKind kind);

/// \brief One network-configuration action.
struct ScnCommand {
  Timestamp at = 0;
  ScnCommandKind kind = ScnCommandKind::kDeployService;
  /// Deployment the command belongs to (0 = none/global).
  uint64_t deployment = 0;
  /// The service / sensor / flow the command concerns.
  std::string subject;
  /// Target of the action (node id, sensor id, "from->to", QoS text).
  std::string detail;

  /// "2016-03-15T08:00:00.000Z  DEPLOY_SERVICE hourly -> node_1".
  std::string ToString() const;
};

/// \brief Append-only log of SCN commands.
class ScnLog {
 public:
  void Record(Timestamp at, ScnCommandKind kind, uint64_t deployment,
              std::string subject, std::string detail);

  const std::vector<ScnCommand>& commands() const { return commands_; }

  /// Commands of one deployment, in order.
  std::vector<ScnCommand> ForDeployment(uint64_t deployment) const;

  /// The whole log as a line-per-command script.
  std::string ToScript() const;

  void Clear() { commands_.clear(); }
  size_t size() const { return commands_.size(); }

 private:
  std::vector<ScnCommand> commands_;
};

}  // namespace sl::exec

#endif  // STREAMLOADER_EXEC_SCN_LOG_H_
