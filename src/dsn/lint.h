// StreamLoader: whole-program linting of DSN documents (sl-lint).
//
// Runs the full static-analysis stack over one DSN source text: lexing
// and parsing (SL0xxx), lifting to a conceptual dataflow, then the
// Validator's type/granularity/graph checks (SL1xxx/SL2xxx/SL3xxx).
// Expression-relative spans reported by the validator are re-anchored
// into the DSN document via the property-value spans the parser records,
// so every caret points at the offending bytes of the file the user
// actually wrote.

#ifndef STREAMLOADER_DSN_LINT_H_
#define STREAMLOADER_DSN_LINT_H_

#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "pubsub/broker.h"

namespace sl::dsn {

/// \brief Outcome of linting one DSN document.
struct LintResult {
  /// All findings, sorted by position; sources/spans refer to the
  /// document (falling back to the raw expression text when a construct
  /// cannot be located in it).
  std::vector<diag::Diagnostic> diags;

  /// True iff no error-severity diagnostic was produced.
  bool ok() const { return !diag::HasErrors(diags); }
};

/// \brief Lints `source` end to end. `broker` resolves sensors and
/// trigger targets; pass nullptr to lint without a registry (source
/// resolution then reports SL2002).
LintResult LintDsnProgram(const std::string& source,
                          const pubsub::Broker* broker);

}  // namespace sl::dsn

#endif  // STREAMLOADER_DSN_LINT_H_
