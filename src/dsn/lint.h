// StreamLoader: whole-program linting of DSN documents (sl-lint).
//
// Runs the full static-analysis stack over one DSN source text: lexing
// and parsing (SL0xxx), lifting to a conceptual dataflow, then the
// Validator's type/granularity/graph checks (SL1xxx/SL2xxx/SL3xxx),
// and — when requested — the sl-analyze abstract interpretation pass
// (SL4xxx, with per-edge inferred value facts). Expression-relative
// spans reported by the validator and the analyzer are re-anchored into
// the DSN document via the property-value spans the parser records, so
// every caret points at the offending bytes of the file the user
// actually wrote.

#ifndef STREAMLOADER_DSN_LINT_H_
#define STREAMLOADER_DSN_LINT_H_

#include <optional>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "diag/diagnostic.h"
#include "pubsub/broker.h"

namespace sl::dsn {

/// \brief Knobs for LintDsnProgram.
struct LintOptions {
  /// Also run the whole-pipeline abstract interpretation (SL4xxx) and
  /// export its per-edge facts. Runs only when the program has no
  /// error-severity findings (the analysis needs validated schemas).
  bool analyze = false;
};

/// \brief Outcome of linting one DSN document.
struct LintResult {
  /// All findings, sorted by position; sources/spans refer to the
  /// document (falling back to the raw expression text when a construct
  /// cannot be located in it).
  std::vector<diag::Diagnostic> diags;

  /// The abstract-interpretation result (per-edge inferred facts);
  /// engaged only when LintOptions::analyze was set and the program
  /// reached the analysis stage. Its diagnostics are already merged
  /// into `diags`.
  std::optional<analyze::Analysis> analysis;

  /// True iff no error-severity diagnostic was produced.
  bool ok() const { return !diag::HasErrors(diags); }
};

/// \brief Lints `source` end to end. `broker` resolves sensors and
/// trigger targets; pass nullptr to lint without a registry (source
/// resolution then reports SL2002).
LintResult LintDsnProgram(const std::string& source,
                          const pubsub::Broker* broker,
                          const LintOptions& options);
LintResult LintDsnProgram(const std::string& source,
                          const pubsub::Broker* broker);

/// \brief Process exit codes of the sl_lint CLI, derived from a lint
/// run's findings. Kept here (not in the tool) so lint_test can pin
/// them as a contract.
enum class LintExit : int {
  kClean = 0,         ///< no findings, or only unpromoted warnings
  kFindings = 1,      ///< at least one error-severity lint finding
  kUsage = 2,         ///< bad invocation / unreadable input (CLI only)
  kParseFailure = 3,  ///< the document did not parse (any SL00xx error)
  kWerror = 4,        ///< warnings only, promoted to failure by --werror
};

/// The exit code a lint run over `diags` maps to. Parse failures
/// (SL00xx errors) dominate other errors; `werror` promotes a
/// warnings-only outcome to kWerror.
LintExit ExitCodeFor(const std::vector<diag::Diagnostic>& diags, bool werror);

}  // namespace sl::dsn

#endif  // STREAMLOADER_DSN_LINT_H_
