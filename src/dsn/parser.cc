#include "dsn/parser.h"

#include "expr/lexer.h"
#include "stt/granularity.h"
#include "util/strings.h"

namespace sl::dsn {

using expr::Token;
using expr::TokenKind;

Result<Duration> ParseDurationText(const std::string& text) {
  Duration out = 0;
  if (!ParseDuration(text, &out)) {
    return Status::ParseError("cannot parse duration '" + text + "'");
  }
  return out;
}

namespace {

class DsnParser {
 public:
  DsnParser(const std::vector<Token>& tokens, const std::string& source)
      : tokens_(tokens), source_(source) {}

  Result<DsnSpec> Parse() {
    DsnSpec spec;
    SL_RETURN_IF_ERROR(ExpectKeyword("dataflow"));
    SL_ASSIGN_OR_RETURN(spec.name, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (Peek().kind != TokenKind::kRBrace) {
      if (IsKeyword("service")) {
        SL_ASSIGN_OR_RETURN(DsnService service, ParseService());
        spec.services.push_back(std::move(service));
      } else if (IsKeyword("flow")) {
        SL_ASSIGN_OR_RETURN(DsnFlow flow, ParseFlow());
        spec.flows.push_back(std::move(flow));
      } else {
        return Error("expected 'service' or 'flow'");
      }
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after dataflow block");
    }
    return spec;
  }

  /// Span of the token the last Error() pointed at ({0,0} before any).
  const diag::Span& error_span() const { return error_span_; }

 private:
  Result<DsnService> ParseService() {
    Advance();  // 'service'
    DsnService service;
    SL_ASSIGN_OR_RETURN(service.name, ExpectIdent(&service.name_span));
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::string left, right;
    while (Peek().kind != TokenKind::kRBrace) {
      SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
      SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      std::vector<std::string> values;
      diag::Span value_span;
      while (true) {
        diag::Span vs;
        SL_ASSIGN_OR_RETURN(std::string v, ExpectValue(&vs));
        if (values.empty()) {
          value_span = vs;
        } else {
          value_span.end = vs.end;  // list: cover first through last value
        }
        values.push_back(std::move(v));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      std::string joined = Join(values, ", ");
      if (key == "kind") {
        service.kind = ToUpper(joined);
      } else if (key == "input") {
        for (auto& v : values) service.inputs.push_back(std::move(v));
      } else if (key == "left") {
        left = joined;
      } else if (key == "right") {
        right = joined;
      } else {
        if (service.properties.count(key) > 0) {
          return Error("duplicate property '" + key + "' in service '" +
                       service.name + "'");
        }
        service.properties.emplace(key, std::move(joined));
        service.property_spans.emplace(key, value_span);
      }
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (!left.empty() || !right.empty()) {
      if (left.empty() || right.empty() || !service.inputs.empty()) {
        return Error("service '" + service.name +
                     "' must use either input: or both left:/right:");
      }
      service.inputs = {left, right};
    }
    if (service.kind.empty()) {
      return Error("service '" + service.name + "' has no kind");
    }
    return service;
  }

  Result<DsnFlow> ParseFlow() {
    Advance();  // 'flow'
    DsnFlow flow;
    SL_ASSIGN_OR_RETURN(flow.from, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    SL_ASSIGN_OR_RETURN(flow.to, ExpectIdent());
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      while (Peek().kind != TokenKind::kRBracket) {
        SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        SL_ASSIGN_OR_RETURN(std::string value, ExpectValue(nullptr));
        if (Peek().kind == TokenKind::kSemicolon) {
          Advance();
        } else if (Peek().kind != TokenKind::kRBracket) {
          return Error("expected ';' or ']' after QoS parameter");
        }
        if (key == "max_latency") {
          SL_ASSIGN_OR_RETURN(flow.qos.max_latency, ParseDurationText(value));
        } else if (key == "priority") {
          flow.qos.priority = static_cast<int>(std::strtol(value.c_str(),
                                                           nullptr, 10));
        } else {
          return Error("unknown QoS parameter '" + key + "'");
        }
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return flow;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return Error(std::string("expected '") + kw + "'");
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent(diag::Span* span = nullptr) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected identifier, got " + Peek().ToString());
    }
    if (span != nullptr) *span = {Peek().offset, Peek().end};
    std::string name = Peek().text;
    Advance();
    return name;
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, got %s",
                             expr::TokenKindToString(kind),
                             Peek().ToString().c_str()));
    }
    Advance();
    return Status::OK();
  }
  /// A property value: string, identifier, or number. `span` (when
  /// non-null) receives the value's *content* span — for a quoted
  /// string, the bytes between the quotes — so expression diagnostics
  /// can be re-anchored into the document.
  Result<std::string> ExpectValue(diag::Span* span) {
    const Token& tok = Peek();
    auto set_span = [&](diag::Span s) {
      if (span != nullptr) *span = s;
    };
    switch (tok.kind) {
      case TokenKind::kString: {
        // Content excludes the quotes; escapes make the mapping
        // approximate, which the consumer detects by re-comparing text.
        set_span({tok.offset + 1,
                  tok.end > tok.offset + 1 ? tok.end - 1 : tok.offset + 1});
        std::string v = tok.text;
        Advance();
        return v;
      }
      case TokenKind::kIdent: {
        set_span({tok.offset, tok.end});
        std::string v = tok.text;
        Advance();
        return v;
      }
      case TokenKind::kInt: {
        set_span({tok.offset, tok.end});
        std::string v = StrFormat("%lld",
                                  static_cast<long long>(tok.int_value));
        Advance();
        return v;
      }
      case TokenKind::kDouble: {
        set_span({tok.offset, tok.end});
        std::string v = StrFormat("%.10g", tok.double_value);
        Advance();
        return v;
      }
      case TokenKind::kMinus: {
        size_t begin = tok.offset;
        Advance();
        const Token& next = Peek();
        if (next.kind == TokenKind::kInt) {
          set_span({begin, next.end});
          std::string v =
              StrFormat("-%lld", static_cast<long long>(next.int_value));
          Advance();
          return v;
        }
        if (next.kind == TokenKind::kDouble) {
          set_span({begin, next.end});
          std::string v = StrFormat("-%.10g", next.double_value);
          Advance();
          return v;
        }
        return Error("expected number after '-'");
      }
      default:
        return Error("expected a property value, got " + tok.ToString());
    }
  }
  Status Error(const std::string& msg) const {
    const Token& tok = Peek();
    error_span_ = {tok.offset,
                   tok.end > tok.offset ? tok.end : tok.offset + 1};
    diag::LineCol lc = diag::LineColAt(source_, tok.offset);
    return Status::ParseError(
        StrFormat("DSN: %s (at line %zu, column %zu)", msg.c_str(), lc.line,
                  lc.column));
  }

  const std::vector<Token>& tokens_;
  const std::string& source_;
  size_t pos_ = 0;
  mutable diag::Span error_span_;
};

}  // namespace

Result<DsnSpec> ParseDsn(const std::string& source) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, expr::Tokenize(source));
  DsnParser parser(tokens, source);
  SL_ASSIGN_OR_RETURN(DsnSpec spec, parser.Parse());
  SL_RETURN_IF_ERROR(ValidateDsn(spec));
  return spec;
}

DsnParse ParseDsnWithDiagnostics(const std::string& source) {
  DsnParse out;
  size_t lex_offset = 0;
  auto tokens = expr::Tokenize(source, &lex_offset);
  if (!tokens.ok()) {
    out.diags.push_back(diag::MakeDiag(diag::Code::kDsnSyntax, "",
                                       tokens.status().message(),
                                       {lex_offset, lex_offset + 1}, source));
    return out;
  }
  DsnParser parser(*tokens, source);
  auto spec = parser.Parse();
  if (!spec.ok()) {
    out.diags.push_back(diag::MakeDiag(diag::Code::kDsnSyntax, "",
                                       spec.status().message(),
                                       parser.error_span(), source));
    return out;
  }
  if (Status valid = ValidateDsn(*spec); !valid.ok()) {
    // Structural errors carry no token position; anchor to the name of
    // a service the message mentions, when there is one.
    diag::Span span;
    for (const auto& service : spec->services) {
      if (valid.message().find("'" + service.name + "'") !=
          std::string::npos) {
        span = service.name_span;
        break;
      }
    }
    out.diags.push_back(diag::MakeDiag(diag::Code::kDsnStructure, "",
                                       valid.message(), span, source));
    return out;
  }
  out.spec = std::move(*spec);
  return out;
}

}  // namespace sl::dsn
