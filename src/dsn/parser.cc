#include "dsn/parser.h"

#include "expr/lexer.h"
#include "stt/granularity.h"
#include "util/strings.h"

namespace sl::dsn {

using expr::Token;
using expr::TokenKind;

Result<Duration> ParseDurationText(const std::string& text) {
  Duration out = 0;
  if (!ParseDuration(text, &out)) {
    return Status::ParseError("cannot parse duration '" + text + "'");
  }
  return out;
}

namespace {

class DsnParser {
 public:
  explicit DsnParser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<DsnSpec> Parse() {
    DsnSpec spec;
    SL_RETURN_IF_ERROR(ExpectKeyword("dataflow"));
    SL_ASSIGN_OR_RETURN(spec.name, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (Peek().kind != TokenKind::kRBrace) {
      if (IsKeyword("service")) {
        SL_ASSIGN_OR_RETURN(DsnService service, ParseService());
        spec.services.push_back(std::move(service));
      } else if (IsKeyword("flow")) {
        SL_ASSIGN_OR_RETURN(DsnFlow flow, ParseFlow());
        spec.flows.push_back(std::move(flow));
      } else {
        return Error("expected 'service' or 'flow'");
      }
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after dataflow block");
    }
    return spec;
  }

 private:
  Result<DsnService> ParseService() {
    Advance();  // 'service'
    DsnService service;
    SL_ASSIGN_OR_RETURN(service.name, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::string left, right;
    while (Peek().kind != TokenKind::kRBrace) {
      SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
      SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      std::vector<std::string> values;
      while (true) {
        SL_ASSIGN_OR_RETURN(std::string v, ExpectValue());
        values.push_back(std::move(v));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      std::string joined = Join(values, ", ");
      if (key == "kind") {
        service.kind = ToUpper(joined);
      } else if (key == "input") {
        for (auto& v : values) service.inputs.push_back(std::move(v));
      } else if (key == "left") {
        left = joined;
      } else if (key == "right") {
        right = joined;
      } else {
        if (service.properties.count(key) > 0) {
          return Error("duplicate property '" + key + "' in service '" +
                       service.name + "'");
        }
        service.properties.emplace(key, std::move(joined));
      }
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (!left.empty() || !right.empty()) {
      if (left.empty() || right.empty() || !service.inputs.empty()) {
        return Error("service '" + service.name +
                     "' must use either input: or both left:/right:");
      }
      service.inputs = {left, right};
    }
    if (service.kind.empty()) {
      return Error("service '" + service.name + "' has no kind");
    }
    return service;
  }

  Result<DsnFlow> ParseFlow() {
    Advance();  // 'flow'
    DsnFlow flow;
    SL_ASSIGN_OR_RETURN(flow.from, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    SL_ASSIGN_OR_RETURN(flow.to, ExpectIdent());
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      while (Peek().kind != TokenKind::kRBracket) {
        SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        SL_ASSIGN_OR_RETURN(std::string value, ExpectValue());
        if (Peek().kind == TokenKind::kSemicolon) {
          Advance();
        } else if (Peek().kind != TokenKind::kRBracket) {
          return Error("expected ';' or ']' after QoS parameter");
        }
        if (key == "max_latency") {
          SL_ASSIGN_OR_RETURN(flow.qos.max_latency, ParseDurationText(value));
        } else if (key == "priority") {
          flow.qos.priority = static_cast<int>(std::strtol(value.c_str(),
                                                           nullptr, 10));
        } else {
          return Error("unknown QoS parameter '" + key + "'");
        }
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return flow;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return Error(std::string("expected '") + kw + "'");
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected identifier, got " + Peek().ToString());
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, got %s",
                             expr::TokenKindToString(kind),
                             Peek().ToString().c_str()));
    }
    Advance();
    return Status::OK();
  }
  /// A property value: string, identifier, or number.
  Result<std::string> ExpectValue() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kString:
      case TokenKind::kIdent: {
        std::string v = tok.text;
        Advance();
        return v;
      }
      case TokenKind::kInt: {
        std::string v = StrFormat("%lld",
                                  static_cast<long long>(tok.int_value));
        Advance();
        return v;
      }
      case TokenKind::kDouble: {
        std::string v = StrFormat("%.10g", tok.double_value);
        Advance();
        return v;
      }
      case TokenKind::kMinus: {
        Advance();
        const Token& next = Peek();
        if (next.kind == TokenKind::kInt) {
          std::string v =
              StrFormat("-%lld", static_cast<long long>(next.int_value));
          Advance();
          return v;
        }
        if (next.kind == TokenKind::kDouble) {
          std::string v = StrFormat("-%.10g", next.double_value);
          Advance();
          return v;
        }
        return Error("expected number after '-'");
      }
      default:
        return Error("expected a property value, got " + tok.ToString());
    }
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("DSN: %s (at offset %zu)", msg.c_str(), Peek().offset));
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<DsnSpec> ParseDsn(const std::string& source) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, expr::Tokenize(source));
  DsnParser parser(tokens);
  SL_ASSIGN_OR_RETURN(DsnSpec spec, parser.Parse());
  SL_RETURN_IF_ERROR(ValidateDsn(spec));
  return spec;
}

}  // namespace sl::dsn
