// StreamLoader: parser for the textual DSN language (see spec.h).

#ifndef STREAMLOADER_DSN_PARSER_H_
#define STREAMLOADER_DSN_PARSER_H_

#include <string>

#include "dsn/spec.h"
#include "util/result.h"

namespace sl::dsn {

/// \brief Parses a DSN description; the result is structurally validated
/// (ValidateDsn) before being returned.
Result<DsnSpec> ParseDsn(const std::string& source);

/// \brief Parses a duration text like "500ms", "1h", or "0" (ParseDsn
/// uses this for QoS parameters; exposed for tests).
Result<Duration> ParseDurationText(const std::string& text);

}  // namespace sl::dsn

#endif  // STREAMLOADER_DSN_PARSER_H_
