// StreamLoader: parser for the textual DSN language (see spec.h).

#ifndef STREAMLOADER_DSN_PARSER_H_
#define STREAMLOADER_DSN_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "dsn/spec.h"
#include "util/result.h"

namespace sl::dsn {

/// \brief Parses a DSN description; the result is structurally validated
/// (ValidateDsn) before being returned.
Result<DsnSpec> ParseDsn(const std::string& source);

/// \brief Outcome of ParseDsnWithDiagnostics: either a spec (and no
/// diagnostics) or the coded parse/structure errors with spans.
struct DsnParse {
  std::optional<DsnSpec> spec;
  std::vector<diag::Diagnostic> diags;
};

/// \brief Like ParseDsn, but failures surface as coded diagnostics
/// (SL0010 syntax, SL0011 structure) with byte-offset spans into
/// `source`. Successful parses carry name/property-value spans on every
/// service (DsnService::name_span / property_spans).
DsnParse ParseDsnWithDiagnostics(const std::string& source);

/// \brief Parses a duration text like "500ms", "1h", or "0" (ParseDsn
/// uses this for QoS parameters; exposed for tests).
Result<Duration> ParseDurationText(const std::string& text);

}  // namespace sl::dsn

#endif  // STREAMLOADER_DSN_PARSER_H_
