#include "dsn/lint.h"

#include <optional>

#include "dataflow/validate.h"
#include "dsn/parser.h"
#include "dsn/translate.h"

namespace sl::dsn {

namespace {

/// Locates the service a finding belongs to ({} when the issue is
/// dataflow-global or the node is synthetic).
const DsnService* FindService(const DsnSpec& spec, const std::string& name) {
  for (const auto& service : spec.services) {
    if (service.name == name) return &service;
  }
  return nullptr;
}

/// Re-anchors `diag` (whose span is relative to `diag.source`, an
/// expression or spec string) into the DSN document: finds the property
/// of the owning service whose value content equals that source text and
/// offsets the span by the property's document position. Falls back to
/// the whole property value, then to the service name, then to leaving
/// the diagnostic expression-relative (escaped strings shift offsets, so
/// the mapping is verified byte-for-byte before being trusted).
void Anchor(const DsnSpec& spec, const std::string& doc,
            diag::Diagnostic* diag) {
  const DsnService* service = FindService(spec, diag->node);
  if (service == nullptr) return;
  if (!diag->source.empty()) {
    for (const auto& [key, span] : service->property_spans) {
      if (!span.valid() || span.end > doc.size()) continue;
      if (doc.compare(span.begin, span.size(), diag->source) != 0) continue;
      diag->span = diag->span.valid() && diag->span.end <= diag->source.size()
                       ? diag->span.Offset(span.begin)
                       : span;
      diag->source = doc;
      return;
    }
  }
  if (service->name_span.valid()) {
    diag->span = service->name_span;
    diag->source = doc;
  }
}

/// SL2011 on partition properties declared for a non-blocking service.
/// This must run before lifting: TranslateFromDsn drops properties the
/// service kind does not consume, so the validator never sees them.
void LintPartitionProperties(const DsnSpec& spec, const std::string& doc,
                             std::vector<diag::Diagnostic>* diags) {
  for (const auto& service : spec.services) {
    auto kind = dataflow::OpKindFromString(service.kind);
    bool blocking = kind.ok() && dataflow::IsBlocking(*kind);
    if (blocking) continue;
    for (const char* key : {"partition_by", "parallelism"}) {
      if (!service.Has(key)) continue;
      diag::Diagnostic d = diag::MakeDiag(
          diag::Code::kBadPartition, service.name,
          std::string(key) + " is only meaningful on a blocking operation "
          "(AGGREGATION, JOIN, TRIGGER_ON/OFF): non-blocking services "
          "process tuples in place and have no instances to partition");
      auto span = service.property_spans.find(key);
      if (span != service.property_spans.end() && span->second.valid() &&
          span->second.end <= doc.size()) {
        d.span = span->second;
        d.source = doc;
      } else if (service.name_span.valid()) {
        d.span = service.name_span;
        d.source = doc;
      }
      diags->push_back(std::move(d));
    }
  }
}

}  // namespace

/// Pulls analysis-only metadata out of the DSN spec: the `lateness:`
/// property a designer can declare on blocking services. Translation
/// drops properties a service kind does not consume, so declaring it
/// never changes the runtime — it only arms the SL4006 check.
analyze::AnalyzeOptions AnalyzeOptionsFrom(const DsnSpec& spec) {
  analyze::AnalyzeOptions options;
  for (const auto& service : spec.services) {
    if (!service.Has("lateness")) continue;
    auto bound = service.GetDuration("lateness");
    auto text = service.GetString("lateness");
    if (!bound.ok() || !text.ok()) continue;
    options.lateness[service.name] = {*bound, *text};
  }
  return options;
}

LintResult LintDsnProgram(const std::string& source,
                          const pubsub::Broker* broker) {
  return LintDsnProgram(source, broker, LintOptions{});
}

LintResult LintDsnProgram(const std::string& source,
                          const pubsub::Broker* broker,
                          const LintOptions& options) {
  LintResult result;
  DsnParse parse = ParseDsnWithDiagnostics(source);
  if (!parse.spec.has_value()) {
    result.diags = std::move(parse.diags);
    return result;
  }
  const DsnSpec& spec = *parse.spec;
  LintPartitionProperties(spec, source, &result.diags);

  auto dataflow = TranslateFromDsn(spec);
  if (!dataflow.ok()) {
    // Lifting failures (bad op kind, malformed spec property) have no
    // token position of their own; anchor to the offending service.
    diag::Diagnostic d = diag::MakeDiag(diag::Code::kBadOpSpec, "",
                                        dataflow.status().message());
    for (const auto& service : spec.services) {
      if (dataflow.status().message().find("'" + service.name + "'") !=
              std::string::npos ||
          dataflow.status().message().find(service.name) !=
              std::string::npos) {
        d.node = service.name;
        break;
      }
    }
    Anchor(spec, source, &d);
    result.diags.push_back(std::move(d));
    return result;
  }

  dataflow::Validator validator(broker);
  auto report = validator.Validate(*dataflow);
  if (!report.ok()) {
    result.diags.push_back(diag::MakeDiag(diag::Code::kDsnStructure, "",
                                          report.status().message()));
    return result;
  }
  for (const auto& issue : report->issues) {
    diag::Diagnostic d = issue.ToDiagnostic();
    Anchor(spec, source, &d);
    result.diags.push_back(std::move(d));
  }

  if (options.analyze && report->ok() && !diag::HasErrors(result.diags)) {
    auto analysis = analyze::AnalyzeDataflow(*dataflow, broker, *report,
                                             AnalyzeOptionsFrom(spec));
    if (analysis.ok()) {
      for (diag::Diagnostic d : analysis->diags) {
        Anchor(spec, source, &d);
        result.diags.push_back(std::move(d));
      }
      result.analysis = std::move(*analysis);
      result.analysis->diags.clear();  // merged into result.diags above
    }
  }
  diag::SortAndDedup(result.diags);
  return result;
}

LintExit ExitCodeFor(const std::vector<diag::Diagnostic>& diags, bool werror) {
  bool any_warning = false;
  bool any_error = false;
  bool any_parse_error = false;
  for (const auto& d : diags) {
    if (d.severity == diag::Severity::kError) {
      any_error = true;
      if (static_cast<int>(d.code) < 1000) any_parse_error = true;
    } else if (d.severity == diag::Severity::kWarning) {
      any_warning = true;
    }
  }
  if (any_parse_error) return LintExit::kParseFailure;
  if (any_error) return LintExit::kFindings;
  if (any_warning && werror) return LintExit::kWerror;
  return LintExit::kClean;
}

}  // namespace sl::dsn
