#include "dsn/spec.h"

#include <algorithm>
#include <map>
#include <set>

#include "dataflow/graph.h"
#include "dataflow/op_spec.h"
#include "stt/granularity.h"
#include "util/strings.h"

namespace sl::dsn {

Result<std::string> DsnService::GetString(const std::string& key) const {
  auto it = properties.find(key);
  if (it == properties.end()) {
    return Status::NotFound("service '" + name + "' has no property '" + key +
                            "'");
  }
  return it->second;
}

Result<Duration> DsnService::GetDuration(const std::string& key) const {
  SL_ASSIGN_OR_RETURN(std::string text, GetString(key));
  SL_ASSIGN_OR_RETURN(stt::TemporalGranularity g,
                      stt::TemporalGranularity::Parse(text));
  return g.period();
}

Result<double> DsnService::GetDouble(const std::string& key) const {
  SL_ASSIGN_OR_RETURN(std::string text, GetString(key));
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::ParseError("property '" + key + "' of service '" + name +
                              "' is not a number: '" + text + "'");
  }
  return v;
}

Result<Timestamp> DsnService::GetTimestamp(const std::string& key) const {
  SL_ASSIGN_OR_RETURN(std::string text, GetString(key));
  Timestamp ts;
  if (!ParseTimestamp(text, &ts)) {
    return Status::ParseError("property '" + key + "' of service '" + name +
                              "' is not a timestamp: '" + text + "'");
  }
  return ts;
}

Result<std::vector<std::string>> DsnService::GetList(
    const std::string& key) const {
  SL_ASSIGN_OR_RETURN(std::string text, GetString(key));
  if (Trim(text).empty()) return std::vector<std::string>{};
  return SplitAndTrim(text, ',');
}

Result<const DsnService*> DsnSpec::FindService(
    const std::string& service_name) const {
  for (const auto& s : services) {
    if (s.name == service_name) return &s;
  }
  return Status::NotFound("no service '" + service_name + "' in DSN spec '" +
                          name + "'");
}

std::string DsnSpec::ToString() const {
  std::string out = "dataflow " + name + " {\n";
  for (const auto& s : services) {
    out += "  service " + s.name + " {\n";
    out += "    kind: " + s.kind + ";\n";
    if (s.kind == "JOIN" && s.inputs.size() == 2) {
      out += "    left: " + s.inputs[0] + ";\n";
      out += "    right: " + s.inputs[1] + ";\n";
    } else if (!s.inputs.empty()) {
      out += "    input: " + Join(s.inputs, ", ") + ";\n";
    }
    for (const auto& [key, value] : s.properties) {
      out += "    " + key + ": " + QuoteString(value) + ";\n";
    }
    out += "  }\n";
  }
  for (const auto& f : flows) {
    out += "  flow " + f.from + " -> " + f.to;
    out += StrFormat(" [max_latency: %s; priority: %d];\n",
                     QuoteString(FormatDuration(f.qos.max_latency)).c_str(),
                     f.qos.priority);
  }
  out += "}\n";
  return out;
}

Status ValidateDsn(const DsnSpec& spec) {
  std::vector<std::string> errors;
  auto err = [&errors](const std::string& msg) { errors.push_back(msg); };

  if (!IsIdentifier(spec.name)) {
    err("dataflow name '" + spec.name + "' is not a valid identifier");
  }
  std::set<std::string> names;
  for (const auto& s : spec.services) {
    if (!IsIdentifier(s.name)) {
      err("service name '" + s.name + "' is not a valid identifier");
    }
    if (!names.insert(s.name).second) {
      err("duplicate service name '" + s.name + "'");
    }
    if (s.kind != "SOURCE" && s.kind != "SINK") {
      auto kind = dataflow::OpKindFromString(s.kind);
      if (!kind.ok()) {
        err("service '" + s.name + "' has unknown kind '" + s.kind + "'");
      }
    }
  }
  for (const auto& s : spec.services) {
    for (const auto& in : s.inputs) {
      if (names.count(in) == 0) {
        err("service '" + s.name + "' consumes unknown service '" + in + "'");
      }
    }
    if (s.kind == "SOURCE" && !s.inputs.empty()) {
      err("source service '" + s.name + "' must have no inputs");
    }
  }
  // Every service input must be matched by a flow and vice versa.
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& s : spec.services) {
    for (const auto& in : s.inputs) edges.insert({in, s.name});
  }
  std::set<std::pair<std::string, std::string>> flow_edges;
  for (const auto& f : spec.flows) {
    if (names.count(f.from) == 0 || names.count(f.to) == 0) {
      err(StrFormat("flow %s -> %s references unknown services",
                    f.from.c_str(), f.to.c_str()));
      continue;
    }
    if (!flow_edges.insert({f.from, f.to}).second) {
      err(StrFormat("duplicate flow %s -> %s", f.from.c_str(), f.to.c_str()));
    }
    if (f.qos.priority < 0 || f.qos.priority > 9) {
      err(StrFormat("flow %s -> %s has priority %d outside 0..9",
                    f.from.c_str(), f.to.c_str(), f.qos.priority));
    }
  }
  for (const auto& e : edges) {
    if (flow_edges.count(e) == 0) {
      err(StrFormat("service input %s -> %s has no matching flow",
                    e.first.c_str(), e.second.c_str()));
    }
  }
  for (const auto& e : flow_edges) {
    if (edges.count(e) == 0) {
      err(StrFormat("flow %s -> %s has no matching service input",
                    e.first.c_str(), e.second.c_str()));
    }
  }
  // Acyclicity (Kahn over flow edges).
  if (errors.empty()) {
    std::map<std::string, size_t> indegree;
    for (const auto& s : spec.services) indegree[s.name] = s.inputs.size();
    std::set<std::string> ready;
    for (const auto& [n, d] : indegree) {
      if (d == 0) ready.insert(n);
    }
    size_t visited = 0;
    while (!ready.empty()) {
      std::string next = *ready.begin();
      ready.erase(ready.begin());
      ++visited;
      for (const auto& e : edges) {
        if (e.first == next && --indegree[e.second] == 0) {
          ready.insert(e.second);
        }
      }
    }
    if (visited != spec.services.size()) {
      err("DSN spec contains a cycle");
    }
  }

  if (!errors.empty()) {
    return Status::ValidationError("DSN spec '" + spec.name +
                                   "' is invalid:\n  " +
                                   Join(errors, "\n  "));
  }
  return Status::OK();
}

}  // namespace sl::dsn
