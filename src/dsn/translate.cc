#include "dsn/translate.h"

#include <cstdlib>

#include "util/strings.h"

namespace sl::dsn {

using dataflow::AggregationSpec;
using dataflow::CullSpaceSpec;
using dataflow::CullTimeSpec;
using dataflow::Dataflow;
using dataflow::DataflowBuilder;
using dataflow::FilterSpec;
using dataflow::JoinSpec;
using dataflow::Node;
using dataflow::NodeKind;
using dataflow::OpKind;
using dataflow::TransformSpec;
using dataflow::TriggerSpec;
using dataflow::VirtualPropertySpec;

namespace {

std::string DurationText(Duration d) { return FormatDuration(d); }

std::string DoubleText(double v) { return StrFormat("%.10g", v); }

QosParams QosForConsumer(const Node& consumer) {
  QosParams qos;
  if (consumer.kind == NodeKind::kSink) {
    qos.priority = 3;
    qos.max_latency = duration::kSecond;
  } else if (consumer.op == OpKind::kTriggerOn ||
             consumer.op == OpKind::kTriggerOff) {
    qos.priority = 8;
    qos.max_latency = 250;
  } else {
    qos.priority = 5;
    qos.max_latency = 500;
  }
  return qos;
}

/// Parses the optional parallelism / partition_by properties shared by
/// the blocking kinds. A parallelism of 0 is kept (the validator
/// rejects it with SL2011 and a proper span).
Status ParsePartitioning(const DsnService& service, size_t* parallelism,
                         std::vector<std::string>* partition_by) {
  if (service.Has("parallelism")) {
    SL_ASSIGN_OR_RETURN(double n, service.GetDouble("parallelism"));
    if (n < 0 || n != double(size_t(n))) {
      return Status::ParseError("parallelism of '" + service.name +
                                "' must be a non-negative integer");
    }
    *parallelism = size_t(n);
  }
  if (service.Has("partition_by")) {
    SL_ASSIGN_OR_RETURN(*partition_by, service.GetList("partition_by"));
  }
  return Status::OK();
}

}  // namespace

Result<DsnSpec> TranslateToDsn(const Dataflow& dataflow) {
  DsnSpec spec;
  spec.name = dataflow.name();
  for (const auto& name : dataflow.topological_order()) {
    const Node& node = **dataflow.node(name);
    DsnService service;
    service.name = name;
    service.inputs = node.inputs;
    switch (node.kind) {
      case NodeKind::kSource:
        service.kind = "SOURCE";
        if (node.by_query) {
          const auto& q = node.source_query;
          if (!q.type.empty()) service.properties["query_type"] = q.type;
          if (!q.theme.IsAny()) {
            service.properties["query_theme"] = q.theme.ToString();
          }
          if (q.area.has_value()) {
            service.properties["query_area"] = StrFormat(
                "%.10g, %.10g, %.10g, %.10g", q.area->lo.lat, q.area->lo.lon,
                q.area->hi.lat, q.area->hi.lon);
          }
          if (q.max_period > 0) {
            service.properties["query_max_period"] =
                DurationText(q.max_period);
          }
          if (!q.node_id.empty()) {
            service.properties["query_node"] = q.node_id;
          }
        } else {
          service.properties["sensor"] = node.sensor_id;
        }
        break;
      case NodeKind::kSink:
        service.kind = "SINK";
        service.properties["sink"] = dataflow::SinkKindToString(node.sink);
        if (!node.sink_target.empty()) {
          service.properties["target"] = node.sink_target;
        }
        break;
      case NodeKind::kOperator: {
        service.kind = dataflow::OpKindToString(node.op);
        switch (node.op) {
          case OpKind::kFilter: {
            const auto& s = std::get<FilterSpec>(node.spec);
            service.properties["condition"] = s.condition;
            break;
          }
          case OpKind::kTransform: {
            const auto& s = std::get<TransformSpec>(node.spec);
            service.properties["attribute"] = s.attribute;
            service.properties["expression"] = s.expression;
            if (!s.new_unit.empty()) {
              service.properties["new_unit"] = s.new_unit;
            }
            break;
          }
          case OpKind::kVirtualProperty: {
            const auto& s = std::get<VirtualPropertySpec>(node.spec);
            service.properties["property"] = s.property;
            service.properties["specification"] = s.specification;
            if (!s.unit.empty()) service.properties["unit"] = s.unit;
            break;
          }
          case OpKind::kCullTime: {
            const auto& s = std::get<CullTimeSpec>(node.spec);
            service.properties["t_begin"] = FormatTimestamp(s.t_begin);
            service.properties["t_end"] = FormatTimestamp(s.t_end);
            service.properties["rate"] = DoubleText(s.rate);
            break;
          }
          case OpKind::kCullSpace: {
            const auto& s = std::get<CullSpaceSpec>(node.spec);
            service.properties["lat1"] = DoubleText(s.corner1.lat);
            service.properties["lon1"] = DoubleText(s.corner1.lon);
            service.properties["lat2"] = DoubleText(s.corner2.lat);
            service.properties["lon2"] = DoubleText(s.corner2.lon);
            service.properties["rate"] = DoubleText(s.rate);
            break;
          }
          case OpKind::kAggregation: {
            const auto& s = std::get<AggregationSpec>(node.spec);
            service.properties["interval"] = DurationText(s.interval);
            if (s.window > 0) {
              service.properties["window"] = DurationText(s.window);
            }
            service.properties["function"] =
                dataflow::AggFuncToString(s.func);
            service.properties["attributes"] = Join(s.attributes, ", ");
            if (!s.group_by.empty()) {
              service.properties["group_by"] = Join(s.group_by, ", ");
            }
            if (s.parallelism != 1) {
              service.properties["parallelism"] =
                  StrFormat("%zu", s.parallelism);
            }
            if (!s.partition_by.empty()) {
              service.properties["partition_by"] = Join(s.partition_by, ", ");
            }
            break;
          }
          case OpKind::kJoin: {
            const auto& s = std::get<JoinSpec>(node.spec);
            service.properties["interval"] = DurationText(s.interval);
            if (s.window > 0) {
              service.properties["window"] = DurationText(s.window);
            }
            service.properties["predicate"] = s.predicate;
            if (s.parallelism != 1) {
              service.properties["parallelism"] =
                  StrFormat("%zu", s.parallelism);
            }
            if (!s.partition_by.empty()) {
              service.properties["partition_by"] = Join(s.partition_by, ", ");
            }
            break;
          }
          case OpKind::kTriggerOn:
          case OpKind::kTriggerOff: {
            const auto& s = std::get<TriggerSpec>(node.spec);
            service.properties["interval"] = DurationText(s.interval);
            if (s.window > 0) {
              service.properties["window"] = DurationText(s.window);
            }
            service.properties["condition"] = s.condition;
            service.properties["targets"] = Join(s.target_sensors, ", ");
            if (s.parallelism != 1) {
              service.properties["parallelism"] =
                  StrFormat("%zu", s.parallelism);
            }
            if (!s.partition_by.empty()) {
              service.properties["partition_by"] = Join(s.partition_by, ", ");
            }
            break;
          }
        }
        break;
      }
    }
    spec.services.push_back(std::move(service));
    // Flows: one per incoming edge, QoS derived from the consumer.
    for (const auto& in : node.inputs) {
      DsnFlow flow;
      flow.from = in;
      flow.to = name;
      flow.qos = QosForConsumer(node);
      spec.flows.push_back(std::move(flow));
    }
  }
  SL_RETURN_IF_ERROR(ValidateDsn(spec));
  return spec;
}

Result<Dataflow> TranslateFromDsn(const DsnSpec& spec) {
  SL_RETURN_IF_ERROR(ValidateDsn(spec));
  DataflowBuilder builder(spec.name);
  for (const auto& service : spec.services) {
    if (service.kind == "SOURCE") {
      if (service.Has("sensor")) {
        SL_ASSIGN_OR_RETURN(std::string sensor, service.GetString("sensor"));
        builder.AddSource(service.name, sensor);
        continue;
      }
      pubsub::DiscoveryQuery query;
      if (service.Has("query_type")) {
        SL_ASSIGN_OR_RETURN(query.type, service.GetString("query_type"));
      }
      if (service.Has("query_theme")) {
        SL_ASSIGN_OR_RETURN(std::string theme,
                            service.GetString("query_theme"));
        SL_ASSIGN_OR_RETURN(query.theme, stt::Theme::Parse(theme));
      }
      if (service.Has("query_area")) {
        SL_ASSIGN_OR_RETURN(auto corners, service.GetList("query_area"));
        if (corners.size() != 4) {
          return Status::ParseError("query_area of '" + service.name +
                                    "' needs 4 numbers");
        }
        query.area = stt::NormalizeBBox(
            {std::strtod(corners[0].c_str(), nullptr),
             std::strtod(corners[1].c_str(), nullptr)},
            {std::strtod(corners[2].c_str(), nullptr),
             std::strtod(corners[3].c_str(), nullptr)});
      }
      if (service.Has("query_max_period")) {
        SL_ASSIGN_OR_RETURN(query.max_period,
                            service.GetDuration("query_max_period"));
      }
      if (service.Has("query_node")) {
        SL_ASSIGN_OR_RETURN(query.node_id, service.GetString("query_node"));
      }
      builder.AddSourceByQuery(service.name, std::move(query));
      continue;
    }
    if (service.kind == "SINK") {
      SL_ASSIGN_OR_RETURN(std::string sink_kind, service.GetString("sink"));
      SL_ASSIGN_OR_RETURN(dataflow::SinkKind kind,
                          dataflow::SinkKindFromString(sink_kind));
      std::string target;
      if (service.Has("target")) {
        SL_ASSIGN_OR_RETURN(target, service.GetString("target"));
      }
      if (service.inputs.size() != 1) {
        return Status::ValidationError("sink service '" + service.name +
                                       "' must have exactly one input");
      }
      builder.AddSink(service.name, service.inputs[0], kind, target);
      continue;
    }
    SL_ASSIGN_OR_RETURN(OpKind op, dataflow::OpKindFromString(service.kind));
    dataflow::OpSpec op_spec;
    switch (op) {
      case OpKind::kFilter: {
        SL_ASSIGN_OR_RETURN(std::string cond, service.GetString("condition"));
        op_spec = FilterSpec{cond};
        break;
      }
      case OpKind::kTransform: {
        TransformSpec s;
        SL_ASSIGN_OR_RETURN(s.attribute, service.GetString("attribute"));
        SL_ASSIGN_OR_RETURN(s.expression, service.GetString("expression"));
        if (service.Has("new_unit")) {
          SL_ASSIGN_OR_RETURN(s.new_unit, service.GetString("new_unit"));
        }
        op_spec = std::move(s);
        break;
      }
      case OpKind::kVirtualProperty: {
        VirtualPropertySpec s;
        SL_ASSIGN_OR_RETURN(s.property, service.GetString("property"));
        SL_ASSIGN_OR_RETURN(s.specification,
                            service.GetString("specification"));
        if (service.Has("unit")) {
          SL_ASSIGN_OR_RETURN(s.unit, service.GetString("unit"));
        }
        op_spec = std::move(s);
        break;
      }
      case OpKind::kCullTime: {
        CullTimeSpec s;
        SL_ASSIGN_OR_RETURN(s.t_begin, service.GetTimestamp("t_begin"));
        SL_ASSIGN_OR_RETURN(s.t_end, service.GetTimestamp("t_end"));
        SL_ASSIGN_OR_RETURN(s.rate, service.GetDouble("rate"));
        op_spec = s;
        break;
      }
      case OpKind::kCullSpace: {
        CullSpaceSpec s;
        SL_ASSIGN_OR_RETURN(s.corner1.lat, service.GetDouble("lat1"));
        SL_ASSIGN_OR_RETURN(s.corner1.lon, service.GetDouble("lon1"));
        SL_ASSIGN_OR_RETURN(s.corner2.lat, service.GetDouble("lat2"));
        SL_ASSIGN_OR_RETURN(s.corner2.lon, service.GetDouble("lon2"));
        SL_ASSIGN_OR_RETURN(s.rate, service.GetDouble("rate"));
        op_spec = s;
        break;
      }
      case OpKind::kAggregation: {
        AggregationSpec s;
        SL_ASSIGN_OR_RETURN(s.interval, service.GetDuration("interval"));
        if (service.Has("window")) {
          SL_ASSIGN_OR_RETURN(s.window, service.GetDuration("window"));
        }
        SL_ASSIGN_OR_RETURN(std::string func, service.GetString("function"));
        SL_ASSIGN_OR_RETURN(s.func, dataflow::AggFuncFromString(func));
        SL_ASSIGN_OR_RETURN(s.attributes, service.GetList("attributes"));
        if (service.Has("group_by")) {
          SL_ASSIGN_OR_RETURN(s.group_by, service.GetList("group_by"));
        }
        SL_RETURN_IF_ERROR(
            ParsePartitioning(service, &s.parallelism, &s.partition_by));
        op_spec = std::move(s);
        break;
      }
      case OpKind::kJoin: {
        JoinSpec s;
        SL_ASSIGN_OR_RETURN(s.interval, service.GetDuration("interval"));
        if (service.Has("window")) {
          SL_ASSIGN_OR_RETURN(s.window, service.GetDuration("window"));
        }
        SL_ASSIGN_OR_RETURN(s.predicate, service.GetString("predicate"));
        SL_RETURN_IF_ERROR(
            ParsePartitioning(service, &s.parallelism, &s.partition_by));
        op_spec = std::move(s);
        break;
      }
      case OpKind::kTriggerOn:
      case OpKind::kTriggerOff: {
        TriggerSpec s;
        SL_ASSIGN_OR_RETURN(s.interval, service.GetDuration("interval"));
        if (service.Has("window")) {
          SL_ASSIGN_OR_RETURN(s.window, service.GetDuration("window"));
        }
        SL_ASSIGN_OR_RETURN(s.condition, service.GetString("condition"));
        SL_ASSIGN_OR_RETURN(s.target_sensors, service.GetList("targets"));
        SL_RETURN_IF_ERROR(
            ParsePartitioning(service, &s.parallelism, &s.partition_by));
        op_spec = std::move(s);
        break;
      }
    }
    builder.AddOperator(service.name, op, std::move(op_spec), service.inputs);
  }
  return builder.Build();
}

}  // namespace sl::dsn
