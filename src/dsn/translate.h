// StreamLoader: translation between conceptual dataflows and DSN.
//
// "Once the dataflow is consistent (i.e. it can be soundly activated at
// network level), the translation is automatically invoked" (§1). The
// translator is total on validated dataflows, and reversible: the DSN
// text can be parsed and lifted back to an equivalent dataflow, which is
// how the SCN side reconstructs the operator graph it must deploy.

#ifndef STREAMLOADER_DSN_TRANSLATE_H_
#define STREAMLOADER_DSN_TRANSLATE_H_

#include "dataflow/graph.h"
#include "dsn/spec.h"

namespace sl::dsn {

/// \brief Translates a structurally valid dataflow into a DSN spec.
///
/// Flow QoS parameters are derived from the consuming service: flows
/// into triggers are high priority (8) with a tight latency bound
/// (250 ms) so reactive behaviour is prompt; flows into sinks are low
/// priority (3, 1 s); all other flows default to (5, 500 ms).
Result<DsnSpec> TranslateToDsn(const dataflow::Dataflow& dataflow);

/// \brief Lifts a DSN spec back into a conceptual dataflow (inverse of
/// TranslateToDsn up to flow QoS, which the dataflow does not model).
Result<dataflow::Dataflow> TranslateFromDsn(const DsnSpec& spec);

}  // namespace sl::dsn

#endif  // STREAMLOADER_DSN_TRANSLATE_H_
