// StreamLoader: the DSN (Declarative Service Networking) specification
// language.
//
// Following Dong/Kimata/Zettsu [8], a DSN description models "a
// high-level network of information services for an application",
// covering service discovery, execution control and message exchanges;
// the SCN protocol stack interprets it and coordinates network
// configuration (flows, QoS parameters). The paper's own DSN/SCN
// implementation is closed NICT software, so StreamLoader defines a
// concrete textual DSN language with the same roles (see DESIGN.md §2):
//
//   dataflow osaka_alert {
//     service src_temp { kind: SOURCE; sensor: "osaka_temp_01"; }
//     service hot      { kind: FILTER; input: src_temp;
//                        condition: "temp > 25"; }
//     service store    { kind: SINK; input: hot; sink: WAREHOUSE;
//                        target: "events"; }
//     flow src_temp -> hot   [max_latency: "500ms"; priority: 5];
//     flow hot      -> store [max_latency: "1s";    priority: 3];
//   }
//
// The language is round-trip safe: Parse(spec.ToString()) reproduces an
// equal spec, which the test suite verifies property-style.

#ifndef STREAMLOADER_DSN_SPEC_H_
#define STREAMLOADER_DSN_SPEC_H_

#include <map>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "util/clock.h"
#include "util/result.h"

namespace sl::dsn {

/// \brief QoS parameters attached to a flow (SCN configures these on the
/// network paths it provisions).
struct QosParams {
  /// Delivery deadline hint for a batch on this flow; 0 = unconstrained.
  Duration max_latency = 0;
  /// Scheduling priority, 0 (lowest) .. 9 (highest).
  int priority = 5;

  bool operator==(const QosParams& o) const {
    return max_latency == o.max_latency && priority == o.priority;
  }
};

/// \brief One service of the DSN description: a source, an ETL
/// operation, or a sink, with its configuration as key/value properties.
struct DsnService {
  std::string name;
  /// "SOURCE", "SINK", or an operation kind ("FILTER", "JOIN", ...).
  std::string kind;
  /// Upstream service names in port order (from `input:` or
  /// `left:`/`right:` properties).
  std::vector<std::string> inputs;
  /// Remaining configuration properties, raw string values.
  std::map<std::string, std::string> properties;

  /// Source locations (byte offsets into the parsed document; all empty
  /// when the spec was built programmatically). `property_spans` point
  /// at the property *value content* — for quoted values, the text
  /// between the quotes — so expression-relative diagnostic spans can be
  /// re-anchored into the document. Deliberately not part of equality:
  /// round-tripped specs compare equal regardless of provenance.
  diag::Span name_span;
  std::map<std::string, diag::Span> property_spans;

  bool operator==(const DsnService& o) const {
    return name == o.name && kind == o.kind && inputs == o.inputs &&
           properties == o.properties;
  }

  /// Typed property accessors; NotFound / ParseError on failure.
  Result<std::string> GetString(const std::string& key) const;
  Result<Duration> GetDuration(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<Timestamp> GetTimestamp(const std::string& key) const;
  Result<std::vector<std::string>> GetList(const std::string& key) const;
  bool Has(const std::string& key) const { return properties.count(key) > 0; }
};

/// \brief One directed flow between services.
struct DsnFlow {
  std::string from;
  std::string to;
  QosParams qos;

  bool operator==(const DsnFlow& o) const {
    return from == o.from && to == o.to && qos == o.qos;
  }
};

/// \brief A complete DSN description of one dataflow.
struct DsnSpec {
  std::string name;
  std::vector<DsnService> services;
  std::vector<DsnFlow> flows;

  bool operator==(const DsnSpec& o) const {
    return name == o.name && services == o.services && flows == o.flows;
  }

  Result<const DsnService*> FindService(const std::string& name) const;

  /// Serializes to the textual DSN language (canonical form: services in
  /// declaration order, properties alphabetical).
  std::string ToString() const;
};

/// \brief Structural validation of a spec: unique valid service names,
/// known kinds, flows referencing existing services, flow endpoints
/// consistent with service input declarations, acyclicity.
Status ValidateDsn(const DsnSpec& spec);

}  // namespace sl::dsn

#endif  // STREAMLOADER_DSN_SPEC_H_
