// StreamLoader: stream recording and replay.
//
// Recordings close the loop between the CSV sink and the replay sensor:
// a stream captured by a CsvSink (or exported from the warehouse) can be
// parsed back into tuples and re-published as a sensor — deterministic
// input for tests, demos and the sample-based debugger. The CSV format
// itself lives in sinks/csv_io.h; thin aliases are kept here so sensor
// code reads naturally.

#ifndef STREAMLOADER_SENSORS_RECORDING_H_
#define STREAMLOADER_SENSORS_RECORDING_H_

#include <string>
#include <vector>

#include "sensors/simulator.h"
#include "sinks/csv_io.h"
#include "stt/schema.h"
#include "stt/tuple.h"

namespace sl::sensors {

/// Parses a CSV recording (CsvSink format) into tuples conforming to
/// `schema`. See sinks::ParseRecordingCsv.
inline Result<std::vector<stt::Tuple>> ParseRecordingCsv(
    const std::string& csv, stt::SchemaPtr schema) {
  return sinks::ParseRecordingCsv(csv, std::move(schema));
}

/// Serializes tuples as a CSV recording. See sinks::WriteRecordingCsv.
inline Result<std::string> WriteRecordingCsv(
    const std::vector<stt::Tuple>& tuples) {
  return sinks::WriteRecordingCsv(tuples);
}

/// \brief Builds a replay sensor from a CSV recording. The sensor
/// re-stamps tuples with emission time and cycles through the recording
/// at `info.period`.
Result<std::unique_ptr<SensorSimulator>> MakeReplaySensorFromCsv(
    pubsub::SensorInfo info, const std::string& csv);

}  // namespace sl::sensors

#endif  // STREAMLOADER_SENSORS_RECORDING_H_
