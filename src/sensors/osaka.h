// StreamLoader: the paper's Osaka scenario sensor fleet (§3).
//
// "There are different sensors in the area of Osaka that produce data
// about the temperatures and levels of rains ... Moreover, tweets and
// traffic information from the same area ... can be acquired."

#ifndef STREAMLOADER_SENSORS_OSAKA_H_
#define STREAMLOADER_SENSORS_OSAKA_H_

#include <vector>

#include "sensors/generators.h"
#include "sensors/simulator.h"

namespace sl::sensors {

/// \brief Sizing of the Osaka fleet.
struct OsakaFleetOptions {
  size_t temperature_sensors = 4;
  size_t humidity_sensors = 2;
  size_t rain_sensors = 3;
  size_t tweet_sensors = 2;
  size_t traffic_sensors = 3;
  /// Emission period of the physical sensors (tweets/traffic run
  /// faster, scaled from this).
  Duration physical_period = duration::kMinute;
  /// Network nodes managing the sensors (round-robin); empty = "".
  std::vector<std::string> node_ids;
  uint64_t seed = 42;
  /// Whether rain / tweet / traffic sensors start active. In the
  /// scenario they start inactive and are activated by the Trigger On
  /// when the hot-hour condition holds.
  bool reactive_sensors_start_active = false;
};

/// \brief Ids of the sensors the builder created, by role.
struct OsakaFleetManifest {
  std::vector<std::string> temperature;
  std::vector<std::string> humidity;
  std::vector<std::string> rain;
  std::vector<std::string> tweets;
  std::vector<std::string> traffic;

  std::vector<std::string> reactive() const {
    std::vector<std::string> out = rain;
    out.insert(out.end(), tweets.begin(), tweets.end());
    out.insert(out.end(), traffic.begin(), traffic.end());
    return out;
  }
};

/// \brief Populates `fleet` with the scenario sensors, spread over the
/// Osaka area, heterogeneous on purpose: one temperature sensor per four
/// reports Fahrenheit, granularities differ, traffic sensors rely on
/// broker STT enrichment. Temperature/humidity start active; rain,
/// tweet and traffic sensors start according to
/// `reactive_sensors_start_active`.
Result<OsakaFleetManifest> BuildOsakaFleet(SensorFleet* fleet,
                                           const OsakaFleetOptions& options);

}  // namespace sl::sensors

#endif  // STREAMLOADER_SENSORS_OSAKA_H_
