#include "sensors/recording.h"

#include "sensors/generators.h"

namespace sl::sensors {

Result<std::unique_ptr<SensorSimulator>> MakeReplaySensorFromCsv(
    pubsub::SensorInfo info, const std::string& csv) {
  SL_ASSIGN_OR_RETURN(std::vector<stt::Tuple> recording,
                      sinks::ParseRecordingCsv(csv, info.schema));
  return MakeReplaySensor(std::move(info), std::move(recording));
}

}  // namespace sl::sensors
