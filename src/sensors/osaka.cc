#include "sensors/osaka.h"

#include "util/strings.h"

namespace sl::sensors {

namespace {
std::string NodeFor(const OsakaFleetOptions& options, size_t index) {
  if (options.node_ids.empty()) return "";
  return options.node_ids[index % options.node_ids.size()];
}
}  // namespace

Result<OsakaFleetManifest> BuildOsakaFleet(SensorFleet* fleet,
                                           const OsakaFleetOptions& options) {
  if (fleet == nullptr) return Status::InvalidArgument("null fleet");
  OsakaFleetManifest manifest;
  size_t node_index = 0;
  uint64_t seed = options.seed;

  for (size_t i = 0; i < options.temperature_sensors; ++i) {
    PhysicalConfig config;
    config.id = StrFormat("osaka_temp_%02zu", i);
    config.location = {34.62 + 0.03 * static_cast<double>(i % 4),
                       135.42 + 0.04 * static_cast<double>(i / 4)};
    config.period = options.physical_period;
    config.temporal_granularity = options.physical_period;
    config.node_id = NodeFor(options, node_index++);
    config.seed = seed++;
    // Heterogeneity: every fourth sensor reports Fahrenheit.
    std::string unit = (i % 4 == 3) ? "fahrenheit" : "celsius";
    auto sensor = MakeTemperatureSensor(config, 23.0, 7.0, 0.5, unit);
    if (sensor == nullptr) {
      return Status::Internal("failed to build " + config.id);
    }
    manifest.temperature.push_back(config.id);
    SL_RETURN_IF_ERROR(fleet->Add(std::move(sensor), /*start_active=*/true));
  }

  for (size_t i = 0; i < options.humidity_sensors; ++i) {
    PhysicalConfig config;
    config.id = StrFormat("osaka_hum_%02zu", i);
    config.location = {34.66 + 0.02 * static_cast<double>(i), 135.50};
    config.period = options.physical_period;
    config.temporal_granularity = options.physical_period;
    config.node_id = NodeFor(options, node_index++);
    config.seed = seed++;
    auto sensor = MakeHumiditySensor(config);
    if (sensor == nullptr) {
      return Status::Internal("failed to build " + config.id);
    }
    manifest.humidity.push_back(config.id);
    SL_RETURN_IF_ERROR(fleet->Add(std::move(sensor), /*start_active=*/true));
  }

  for (size_t i = 0; i < options.rain_sensors; ++i) {
    PhysicalConfig config;
    config.id = StrFormat("osaka_rain_%02zu", i);
    config.location = {34.60 + 0.05 * static_cast<double>(i), 135.46};
    config.period = options.physical_period;
    config.temporal_granularity = options.physical_period;
    // Heterogeneity: rain reported per 0.01-degree cell.
    config.spatial_cell_deg = 0.01;
    config.node_id = NodeFor(options, node_index++);
    config.seed = seed++;
    auto sensor = MakeRainSensor(config);
    if (sensor == nullptr) {
      return Status::Internal("failed to build " + config.id);
    }
    manifest.rain.push_back(config.id);
    SL_RETURN_IF_ERROR(
        fleet->Add(std::move(sensor), options.reactive_sensors_start_active));
  }

  for (size_t i = 0; i < options.tweet_sensors; ++i) {
    TweetConfig config;
    config.id = StrFormat("osaka_tweet_%02zu", i);
    config.center = {34.68 + 0.03 * static_cast<double>(i), 135.50};
    config.period = std::max<Duration>(options.physical_period / 6, 1);
    config.node_id = NodeFor(options, node_index++);
    config.seed = seed++;
    auto sensor = MakeTweetSensor(config);
    if (sensor == nullptr) {
      return Status::Internal("failed to build " + config.id);
    }
    manifest.tweets.push_back(config.id);
    SL_RETURN_IF_ERROR(
        fleet->Add(std::move(sensor), options.reactive_sensors_start_active));
  }

  for (size_t i = 0; i < options.traffic_sensors; ++i) {
    TrafficConfig config;
    config.id = StrFormat("osaka_traffic_%02zu", i);
    config.location = {34.70, 135.44 + 0.04 * static_cast<double>(i)};
    config.road = StrFormat("route_%zu", 11 + i);
    config.period = std::max<Duration>(options.physical_period / 2, 1);
    config.node_id = NodeFor(options, node_index++);
    config.seed = seed++;
    auto sensor = MakeTrafficSensor(config);
    if (sensor == nullptr) {
      return Status::Internal("failed to build " + config.id);
    }
    manifest.traffic.push_back(config.id);
    SL_RETURN_IF_ERROR(
        fleet->Add(std::move(sensor), options.reactive_sensors_start_active));
  }

  return manifest;
}

}  // namespace sl::sensors
