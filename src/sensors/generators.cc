#include "sensors/generators.h"

#include <cmath>

#include "stt/units.h"
#include "util/strings.h"

namespace sl::sensors {

using stt::Field;
using stt::Schema;
using stt::SchemaPtr;
using stt::Tuple;
using stt::Value;
using stt::ValueType;

namespace {

/// Fills the common SensorInfo fields of a physical sensor.
Result<pubsub::SensorInfo> PhysicalInfo(const PhysicalConfig& config,
                                        const std::string& type,
                                        const std::string& theme_path,
                                        std::vector<Field> fields) {
  SL_ASSIGN_OR_RETURN(stt::TemporalGranularity tgran,
                      stt::TemporalGranularity::Make(
                          config.temporal_granularity));
  stt::SpatialGranularity sgran;
  if (config.spatial_cell_deg > 0) {
    SL_ASSIGN_OR_RETURN(sgran,
                        stt::SpatialGranularity::MakeCell(
                            config.spatial_cell_deg));
  }
  SL_ASSIGN_OR_RETURN(stt::Theme theme, stt::Theme::Parse(theme_path));
  SL_ASSIGN_OR_RETURN(SchemaPtr schema,
                      Schema::Make(std::move(fields), tgran, sgran, theme));
  pubsub::SensorInfo info;
  info.id = config.id;
  info.type = type;
  info.schema = std::move(schema);
  info.period = config.period;
  info.location = config.location;
  info.owner = config.owner;
  info.provides_timestamp = config.provides_timestamp;
  info.provides_location = config.provides_location;
  info.node_id = config.node_id;
  return info;
}

/// Hour-of-day as a fraction [0, 1) for diurnal cycles.
double DayFraction(Timestamp ts) {
  int64_t ms_of_day = ((ts % duration::kDay) + duration::kDay) % duration::kDay;
  return static_cast<double>(ms_of_day) / static_cast<double>(duration::kDay);
}

class TemperatureSensor : public SensorSimulator {
 public:
  TemperatureSensor(pubsub::SensorInfo info, uint64_t seed, double base_c,
                    double amplitude_c, double noise_c, std::string unit)
      : SensorSimulator(std::move(info)),
        rng_(seed),
        base_c_(base_c),
        amplitude_c_(amplitude_c),
        noise_c_(noise_c),
        unit_(std::move(unit)) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    // Peak around 14:00, trough around 02:00.
    double phase = 2.0 * M_PI * (DayFraction(ts) - 14.0 / 24.0);
    double temp_c =
        base_c_ + amplitude_c_ * std::cos(phase) + rng_.NextGaussian(0, noise_c_);
    double value = temp_c;
    if (unit_ != "celsius") {
      SL_ASSIGN_OR_RETURN(value, stt::ConvertUnit(temp_c, "celsius", unit_));
    }
    return Tuple::MakeShared(info_.schema, {Value::Double(value)}, ts,
                       info_.location, info_.id);
  }

 private:
  Rng rng_;
  double base_c_, amplitude_c_, noise_c_;
  std::string unit_;
};

class HumiditySensor : public SensorSimulator {
 public:
  HumiditySensor(pubsub::SensorInfo info, uint64_t seed, double base_pct,
                 double amplitude_pct, double noise_pct)
      : SensorSimulator(std::move(info)),
        rng_(seed),
        base_pct_(base_pct),
        amplitude_pct_(amplitude_pct),
        noise_pct_(noise_pct) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    // Humidity troughs mid-afternoon (anti-phase to temperature).
    double phase = 2.0 * M_PI * (DayFraction(ts) - 14.0 / 24.0);
    double rh = base_pct_ - amplitude_pct_ * std::cos(phase) +
                rng_.NextGaussian(0, noise_pct_);
    rh = std::min(100.0, std::max(5.0, rh));
    return Tuple::MakeShared(info_.schema, {Value::Double(rh)}, ts, info_.location,
                       info_.id);
  }

 private:
  Rng rng_;
  double base_pct_, amplitude_pct_, noise_pct_;
};

class RainSensor : public SensorSimulator {
 public:
  RainSensor(pubsub::SensorInfo info, uint64_t seed, double p_wet,
             double p_stay_wet, double mean_mmh)
      : SensorSimulator(std::move(info)),
        rng_(seed),
        p_wet_(p_wet),
        p_stay_wet_(p_stay_wet),
        mean_mmh_(mean_mmh) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    wet_ = wet_ ? rng_.NextBool(p_stay_wet_) : rng_.NextBool(p_wet_);
    double mmh = 0.0;
    if (wet_) {
      // Heavy-tailed (exponential squared-ish) intensity: occasional
      // torrential values well above the mean.
      double u = rng_.NextDouble();
      mmh = mean_mmh_ * (-std::log(1.0 - u));
      if (rng_.NextBool(0.08)) mmh *= 4.0;  // torrential burst
    }
    return Tuple::MakeShared(info_.schema, {Value::Double(mmh)}, ts, info_.location,
                       info_.id);
  }

 private:
  Rng rng_;
  double p_wet_, p_stay_wet_, mean_mmh_;
  bool wet_ = false;
};

class PressureSensor : public SensorSimulator {
 public:
  PressureSensor(pubsub::SensorInfo info, uint64_t seed)
      : SensorSimulator(std::move(info)), rng_(seed) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    level_ += rng_.NextGaussian(0, 0.3);
    level_ = std::min(1040.0, std::max(980.0, level_));
    return Tuple::MakeShared(info_.schema, {Value::Double(level_)}, ts,
                       info_.location, info_.id);
  }

 private:
  Rng rng_;
  double level_ = 1013.25;
};

class WindSensor : public SensorSimulator {
 public:
  WindSensor(pubsub::SensorInfo info, uint64_t seed)
      : SensorSimulator(std::move(info)), rng_(seed) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    // Rayleigh-distributed speed, slowly drifting direction.
    double u = rng_.NextDouble();
    double speed = 3.0 * std::sqrt(-2.0 * std::log(1.0 - u + 1e-12));
    direction_ = (direction_ + rng_.NextInt(-15, 15) + 360) % 360;
    return Tuple::MakeShared(info_.schema,
                       {Value::Double(speed), Value::Int(direction_)}, ts,
                       info_.location, info_.id);
  }

 private:
  Rng rng_;
  int64_t direction_ = 180;
};

class TweetSensor : public SensorSimulator {
 public:
  TweetSensor(pubsub::SensorInfo info, const TweetConfig& config)
      : SensorSimulator(std::move(info)), config_(config), rng_(config.seed) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    static const char* kNeutral[] = {
        "lovely day in osaka", "lunch at dotonbori", "train was on time",
        "hanshin tigers game tonight", "shopping in umeda"};
    static const char* kRainy[] = {
        "torrential rain near the station", "streets flooding in namba",
        "heavy rain again, stay safe", "storm warning issued for osaka",
        "my shoes are soaked, crazy rain"};
    bool rainy = rng_.NextBool(config_.rain_keyword_fraction);
    const char* text =
        rainy ? kRainy[rng_.NextBounded(5)] : kNeutral[rng_.NextBounded(5)];
    std::string user = StrFormat("user_%03d",
                                 static_cast<int>(rng_.NextBounded(500)));
    stt::GeoPoint loc{
        config_.center.lat + rng_.NextDouble(-config_.jitter_deg,
                                             config_.jitter_deg),
        config_.center.lon + rng_.NextDouble(-config_.jitter_deg,
                                             config_.jitter_deg)};
    return Tuple::MakeShared(
        info_.schema,
        {Value::String(text), Value::String(user),
         Value::Int(static_cast<int64_t>(rng_.NextBounded(50)))},
        ts, loc, info_.id);
  }

 private:
  TweetConfig config_;
  Rng rng_;
};

class TrafficSensor : public SensorSimulator {
 public:
  TrafficSensor(pubsub::SensorInfo info, const TrafficConfig& config)
      : SensorSimulator(std::move(info)), config_(config), rng_(config.seed) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    double day = DayFraction(ts);
    // Rush hours ~08:00 and ~18:00 slow traffic and raise volume.
    double rush = std::exp(-std::pow((day - 8.0 / 24.0) * 24.0, 2)) +
                  std::exp(-std::pow((day - 18.0 / 24.0) * 24.0, 2));
    double speed = config_.free_flow_kmh * (1.0 - 0.6 * rush) +
                   rng_.NextGaussian(0, 3.0);
    speed = std::max(2.0, speed);
    int64_t vehicles = static_cast<int64_t>(
        std::max(0.0, 20.0 + 120.0 * rush + rng_.NextGaussian(0, 8.0)));
    return Tuple::MakeShared(info_.schema,
                       {Value::Double(speed), Value::Int(vehicles),
                        Value::String(config_.road)},
                       ts, info_.location, info_.id);
  }

 private:
  TrafficConfig config_;
  Rng rng_;
};

class ReplaySensor : public SensorSimulator {
 public:
  ReplaySensor(pubsub::SensorInfo info, std::vector<Tuple> recording)
      : SensorSimulator(std::move(info)), recording_(std::move(recording)) {}

  Result<stt::TupleRef> Generate(Timestamp ts) override {
    const Tuple& t = recording_[next_ % recording_.size()];
    ++next_;
    // Re-stamp with the emission time; location comes from the recording.
    return t.WithStt(t.schema(), ts, t.location());
  }

 private:
  std::vector<Tuple> recording_;
  size_t next_ = 0;
};

}  // namespace

std::unique_ptr<SensorSimulator> MakeTemperatureSensor(
    const PhysicalConfig& config, double base_c, double daily_amplitude_c,
    double noise_c, const std::string& unit) {
  auto info = PhysicalInfo(config, "temperature", "weather/temperature",
                           {{"temp", ValueType::kDouble, unit, false}});
  if (!info.ok()) return nullptr;
  return std::make_unique<TemperatureSensor>(std::move(info).ValueOrDie(),
                                             config.seed, base_c,
                                             daily_amplitude_c, noise_c, unit);
}

std::unique_ptr<SensorSimulator> MakeHumiditySensor(
    const PhysicalConfig& config, double base_pct, double daily_amplitude_pct,
    double noise_pct) {
  auto info = PhysicalInfo(config, "humidity", "weather/humidity",
                           {{"humidity", ValueType::kDouble, "percent",
                             false}});
  if (!info.ok()) return nullptr;
  return std::make_unique<HumiditySensor>(std::move(info).ValueOrDie(),
                                          config.seed, base_pct,
                                          daily_amplitude_pct, noise_pct);
}

std::unique_ptr<SensorSimulator> MakeRainSensor(const PhysicalConfig& config,
                                                double wet_probability,
                                                double stay_wet_probability,
                                                double mean_intensity_mmh) {
  auto info = PhysicalInfo(config, "rain", "weather/rain",
                           {{"rain", ValueType::kDouble, "mm/h", false}});
  if (!info.ok()) return nullptr;
  return std::make_unique<RainSensor>(std::move(info).ValueOrDie(),
                                      config.seed, wet_probability,
                                      stay_wet_probability,
                                      mean_intensity_mmh);
}

std::unique_ptr<SensorSimulator> MakePressureSensor(
    const PhysicalConfig& config) {
  auto info = PhysicalInfo(config, "pressure", "weather/pressure",
                           {{"pressure", ValueType::kDouble, "hpa", false}});
  if (!info.ok()) return nullptr;
  return std::make_unique<PressureSensor>(std::move(info).ValueOrDie(),
                                          config.seed);
}

std::unique_ptr<SensorSimulator> MakeWindSensor(const PhysicalConfig& config) {
  auto info = PhysicalInfo(config, "wind", "weather/wind",
                           {{"speed", ValueType::kDouble, "m/s", false},
                            {"direction", ValueType::kInt, "", false}});
  if (!info.ok()) return nullptr;
  return std::make_unique<WindSensor>(std::move(info).ValueOrDie(),
                                      config.seed);
}

std::unique_ptr<SensorSimulator> MakeTweetSensor(const TweetConfig& config) {
  auto tgran = stt::TemporalGranularity::Second();
  auto theme = stt::Theme::Parse("social/tweet");
  auto schema = Schema::Make({{"text", ValueType::kString, "", false},
                              {"user", ValueType::kString, "", false},
                              {"retweets", ValueType::kInt, "count", false}},
                             tgran, stt::SpatialGranularity::Point(), *theme);
  if (!schema.ok()) return nullptr;
  pubsub::SensorInfo info;
  info.id = config.id;
  info.type = "tweet";
  info.schema = std::move(schema).ValueOrDie();
  info.period = config.period;
  info.location = config.center;
  info.owner = config.owner;
  info.provides_timestamp = true;
  info.provides_location = true;  // mobile: each tuple carries its own
  info.node_id = config.node_id;
  return std::make_unique<TweetSensor>(std::move(info), config);
}

std::unique_ptr<SensorSimulator> MakeTrafficSensor(
    const TrafficConfig& config) {
  auto tgran = stt::TemporalGranularity::Second();
  auto theme = stt::Theme::Parse("mobility/traffic");
  auto schema = Schema::Make({{"speed", ValueType::kDouble, "km/h", false},
                              {"vehicles", ValueType::kInt, "count", false},
                              {"road", ValueType::kString, "", false}},
                             tgran, stt::SpatialGranularity::Point(), *theme);
  if (!schema.ok()) return nullptr;
  pubsub::SensorInfo info;
  info.id = config.id;
  info.type = "traffic";
  info.schema = std::move(schema).ValueOrDie();
  info.period = config.period;
  info.location = config.location;
  info.owner = config.owner;
  info.provides_timestamp = false;  // loop detectors: broker stamps arrival
  info.provides_location = false;   // fixed install point via enrichment
  info.node_id = config.node_id;
  return std::make_unique<TrafficSensor>(std::move(info), config);
}

Result<std::unique_ptr<SensorSimulator>> MakeReplaySensor(
    pubsub::SensorInfo info, std::vector<Tuple> recording) {
  if (recording.empty()) {
    return Status::InvalidArgument("replay sensor needs a non-empty recording");
  }
  for (const auto& t : recording) {
    if (t.schema() != info.schema &&
        (t.schema() == nullptr || info.schema == nullptr ||
         !t.schema()->Equals(*info.schema))) {
      return Status::TypeError(
          "replay recording tuple schema differs from the sensor schema");
    }
  }
  return std::unique_ptr<SensorSimulator>(
      new ReplaySensor(std::move(info), std::move(recording)));
}

}  // namespace sl::sensors
