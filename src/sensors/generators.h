// StreamLoader: concrete sensor generators.
//
// Physical sensors (temperature, humidity, rain — §1's "temperature,
// humidity, wind, rain, pressure") and social sensors (tweets, traffic
// — "twitter data, traffic information") with deliberately heterogeneous
// schemas, units and granularities, so the ETL operations have real
// reconciliation work to do.

#ifndef STREAMLOADER_SENSORS_GENERATORS_H_
#define STREAMLOADER_SENSORS_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "sensors/simulator.h"
#include "util/rng.h"

namespace sl::sensors {

/// \brief Shared knobs of the physical generators.
struct PhysicalConfig {
  std::string id;
  stt::GeoPoint location{34.69, 135.50};  ///< Osaka city by default
  Duration period = duration::kMinute;
  Duration temporal_granularity = duration::kMinute;
  double spatial_cell_deg = 0.0;  ///< 0 = point granularity
  std::string node_id;            ///< managing network node
  std::string owner = "osaka_met";
  uint64_t seed = 1;
  /// When false the sensor relies on broker enrichment (§3).
  bool provides_timestamp = true;
  bool provides_location = true;
};

/// \brief Diurnal temperature: base + daily sinusoid + Gaussian noise.
/// Unit selectable ("celsius" or "fahrenheit") to exercise unit
/// reconciliation. Schema: {temp: double[unit]}.
std::unique_ptr<SensorSimulator> MakeTemperatureSensor(
    const PhysicalConfig& config, double base_c = 22.0,
    double daily_amplitude_c = 6.0, double noise_c = 0.4,
    const std::string& unit = "celsius");

/// \brief Relative humidity anti-correlated with the diurnal cycle.
/// Schema: {humidity: double[percent]}.
std::unique_ptr<SensorSimulator> MakeHumiditySensor(
    const PhysicalConfig& config, double base_pct = 65.0,
    double daily_amplitude_pct = 15.0, double noise_pct = 2.0);

/// \brief Rain gauge with a two-state (dry/wet) Markov regime; wet spells
/// produce heavy-tailed intensities (torrential bursts). Schema:
/// {rain: double[mm/h]}.
std::unique_ptr<SensorSimulator> MakeRainSensor(
    const PhysicalConfig& config, double wet_probability = 0.05,
    double stay_wet_probability = 0.85, double mean_intensity_mmh = 8.0);

/// \brief Barometric pressure random walk around 1013 hPa. Schema:
/// {pressure: double[hpa]}.
std::unique_ptr<SensorSimulator> MakePressureSensor(
    const PhysicalConfig& config);

/// \brief Wind speed (Rayleigh-ish) + direction. Schema:
/// {speed: double[m/s], direction: int}.
std::unique_ptr<SensorSimulator> MakeWindSensor(const PhysicalConfig& config);

/// \brief Geo-tagged micro-blog messages around a center point; a
/// configurable fraction mentions rain/flood keywords. The sensor is
/// mobile (each tuple carries its own jittered location). Schema:
/// {text: string, user: string, retweets: int}.
struct TweetConfig {
  std::string id;
  stt::GeoPoint center{34.69, 135.50};
  double jitter_deg = 0.05;
  Duration period = 10 * duration::kSecond;
  double rain_keyword_fraction = 0.2;
  std::string node_id;
  std::string owner = "sns_gw";
  uint64_t seed = 2;
};
std::unique_ptr<SensorSimulator> MakeTweetSensor(const TweetConfig& config);

/// \brief Road segment loop detector: vehicle count and mean speed with
/// rush-hour slowdowns. Schema: {speed: double[km/h], vehicles:
/// int[count], road: string}.
struct TrafficConfig {
  std::string id;
  stt::GeoPoint location{34.70, 135.49};
  std::string road = "hanshin_exp_11";
  Duration period = 30 * duration::kSecond;
  double free_flow_kmh = 65.0;
  std::string node_id;
  std::string owner = "osaka_road";
  uint64_t seed = 3;
};
std::unique_ptr<SensorSimulator> MakeTrafficSensor(const TrafficConfig& config);

/// \brief Replays a pre-recorded tuple sequence (cyclically), for tests
/// and deterministic examples. The tuples must share one schema.
Result<std::unique_ptr<SensorSimulator>> MakeReplaySensor(
    pubsub::SensorInfo info, std::vector<stt::Tuple> recording);

}  // namespace sl::sensors

#endif  // STREAMLOADER_SENSORS_GENERATORS_H_
