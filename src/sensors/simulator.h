// StreamLoader: sensor simulation.
//
// Stand-ins for the live NICT sensor network (DESIGN.md §2): each
// simulator owns a published SensorInfo and, while active, emits one
// tuple per period on the event loop through the broker (which performs
// STT enrichment). The SensorFleet manages a collection of simulators
// and exposes the activate/deactivate operations the Trigger operations
// need.

#ifndef STREAMLOADER_SENSORS_SIMULATOR_H_
#define STREAMLOADER_SENSORS_SIMULATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "pubsub/broker.h"
#include "util/rng.h"

namespace sl::sensors {

/// \brief Base class of all simulated sensors.
class SensorSimulator {
 public:
  explicit SensorSimulator(pubsub::SensorInfo info)
      : info_(std::move(info)) {}
  virtual ~SensorSimulator() = default;

  const pubsub::SensorInfo& info() const { return info_; }
  const std::string& id() const { return info_.id; }

  /// Publishes the sensor (if needed) and begins periodic emission.
  /// Idempotent while running.
  Status Start(net::EventLoop* loop, pubsub::Broker* broker);

  /// Stops emission; the sensor stays published (its stream is
  /// "de-activated" in the sense of Trigger Off).
  void Stop();

  /// Stops emission and unpublishes (the sensor leaves the network, P3).
  Status Leave();

  bool running() const { return timer_ != 0; }
  uint64_t emitted() const { return emitted_; }

  /// Produces the tuple for emission time `ts`. Deterministic given the
  /// simulator's seed and call sequence. Returns a shared ref: the tuple
  /// is minted once and every downstream layer forwards the same
  /// allocation.
  virtual Result<stt::TupleRef> Generate(Timestamp ts) = 0;

 protected:
  pubsub::SensorInfo info_;

 private:
  void EmitOnce();

  net::EventLoop* loop_ = nullptr;
  pubsub::Broker* broker_ = nullptr;
  net::EventLoop::TimerId timer_ = 0;
  uint64_t emitted_ = 0;
};

/// \brief Owns a set of simulators and routes activation requests.
class SensorFleet {
 public:
  /// `loop` and `broker` must outlive the fleet.
  SensorFleet(net::EventLoop* loop, pubsub::Broker* broker)
      : loop_(loop), broker_(broker) {}

  /// Adds a simulator (publishing it); optionally starts it immediately.
  Status Add(std::unique_ptr<SensorSimulator> simulator,
             bool start_active = true);

  /// The managed simulator with this id.
  Result<SensorSimulator*> Find(const std::string& sensor_id) const;

  /// Starts emission of a managed sensor's stream (Trigger On target).
  Status Activate(const std::string& sensor_id);

  /// Stops emission of a managed sensor's stream (Trigger Off target).
  Status Deactivate(const std::string& sensor_id);

  /// Removes the sensor from the network entirely (P3 churn).
  Status Remove(const std::string& sensor_id);

  std::vector<std::string> SensorIds() const;
  size_t size() const { return simulators_.size(); }

  /// Total tuples emitted by all managed sensors.
  uint64_t total_emitted() const;

 private:
  net::EventLoop* loop_;
  pubsub::Broker* broker_;
  std::map<std::string, std::unique_ptr<SensorSimulator>> simulators_;
};

}  // namespace sl::sensors

#endif  // STREAMLOADER_SENSORS_SIMULATOR_H_
