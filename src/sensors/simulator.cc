#include "sensors/simulator.h"

#include "util/logging.h"

namespace sl::sensors {

Status SensorSimulator::Start(net::EventLoop* loop, pubsub::Broker* broker) {
  if (running()) return Status::OK();
  if (loop == nullptr || broker == nullptr) {
    return Status::InvalidArgument("sensor needs an event loop and a broker");
  }
  loop_ = loop;
  broker_ = broker;
  if (!broker_->IsPublished(info_.id)) {
    SL_RETURN_IF_ERROR(broker_->Publish(info_));
  }
  timer_ = loop_->SchedulePeriodic(info_.period, [this] { EmitOnce(); });
  return Status::OK();
}

void SensorSimulator::Stop() {
  if (timer_ != 0 && loop_ != nullptr) {
    loop_->Cancel(timer_);
  }
  timer_ = 0;
}

Status SensorSimulator::Leave() {
  Stop();
  if (broker_ != nullptr && broker_->IsPublished(info_.id)) {
    return broker_->Unpublish(info_.id);
  }
  return Status::OK();
}

void SensorSimulator::EmitOnce() {
  auto tuple = Generate(loop_->Now());
  if (!tuple.ok()) {
    SL_LOG(kError) << "sensor " << info_.id
                   << " generation failed: " << tuple.status().ToString();
    return;
  }
  Status s = broker_->PublishTuple(info_.id, std::move(tuple).ValueOrDie());
  if (!s.ok()) {
    SL_LOG(kError) << "sensor " << info_.id
                   << " publish failed: " << s.ToString();
    return;
  }
  ++emitted_;
}

Status SensorFleet::Add(std::unique_ptr<SensorSimulator> simulator,
                        bool start_active) {
  if (simulator == nullptr) {
    return Status::InvalidArgument("null simulator");
  }
  std::string id = simulator->id();
  if (simulators_.count(id) > 0) {
    return Status::AlreadyExists("fleet already manages sensor '" + id + "'");
  }
  if (!broker_->IsPublished(id)) {
    SL_RETURN_IF_ERROR(broker_->Publish(simulator->info()));
  }
  if (start_active) {
    SL_RETURN_IF_ERROR(simulator->Start(loop_, broker_));
  }
  simulators_.emplace(std::move(id), std::move(simulator));
  return Status::OK();
}

Result<SensorSimulator*> SensorFleet::Find(const std::string& sensor_id) const {
  auto it = simulators_.find(sensor_id);
  if (it == simulators_.end()) {
    return Status::NotFound("fleet does not manage sensor '" + sensor_id +
                            "'");
  }
  return it->second.get();
}

Status SensorFleet::Activate(const std::string& sensor_id) {
  SL_ASSIGN_OR_RETURN(SensorSimulator * sim, Find(sensor_id));
  return sim->Start(loop_, broker_);
}

Status SensorFleet::Deactivate(const std::string& sensor_id) {
  SL_ASSIGN_OR_RETURN(SensorSimulator * sim, Find(sensor_id));
  sim->Stop();
  return Status::OK();
}

Status SensorFleet::Remove(const std::string& sensor_id) {
  SL_ASSIGN_OR_RETURN(SensorSimulator * sim, Find(sensor_id));
  SL_RETURN_IF_ERROR(sim->Leave());
  simulators_.erase(sensor_id);
  return Status::OK();
}

std::vector<std::string> SensorFleet::SensorIds() const {
  std::vector<std::string> ids;
  ids.reserve(simulators_.size());
  for (const auto& [id, sim] : simulators_) ids.push_back(id);
  return ids;
}

uint64_t SensorFleet::total_emitted() const {
  uint64_t total = 0;
  for (const auto& [id, sim] : simulators_) total += sim->emitted();
  return total;
}

}  // namespace sl::sensors
