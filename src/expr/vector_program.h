// StreamLoader: vectorized evaluation of compiled expression programs.
//
// A VectorProgram executes the same flat postorder ExprProgram the
// scalar VM runs — but over a ColumnBatch, one instruction at a time as
// a tight loop over the selection vector instead of one tuple at a
// time. Numeric arithmetic and comparisons run over typed column
// vectors (SIMD-friendly, branch-free null masks); strings, geo points
// and function calls fall back to a boxed per-row loop through the
// *shared* semantic helpers (EvalArithOp / EvalCompareOp / EvalUnaryOp),
// so the three evaluators (interpreter, scalar VM, vectorized VM) can
// never disagree on null propagation, domain errors or comparison
// quirks (NaN three-ways "equal", -0.0 == +0.0).
//
// Kleene short-circuits vectorize as selection narrowing: rows the left
// operand already decides receive the dominant bool and leave the
// active set; the right arm runs only over the undecided rows, and a
// divergence frame restores the active set at the merge target. A row
// that was decided therefore never observes the right arm's errors —
// exactly the scalar short-circuit contract.
//
// Per-tuple type errors stay per-tuple: a row whose attribute value
// contradicts the schema (or whose function call fails) is diverted to
// a RowError carrying the identical Status the scalar VM would have
// returned, and drops out of the batch; the remaining rows keep going.

#ifndef STREAMLOADER_EXPR_VECTOR_PROGRAM_H_
#define STREAMLOADER_EXPR_VECTOR_PROGRAM_H_

#include <vector>

#include "expr/program.h"
#include "stt/column_batch.h"

namespace sl::expr {

/// \brief Reusable vectorized evaluator for one compiled program.
///
/// Holds the register pool across calls, so steady-state evaluation
/// allocates nothing on the typed paths. One instance per operator;
/// not safe for concurrent calls (operators are single-threaded).
class VectorProgram {
 public:
  /// `program` must outlive this evaluator (operators own their
  /// BoundExpr, whose program the evaluator references).
  explicit VectorProgram(const ExprProgram* program) : program_(program) {}

  /// One row that failed with the per-tuple error the scalar VM would
  /// have surfaced. `row` indexes the batch's rows (not the selection).
  struct RowError {
    uint32_t row;
    Status status;
  };

  /// \brief Predicate evaluation over the batch's selected rows:
  /// narrows the selection in place to the rows where the result is
  /// non-null true (EvalPredicate semantics — null is false). Errored
  /// rows are appended to `errors` and removed. Returns non-OK only for
  /// whole-program failures (unbalanced stack), which a bound program
  /// never produces.
  Status RunPredicate(stt::ColumnBatch* batch, std::vector<RowError>* errors);

  /// \brief Value evaluation over the batch's selected rows: errored
  /// rows are removed from the selection (and reported), and `out`
  /// receives one result value per remaining selected row, aligned with
  /// the narrowed selection.
  Status RunValues(stt::ColumnBatch* batch, std::vector<stt::Value>* out,
                   std::vector<RowError>* errors);

 private:
  /// One vector register: a value per selection position, in exactly
  /// one representation. kNullReg is the statically-null register (a
  /// folded null literal) — no payload, every row null.
  struct VReg {
    enum class Kind : uint8_t { kI64, kF64, kB8, kBoxed, kNullReg };
    Kind kind = Kind::kNullReg;
    stt::ValueType etype = stt::ValueType::kNull;  ///< non-null element type
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint8_t> b8;
    std::vector<stt::Value> boxed;
    std::vector<uint8_t> null8;  ///< 1 = this row's value is null
  };

  /// Saved active set for one short-circuit divergence; restored when
  /// pc reaches `resume` (the instruction after the kLogicalMerge).
  struct Frame {
    uint32_t resume;
    std::vector<uint32_t> saved_active;
  };

  Status Run(stt::ColumnBatch* batch, std::vector<RowError>* errors);

  VReg& Push();
  void Pop() { --sp_; }
  VReg& Top() { return stack_[sp_ - 1]; }
  VReg& Under() { return stack_[sp_ - 2]; }

  /// Records the per-row failure and schedules the row's removal from
  /// the active set (performed by the caller's compaction pass).
  void RowFail(uint32_t pos, Status status, std::vector<RowError>* errors);

  /// Materializes one register element as a boxed value.
  stt::Value RegValue(const VReg& reg, uint32_t pos) const;

  /// Converts a logic operand register to b8 representation in place
  /// (no-op for b8; null-register and boxed-bool convert; anything else
  /// is an internal error for a bound program).
  Status ToB8(VReg* reg);

  void PushLiteral(const ExprInsn& in);
  Status PushAttr(const ExprInsn& in, stt::ColumnBatch* batch,
                  std::vector<RowError>* errors);
  void PushMeta(const ExprInsn& in, stt::ColumnBatch* batch);
  Status ApplyUnary(const ExprInsn& in);
  void ApplyArith(const ExprInsn& in);
  void ApplyCompare(const ExprInsn& in);
  Status ApplyCall(const ExprInsn& in, std::vector<RowError>* errors);

  /// Drops positions whose row has errored from `active_`.
  void CompactActive();

  const ExprProgram* program_;

  // Evaluation state (reused across calls; valid during Run only).
  std::vector<VReg> stack_;
  size_t sp_ = 0;
  std::vector<uint32_t> active_;
  std::vector<uint32_t> scratch_active_;
  std::vector<uint8_t> errored_;
  bool any_errored_ = false;
  std::vector<Frame> frames_;
  std::vector<stt::Value> args_;
  // Result scratch for kind-changing instructions (swapped into the
  // destination register; reused across calls).
  std::vector<double> res_f64_;
  std::vector<uint8_t> res_b8_;
  std::vector<stt::Value> res_boxed_;
  std::vector<uint8_t> res_null8_;
  const std::vector<uint32_t>* sel_ = nullptr;  ///< selection at entry
  size_t width_ = 0;
};

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_VECTOR_PROGRAM_H_
