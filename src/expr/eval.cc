#include "expr/eval.h"

#include <cmath>

#include "expr/parser.h"
#include "expr/typecheck.h"
#include "util/strings.h"

namespace sl::expr {

using stt::Value;
using stt::ValueType;

/// One node of the bound (type-annotated, index-resolved) tree.
struct BoundExpr::Node {
  ExprKind kind;
  ValueType type = ValueType::kNull;
  // kLiteral
  Value literal;
  // kAttr
  size_t attr_index = 0;
  // kMeta
  MetaAttr meta = MetaAttr::kTimestamp;
  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNeg;
  BinaryOp bop = BinaryOp::kAdd;
  // kCall
  const FunctionDef* fn = nullptr;
  std::vector<Node> children;
  /// Source span of the AST node (expression-relative); survives
  /// constant folding so a folded literal still points at its origin.
  diag::Span span;
};

// The typing rules themselves live in expr/typecheck.{h,cc}, shared
// with the static analyzer so binding and linting can never disagree.

Result<BoundExpr> BoundExpr::Bind(ExprPtr expr, stt::SchemaPtr schema) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  if (schema == nullptr) return Status::InvalidArgument("null schema");

  // Recursive binder building the bound tree bottom-up. Literal
  // subtrees are folded in place (the typecheck folders, so binding and
  // linting agree); folding is attempted only when every operand is
  // itself a literal — literals cannot raise per-tuple errors, so the
  // rewrite can never hide an error the interpreter would surface.
  struct Binder {
    const stt::Schema& schema;

    static bool IsLit(const Node& n) { return n.kind == ExprKind::kLiteral; }

    /// Rewrites `node` into a literal holding `folded`, keeping the
    /// statically derived type (a null fold result must not widen the
    /// parent's typing).
    static Node FoldTo(Node node, Value folded) {
      node.kind = ExprKind::kLiteral;
      node.literal = std::move(folded);
      node.children.clear();
      return node;
    }

    Result<Node> Build(const Expr& e) {
      Node node;
      node.kind = e.kind();
      node.span = e.span();
      switch (e.kind()) {
        case ExprKind::kLiteral: {
          node.literal = static_cast<const LiteralExpr&>(e).value();
          node.type = node.literal.type();
          return node;
        }
        case ExprKind::kAttr: {
          const auto& attr = static_cast<const AttrExpr&>(e);
          SL_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(attr.name()));
          node.attr_index = idx;
          node.type = schema.fields()[idx].type;
          return node;
        }
        case ExprKind::kMeta: {
          node.meta = static_cast<const MetaExpr&>(e).attr();
          node.type = MetaAttrType(node.meta);
          return node;
        }
        case ExprKind::kUnary: {
          const auto& u = static_cast<const UnaryExpr&>(e);
          SL_ASSIGN_OR_RETURN(Node child, Build(*u.operand()));
          node.uop = u.op();
          SL_ASSIGN_OR_RETURN(node.type, UnaryResultType(u.op(), child.type));
          if (IsLit(child)) {
            if (auto folded = FoldUnary(u.op(), child.literal)) {
              return FoldTo(std::move(node), std::move(*folded));
            }
          }
          node.children.push_back(std::move(child));
          return node;
        }
        case ExprKind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          SL_ASSIGN_OR_RETURN(Node left, Build(*b.left()));
          SL_ASSIGN_OR_RETURN(Node right, Build(*b.right()));
          node.bop = b.op();
          switch (b.op()) {
            case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
            case BinaryOp::kDiv: case BinaryOp::kMod: {
              SL_ASSIGN_OR_RETURN(
                  node.type,
                  ArithmeticResultType(b.op(), left.type, right.type));
              break;
            }
            case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
            case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe: {
              SL_ASSIGN_OR_RETURN(
                  node.type,
                  ComparisonResultType(b.op(), left.type, right.type));
              break;
            }
            case BinaryOp::kAnd: case BinaryOp::kOr: {
              SL_ASSIGN_OR_RETURN(
                  node.type,
                  LogicalResultType(b.op(), left.type, right.type));
              break;
            }
          }
          if (IsLit(left) && IsLit(right)) {
            std::optional<Value> folded;
            switch (b.op()) {
              case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
              case BinaryOp::kDiv: case BinaryOp::kMod:
                folded = FoldArithmetic(b.op(), node.type, left.literal,
                                        right.literal);
                break;
              case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
              case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
                folded = FoldComparison(b.op(), left.literal, right.literal);
                break;
              case BinaryOp::kAnd: case BinaryOp::kOr:
                folded = FoldLogical(b.op(), left.literal, right.literal);
                break;
            }
            if (folded.has_value()) {
              return FoldTo(std::move(node), std::move(*folded));
            }
          }
          node.children.push_back(std::move(left));
          node.children.push_back(std::move(right));
          return node;
        }
        case ExprKind::kCall: {
          const auto& c = static_cast<const CallExpr&>(e);
          SL_ASSIGN_OR_RETURN(const FunctionDef* fn,
                              FunctionRegistry::Global().Find(c.name()));
          if (c.args().size() < fn->min_args ||
              c.args().size() > fn->max_args) {
            return Status::TypeError(StrFormat(
                "%s expects %zu..%zu arguments, got %zu  [%s]",
                fn->name.c_str(), fn->min_args,
                fn->max_args == SIZE_MAX ? c.args().size() : fn->max_args,
                c.args().size(), fn->signature.c_str()));
          }
          std::vector<ValueType> arg_types;
          for (const auto& arg : c.args()) {
            SL_ASSIGN_OR_RETURN(Node child, Build(*arg));
            arg_types.push_back(child.type);
            node.children.push_back(std::move(child));
          }
          SL_ASSIGN_OR_RETURN(node.type, fn->check(arg_types));
          node.fn = fn;
          return node;
        }
      }
      return Status::Internal("unreachable expression kind");
    }
  };

  Binder binder{*schema};
  SL_ASSIGN_OR_RETURN(Node root, binder.Build(*expr));

  BoundExpr bound;
  bound.expr_ = std::move(expr);
  bound.schema_ = std::move(schema);
  bound.type_ = root.type;
  bound.root_ = std::make_shared<const Node>(std::move(root));
  Lower(*bound.root_, &bound.program_);
  return bound;
}

/// Lowers the bound tree into postorder: operands first, then the
/// operator instruction. and/or compile to
///   <left>  ShortCircuit(->end)  <right>  LogicalMerge  end:
/// which preserves the interpreter's short-circuit (the right operand —
/// and any error it would surface — is only reached when the left did
/// not decide) and its Kleene merge.
void BoundExpr::Lower(const Node& node, ExprProgram* program) {
  std::vector<ExprInsn>& insns = program->insns();
  ExprInsn insn;
  insn.type = node.type;
  insn.span = node.span;
  switch (node.kind) {
    case ExprKind::kLiteral:
      insn.op = ExprInsn::Op::kPushLiteral;
      insn.literal = node.literal;
      insns.push_back(std::move(insn));
      return;
    case ExprKind::kAttr:
      insn.op = ExprInsn::Op::kPushAttr;
      insn.index = static_cast<uint32_t>(node.attr_index);
      insns.push_back(std::move(insn));
      return;
    case ExprKind::kMeta:
      insn.op = ExprInsn::Op::kPushMeta;
      insn.meta = node.meta;
      insns.push_back(std::move(insn));
      return;
    case ExprKind::kUnary:
      Lower(node.children[0], program);
      insn.op = ExprInsn::Op::kUnary;
      insn.uop = node.uop;
      insns.push_back(std::move(insn));
      return;
    case ExprKind::kBinary: {
      if (node.bop == BinaryOp::kAnd || node.bop == BinaryOp::kOr) {
        Lower(node.children[0], program);
        size_t sc = insns.size();
        ExprInsn jump;
        jump.op = ExprInsn::Op::kShortCircuit;
        jump.type = node.type;
        jump.bop = node.bop;
        jump.span = node.span;
        insns.push_back(std::move(jump));
        Lower(node.children[1], program);
        insn.op = ExprInsn::Op::kLogicalMerge;
        insn.bop = node.bop;
        insns.push_back(std::move(insn));
        insns[sc].jump = static_cast<uint32_t>(insns.size());
        return;
      }
      Lower(node.children[0], program);
      Lower(node.children[1], program);
      switch (node.bop) {
        case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
        case BinaryOp::kDiv: case BinaryOp::kMod:
          insn.op = ExprInsn::Op::kArith;
          break;
        default:
          insn.op = ExprInsn::Op::kCompare;
          break;
      }
      insn.bop = node.bop;
      insns.push_back(std::move(insn));
      return;
    }
    case ExprKind::kCall:
      for (const Node& child : node.children) Lower(child, program);
      insn.op = ExprInsn::Op::kCall;
      insn.index = static_cast<uint32_t>(node.children.size());
      insn.fn = node.fn;
      insns.push_back(std::move(insn));
      return;
  }
}

Result<BoundExpr> BoundExpr::Parse(const std::string& source,
                                   stt::SchemaPtr schema) {
  SL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(source));
  return Bind(std::move(expr), std::move(schema));
}

Result<Value> BoundExpr::Eval(const stt::Tuple& tuple) const {
  if (root_ == nullptr) {
    return Status::FailedPrecondition("expression not bound");
  }
  return program_.Run(tuple);
}

Result<Value> BoundExpr::EvalInterpreted(const stt::Tuple& tuple) const {
  if (root_ == nullptr) {
    return Status::FailedPrecondition("expression not bound");
  }
  return EvalNode(*root_, tuple);
}

Result<Value> BoundExpr::EvalPair(const PairView& pair) const {
  if (root_ == nullptr) {
    return Status::FailedPrecondition("expression not bound");
  }
  return program_.RunPair(pair);
}

Result<bool> BoundExpr::AsPredicate(Result<Value> value) const {
  if (type_ != ValueType::kBool && type_ != ValueType::kNull) {
    return Status::TypeError(
        StrFormat("condition has type %s, expected bool",
                  stt::ValueTypeToString(type_)));
  }
  SL_ASSIGN_OR_RETURN(Value v, std::move(value));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return Status::Internal("predicate evaluated to non-bool");
  }
  return v.AsBool();
}

Result<bool> BoundExpr::EvalPredicate(const stt::Tuple& tuple) const {
  return AsPredicate(Eval(tuple));
}

Result<bool> BoundExpr::EvalPredicatePair(const PairView& pair) const {
  return AsPredicate(EvalPair(pair));
}

Result<Value> BoundExpr::EvalNode(const Node& node,
                                  const stt::Tuple& t) const {
  switch (node.kind) {
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kAttr: {
      const Value& v = t.value(node.attr_index);
      SL_RETURN_IF_ERROR(CheckAttrValueType(v, node.type));
      return v;
    }
    case ExprKind::kMeta:
      switch (node.meta) {
        case MetaAttr::kTimestamp:
          return Value::Time(t.timestamp());
        case MetaAttr::kLat:
          return t.location().has_value() ? Value::Double(t.location()->lat)
                                          : Value::Null();
        case MetaAttr::kLon:
          return t.location().has_value() ? Value::Double(t.location()->lon)
                                          : Value::Null();
        case MetaAttr::kSensor:
          return Value::String(t.sensor_id());
        case MetaAttr::kTheme:
          return Value::String(t.schema() != nullptr
                                   ? t.schema()->theme().ToString()
                                   : "*");
      }
      return Status::Internal("unreachable meta attr");
    case ExprKind::kUnary: {
      SL_ASSIGN_OR_RETURN(Value v, EvalNode(node.children[0], t));
      if (v.is_null()) return Value::Null();
      return EvalUnaryOp(node.uop, v);
    }
    case ExprKind::kBinary: {
      // Kleene logic for and/or with short circuit.
      if (node.bop == BinaryOp::kAnd || node.bop == BinaryOp::kOr) {
        SL_ASSIGN_OR_RETURN(Value l, EvalNode(node.children[0], t));
        bool is_and = node.bop == BinaryOp::kAnd;
        if (!l.is_null()) {
          if (is_and && !l.AsBool()) return Value::Bool(false);
          if (!is_and && l.AsBool()) return Value::Bool(true);
        }
        SL_ASSIGN_OR_RETURN(Value r, EvalNode(node.children[1], t));
        if (!r.is_null()) {
          if (is_and && !r.AsBool()) return Value::Bool(false);
          if (!is_and && r.AsBool()) return Value::Bool(true);
        }
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(is_and);  // and: both true; or: both false -> false
      }
      SL_ASSIGN_OR_RETURN(Value l, EvalNode(node.children[0], t));
      SL_ASSIGN_OR_RETURN(Value r, EvalNode(node.children[1], t));
      if (l.is_null() || r.is_null()) return Value::Null();
      switch (node.bop) {
        case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
        case BinaryOp::kDiv: case BinaryOp::kMod:
          return EvalArithOp(node.bop, node.type, l, r);
        case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
          return EvalCompareOp(node.bop, l, r);
        default:
          return Status::Internal("unreachable binary op");
      }
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(node.children.size());
      bool any_null = false;
      for (const auto& child : node.children) {
        SL_ASSIGN_OR_RETURN(Value v, EvalNode(child, t));
        any_null = any_null || v.is_null();
        args.push_back(std::move(v));
      }
      if (any_null && node.fn->propagate_null) return Value::Null();
      return node.fn->eval(args);
    }
  }
  return Status::Internal("unreachable expression kind in eval");
}

}  // namespace sl::expr
