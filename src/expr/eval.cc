#include "expr/eval.h"

#include <cmath>

#include "expr/parser.h"
#include "expr/typecheck.h"
#include "util/strings.h"

namespace sl::expr {

using stt::Value;
using stt::ValueType;

/// One node of the bound (type-annotated, index-resolved) tree.
struct BoundExpr::Node {
  ExprKind kind;
  ValueType type = ValueType::kNull;
  // kLiteral
  Value literal;
  // kAttr
  size_t attr_index = 0;
  // kMeta
  MetaAttr meta = MetaAttr::kTimestamp;
  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNeg;
  BinaryOp bop = BinaryOp::kAdd;
  // kCall
  const FunctionDef* fn = nullptr;
  std::vector<Node> children;
};

// The typing rules themselves live in expr/typecheck.{h,cc}, shared
// with the static analyzer so binding and linting can never disagree.

Result<BoundExpr> BoundExpr::Bind(ExprPtr expr, stt::SchemaPtr schema) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  if (schema == nullptr) return Status::InvalidArgument("null schema");

  // Recursive binder building the bound tree bottom-up.
  struct Binder {
    const stt::Schema& schema;

    Result<Node> Build(const Expr& e) {
      Node node;
      node.kind = e.kind();
      switch (e.kind()) {
        case ExprKind::kLiteral: {
          node.literal = static_cast<const LiteralExpr&>(e).value();
          node.type = node.literal.type();
          return node;
        }
        case ExprKind::kAttr: {
          const auto& attr = static_cast<const AttrExpr&>(e);
          SL_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(attr.name()));
          node.attr_index = idx;
          node.type = schema.fields()[idx].type;
          return node;
        }
        case ExprKind::kMeta: {
          node.meta = static_cast<const MetaExpr&>(e).attr();
          node.type = MetaAttrType(node.meta);
          return node;
        }
        case ExprKind::kUnary: {
          const auto& u = static_cast<const UnaryExpr&>(e);
          SL_ASSIGN_OR_RETURN(Node child, Build(*u.operand()));
          node.uop = u.op();
          SL_ASSIGN_OR_RETURN(node.type, UnaryResultType(u.op(), child.type));
          node.children.push_back(std::move(child));
          return node;
        }
        case ExprKind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          SL_ASSIGN_OR_RETURN(Node left, Build(*b.left()));
          SL_ASSIGN_OR_RETURN(Node right, Build(*b.right()));
          node.bop = b.op();
          switch (b.op()) {
            case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
            case BinaryOp::kDiv: case BinaryOp::kMod: {
              SL_ASSIGN_OR_RETURN(
                  node.type,
                  ArithmeticResultType(b.op(), left.type, right.type));
              break;
            }
            case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
            case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe: {
              SL_ASSIGN_OR_RETURN(
                  node.type,
                  ComparisonResultType(b.op(), left.type, right.type));
              break;
            }
            case BinaryOp::kAnd: case BinaryOp::kOr: {
              SL_ASSIGN_OR_RETURN(
                  node.type,
                  LogicalResultType(b.op(), left.type, right.type));
              break;
            }
          }
          node.children.push_back(std::move(left));
          node.children.push_back(std::move(right));
          return node;
        }
        case ExprKind::kCall: {
          const auto& c = static_cast<const CallExpr&>(e);
          SL_ASSIGN_OR_RETURN(const FunctionDef* fn,
                              FunctionRegistry::Global().Find(c.name()));
          if (c.args().size() < fn->min_args ||
              c.args().size() > fn->max_args) {
            return Status::TypeError(StrFormat(
                "%s expects %zu..%zu arguments, got %zu  [%s]",
                fn->name.c_str(), fn->min_args,
                fn->max_args == SIZE_MAX ? c.args().size() : fn->max_args,
                c.args().size(), fn->signature.c_str()));
          }
          std::vector<ValueType> arg_types;
          for (const auto& arg : c.args()) {
            SL_ASSIGN_OR_RETURN(Node child, Build(*arg));
            arg_types.push_back(child.type);
            node.children.push_back(std::move(child));
          }
          SL_ASSIGN_OR_RETURN(node.type, fn->check(arg_types));
          node.fn = fn;
          return node;
        }
      }
      return Status::Internal("unreachable expression kind");
    }
  };

  Binder binder{*schema};
  SL_ASSIGN_OR_RETURN(Node root, binder.Build(*expr));

  BoundExpr bound;
  bound.expr_ = std::move(expr);
  bound.schema_ = std::move(schema);
  bound.type_ = root.type;
  bound.root_ = std::make_shared<const Node>(std::move(root));
  return bound;
}

Result<BoundExpr> BoundExpr::Parse(const std::string& source,
                                   stt::SchemaPtr schema) {
  SL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(source));
  return Bind(std::move(expr), std::move(schema));
}

Result<Value> BoundExpr::Eval(const stt::Tuple& tuple) const {
  if (root_ == nullptr) {
    return Status::FailedPrecondition("expression not bound");
  }
  return EvalNode(*root_, tuple);
}

Result<bool> BoundExpr::EvalPredicate(const stt::Tuple& tuple) const {
  if (type_ != ValueType::kBool && type_ != ValueType::kNull) {
    return Status::TypeError(
        StrFormat("condition has type %s, expected bool",
                  stt::ValueTypeToString(type_)));
  }
  SL_ASSIGN_OR_RETURN(Value v, Eval(tuple));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return Status::Internal("predicate evaluated to non-bool");
  }
  return v.AsBool();
}

Result<Value> BoundExpr::EvalNode(const Node& node,
                                  const stt::Tuple& t) const {
  switch (node.kind) {
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kAttr: {
      const Value& v = t.value(node.attr_index);
      // Defense in depth: a tuple whose value does not match the schema
      // the expression was bound against (a misbehaving sensor) is a
      // per-tuple type error, not silently-ordered garbage.
      if (!v.is_null() && v.type() != node.type) {
        return Status::TypeError(StrFormat(
            "tuple value has type %s but the schema declares %s",
            stt::ValueTypeToString(v.type()),
            stt::ValueTypeToString(node.type)));
      }
      return v;
    }
    case ExprKind::kMeta:
      switch (node.meta) {
        case MetaAttr::kTimestamp:
          return Value::Time(t.timestamp());
        case MetaAttr::kLat:
          return t.location().has_value() ? Value::Double(t.location()->lat)
                                          : Value::Null();
        case MetaAttr::kLon:
          return t.location().has_value() ? Value::Double(t.location()->lon)
                                          : Value::Null();
        case MetaAttr::kSensor:
          return Value::String(t.sensor_id());
        case MetaAttr::kTheme:
          return Value::String(t.schema() != nullptr
                                   ? t.schema()->theme().ToString()
                                   : "*");
      }
      return Status::Internal("unreachable meta attr");
    case ExprKind::kUnary: {
      SL_ASSIGN_OR_RETURN(Value v, EvalNode(node.children[0], t));
      if (v.is_null()) return Value::Null();
      if (node.uop == UnaryOp::kNeg) {
        if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
        return Value::Double(-v.AsDouble());
      }
      return Value::Bool(!v.AsBool());
    }
    case ExprKind::kBinary: {
      // Kleene logic for and/or with short circuit.
      if (node.bop == BinaryOp::kAnd || node.bop == BinaryOp::kOr) {
        SL_ASSIGN_OR_RETURN(Value l, EvalNode(node.children[0], t));
        bool is_and = node.bop == BinaryOp::kAnd;
        if (!l.is_null()) {
          if (is_and && !l.AsBool()) return Value::Bool(false);
          if (!is_and && l.AsBool()) return Value::Bool(true);
        }
        SL_ASSIGN_OR_RETURN(Value r, EvalNode(node.children[1], t));
        if (!r.is_null()) {
          if (is_and && !r.AsBool()) return Value::Bool(false);
          if (!is_and && r.AsBool()) return Value::Bool(true);
        }
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(is_and);  // and: both true; or: both false -> false
      }
      SL_ASSIGN_OR_RETURN(Value l, EvalNode(node.children[0], t));
      SL_ASSIGN_OR_RETURN(Value r, EvalNode(node.children[1], t));
      if (l.is_null() || r.is_null()) return Value::Null();
      switch (node.bop) {
        case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
        case BinaryOp::kDiv: case BinaryOp::kMod: {
          // String concatenation.
          if (node.type == ValueType::kString) {
            return Value::String(l.AsString() + r.AsString());
          }
          // Timestamp arithmetic.
          if (l.type() == ValueType::kTimestamp ||
              r.type() == ValueType::kTimestamp) {
            if (node.bop == BinaryOp::kSub &&
                r.type() == ValueType::kTimestamp &&
                l.type() == ValueType::kTimestamp) {
              return Value::Int(l.AsTime() - r.AsTime());
            }
            int64_t delta = r.type() == ValueType::kTimestamp ? l.AsInt()
                                                              : r.AsInt();
            Timestamp base = l.type() == ValueType::kTimestamp ? l.AsTime()
                                                               : r.AsTime();
            return Value::Time(node.bop == BinaryOp::kAdd ? base + delta
                                                          : base - delta);
          }
          if (node.type == ValueType::kInt && node.bop != BinaryOp::kDiv) {
            int64_t a = l.AsInt();
            int64_t b = r.AsInt();
            switch (node.bop) {
              case BinaryOp::kAdd: return Value::Int(a + b);
              case BinaryOp::kSub: return Value::Int(a - b);
              case BinaryOp::kMul: return Value::Int(a * b);
              case BinaryOp::kMod:
                if (b == 0) return Value::Null();
                return Value::Int(a % b);
              default: break;
            }
          }
          double a = l.type() == ValueType::kInt
                         ? static_cast<double>(l.AsInt())
                         : l.AsDouble();
          double b = r.type() == ValueType::kInt
                         ? static_cast<double>(r.AsInt())
                         : r.AsDouble();
          double out = 0;
          switch (node.bop) {
            case BinaryOp::kAdd: out = a + b; break;
            case BinaryOp::kSub: out = a - b; break;
            case BinaryOp::kMul: out = a * b; break;
            case BinaryOp::kDiv:
              if (b == 0) return Value::Null();
              out = a / b;
              break;
            case BinaryOp::kMod:
              if (b == 0) return Value::Null();
              out = std::fmod(a, b);
              break;
            default: break;
          }
          if (!std::isfinite(out)) return Value::Null();
          return Value::Double(out);
        }
        case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe: {
          int cmp;
          if (stt::IsNumeric(l.type()) && stt::IsNumeric(r.type()) &&
              l.type() != r.type()) {
            double a = l.type() == ValueType::kInt
                           ? static_cast<double>(l.AsInt())
                           : l.AsDouble();
            double b = r.type() == ValueType::kInt
                           ? static_cast<double>(r.AsInt())
                           : r.AsDouble();
            cmp = a < b ? -1 : (a > b ? 1 : 0);
          } else {
            cmp = Value::Compare(l, r);
          }
          switch (node.bop) {
            case BinaryOp::kEq: return Value::Bool(cmp == 0);
            case BinaryOp::kNe: return Value::Bool(cmp != 0);
            case BinaryOp::kLt: return Value::Bool(cmp < 0);
            case BinaryOp::kLe: return Value::Bool(cmp <= 0);
            case BinaryOp::kGt: return Value::Bool(cmp > 0);
            case BinaryOp::kGe: return Value::Bool(cmp >= 0);
            default: break;
          }
          return Status::Internal("unreachable comparison");
        }
        default:
          return Status::Internal("unreachable binary op");
      }
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(node.children.size());
      bool any_null = false;
      for (const auto& child : node.children) {
        SL_ASSIGN_OR_RETURN(Value v, EvalNode(child, t));
        any_null = any_null || v.is_null();
        args.push_back(std::move(v));
      }
      if (any_null && node.fn->propagate_null) return Value::Null();
      return node.fn->eval(args);
    }
  }
  return Status::Internal("unreachable expression kind in eval");
}

}  // namespace sl::expr
