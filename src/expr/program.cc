#include "expr/program.h"

#include <cmath>
#include <deque>

#include "util/strings.h"

namespace sl::expr {

using stt::Value;
using stt::ValueType;

Status CheckAttrValueType(const Value& v, ValueType declared) {
  if (!v.is_null() && v.type() != declared) {
    return Status::TypeError(StrFormat(
        "tuple value has type %s but the schema declares %s",
        stt::ValueTypeToString(v.type()), stt::ValueTypeToString(declared)));
  }
  return Status::OK();
}

Value EvalUnaryOp(UnaryOp op, const Value& v) {
  if (op == UnaryOp::kNeg) {
    if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
    return Value::Double(-v.AsDouble());
  }
  return Value::Bool(!v.AsBool());
}

Value EvalArithOp(BinaryOp op, ValueType result_type, const Value& l,
                  const Value& r) {
  // String concatenation.
  if (result_type == ValueType::kString) {
    return Value::String(l.AsString() + r.AsString());
  }
  // Timestamp arithmetic.
  if (l.type() == ValueType::kTimestamp ||
      r.type() == ValueType::kTimestamp) {
    if (op == BinaryOp::kSub && r.type() == ValueType::kTimestamp &&
        l.type() == ValueType::kTimestamp) {
      return Value::Int(l.AsTime() - r.AsTime());
    }
    int64_t delta = r.type() == ValueType::kTimestamp ? l.AsInt() : r.AsInt();
    Timestamp base =
        l.type() == ValueType::kTimestamp ? l.AsTime() : r.AsTime();
    return Value::Time(op == BinaryOp::kAdd ? base + delta : base - delta);
  }
  if (result_type == ValueType::kInt && op != BinaryOp::kDiv) {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kMod:
        if (b == 0) return Value::Null();
        return Value::Int(a % b);
      default: break;
    }
  }
  double a = l.type() == ValueType::kInt ? static_cast<double>(l.AsInt())
                                         : l.AsDouble();
  double b = r.type() == ValueType::kInt ? static_cast<double>(r.AsInt())
                                         : r.AsDouble();
  double out = 0;
  switch (op) {
    case BinaryOp::kAdd: out = a + b; break;
    case BinaryOp::kSub: out = a - b; break;
    case BinaryOp::kMul: out = a * b; break;
    case BinaryOp::kDiv:
      if (b == 0) return Value::Null();
      out = a / b;
      break;
    case BinaryOp::kMod:
      if (b == 0) return Value::Null();
      out = std::fmod(a, b);
      break;
    default: break;
  }
  if (!std::isfinite(out)) return Value::Null();
  return Value::Double(out);
}

Value EvalCompareOp(BinaryOp op, const Value& l, const Value& r) {
  int cmp;
  if (stt::IsNumeric(l.type()) && stt::IsNumeric(r.type()) &&
      l.type() != r.type()) {
    double a = l.type() == ValueType::kInt ? static_cast<double>(l.AsInt())
                                           : l.AsDouble();
    double b = r.type() == ValueType::kInt ? static_cast<double>(r.AsInt())
                                           : r.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    cmp = Value::Compare(l, r);
  }
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(cmp == 0);
    case BinaryOp::kNe: return Value::Bool(cmp != 0);
    case BinaryOp::kLt: return Value::Bool(cmp < 0);
    case BinaryOp::kLe: return Value::Bool(cmp <= 0);
    case BinaryOp::kGt: return Value::Bool(cmp > 0);
    case BinaryOp::kGe: return Value::Bool(cmp >= 0);
    default: break;
  }
  return Value::Null();  // unreachable for comparison ops
}

namespace {

/// Materialized-tuple row: attributes and metadata come straight from
/// the tuple, exactly as the interpreter reads them.
struct TupleRow {
  const stt::Tuple& t;

  const Value& attr(size_t i) const { return t.value(i); }

  Value meta(MetaAttr m) const {
    switch (m) {
      case MetaAttr::kTimestamp:
        return Value::Time(t.timestamp());
      case MetaAttr::kLat:
        return t.location().has_value() ? Value::Double(t.location()->lat)
                                        : Value::Null();
      case MetaAttr::kLon:
        return t.location().has_value() ? Value::Double(t.location()->lon)
                                        : Value::Null();
      case MetaAttr::kSensor:
        return Value::String(t.sensor_id());
      case MetaAttr::kTheme:
        return Value::String(
            t.schema() != nullptr ? t.schema()->theme().ToString() : "*");
    }
    return Value::Null();
  }
};

/// Join-pair row: presents the pair as the concatenated joined tuple the
/// join would materialize — including its metadata (pair time, left-
/// preferred location, empty sensor id, output theme) — without copying
/// a single value.
struct PairRow {
  const PairView& p;

  const Value& attr(size_t i) const {
    return i < p.split ? p.left->value(i) : p.right->value(i - p.split);
  }

  Value meta(MetaAttr m) const {
    switch (m) {
      case MetaAttr::kTimestamp:
        return Value::Time(p.ts);
      case MetaAttr::kLat: {
        const auto& loc = p.left->location().has_value()
                              ? p.left->location()
                              : p.right->location();
        return loc.has_value() ? Value::Double(loc->lat) : Value::Null();
      }
      case MetaAttr::kLon: {
        const auto& loc = p.left->location().has_value()
                              ? p.left->location()
                              : p.right->location();
        return loc.has_value() ? Value::Double(loc->lon) : Value::Null();
      }
      case MetaAttr::kSensor:
        return Value::String("");  // joined tuples carry no sensor id
      case MetaAttr::kTheme:
        return Value::String(p.schema != nullptr ? p.schema->theme().ToString()
                                                 : "*");
    }
    return Value::Null();
  }
};

/// Evaluation scratch: the value stack plus a pool of call-argument
/// buffers, both thread-local and segmented per call (each Run works
/// above the base it found; each nesting depth owns one argument
/// buffer), so nested evaluation — an operator's Emit feeding a
/// downstream operator that evaluates its own expression before the
/// outer Run returns — cannot clobber frames, and steady-state
/// evaluation allocates nothing.
struct EvalScratch {
  std::vector<Value> stack;
  /// Deque: growing a nested depth must not move the buffers outer
  /// evaluations still hold references to.
  std::deque<std::vector<Value>> args_pool;
  size_t args_depth = 0;
};

EvalScratch& Scratch() {
  thread_local EvalScratch scratch;
  return scratch;
}

template <typename Row>
Result<Value> RunImpl(const std::vector<ExprInsn>& insns, const Row& row) {
  EvalScratch& scratch = Scratch();
  std::vector<Value>& stack = scratch.stack;
  const size_t base = stack.size();
  if (scratch.args_depth == scratch.args_pool.size()) {
    scratch.args_pool.emplace_back();
  }
  std::vector<Value>& args = scratch.args_pool[scratch.args_depth++];
  struct Restore {
    EvalScratch& scratch;
    size_t base;
    ~Restore() {
      scratch.stack.resize(base);
      scratch.args_pool[--scratch.args_depth].clear();
    }
  } restore{scratch, base};
  for (size_t pc = 0; pc < insns.size();) {
    const ExprInsn& in = insns[pc];
    switch (in.op) {
      case ExprInsn::Op::kPushLiteral:
        stack.push_back(in.literal);
        ++pc;
        break;
      case ExprInsn::Op::kPushAttr: {
        const Value& v = row.attr(in.index);
        SL_RETURN_IF_ERROR(CheckAttrValueType(v, in.type));
        stack.push_back(v);
        ++pc;
        break;
      }
      case ExprInsn::Op::kPushMeta:
        stack.push_back(row.meta(in.meta));
        ++pc;
        break;
      case ExprInsn::Op::kUnary: {
        Value& v = stack.back();
        if (!v.is_null()) v = EvalUnaryOp(in.uop, v);
        ++pc;
        break;
      }
      case ExprInsn::Op::kArith: {
        Value r = std::move(stack.back());
        stack.pop_back();
        Value& l = stack.back();
        l = (l.is_null() || r.is_null()) ? Value::Null()
                                         : EvalArithOp(in.bop, in.type, l, r);
        ++pc;
        break;
      }
      case ExprInsn::Op::kCompare: {
        Value r = std::move(stack.back());
        stack.pop_back();
        Value& l = stack.back();
        l = (l.is_null() || r.is_null()) ? Value::Null()
                                         : EvalCompareOp(in.bop, l, r);
        ++pc;
        break;
      }
      case ExprInsn::Op::kShortCircuit: {
        Value& l = stack.back();
        bool is_and = in.bop == BinaryOp::kAnd;
        if (!l.is_null() && l.AsBool() != is_and) {
          l = Value::Bool(!is_and);
          pc = in.jump;
        } else {
          ++pc;
        }
        break;
      }
      case ExprInsn::Op::kLogicalMerge: {
        Value r = std::move(stack.back());
        stack.pop_back();
        Value& l = stack.back();
        bool is_and = in.bop == BinaryOp::kAnd;
        // The left operand reaching the merge is never dominant (the
        // short-circuit would have jumped): it is null or the neutral
        // bool, so the Kleene table reduces to three cases.
        if (!r.is_null() && r.AsBool() != is_and) {
          l = Value::Bool(!is_and);
        } else if (l.is_null() || r.is_null()) {
          l = Value::Null();
        } else {
          l = Value::Bool(is_and);
        }
        ++pc;
        break;
      }
      case ExprInsn::Op::kCall: {
        const size_t argc = in.index;
        args.assign(std::make_move_iterator(stack.end() - argc),
                    std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - argc);
        bool any_null = false;
        for (const Value& a : args) any_null = any_null || a.is_null();
        if (any_null && in.fn->propagate_null) {
          stack.push_back(Value::Null());
        } else {
          SL_ASSIGN_OR_RETURN(Value v, in.fn->eval(args));
          stack.push_back(std::move(v));
        }
        ++pc;
        break;
      }
    }
  }
  if (stack.size() != base + 1) {
    return Status::Internal("expression program left an unbalanced stack");
  }
  return std::move(stack.back());
}

}  // namespace

Result<Value> ExprProgram::Run(const stt::Tuple& t) const {
  return RunImpl(insns_, TupleRow{t});
}

Result<Value> ExprProgram::RunPair(const PairView& pair) const {
  return RunImpl(insns_, PairRow{pair});
}

}  // namespace sl::expr
