#include "expr/vector_program.h"

#include <cmath>
#include <utility>

namespace sl::expr {

using stt::ColumnBatch;
using stt::Value;
using stt::ValueType;

namespace {

/// Applies one comparison op to a three-way `cmp` result — the same
/// final step EvalCompareOp performs.
inline bool CmpToBool(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq: return cmp == 0;
    case BinaryOp::kNe: return cmp != 0;
    case BinaryOp::kLt: return cmp < 0;
    case BinaryOp::kLe: return cmp <= 0;
    case BinaryOp::kGt: return cmp > 0;
    case BinaryOp::kGe: return cmp >= 0;
    default: return false;  // unreachable for comparison ops
  }
}

}  // namespace

VectorProgram::VReg& VectorProgram::Push() {
  if (sp_ == stack_.size()) stack_.emplace_back();
  return stack_[sp_++];
}

void VectorProgram::RowFail(uint32_t pos, Status status,
                            std::vector<RowError>* errors) {
  errored_[pos] = 1;
  any_errored_ = true;
  errors->push_back(RowError{(*sel_)[pos], std::move(status)});
}

void VectorProgram::CompactActive() {
  size_t out = 0;
  for (uint32_t p : active_) {
    if (!errored_[p]) active_[out++] = p;
  }
  active_.resize(out);
}

Value VectorProgram::RegValue(const VReg& reg, uint32_t pos) const {
  if (reg.kind == VReg::Kind::kNullReg || reg.null8[pos]) {
    return Value::Null();
  }
  switch (reg.kind) {
    case VReg::Kind::kI64:
      return reg.etype == ValueType::kTimestamp ? Value::Time(reg.i64[pos])
                                                : Value::Int(reg.i64[pos]);
    case VReg::Kind::kF64:
      return Value::Double(reg.f64[pos]);
    case VReg::Kind::kB8:
      return Value::Bool(reg.b8[pos] != 0);
    case VReg::Kind::kBoxed:
      return reg.boxed[pos];
    case VReg::Kind::kNullReg:
      break;
  }
  return Value::Null();
}

Status VectorProgram::ToB8(VReg* reg) {
  switch (reg->kind) {
    case VReg::Kind::kB8:
      return Status::OK();
    case VReg::Kind::kNullReg:
      reg->kind = VReg::Kind::kB8;
      reg->etype = ValueType::kBool;
      reg->b8.assign(width_, 0);
      reg->null8.assign(width_, 1);
      return Status::OK();
    case VReg::Kind::kBoxed:
      // Call results land boxed; a logic operand is statically bool, so
      // the non-null rows hold bool values (AsBool mirrors the scalar
      // VM's access — the same crash surface on a misbehaving function).
      reg->b8.resize(width_);
      for (uint32_t p : active_) {
        if (!reg->null8[p]) reg->b8[p] = reg->boxed[p].AsBool() ? 1 : 0;
      }
      reg->kind = VReg::Kind::kB8;
      reg->etype = ValueType::kBool;
      return Status::OK();
    default:
      return Status::Internal("logic operand is not boolean");
  }
}

void VectorProgram::PushLiteral(const ExprInsn& in) {
  VReg& d = Push();
  if (in.literal.is_null()) {
    d.kind = VReg::Kind::kNullReg;
    d.etype = ValueType::kNull;
    return;
  }
  d.etype = in.literal.type();
  d.null8.assign(width_, 0);
  switch (in.literal.type()) {
    case ValueType::kInt:
      d.kind = VReg::Kind::kI64;
      d.i64.assign(width_, in.literal.AsInt());
      break;
    case ValueType::kTimestamp:
      d.kind = VReg::Kind::kI64;
      d.i64.assign(width_, in.literal.AsTime());
      break;
    case ValueType::kDouble:
      d.kind = VReg::Kind::kF64;
      d.f64.assign(width_, in.literal.AsDouble());
      break;
    case ValueType::kBool:
      d.kind = VReg::Kind::kB8;
      d.b8.assign(width_, in.literal.AsBool() ? 1 : 0);
      break;
    default:
      d.kind = VReg::Kind::kBoxed;
      d.boxed.assign(width_, in.literal);
      break;
  }
}

Status VectorProgram::PushAttr(const ExprInsn& in, ColumnBatch* batch,
                               std::vector<RowError>* errors) {
  const ColumnBatch::Column& c = batch->column(in.index);
  VReg& d = Push();
  d.etype = in.type;
  d.null8.assign(width_, 1);
  bool failed = false;
  auto fail_bad = [&](uint32_t p, uint32_t r) {
    RowFail(p, CheckAttrValueType(batch->value(r, in.index), in.type), errors);
    failed = true;
  };
  switch (c.decl) {
    case ValueType::kInt:
    case ValueType::kTimestamp: {
      d.kind = VReg::Kind::kI64;
      d.i64.resize(width_);
      for (uint32_t p : active_) {
        const uint32_t r = (*sel_)[p];
        if (c.any_bad && c.bad8[r]) {
          fail_bad(p, r);
          continue;
        }
        d.null8[p] = c.null8[r];
        d.i64[p] = c.i64[r];
      }
      break;
    }
    case ValueType::kDouble: {
      d.kind = VReg::Kind::kF64;
      d.f64.resize(width_);
      if (!c.any_bad) {
        for (uint32_t p : active_) {
          const uint32_t r = (*sel_)[p];
          d.null8[p] = c.null8[r];
          d.f64[p] = c.f64[r];
        }
      } else {
        for (uint32_t p : active_) {
          const uint32_t r = (*sel_)[p];
          if (c.bad8[r]) {
            fail_bad(p, r);
            continue;
          }
          d.null8[p] = c.null8[r];
          d.f64[p] = c.f64[r];
        }
      }
      break;
    }
    case ValueType::kBool: {
      d.kind = VReg::Kind::kB8;
      d.b8.resize(width_);
      for (uint32_t p : active_) {
        const uint32_t r = (*sel_)[p];
        if (c.any_bad && c.bad8[r]) {
          fail_bad(p, r);
          continue;
        }
        d.null8[p] = c.null8[r];
        d.b8[p] = c.b8[r];
      }
      break;
    }
    default: {
      // Strings and geo points stay boxed.
      d.kind = VReg::Kind::kBoxed;
      d.boxed.resize(width_);
      for (uint32_t p : active_) {
        const uint32_t r = (*sel_)[p];
        const Value& v = batch->value(r, in.index);
        if (v.is_null()) continue;  // null8 already 1
        if (v.type() != c.decl) {
          fail_bad(p, r);
          continue;
        }
        d.null8[p] = 0;
        d.boxed[p] = v;
      }
      break;
    }
  }
  if (failed) CompactActive();
  return Status::OK();
}

void VectorProgram::PushMeta(const ExprInsn& in, ColumnBatch* batch) {
  VReg& d = Push();
  switch (in.meta) {
    case MetaAttr::kTimestamp: {
      const std::vector<int64_t>& ts = batch->ts_column();
      d.kind = VReg::Kind::kI64;
      d.etype = ValueType::kTimestamp;
      d.null8.assign(width_, 0);
      d.i64.resize(width_);
      for (uint32_t p : active_) d.i64[p] = ts[(*sel_)[p]];
      break;
    }
    case MetaAttr::kLat:
    case MetaAttr::kLon: {
      const ColumnBatch::GeoColumns& geo = batch->geo_columns();
      const std::vector<double>& src =
          in.meta == MetaAttr::kLat ? geo.lat : geo.lon;
      d.kind = VReg::Kind::kF64;
      d.etype = ValueType::kDouble;
      d.null8.assign(width_, 1);
      d.f64.resize(width_);
      for (uint32_t p : active_) {
        const uint32_t r = (*sel_)[p];
        d.null8[p] = geo.null8[r];
        d.f64[p] = src[r];
      }
      break;
    }
    case MetaAttr::kSensor: {
      d.kind = VReg::Kind::kBoxed;
      d.etype = ValueType::kString;
      d.null8.assign(width_, 1);
      d.boxed.resize(width_);
      for (uint32_t p : active_) {
        d.null8[p] = 0;
        d.boxed[p] = Value::String(batch->row((*sel_)[p])->sensor_id());
      }
      break;
    }
    case MetaAttr::kTheme: {
      d.kind = VReg::Kind::kBoxed;
      d.etype = ValueType::kString;
      d.null8.assign(width_, 1);
      d.boxed.resize(width_);
      for (uint32_t p : active_) {
        const stt::Tuple& t = *batch->row((*sel_)[p]);
        d.null8[p] = 0;
        d.boxed[p] = Value::String(
            t.schema() != nullptr ? t.schema()->theme().ToString() : "*");
      }
      break;
    }
  }
}

Status VectorProgram::ApplyUnary(const ExprInsn& in) {
  VReg& v = Top();
  if (v.kind == VReg::Kind::kNullReg) return Status::OK();
  if (in.uop == UnaryOp::kNot) {
    SL_RETURN_IF_ERROR(ToB8(&v));
    for (uint32_t p : active_) {
      if (!v.null8[p]) v.b8[p] ^= 1;
    }
    return Status::OK();
  }
  // Negation.
  if (v.kind == VReg::Kind::kI64 && v.etype == ValueType::kInt) {
    for (uint32_t p : active_) {
      if (!v.null8[p]) v.i64[p] = -v.i64[p];
    }
    return Status::OK();
  }
  if (v.kind == VReg::Kind::kF64) {
    for (uint32_t p : active_) {
      if (!v.null8[p]) v.f64[p] = -v.f64[p];
    }
    return Status::OK();
  }
  // Boxed operand (a call result): per-row through the shared helper.
  if (v.kind != VReg::Kind::kBoxed) {
    return Status::Internal("negation operand is not numeric");
  }
  for (uint32_t p : active_) {
    if (!v.null8[p]) v.boxed[p] = EvalUnaryOp(in.uop, v.boxed[p]);
  }
  v.etype = in.type;
  return Status::OK();
}

void VectorProgram::ApplyArith(const ExprInsn& in) {
  VReg& r = Top();
  VReg& l = Under();
  // Either side statically null: the result is null everywhere.
  if (l.kind == VReg::Kind::kNullReg || r.kind == VReg::Kind::kNullReg) {
    Pop();
    Top().kind = VReg::Kind::kNullReg;
    Top().etype = ValueType::kNull;
    return;
  }
  const bool l_i64 = l.kind == VReg::Kind::kI64;
  const bool r_i64 = r.kind == VReg::Kind::kI64;
  const bool l_ts = l_i64 && l.etype == ValueType::kTimestamp;
  const bool r_ts = r_i64 && r.etype == ValueType::kTimestamp;

  // Timestamp arithmetic (ts - ts -> int; ts ± int -> ts).
  if ((l_ts || r_ts) && l_i64 && r_i64 && in.type != ValueType::kString) {
    l.i64.resize(width_);
    if (in.bop == BinaryOp::kSub && l_ts && r_ts) {
      for (uint32_t p : active_) {
        const bool n = l.null8[p] | r.null8[p];
        l.null8[p] = n;
        if (!n) l.i64[p] = l.i64[p] - r.i64[p];
      }
      l.etype = ValueType::kInt;
    } else {
      const bool add = in.bop == BinaryOp::kAdd;
      for (uint32_t p : active_) {
        const bool n = l.null8[p] | r.null8[p];
        l.null8[p] = n;
        if (n) continue;
        const int64_t delta = r_ts ? l.i64[p] : r.i64[p];
        const int64_t base = l_ts ? l.i64[p] : r.i64[p];
        l.i64[p] = add ? base + delta : base - delta;
      }
      l.etype = ValueType::kTimestamp;
    }
    Pop();
    return;
  }

  // Integer arithmetic (+ - * %; / always widens).
  if (in.type == ValueType::kInt && in.bop != BinaryOp::kDiv && l_i64 &&
      r_i64 && l.etype == ValueType::kInt && r.etype == ValueType::kInt) {
    const BinaryOp op = in.bop;
    for (uint32_t p : active_) {
      if (l.null8[p] | r.null8[p]) {
        l.null8[p] = 1;
        continue;
      }
      const int64_t a = l.i64[p];
      const int64_t b = r.i64[p];
      switch (op) {
        case BinaryOp::kAdd: l.i64[p] = a + b; break;
        case BinaryOp::kSub: l.i64[p] = a - b; break;
        case BinaryOp::kMul: l.i64[p] = a * b; break;
        case BinaryOp::kMod:
          if (b == 0) {
            l.null8[p] = 1;
          } else {
            l.i64[p] = a % b;
          }
          break;
        default: break;
      }
    }
    Pop();
    return;
  }

  // Double arithmetic over any int/double mix (the scalar fallback):
  // division/modulo by zero and non-finite results yield null.
  const bool l_num = (l_i64 && l.etype == ValueType::kInt) ||
                     l.kind == VReg::Kind::kF64;
  const bool r_num = (r_i64 && r.etype == ValueType::kInt) ||
                     r.kind == VReg::Kind::kF64;
  if (l_num && r_num && in.type != ValueType::kString) {
    res_f64_.resize(width_);
    const BinaryOp op = in.bop;
    const bool l_int = l.kind == VReg::Kind::kI64;
    const bool r_int = r.kind == VReg::Kind::kI64;
    for (uint32_t p : active_) {
      if (l.null8[p] | r.null8[p]) {
        l.null8[p] = 1;
        continue;
      }
      const double a = l_int ? static_cast<double>(l.i64[p]) : l.f64[p];
      const double b = r_int ? static_cast<double>(r.i64[p]) : r.f64[p];
      double out = 0;
      switch (op) {
        case BinaryOp::kAdd: out = a + b; break;
        case BinaryOp::kSub: out = a - b; break;
        case BinaryOp::kMul: out = a * b; break;
        case BinaryOp::kDiv:
          if (b == 0) {
            l.null8[p] = 1;
            continue;
          }
          out = a / b;
          break;
        case BinaryOp::kMod:
          if (b == 0) {
            l.null8[p] = 1;
            continue;
          }
          out = std::fmod(a, b);
          break;
        default: break;
      }
      if (!std::isfinite(out)) {
        l.null8[p] = 1;
        continue;
      }
      res_f64_[p] = out;
    }
    Pop();
    VReg& d = Top();
    d.kind = VReg::Kind::kF64;
    d.etype = ValueType::kDouble;
    d.f64.swap(res_f64_);
    return;
  }

  // Boxed fallback (string concatenation, call results, mixed kinds):
  // per-row through the shared helper, identical null propagation.
  res_boxed_.resize(width_);
  res_null8_.assign(width_, 1);
  for (uint32_t p : active_) {
    Value lv = RegValue(l, p);
    Value rv = RegValue(r, p);
    if (lv.is_null() || rv.is_null()) continue;
    Value out = EvalArithOp(in.bop, in.type, lv, rv);
    if (out.is_null()) continue;
    res_null8_[p] = 0;
    res_boxed_[p] = std::move(out);
  }
  Pop();
  VReg& d = Top();
  d.kind = VReg::Kind::kBoxed;
  d.etype = in.type;
  d.boxed.swap(res_boxed_);
  d.null8.swap(res_null8_);
}

void VectorProgram::ApplyCompare(const ExprInsn& in) {
  VReg& r = Top();
  VReg& l = Under();
  if (l.kind == VReg::Kind::kNullReg || r.kind == VReg::Kind::kNullReg) {
    Pop();
    Top().kind = VReg::Kind::kNullReg;
    Top().etype = ValueType::kNull;
    return;
  }
  res_b8_.resize(width_);
  res_null8_.assign(width_, 1);
  const BinaryOp op = in.bop;
  bool typed = true;
  if (l.kind == VReg::Kind::kI64 && r.kind == VReg::Kind::kI64 &&
      l.etype == r.etype) {
    // int vs int / ts vs ts: exact three-way (Value::Compare).
    for (uint32_t p : active_) {
      if (l.null8[p] | r.null8[p]) continue;
      const int64_t a = l.i64[p];
      const int64_t b = r.i64[p];
      const int cmp = a < b ? -1 : (a > b ? 1 : 0);
      res_null8_[p] = 0;
      res_b8_[p] = CmpToBool(op, cmp) ? 1 : 0;
    }
  } else if (((l.kind == VReg::Kind::kI64 && l.etype == ValueType::kInt) ||
              l.kind == VReg::Kind::kF64) &&
             ((r.kind == VReg::Kind::kI64 && r.etype == ValueType::kInt) ||
              r.kind == VReg::Kind::kF64)) {
    // Numeric cross-type (and double vs double): widen to double; NaN
    // compares three-way "equal" exactly like the scalar path.
    const bool l_int = l.kind == VReg::Kind::kI64;
    const bool r_int = r.kind == VReg::Kind::kI64;
    for (uint32_t p : active_) {
      if (l.null8[p] | r.null8[p]) continue;
      const double a = l_int ? static_cast<double>(l.i64[p]) : l.f64[p];
      const double b = r_int ? static_cast<double>(r.i64[p]) : r.f64[p];
      const int cmp = a < b ? -1 : (a > b ? 1 : 0);
      res_null8_[p] = 0;
      res_b8_[p] = CmpToBool(op, cmp) ? 1 : 0;
    }
  } else if (l.kind == VReg::Kind::kB8 && r.kind == VReg::Kind::kB8) {
    // bool vs bool: Value::Compare is an int difference.
    for (uint32_t p : active_) {
      if (l.null8[p] | r.null8[p]) continue;
      const int cmp = static_cast<int>(l.b8[p] != 0) -
                      static_cast<int>(r.b8[p] != 0);
      res_null8_[p] = 0;
      res_b8_[p] = CmpToBool(op, cmp) ? 1 : 0;
    }
  } else {
    typed = false;
  }
  if (!typed) {
    // Strings, geo points, boxed call results, mixed kinds: per-row
    // through the shared helper.
    for (uint32_t p : active_) {
      Value lv = RegValue(l, p);
      Value rv = RegValue(r, p);
      if (lv.is_null() || rv.is_null()) continue;
      const Value out = EvalCompareOp(op, lv, rv);
      res_null8_[p] = 0;
      res_b8_[p] = out.AsBool() ? 1 : 0;
    }
  }
  Pop();
  VReg& d = Top();
  d.kind = VReg::Kind::kB8;
  d.etype = ValueType::kBool;
  d.b8.swap(res_b8_);
  d.null8.swap(res_null8_);
}

Status VectorProgram::ApplyCall(const ExprInsn& in,
                                std::vector<RowError>* errors) {
  const size_t argc = in.index;
  res_boxed_.resize(width_);
  res_null8_.assign(width_, 1);
  bool failed = false;
  for (uint32_t p : active_) {
    args_.clear();
    bool any_null = false;
    for (size_t q = sp_ - argc; q < sp_; ++q) {
      args_.push_back(RegValue(stack_[q], p));
      any_null = any_null || args_.back().is_null();
    }
    if (any_null && in.fn->propagate_null) continue;  // null result
    Result<Value> rv = in.fn->eval(args_);
    if (!rv.ok()) {
      RowFail(p, rv.status(), errors);
      failed = true;
      continue;
    }
    Value v = std::move(rv).ValueOrDie();
    if (v.is_null()) continue;
    res_null8_[p] = 0;
    res_boxed_[p] = std::move(v);
  }
  for (size_t i = 0; i < argc; ++i) Pop();
  VReg& d = Push();
  d.kind = VReg::Kind::kBoxed;
  d.etype = in.type;
  d.boxed.swap(res_boxed_);
  d.null8.swap(res_null8_);
  if (failed) CompactActive();
  return Status::OK();
}

Status VectorProgram::Run(ColumnBatch* batch, std::vector<RowError>* errors) {
  const std::vector<ExprInsn>& insns = program_->insns();
  sel_ = &batch->selection();
  width_ = sel_->size();
  sp_ = 0;
  frames_.clear();
  errored_.assign(width_, 0);
  any_errored_ = false;
  active_.resize(width_);
  for (uint32_t p = 0; p < width_; ++p) active_[p] = p;

  auto restore_frame = [&] {
    Frame& f = frames_.back();
    if (!any_errored_) {
      active_ = std::move(f.saved_active);
    } else {
      active_.clear();
      for (uint32_t p : f.saved_active) {
        if (!errored_[p]) active_.push_back(p);
      }
    }
    frames_.pop_back();
  };

  for (uint32_t pc = 0; pc < insns.size();) {
    // A short-circuit's decided rows rejoin the active set at the
    // instruction its jump targets (just past the matching merge).
    while (!frames_.empty() && frames_.back().resume == pc) restore_frame();
    const ExprInsn& in = insns[pc];
    switch (in.op) {
      case ExprInsn::Op::kPushLiteral:
        PushLiteral(in);
        break;
      case ExprInsn::Op::kPushAttr:
        SL_RETURN_IF_ERROR(PushAttr(in, batch, errors));
        break;
      case ExprInsn::Op::kPushMeta:
        PushMeta(in, batch);
        break;
      case ExprInsn::Op::kUnary:
        SL_RETURN_IF_ERROR(ApplyUnary(in));
        break;
      case ExprInsn::Op::kArith:
        ApplyArith(in);
        break;
      case ExprInsn::Op::kCompare:
        ApplyCompare(in);
        break;
      case ExprInsn::Op::kShortCircuit: {
        VReg& l = Top();
        SL_RETURN_IF_ERROR(ToB8(&l));
        const bool is_and = in.bop == BinaryOp::kAnd;
        scratch_active_.clear();
        for (uint32_t p : active_) {
          if (!l.null8[p] && (l.b8[p] != 0) != is_and) {
            // Decided: write the dominant bool; the row skips the right
            // arm and rejoins at the merge target.
            l.b8[p] = is_and ? 0 : 1;
            l.null8[p] = 0;
          } else {
            scratch_active_.push_back(p);
          }
        }
        frames_.push_back(Frame{in.jump, std::move(active_)});
        active_ = std::move(scratch_active_);
        scratch_active_.clear();
        break;
      }
      case ExprInsn::Op::kLogicalMerge: {
        VReg& r = Top();
        SL_RETURN_IF_ERROR(ToB8(&r));
        VReg& l = Under();
        SL_RETURN_IF_ERROR(ToB8(&l));
        const bool is_and = in.bop == BinaryOp::kAnd;
        // The left operand reaching the merge is never dominant for the
        // undecided rows, so the Kleene table reduces to three cases.
        for (uint32_t p : active_) {
          if (!r.null8[p] && (r.b8[p] != 0) != is_and) {
            l.b8[p] = is_and ? 0 : 1;
            l.null8[p] = 0;
          } else if (l.null8[p] | r.null8[p]) {
            l.null8[p] = 1;
          } else {
            l.b8[p] = is_and ? 1 : 0;
            l.null8[p] = 0;
          }
        }
        Pop();
        break;
      }
      case ExprInsn::Op::kCall:
        SL_RETURN_IF_ERROR(ApplyCall(in, errors));
        break;
    }
    ++pc;
  }
  // A merge that ends the program resumes at insns.size().
  while (!frames_.empty()) restore_frame();
  if (sp_ != 1) {
    return Status::Internal("expression program left an unbalanced stack");
  }
  return Status::OK();
}

Status VectorProgram::RunPredicate(ColumnBatch* batch,
                                   std::vector<RowError>* errors) {
  SL_RETURN_IF_ERROR(Run(batch, errors));
  const VReg& res = Top();
  scratch_active_.clear();
  const std::vector<uint32_t>& sel = *sel_;
  switch (res.kind) {
    case VReg::Kind::kNullReg:
      break;  // null is false everywhere: keep nothing
    case VReg::Kind::kB8:
      for (uint32_t p = 0; p < width_; ++p) {
        if (!errored_[p] && !res.null8[p] && res.b8[p]) {
          scratch_active_.push_back(sel[p]);
        }
      }
      break;
    case VReg::Kind::kBoxed:
      for (uint32_t p = 0; p < width_; ++p) {
        if (!errored_[p] && !res.null8[p] && res.boxed[p].AsBool()) {
          scratch_active_.push_back(sel[p]);
        }
      }
      break;
    default:
      return Status::Internal("predicate program produced a non-bool column");
  }
  batch->mutable_selection() = scratch_active_;
  return Status::OK();
}

Status VectorProgram::RunValues(ColumnBatch* batch, std::vector<Value>* out,
                                std::vector<RowError>* errors) {
  SL_RETURN_IF_ERROR(Run(batch, errors));
  const VReg& res = Top();
  scratch_active_.clear();
  out->clear();
  const std::vector<uint32_t>& sel = *sel_;
  for (uint32_t p = 0; p < width_; ++p) {
    if (errored_[p]) continue;
    scratch_active_.push_back(sel[p]);
    out->push_back(RegValue(res, p));
  }
  batch->mutable_selection() = scratch_active_;
  return Status::OK();
}

}  // namespace sl::expr
