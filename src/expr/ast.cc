#include "expr/ast.h"

#include <algorithm>

#include "util/strings.h"

namespace sl::expr {

const char* MetaAttrToString(MetaAttr m) {
  switch (m) {
    case MetaAttr::kTimestamp: return "ts";
    case MetaAttr::kLat: return "lat";
    case MetaAttr::kLon: return "lon";
    case MetaAttr::kSensor: return "sensor";
    case MetaAttr::kTheme: return "theme";
  }
  return "?";
}

const char* UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "not";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == stt::ValueType::kString) {
    return QuoteString(value_.AsString());
  }
  if (value_.type() == stt::ValueType::kTimestamp) {
    return "time(" + QuoteString(FormatTimestamp(value_.AsTime())) + ")";
  }
  if (value_.type() == stt::ValueType::kGeoPoint) {
    const auto& p = value_.AsGeo();
    return StrFormat("point(%.10g, %.10g)", p.lat, p.lon);
  }
  return value_.ToString();
}

std::string MetaExpr::ToString() const {
  return std::string("$") + MetaAttrToString(attr_);
}

std::string UnaryExpr::ToString() const {
  if (op_ == UnaryOp::kNot) return "(not " + operand_->ToString() + ")";
  return "(-" + operand_->ToString() + ")";
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpToString(op_) + " " +
         right_->ToString() + ")";
}

std::string CallExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

namespace {
void CollectAttrs(const ExprPtr& expr, std::vector<std::string>* out) {
  switch (expr->kind()) {
    case ExprKind::kAttr: {
      const auto& name = static_cast<const AttrExpr&>(*expr).name();
      if (std::find(out->begin(), out->end(), name) == out->end()) {
        out->push_back(name);
      }
      break;
    }
    case ExprKind::kUnary:
      CollectAttrs(static_cast<const UnaryExpr&>(*expr).operand(), out);
      break;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      CollectAttrs(b.left(), out);
      CollectAttrs(b.right(), out);
      break;
    }
    case ExprKind::kCall:
      for (const auto& a : static_cast<const CallExpr&>(*expr).args()) {
        CollectAttrs(a, out);
      }
      break;
    case ExprKind::kLiteral:
    case ExprKind::kMeta:
      break;
  }
}
}  // namespace

std::vector<std::string> ReferencedAttributes(const ExprPtr& expr) {
  std::vector<std::string> out;
  if (expr != nullptr) CollectAttrs(expr, &out);
  return out;
}

}  // namespace sl::expr
