// StreamLoader: binding and evaluation of expressions against a schema.
//
// An Expr is untyped until bound to the schema of a concrete stream:
// binding resolves attribute references to field indices, type-checks
// every node, and yields a BoundExpr that evaluates tuples without any
// name lookup on the hot path.

#ifndef STREAMLOADER_EXPR_EVAL_H_
#define STREAMLOADER_EXPR_EVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/ast.h"
#include "expr/functions.h"
#include "stt/tuple.h"

namespace sl::expr {

/// \brief A type-checked expression bound to a schema.
///
/// Null semantics follow SQL: arithmetic and comparisons over null are
/// null; `and`/`or` use Kleene three-valued logic; EvalPredicate treats a
/// null condition as false. Domain errors at run time (division by zero,
/// log of a negative number) produce null rather than failing the stream.
class BoundExpr {
 public:
  BoundExpr() = default;

  /// Binds `expr` against `schema`, type-checking every node.
  static Result<BoundExpr> Bind(ExprPtr expr, stt::SchemaPtr schema);

  /// Parses and binds in one step.
  static Result<BoundExpr> Parse(const std::string& source,
                                 stt::SchemaPtr schema);

  /// The static result type of the expression.
  stt::ValueType result_type() const { return type_; }

  /// The underlying syntax tree.
  const ExprPtr& expr() const { return expr_; }

  /// The schema this expression is bound to.
  const stt::SchemaPtr& schema() const { return schema_; }

  /// Evaluates on one tuple (which must conform to the bound schema).
  Result<stt::Value> Eval(const stt::Tuple& tuple) const;

  /// Evaluates as a condition; requires a bool-typed (or null-typed)
  /// expression at bind time. A null result is false.
  Result<bool> EvalPredicate(const stt::Tuple& tuple) const;

  /// True after a successful Bind.
  bool bound() const { return root_ != nullptr; }

 private:
  struct Node;
  Result<stt::Value> EvalNode(const Node& node, const stt::Tuple& t) const;

  ExprPtr expr_;
  stt::SchemaPtr schema_;
  std::shared_ptr<const Node> root_;
  stt::ValueType type_ = stt::ValueType::kNull;
};

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_EVAL_H_
