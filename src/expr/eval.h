// StreamLoader: binding and evaluation of expressions against a schema.
//
// An Expr is untyped until bound to the schema of a concrete stream:
// binding resolves attribute references to field indices, type-checks
// every node, and yields a BoundExpr that evaluates tuples without any
// name lookup on the hot path.

#ifndef STREAMLOADER_EXPR_EVAL_H_
#define STREAMLOADER_EXPR_EVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/ast.h"
#include "expr/functions.h"
#include "expr/program.h"
#include "stt/tuple.h"

namespace sl::expr {

/// \brief A type-checked expression bound to a schema.
///
/// Null semantics follow SQL: arithmetic and comparisons over null are
/// null; `and`/`or` use Kleene three-valued logic; EvalPredicate treats a
/// null condition as false. Domain errors at run time (division by zero,
/// log of a negative number) produce null rather than failing the stream.
///
/// Binding constant-folds literal subtrees (reusing the typecheck
/// folders, so folding and the lint layer agree) and lowers the tree
/// into a flat postorder ExprProgram — the evaluator the hot path runs.
/// The recursive tree-walk survives as EvalInterpreted, the oracle the
/// compiled program is property-tested against.
class BoundExpr {
 public:
  BoundExpr() = default;

  /// Binds `expr` against `schema`, type-checking every node.
  static Result<BoundExpr> Bind(ExprPtr expr, stt::SchemaPtr schema);

  /// Parses and binds in one step.
  static Result<BoundExpr> Parse(const std::string& source,
                                 stt::SchemaPtr schema);

  /// The static result type of the expression.
  stt::ValueType result_type() const { return type_; }

  /// The underlying syntax tree.
  const ExprPtr& expr() const { return expr_; }

  /// The schema this expression is bound to.
  const stt::SchemaPtr& schema() const { return schema_; }

  /// Evaluates on one tuple (which must conform to the bound schema).
  Result<stt::Value> Eval(const stt::Tuple& tuple) const;

  /// Evaluates as a condition; requires a bool-typed (or null-typed)
  /// expression at bind time. A null result is false.
  Result<bool> EvalPredicate(const stt::Tuple& tuple) const;

  /// Evaluates over a prospective join pair without materializing the
  /// concatenated tuple (the expression must be bound against the
  /// joined schema the PairView presents).
  Result<stt::Value> EvalPair(const PairView& pair) const;

  /// EvalPredicate over a pair view: null is false.
  Result<bool> EvalPredicatePair(const PairView& pair) const;

  /// Reference tree-walk evaluator (identical semantics to Eval; kept
  /// as the verification oracle for the compiled program).
  Result<stt::Value> EvalInterpreted(const stt::Tuple& tuple) const;

  /// The compiled form this expression evaluates through.
  const ExprProgram& program() const { return program_; }

  /// True after a successful Bind.
  bool bound() const { return root_ != nullptr; }

 private:
  struct Node;
  static void Lower(const Node& node, ExprProgram* program);
  Result<stt::Value> EvalNode(const Node& node, const stt::Tuple& t) const;
  Result<bool> AsPredicate(Result<stt::Value> value) const;

  ExprPtr expr_;
  stt::SchemaPtr schema_;
  std::shared_ptr<const Node> root_;
  ExprProgram program_;
  stt::ValueType type_ = stt::ValueType::kNull;
};

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_EVAL_H_
