// StreamLoader: tokenizer for the expression language and the DSN
// specification language (both share one lexical grammar).

#ifndef STREAMLOADER_EXPR_LEXER_H_
#define STREAMLOADER_EXPR_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace sl::expr {

enum class TokenKind {
  kEnd,
  kIdent,      ///< [A-Za-z_][A-Za-z0-9_]*
  kDollar,     ///< $ident (STT metadata pseudo-attribute)
  kInt,        ///< integer literal
  kDouble,     ///< floating literal
  kString,     ///< "double-quoted" or 'single-quoted'
  kLParen, kRParen,
  kLBrace, kRBrace,
  kLBracket, kRBracket,
  kComma, kSemicolon, kColon,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq,         ///< == (or a single = in condition context)
  kNe,         ///< !=
  kLt, kLe, kGt, kGe,
  kArrow,      ///< ->
  kAt,         ///< @
  kDot,        ///< .
};

const char* TokenKindToString(TokenKind kind);

/// \brief One lexical token. For identifier/string tokens `text` holds
/// the (unescaped) content; numeric tokens carry their parsed value.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  ///< byte offset in the source, for error messages
  size_t end = 0;     ///< one past the last byte of the token's source text

  std::string ToString() const;
};

/// \brief Tokenizes `source`; `#` starts a comment running to end of line.
/// The resulting vector always terminates with a kEnd token. On failure,
/// `*error_offset` (when non-null) receives the byte offset the lexer
/// rejected, so callers can attach a source span to the error.
Result<std::vector<Token>> Tokenize(const std::string& source,
                                    size_t* error_offset = nullptr);

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_LEXER_H_
