#include "expr/typecheck.h"

#include <cmath>

#include "expr/functions.h"
#include "expr/parser.h"
#include "util/strings.h"

namespace sl::expr {

using stt::Value;
using stt::ValueType;

namespace {

bool IsNullType(ValueType t) { return t == ValueType::kNull; }

bool NumericOrNull(ValueType t) {
  return stt::IsNumeric(t) || IsNullType(t);
}

}  // namespace

Result<ValueType> ArithmeticResultType(BinaryOp op, ValueType l, ValueType r) {
  // String concatenation with '+'.
  if (op == BinaryOp::kAdd &&
      (l == ValueType::kString || r == ValueType::kString) &&
      !stt::IsNumeric(l) && !stt::IsNumeric(r)) {
    if ((l == ValueType::kString || IsNullType(l)) &&
        (r == ValueType::kString || IsNullType(r))) {
      return ValueType::kString;
    }
  }
  // Timestamp arithmetic: ts - ts -> int (ms); ts +- int -> ts.
  if (l == ValueType::kTimestamp || r == ValueType::kTimestamp) {
    if (op == BinaryOp::kSub && l == ValueType::kTimestamp &&
        r == ValueType::kTimestamp) {
      return ValueType::kInt;
    }
    if ((op == BinaryOp::kAdd || op == BinaryOp::kSub) &&
        l == ValueType::kTimestamp &&
        (r == ValueType::kInt || IsNullType(r))) {
      return ValueType::kTimestamp;
    }
    if (op == BinaryOp::kAdd && r == ValueType::kTimestamp &&
        (l == ValueType::kInt || IsNullType(l))) {
      return ValueType::kTimestamp;
    }
    return Status::TypeError(
        StrFormat("invalid timestamp arithmetic: %s %s %s",
                  stt::ValueTypeToString(l), BinaryOpToString(op),
                  stt::ValueTypeToString(r)));
  }
  if (!NumericOrNull(l) || !NumericOrNull(r)) {
    return Status::TypeError(StrFormat(
        "operator %s expects numeric operands but got %s and %s",
        BinaryOpToString(op), stt::ValueTypeToString(l),
        stt::ValueTypeToString(r)));
  }
  if (op == BinaryOp::kDiv) return ValueType::kDouble;
  if (l == ValueType::kDouble || r == ValueType::kDouble)
    return ValueType::kDouble;
  return ValueType::kInt;  // also the null-wildcard default
}

Result<ValueType> ComparisonResultType(BinaryOp op, ValueType l, ValueType r) {
  if (IsNullType(l) || IsNullType(r)) return ValueType::kBool;
  bool both_numeric = stt::IsNumeric(l) && stt::IsNumeric(r);
  if (both_numeric || l == r) {
    if (l == ValueType::kGeoPoint && op != BinaryOp::kEq &&
        op != BinaryOp::kNe) {
      return Status::TypeError("geopoints only support == and !=");
    }
    return ValueType::kBool;
  }
  return Status::TypeError(StrFormat(
      "cannot compare %s with %s", stt::ValueTypeToString(l),
      stt::ValueTypeToString(r)));
}

Result<ValueType> LogicalResultType(BinaryOp op, ValueType l, ValueType r) {
  auto ok = [](ValueType t) {
    return t == ValueType::kBool || IsNullType(t);
  };
  if (!ok(l) || !ok(r)) {
    return Status::TypeError(
        StrFormat("%s expects bool operands but got %s and %s",
                  BinaryOpToString(op), stt::ValueTypeToString(l),
                  stt::ValueTypeToString(r)));
  }
  return ValueType::kBool;
}

Result<ValueType> UnaryResultType(UnaryOp op, ValueType operand) {
  if (op == UnaryOp::kNeg) {
    if (!NumericOrNull(operand)) {
      return Status::TypeError("unary - expects a numeric operand");
    }
    return operand == ValueType::kDouble ? ValueType::kDouble
                                         : ValueType::kInt;
  }
  if (operand != ValueType::kBool && !IsNullType(operand)) {
    return Status::TypeError("not expects a bool operand");
  }
  return ValueType::kBool;
}

ValueType MetaAttrType(MetaAttr attr) {
  switch (attr) {
    case MetaAttr::kTimestamp: return ValueType::kTimestamp;
    case MetaAttr::kLat:
    case MetaAttr::kLon: return ValueType::kDouble;
    case MetaAttr::kSensor:
    case MetaAttr::kTheme: return ValueType::kString;
  }
  return ValueType::kNull;
}

namespace {

// -------------------------------------------------------------- folding

bool IsZero(const Value& v) {
  if (v.type() == ValueType::kInt) return v.AsInt() == 0;
  if (v.type() == ValueType::kDouble) return v.AsDouble() == 0.0;
  return false;
}

double AsFoldDouble(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsDouble();
}

}  // namespace

// Mirrors BoundExpr evaluation on literals (same null propagation,
// int/double promotion and division semantics) but bails out — returns
// nullopt — on anything the runtime would handle dynamically (overflow,
// calls, attribute access), so folding never claims more than eval does.
std::optional<Value> FoldUnary(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNot) return Value::Bool(!v.AsBool());
  if (v.type() == ValueType::kInt) {
    if (v.AsInt() == INT64_MIN) return std::nullopt;
    return Value::Int(-v.AsInt());
  }
  return Value::Double(-v.AsDouble());
}

std::optional<Value> FoldArithmetic(BinaryOp op, ValueType result_type,
                                    const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (result_type == ValueType::kString) {
    return Value::String(l.AsString() + r.AsString());
  }
  if (l.type() == ValueType::kTimestamp || r.type() == ValueType::kTimestamp) {
    return std::nullopt;  // folding gains nothing for timestamp math
  }
  if (result_type == ValueType::kInt && op != BinaryOp::kDiv) {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    int64_t out = 0;
    switch (op) {
      case BinaryOp::kAdd:
        if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
        return Value::Int(out);
      case BinaryOp::kSub:
        if (__builtin_sub_overflow(a, b, &out)) return std::nullopt;
        return Value::Int(out);
      case BinaryOp::kMul:
        if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
        return Value::Int(out);
      case BinaryOp::kMod:
        if (b == 0) return Value::Null();
        if (a == INT64_MIN && b == -1) return std::nullopt;
        return Value::Int(a % b);
      default:
        return std::nullopt;
    }
  }
  double a = AsFoldDouble(l);
  double b = AsFoldDouble(r);
  double out = 0;
  switch (op) {
    case BinaryOp::kAdd: out = a + b; break;
    case BinaryOp::kSub: out = a - b; break;
    case BinaryOp::kMul: out = a * b; break;
    case BinaryOp::kDiv:
      if (b == 0) return Value::Null();
      out = a / b;
      break;
    case BinaryOp::kMod:
      if (b == 0) return Value::Null();
      out = std::fmod(a, b);
      break;
    default:
      return std::nullopt;
  }
  if (!std::isfinite(out)) return Value::Null();
  return Value::Double(out);
}

std::optional<Value> FoldComparison(BinaryOp op, const Value& l,
                                    const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int cmp;
  if (stt::IsNumeric(l.type()) && stt::IsNumeric(r.type()) &&
      l.type() != r.type()) {
    double a = AsFoldDouble(l);
    double b = AsFoldDouble(r);
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    cmp = Value::Compare(l, r);
  }
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(cmp == 0);
    case BinaryOp::kNe: return Value::Bool(cmp != 0);
    case BinaryOp::kLt: return Value::Bool(cmp < 0);
    case BinaryOp::kLe: return Value::Bool(cmp <= 0);
    case BinaryOp::kGt: return Value::Bool(cmp > 0);
    case BinaryOp::kGe: return Value::Bool(cmp >= 0);
    default: return std::nullopt;
  }
}

// Kleene three-valued logic, matching the short-circuit evaluator.
std::optional<Value> FoldLogical(BinaryOp op, const std::optional<Value>& l,
                                 const std::optional<Value>& r) {
  bool is_and = op == BinaryOp::kAnd;
  auto dominant = [&](const std::optional<Value>& v) {
    return v.has_value() && !v->is_null() && v->AsBool() != is_and;
  };
  // One dominant side decides even when the other is not constant.
  if (dominant(l) || dominant(r)) return Value::Bool(!is_and);
  if (!l.has_value() || !r.has_value()) return std::nullopt;
  if (l->is_null() || r->is_null()) return Value::Null();
  return Value::Bool(is_and);  // and: both true; or: both false -> false
}

namespace {

// ------------------------------------------------------------- checker

struct CheckState {
  ValueType type = ValueType::kNull;
  std::optional<Value> constant;
};

class Checker {
 public:
  Checker(const stt::Schema& schema, const std::string& source)
      : schema_(schema), source_(source) {}

  CheckState Check(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral: {
        const auto& value = static_cast<const LiteralExpr&>(e).value();
        return {value.type(), value};
      }
      case ExprKind::kAttr:
        return CheckAttr(static_cast<const AttrExpr&>(e));
      case ExprKind::kMeta:
        return {MetaAttrType(static_cast<const MetaExpr&>(e).attr()), {}};
      case ExprKind::kUnary:
        return CheckUnary(static_cast<const UnaryExpr&>(e));
      case ExprKind::kBinary:
        return CheckBinary(static_cast<const BinaryExpr&>(e));
      case ExprKind::kCall:
        return CheckCall(static_cast<const CallExpr&>(e));
    }
    return {};
  }

  std::vector<diag::Diagnostic>& diags() { return diags_; }

 private:
  void Report(diag::Code code, const Expr& at, std::string message) {
    diags_.push_back(diag::MakeDiag(code, "", std::move(message), at.span(),
                                    source_));
  }

  CheckState CheckAttr(const AttrExpr& attr) {
    if (auto idx = schema_.FieldIndex(attr.name()); idx.ok()) {
      return {schema_.fields()[*idx].type, {}};
    }
    diag::Diagnostic d = diag::MakeDiag(
        diag::Code::kUnknownColumn, "",
        StrFormat("unknown column '%s'", attr.name().c_str()), attr.span(),
        source_);
    std::vector<std::string> names;
    names.reserve(schema_.fields().size());
    for (const auto& f : schema_.fields()) names.push_back(f.name);
    std::string columns = names.empty() ? "(none)" : Join(names, ", ");
    d.notes.push_back(
        {StrFormat("input schema has columns: %s", columns.c_str()), {}});
    diags_.push_back(std::move(d));
    return {};  // null wildcard: recover and keep checking the parents
  }

  CheckState CheckUnary(const UnaryExpr& u) {
    CheckState operand = Check(*u.operand());
    auto type = UnaryResultType(u.op(), operand.type);
    if (!type.ok()) {
      Report(u.op() == UnaryOp::kNeg ? diag::Code::kBadOperandType
                                     : diag::Code::kBoolOperand,
             u, type.status().message());
      return {};
    }
    CheckState out{*type, {}};
    if (operand.constant.has_value()) {
      out.constant = FoldUnary(u.op(), *operand.constant);
    }
    return out;
  }

  CheckState CheckBinary(const BinaryExpr& b) {
    CheckState left = Check(*b.left());
    CheckState right = Check(*b.right());
    switch (b.op()) {
      case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
      case BinaryOp::kDiv: case BinaryOp::kMod: {
        auto type = ArithmeticResultType(b.op(), left.type, right.type);
        if (!type.ok()) {
          Report(diag::Code::kBadOperandType, b, type.status().message());
          return {};
        }
        // Literal division by zero is visible even when the left side
        // is dynamic: x / 0 is null for every x.
        if ((b.op() == BinaryOp::kDiv || b.op() == BinaryOp::kMod) &&
            right.constant.has_value() && IsZero(*right.constant)) {
          Report(diag::Code::kDivisionByZero, *b.right(),
                 StrFormat("literal %s by zero always yields null",
                           b.op() == BinaryOp::kDiv ? "division" : "modulo"));
        }
        CheckState out{*type, {}};
        if (left.constant.has_value() && right.constant.has_value()) {
          out.constant =
              FoldArithmetic(b.op(), *type, *left.constant, *right.constant);
        }
        return out;
      }
      case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
      case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe: {
        auto type = ComparisonResultType(b.op(), left.type, right.type);
        if (!type.ok()) {
          Report(diag::Code::kBadComparison, b, type.status().message());
          return {};
        }
        CheckState out{*type, {}};
        if (left.constant.has_value() && right.constant.has_value()) {
          out.constant = FoldComparison(b.op(), *left.constant,
                                        *right.constant);
        }
        return out;
      }
      case BinaryOp::kAnd: case BinaryOp::kOr: {
        auto type = LogicalResultType(b.op(), left.type, right.type);
        if (!type.ok()) {
          Report(diag::Code::kBoolOperand, b, type.status().message());
          return {};
        }
        return {*type, FoldLogical(b.op(), left.constant, right.constant)};
      }
    }
    return {};
  }

  CheckState CheckCall(const CallExpr& c) {
    auto fn = FunctionRegistry::Global().Find(c.name());
    std::vector<ValueType> arg_types;
    arg_types.reserve(c.args().size());
    for (const auto& arg : c.args()) {
      arg_types.push_back(Check(*arg).type);
    }
    if (!fn.ok()) {
      Report(diag::Code::kUnknownFunction, c,
             StrFormat("unknown function '%s'", c.name().c_str()));
      return {};
    }
    if (c.args().size() < (*fn)->min_args ||
        c.args().size() > (*fn)->max_args) {
      Report(diag::Code::kArity, c,
             StrFormat("%s expects %zu..%zu arguments, got %zu  [%s]",
                       (*fn)->name.c_str(), (*fn)->min_args,
                       (*fn)->max_args == SIZE_MAX ? c.args().size()
                                                   : (*fn)->max_args,
                       c.args().size(), (*fn)->signature.c_str()));
      return {};
    }
    auto type = (*fn)->check(arg_types);
    if (!type.ok()) {
      diag::Diagnostic d = diag::MakeDiag(diag::Code::kBadArgType, "",
                                          type.status().message(), c.span(),
                                          source_);
      d.notes.push_back({StrFormat("signature: %s",
                                   (*fn)->signature.c_str()),
                         {}});
      diags_.push_back(std::move(d));
      return {};
    }
    return {*type, {}};  // calls are never folded (runtime domain errors)
  }

  const stt::Schema& schema_;
  const std::string& source_;
  std::vector<diag::Diagnostic> diags_;
};

}  // namespace

TypecheckResult TypecheckExpr(const ExprPtr& expr, const stt::Schema& schema,
                              const std::string& source) {
  TypecheckResult result;
  if (expr == nullptr) {
    result.diags.push_back(diag::MakeDiag(diag::Code::kExprSyntax, "",
                                          "null expression", {}, source));
    return result;
  }
  Checker checker(schema, source);
  CheckState root = checker.Check(*expr);
  result.type = root.type;
  result.constant = std::move(root.constant);
  result.diags = std::move(checker.diags());
  return result;
}

TypecheckResult TypecheckSource(const std::string& source,
                                const stt::Schema& schema) {
  TypecheckResult result;
  ExprPtr expr = ParseExpressionWithDiagnostics(source, &result.diags);
  if (expr == nullptr) return result;
  return TypecheckExpr(expr, schema, source);
}

TypecheckResult TypecheckCondition(const std::string& source,
                                   const stt::Schema& schema,
                                   ConditionContext context) {
  TypecheckResult result = TypecheckSource(source, schema);
  if (!result.ok()) return result;
  if (result.type != ValueType::kBool && result.type != ValueType::kNull) {
    result.diags.push_back(diag::MakeDiag(
        diag::Code::kConditionNotBool, "",
        StrFormat("condition has type %s, expected bool",
                  stt::ValueTypeToString(result.type)),
        {0, source.size()}, source));
    return result;
  }
  if (result.constant.has_value()) {
    const Value& v = *result.constant;
    bool truthy = !v.is_null() && v.AsBool();
    // An always-true join predicate is the idiomatic cross join and an
    // always-true trigger fires every interval by design; only a filter
    // that keeps everything is suspicious. Always-false (or null) means
    // the operator can never pass/fire anywhere.
    if (!truthy || context == ConditionContext::kFilter) {
      result.diags.push_back(diag::MakeDiag(
          diag::Code::kConstantPredicate, "",
          StrFormat("condition is always %s",
                    v.is_null() ? "null (treated as false)"
                                : (truthy ? "true" : "false")),
          {0, source.size()}, source));
    }
  }
  return result;
}

}  // namespace sl::expr
