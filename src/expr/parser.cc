#include "expr/parser.h"

#include "util/strings.h"

namespace sl::expr {

namespace {

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, size_t pos)
      : tokens_(tokens), pos_(pos) {}

  Result<ExprPtr> ParseOr() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (IsKeyword("or")) {
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_shared<BinaryExpr>(BinaryOp::kOr, left, right);
    }
    return left;
  }

  size_t pos() const { return pos_; }

 private:
  Result<ExprPtr> ParseAnd() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (IsKeyword("and")) {
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_shared<BinaryExpr>(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (IsKeyword("not")) {
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(std::make_shared<UnaryExpr>(UnaryOp::kNot, operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default: return left;
    }
    Advance();
    SL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return ExprPtr(std::make_shared<BinaryExpr>(op, left, right));
  }

  Result<ExprPtr> ParseAdditive() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      BinaryOp op = Peek().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                                    : BinaryOp::kSub;
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_shared<BinaryExpr>(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kPercent) {
      BinaryOp op = Peek().kind == TokenKind::kStar    ? BinaryOp::kMul
                    : Peek().kind == TokenKind::kSlash ? BinaryOp::kDiv
                                                       : BinaryOp::kMod;
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_shared<BinaryExpr>(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(std::make_shared<UnaryExpr>(UnaryOp::kNeg, operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Advance();
        return ExprPtr(
            std::make_shared<LiteralExpr>(stt::Value::Int(tok.int_value)));
      }
      case TokenKind::kDouble: {
        Advance();
        return ExprPtr(std::make_shared<LiteralExpr>(
            stt::Value::Double(tok.double_value)));
      }
      case TokenKind::kString: {
        Advance();
        return ExprPtr(
            std::make_shared<LiteralExpr>(stt::Value::String(tok.text)));
      }
      case TokenKind::kDollar: {
        Advance();
        std::string name = ToLower(tok.text);
        MetaAttr attr;
        if (name == "ts" || name == "time") attr = MetaAttr::kTimestamp;
        else if (name == "lat") attr = MetaAttr::kLat;
        else if (name == "lon" || name == "lng") attr = MetaAttr::kLon;
        else if (name == "sensor") attr = MetaAttr::kSensor;
        else if (name == "theme") attr = MetaAttr::kTheme;
        else
          return Error(tok, "unknown metadata attribute $" + tok.text);
        return ExprPtr(std::make_shared<MetaExpr>(attr));
      }
      case TokenKind::kIdent: {
        std::string lower = ToLower(tok.text);
        if (lower == "true" || lower == "false") {
          Advance();
          return ExprPtr(std::make_shared<LiteralExpr>(
              stt::Value::Bool(lower == "true")));
        }
        if (lower == "null") {
          Advance();
          return ExprPtr(std::make_shared<LiteralExpr>(stt::Value::Null()));
        }
        // Reserved words never name attributes or functions; reaching
        // one here means it is misplaced (e.g. "x > not y").
        if (lower == "not" || lower == "and" || lower == "or") {
          return Error(tok, "misplaced keyword '" + tok.text + "'");
        }
        Advance();
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<ExprPtr> args;
          if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              SL_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (Peek().kind == TokenKind::kComma) {
                Advance();
                continue;
              }
              break;
            }
          }
          if (Peek().kind != TokenKind::kRParen) {
            return Error(Peek(), "expected ')' in call to " + tok.text);
          }
          Advance();
          return ExprPtr(
              std::make_shared<CallExpr>(ToLower(tok.text), std::move(args)));
        }
        return ExprPtr(std::make_shared<AttrExpr>(tok.text));
      }
      case TokenKind::kLParen: {
        Advance();
        SL_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (Peek().kind != TokenKind::kRParen) {
          return Error(Peek(), "expected ')'");
        }
        Advance();
        return inner;
      }
      default:
        return Error(tok, StrFormat("unexpected token %s in expression",
                                    tok.ToString().c_str()));
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && ToLower(Peek().text) == kw;
  }
  static Status Error(const Token& tok, const std::string& msg) {
    return Status::ParseError(
        StrFormat("%s (at offset %zu)", msg.c_str(), tok.offset));
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& source) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(tokens, 0);
  SL_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseOr());
  if (tokens[parser.pos()].kind != TokenKind::kEnd) {
    return Status::ParseError(StrFormat(
        "trailing input after expression at offset %zu: '%s'",
        tokens[parser.pos()].offset, tokens[parser.pos()].ToString().c_str()));
  }
  return expr;
}

Result<ExprPtr> ParseExpressionTokens(const std::vector<Token>& tokens,
                                      size_t* pos) {
  Parser parser(tokens, *pos);
  SL_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseOr());
  *pos = parser.pos();
  return expr;
}

}  // namespace sl::expr
