#include "expr/parser.h"

#include "util/strings.h"

namespace sl::expr {

namespace {

// Stamps `span` on a freshly built (still mutable) node and converts it
// to the shared immutable ExprPtr form.
template <typename T>
ExprPtr WithSpan(std::shared_ptr<T> node, diag::Span span) {
  node->set_span(span);
  return node;
}

diag::Span TokenSpan(const Token& tok) {
  return {tok.offset, tok.end > tok.offset ? tok.end : tok.offset + 1};
}

diag::Span Join(const diag::Span& a, const diag::Span& b) {
  return {a.begin < b.begin ? a.begin : b.begin,
          a.end > b.end ? a.end : b.end};
}

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, size_t pos)
      : tokens_(tokens), pos_(pos) {}

  Result<ExprPtr> ParseOr() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (IsKeyword("or")) {
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      diag::Span span = Join(left->span(), right->span());
      left = WithSpan(std::make_shared<BinaryExpr>(BinaryOp::kOr, left, right),
                      span);
    }
    return left;
  }

  size_t pos() const { return pos_; }

  /// Span of the token the last Error() pointed at ({0,0} before any).
  const diag::Span& error_span() const { return error_span_; }

 private:
  Result<ExprPtr> ParseAnd() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (IsKeyword("and")) {
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      diag::Span span = Join(left->span(), right->span());
      left = WithSpan(
          std::make_shared<BinaryExpr>(BinaryOp::kAnd, left, right), span);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (IsKeyword("not")) {
      const Token op_tok = Peek();
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return WithSpan(std::make_shared<UnaryExpr>(UnaryOp::kNot, operand),
                      Join(TokenSpan(op_tok), operand->span()));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default: return left;
    }
    Advance();
    SL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return WithSpan(std::make_shared<BinaryExpr>(op, left, right),
                    Join(left->span(), right->span()));
  }

  Result<ExprPtr> ParseAdditive() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      BinaryOp op = Peek().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                                    : BinaryOp::kSub;
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      diag::Span span = Join(left->span(), right->span());
      left = WithSpan(std::make_shared<BinaryExpr>(op, left, right), span);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kPercent) {
      BinaryOp op = Peek().kind == TokenKind::kStar    ? BinaryOp::kMul
                    : Peek().kind == TokenKind::kSlash ? BinaryOp::kDiv
                                                       : BinaryOp::kMod;
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      diag::Span span = Join(left->span(), right->span());
      left = WithSpan(std::make_shared<BinaryExpr>(op, left, right), span);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      const Token op_tok = Peek();
      Advance();
      SL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return WithSpan(std::make_shared<UnaryExpr>(UnaryOp::kNeg, operand),
                      Join(TokenSpan(op_tok), operand->span()));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Advance();
        return WithSpan(
            std::make_shared<LiteralExpr>(stt::Value::Int(tok.int_value)),
            TokenSpan(tok));
      }
      case TokenKind::kDouble: {
        Advance();
        return WithSpan(std::make_shared<LiteralExpr>(
                            stt::Value::Double(tok.double_value)),
                        TokenSpan(tok));
      }
      case TokenKind::kString: {
        Advance();
        return WithSpan(
            std::make_shared<LiteralExpr>(stt::Value::String(tok.text)),
            TokenSpan(tok));
      }
      case TokenKind::kDollar: {
        Advance();
        std::string name = ToLower(tok.text);
        MetaAttr attr;
        if (name == "ts" || name == "time") attr = MetaAttr::kTimestamp;
        else if (name == "lat") attr = MetaAttr::kLat;
        else if (name == "lon" || name == "lng") attr = MetaAttr::kLon;
        else if (name == "sensor") attr = MetaAttr::kSensor;
        else if (name == "theme") attr = MetaAttr::kTheme;
        else
          return Error(tok, "unknown metadata attribute $" + tok.text);
        return WithSpan(std::make_shared<MetaExpr>(attr), TokenSpan(tok));
      }
      case TokenKind::kIdent: {
        std::string lower = ToLower(tok.text);
        if (lower == "true" || lower == "false") {
          Advance();
          return WithSpan(std::make_shared<LiteralExpr>(
                              stt::Value::Bool(lower == "true")),
                          TokenSpan(tok));
        }
        if (lower == "null") {
          Advance();
          return WithSpan(std::make_shared<LiteralExpr>(stt::Value::Null()),
                          TokenSpan(tok));
        }
        // Reserved words never name attributes or functions; reaching
        // one here means it is misplaced (e.g. "x > not y").
        if (lower == "not" || lower == "and" || lower == "or") {
          return Error(tok, "misplaced keyword '" + tok.text + "'");
        }
        Advance();
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<ExprPtr> args;
          if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              SL_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (Peek().kind == TokenKind::kComma) {
                Advance();
                continue;
              }
              break;
            }
          }
          if (Peek().kind != TokenKind::kRParen) {
            return Error(Peek(), "expected ')' in call to " + tok.text);
          }
          const Token& rparen = Peek();
          Advance();
          return WithSpan(
              std::make_shared<CallExpr>(ToLower(tok.text), std::move(args)),
              Join(TokenSpan(tok), TokenSpan(rparen)));
        }
        return WithSpan(std::make_shared<AttrExpr>(tok.text), TokenSpan(tok));
      }
      case TokenKind::kLParen: {
        Advance();
        SL_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (Peek().kind != TokenKind::kRParen) {
          return Error(Peek(), "expected ')'");
        }
        Advance();
        return inner;
      }
      default:
        return Error(tok, StrFormat("unexpected token %s in expression",
                                    tok.ToString().c_str()));
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && ToLower(Peek().text) == kw;
  }
  Status Error(const Token& tok, const std::string& msg) {
    error_span_ = TokenSpan(tok);
    return Status::ParseError(
        StrFormat("%s (at offset %zu)", msg.c_str(), tok.offset));
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
  diag::Span error_span_;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& source) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(tokens, 0);
  SL_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseOr());
  if (tokens[parser.pos()].kind != TokenKind::kEnd) {
    return Status::ParseError(StrFormat(
        "trailing input after expression at offset %zu: '%s'",
        tokens[parser.pos()].offset, tokens[parser.pos()].ToString().c_str()));
  }
  return expr;
}

ExprPtr ParseExpressionWithDiagnostics(const std::string& source,
                                       std::vector<diag::Diagnostic>* diags) {
  size_t lex_offset = 0;
  auto tokens = Tokenize(source, &lex_offset);
  if (!tokens.ok()) {
    diags->push_back(diag::MakeDiag(diag::Code::kLexError, "",
                                    tokens.status().message(),
                                    {lex_offset, lex_offset + 1}, source));
    return nullptr;
  }
  Parser parser(*tokens, 0);
  auto expr = parser.ParseOr();
  if (!expr.ok()) {
    diags->push_back(diag::MakeDiag(diag::Code::kExprSyntax, "",
                                    expr.status().message(),
                                    parser.error_span(), source));
    return nullptr;
  }
  const Token& rest = (*tokens)[parser.pos()];
  if (rest.kind != TokenKind::kEnd) {
    diags->push_back(diag::MakeDiag(
        diag::Code::kExprSyntax, "",
        StrFormat("trailing input after expression: '%s'",
                  rest.ToString().c_str()),
        {rest.offset, rest.end > rest.offset ? rest.end : rest.offset + 1},
        source));
    return nullptr;
  }
  return *expr;
}

Result<ExprPtr> ParseExpressionTokens(const std::vector<Token>& tokens,
                                      size_t* pos) {
  Parser parser(tokens, *pos);
  SL_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseOr());
  *pos = parser.pos();
  return expr;
}

}  // namespace sl::expr
