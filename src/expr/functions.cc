#include "expr/functions.h"

#include <algorithm>
#include <cmath>

#include "stt/geo.h"
#include "stt/granularity.h"
#include "stt/units.h"
#include "util/strings.h"

namespace sl::expr {

using stt::Value;
using stt::ValueType;

namespace {

bool TypeIs(ValueType t, ValueType want) {
  return t == want || t == ValueType::kNull;  // null is a wildcard
}

bool TypeIsNumeric(ValueType t) {
  return stt::IsNumeric(t) || t == ValueType::kNull;
}

Status ArgError(const std::string& fn, const std::string& detail) {
  return Status::TypeError("in call to " + fn + ": " + detail);
}

// --- check helpers -------------------------------------------------------

auto CheckAllNumeric(std::string fn, ValueType result) {
  return [fn = std::move(fn), result](const std::vector<ValueType>& args)
             -> Result<ValueType> {
    for (auto t : args) {
      if (!TypeIsNumeric(t))
        return ArgError(fn, "expects numeric arguments");
    }
    return result;
  };
}

auto CheckTypes(std::string fn, std::vector<ValueType> expected,
                ValueType result) {
  return [fn = std::move(fn), expected = std::move(expected),
          result](const std::vector<ValueType>& args) -> Result<ValueType> {
    for (size_t i = 0; i < args.size() && i < expected.size(); ++i) {
      if (!TypeIs(args[i], expected[i])) {
        return ArgError(fn, StrFormat("argument %zu expects %s but got %s",
                                      i + 1,
                                      stt::ValueTypeToString(expected[i]),
                                      stt::ValueTypeToString(args[i])));
      }
    }
    return result;
  };
}

// --- eval helpers --------------------------------------------------------

double Num(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsDouble();
}

Result<Value> NumUnary(const std::vector<Value>& args, double (*fn)(double)) {
  double r = fn(Num(args[0]));
  if (!std::isfinite(r)) return Value::Null();
  return Value::Double(r);
}

}  // namespace

FunctionRegistry::FunctionRegistry() {
  auto add = [this](FunctionDef def) { functions_.push_back(std::move(def)); };

  // ---- numeric ----------------------------------------------------------
  add({"abs", 1, 1, "abs(x: numeric) -> numeric",
       [](const std::vector<ValueType>& a) -> Result<ValueType> {
         if (!TypeIsNumeric(a[0])) return ArgError("abs", "expects numeric");
         return a[0] == ValueType::kInt ? ValueType::kInt : ValueType::kDouble;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         if (a[0].type() == ValueType::kInt)
           return Value::Int(std::llabs(a[0].AsInt()));
         return Value::Double(std::fabs(a[0].AsDouble()));
       }});
  add({"sqrt", 1, 1, "sqrt(x: numeric) -> double",
       CheckAllNumeric("sqrt", ValueType::kDouble), true,
       [](const std::vector<Value>& a) { return NumUnary(a, std::sqrt); }});
  add({"exp", 1, 1, "exp(x: numeric) -> double",
       CheckAllNumeric("exp", ValueType::kDouble), true,
       [](const std::vector<Value>& a) { return NumUnary(a, std::exp); }});
  add({"log", 1, 1, "log(x: numeric) -> double",
       CheckAllNumeric("log", ValueType::kDouble), true,
       [](const std::vector<Value>& a) { return NumUnary(a, std::log); }});
  add({"floor", 1, 1, "floor(x: numeric) -> int",
       CheckAllNumeric("floor", ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int(static_cast<int64_t>(std::floor(Num(a[0]))));
       }});
  add({"ceil", 1, 1, "ceil(x: numeric) -> int",
       CheckAllNumeric("ceil", ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int(static_cast<int64_t>(std::ceil(Num(a[0]))));
       }});
  add({"round", 1, 1, "round(x: numeric) -> int",
       CheckAllNumeric("round", ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int(static_cast<int64_t>(std::llround(Num(a[0]))));
       }});
  add({"pow", 2, 2, "pow(x: numeric, y: numeric) -> double",
       CheckAllNumeric("pow", ValueType::kDouble), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         double r = std::pow(Num(a[0]), Num(a[1]));
         if (!std::isfinite(r)) return Value::Null();
         return Value::Double(r);
       }});
  add({"min", 2, SIZE_MAX, "min(x, y, ...) -> numeric",
       CheckAllNumeric("min", ValueType::kDouble), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         double best = Num(a[0]);
         for (size_t i = 1; i < a.size(); ++i) best = std::min(best, Num(a[i]));
         return Value::Double(best);
       }});
  add({"max", 2, SIZE_MAX, "max(x, y, ...) -> numeric",
       CheckAllNumeric("max", ValueType::kDouble), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         double best = Num(a[0]);
         for (size_t i = 1; i < a.size(); ++i) best = std::max(best, Num(a[i]));
         return Value::Double(best);
       }});

  // ---- casts ------------------------------------------------------------
  add({"to_int", 1, 1, "to_int(x) -> int",
       [](const std::vector<ValueType>&) -> Result<ValueType> {
         return ValueType::kInt;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return a[0].CoerceTo(ValueType::kInt);
       }});
  add({"to_double", 1, 1, "to_double(x) -> double",
       [](const std::vector<ValueType>&) -> Result<ValueType> {
         return ValueType::kDouble;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         if (a[0].type() == ValueType::kString) {
           char* end = nullptr;
           const std::string& s = a[0].AsString();
           double d = std::strtod(s.c_str(), &end);
           if (end == s.c_str() || *end != '\0') return Value::Null();
           return Value::Double(d);
         }
         return a[0].CoerceTo(ValueType::kDouble);
       }});
  add({"to_string", 1, 1, "to_string(x) -> string",
       [](const std::vector<ValueType>&) -> Result<ValueType> {
         return ValueType::kString;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::String(a[0].ToString());
       }});

  // ---- null handling ----------------------------------------------------
  add({"is_null", 1, 1, "is_null(x) -> bool",
       [](const std::vector<ValueType>&) -> Result<ValueType> {
         return ValueType::kBool;
       },
       false,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Bool(a[0].is_null());
       }});
  add({"coalesce", 1, SIZE_MAX, "coalesce(x, y, ...) -> first non-null",
       [](const std::vector<ValueType>& a) -> Result<ValueType> {
         ValueType t = ValueType::kNull;
         for (auto at : a) {
           if (at == ValueType::kNull) continue;
           if (t == ValueType::kNull) t = at;
           else if (t != at)
             return ArgError("coalesce", "mixed argument types");
         }
         return t == ValueType::kNull ? ValueType::kNull : t;
       },
       false,
       [](const std::vector<Value>& a) -> Result<Value> {
         for (const auto& v : a) {
           if (!v.is_null()) return v;
         }
         return Value::Null();
       }});
  add({"if", 3, 3, "if(cond: bool, then, else) -> then/else type",
       [](const std::vector<ValueType>& a) -> Result<ValueType> {
         if (!TypeIs(a[0], ValueType::kBool))
           return ArgError("if", "first argument must be bool");
         if (a[1] == ValueType::kNull) return a[2];
         if (a[2] == ValueType::kNull) return a[1];
         if (a[1] != a[2])
           return ArgError("if", "then/else branches have different types");
         return a[1];
       },
       false,
       [](const std::vector<Value>& a) -> Result<Value> {
         if (a[0].is_null()) return Value::Null();
         return a[0].AsBool() ? a[1] : a[2];
       }});

  // ---- strings ----------------------------------------------------------
  add({"lower", 1, 1, "lower(s: string) -> string",
       CheckTypes("lower", {ValueType::kString}, ValueType::kString), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::String(ToLower(a[0].AsString()));
       }});
  add({"upper", 1, 1, "upper(s: string) -> string",
       CheckTypes("upper", {ValueType::kString}, ValueType::kString), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::String(ToUpper(a[0].AsString()));
       }});
  add({"length", 1, 1, "length(s: string) -> int",
       CheckTypes("length", {ValueType::kString}, ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int(static_cast<int64_t>(a[0].AsString().size()));
       }});
  add({"concat", 2, SIZE_MAX, "concat(s1, s2, ...) -> string",
       [](const std::vector<ValueType>&) -> Result<ValueType> {
         return ValueType::kString;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         std::string out;
         for (const auto& v : a) out += v.ToString();
         return Value::String(std::move(out));
       }});
  add({"contains", 2, 2, "contains(s: string, sub: string) -> bool",
       CheckTypes("contains", {ValueType::kString, ValueType::kString},
                  ValueType::kBool),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Bool(a[0].AsString().find(a[1].AsString()) !=
                            std::string::npos);
       }});
  add({"starts_with", 2, 2, "starts_with(s: string, prefix: string) -> bool",
       CheckTypes("starts_with", {ValueType::kString, ValueType::kString},
                  ValueType::kBool),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Bool(StartsWith(a[0].AsString(), a[1].AsString()));
       }});
  add({"ends_with", 2, 2, "ends_with(s: string, suffix: string) -> bool",
       CheckTypes("ends_with", {ValueType::kString, ValueType::kString},
                  ValueType::kBool),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Bool(EndsWith(a[0].AsString(), a[1].AsString()));
       }});
  add({"substr", 2, 3, "substr(s: string, start: int[, len: int]) -> string",
       CheckTypes("substr",
                  {ValueType::kString, ValueType::kInt, ValueType::kInt},
                  ValueType::kString),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         const std::string& s = a[0].AsString();
         int64_t start = a[1].AsInt();
         if (start < 0) start = 0;
         if (start >= static_cast<int64_t>(s.size()))
           return Value::String("");
         size_t len = std::string::npos;
         if (a.size() == 3) {
           int64_t l = a[2].AsInt();
           len = l < 0 ? 0 : static_cast<size_t>(l);
         }
         return Value::String(s.substr(static_cast<size_t>(start), len));
       }});
  add({"matches_date", 2, 2,
       "matches_date(s: string, pattern: string) -> bool  # pattern digits: YMDhms",
       CheckTypes("matches_date", {ValueType::kString, ValueType::kString},
                  ValueType::kBool),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Bool(
             MatchesDatePattern(a[0].AsString(), a[1].AsString()));
       }});

  // ---- time -------------------------------------------------------------
  add({"time", 1, 1, "time(s: string) -> timestamp  # ISO-8601",
       CheckTypes("time", {ValueType::kString}, ValueType::kTimestamp), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         Timestamp ts;
         if (!ParseTimestamp(a[0].AsString(), &ts)) {
           return Status::ParseError("time(): cannot parse '" +
                                     a[0].AsString() + "'");
         }
         return Value::Time(ts);
       }});
  add({"hour_of", 1, 1, "hour_of(t: timestamp) -> int  # 0..23 UTC",
       CheckTypes("hour_of", {ValueType::kTimestamp}, ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         int64_t secs = a[0].AsTime() / 1000;
         int64_t sod = ((secs % 86400) + 86400) % 86400;
         return Value::Int(sod / 3600);
       }});
  add({"minute_of", 1, 1, "minute_of(t: timestamp) -> int  # 0..59",
       CheckTypes("minute_of", {ValueType::kTimestamp}, ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         int64_t secs = a[0].AsTime() / 1000;
         int64_t sod = ((secs % 86400) + 86400) % 86400;
         return Value::Int(sod / 60 % 60);
       }});
  add({"truncate_time", 2, 2,
       "truncate_time(t: timestamp, g: string) -> timestamp  # e.g. '1h'",
       CheckTypes("truncate_time", {ValueType::kTimestamp, ValueType::kString},
                  ValueType::kTimestamp),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         SL_ASSIGN_OR_RETURN(stt::TemporalGranularity g,
                             stt::TemporalGranularity::Parse(a[1].AsString()));
         return Value::Time(g.Truncate(a[0].AsTime()));
       }});
  add({"ts_ms", 1, 1, "ts_ms(t: timestamp) -> int  # ms since epoch",
       CheckTypes("ts_ms", {ValueType::kTimestamp}, ValueType::kInt), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int(a[0].AsTime());
       }});

  // ---- units & domain transforms (§2 requirement 1 & 2) ------------------
  add({"convert_unit", 3, 3,
       "convert_unit(x: numeric, from: string, to: string) -> double",
       [](const std::vector<ValueType>& a) -> Result<ValueType> {
         if (!TypeIsNumeric(a[0]))
           return ArgError("convert_unit", "first argument must be numeric");
         if (!TypeIs(a[1], ValueType::kString) ||
             !TypeIs(a[2], ValueType::kString))
           return ArgError("convert_unit", "unit names must be strings");
         return ValueType::kDouble;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         SL_ASSIGN_OR_RETURN(double v,
                             stt::ConvertUnit(Num(a[0]), a[1].AsString(),
                                              a[2].AsString()));
         return Value::Double(v);
       }});
  add({"apparent_temp", 2, 2,
       "apparent_temp(temp_c: numeric, humidity_pct: numeric) -> double",
       CheckAllNumeric("apparent_temp", ValueType::kDouble), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Double(stt::ApparentTemperatureC(Num(a[0]), Num(a[1])));
       }});

  // ---- geometry (§2 requirement 1: coordinate standards) -----------------
  add({"point", 2, 2, "point(lat: numeric, lon: numeric) -> geopoint",
       CheckAllNumeric("point", ValueType::kGeoPoint), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Geo({Num(a[0]), Num(a[1])});
       }});
  add({"lat", 1, 1, "lat(p: geopoint) -> double",
       CheckTypes("lat", {ValueType::kGeoPoint}, ValueType::kDouble), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Double(a[0].AsGeo().lat);
       }});
  add({"lon", 1, 1, "lon(p: geopoint) -> double",
       CheckTypes("lon", {ValueType::kGeoPoint}, ValueType::kDouble), true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Double(a[0].AsGeo().lon);
       }});
  add({"distance_m", 2, 2, "distance_m(a: geopoint, b: geopoint) -> double",
       CheckTypes("distance_m", {ValueType::kGeoPoint, ValueType::kGeoPoint},
                  ValueType::kDouble),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Double(stt::HaversineMeters(a[0].AsGeo(), a[1].AsGeo()));
       }});
  add({"in_bbox", 5, 5,
       "in_bbox(p: geopoint, lat1, lon1, lat2, lon2) -> bool",
       [](const std::vector<ValueType>& a) -> Result<ValueType> {
         if (!TypeIs(a[0], ValueType::kGeoPoint))
           return ArgError("in_bbox", "first argument must be geopoint");
         for (size_t i = 1; i < a.size(); ++i) {
           if (!TypeIsNumeric(a[i]))
             return ArgError("in_bbox", "corners must be numeric");
         }
         return ValueType::kBool;
       },
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         stt::BBox box = stt::NormalizeBBox({Num(a[1]), Num(a[2])},
                                            {Num(a[3]), Num(a[4])});
         return Value::Bool(box.Contains(a[0].AsGeo()));
       }});
  add({"convert_crs", 3, 3,
       "convert_crs(p: geopoint, from: string, to: string) -> geopoint",
       CheckTypes("convert_crs",
                  {ValueType::kGeoPoint, ValueType::kString, ValueType::kString},
                  ValueType::kGeoPoint),
       true,
       [](const std::vector<Value>& a) -> Result<Value> {
         SL_ASSIGN_OR_RETURN(stt::Crs from,
                             stt::CrsFromString(a[1].AsString()));
         SL_ASSIGN_OR_RETURN(stt::Crs to, stt::CrsFromString(a[2].AsString()));
         SL_ASSIGN_OR_RETURN(stt::GeoPoint p,
                             stt::ConvertCrs(a[0].AsGeo(), from, to));
         return Value::Geo(p);
       }});
}

const FunctionRegistry& FunctionRegistry::Global() {
  static const FunctionRegistry* registry = new FunctionRegistry();
  return *registry;
}

Result<const FunctionDef*> FunctionRegistry::Find(
    const std::string& name) const {
  std::string lower = ToLower(name);
  for (const auto& f : functions_) {
    if (f.name == lower) return &f;
  }
  return Status::NotFound("unknown function '" + name + "'");
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& f : functions_) names.push_back(f.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sl::expr
