// StreamLoader: abstract syntax of the condition / specification language.
//
// Filter conditions, join predicates, trigger conditions, virtual-property
// specifications and transform expressions (§2, Table 1) are all written
// in one small expression language over the attributes of a stream's
// schema plus the STT metadata pseudo-attributes $ts, $lat, $lon, $sensor
// and $theme.

#ifndef STREAMLOADER_EXPR_AST_H_
#define STREAMLOADER_EXPR_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "stt/value.h"

namespace sl::expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node kind discriminator.
enum class ExprKind {
  kLiteral,
  kAttr,
  kMeta,
  kUnary,
  kBinary,
  kCall,
};

/// STT metadata pseudo-attributes.
enum class MetaAttr {
  kTimestamp,  ///< $ts : timestamp
  kLat,        ///< $lat : double (null when the tuple has no location)
  kLon,        ///< $lon : double (null when the tuple has no location)
  kSensor,     ///< $sensor : string
  kTheme,      ///< $theme : string (the stream theme)
};

const char* MetaAttrToString(MetaAttr m);

enum class UnaryOp { kNeg, kNot };
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* UnaryOpToString(UnaryOp op);
const char* BinaryOpToString(BinaryOp op);

/// \brief Immutable expression tree node.
class Expr {
 public:
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  /// Byte range of the node in the text it was parsed from ({0,0} for
  /// synthesized nodes). Set once by the parser before the node is
  /// shared as `ExprPtr` (const), then immutable like the rest.
  const diag::Span& span() const { return span_; }
  void set_span(diag::Span span) { span_ = span; }

  /// Source form, normalized (fully parenthesized where precedence is not
  /// obvious). Parsing the result reproduces an equivalent tree.
  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
  diag::Span span_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(stt::Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}
  const stt::Value& value() const { return value_; }
  std::string ToString() const override;

 private:
  stt::Value value_;
};

class AttrExpr : public Expr {
 public:
  explicit AttrExpr(std::string name)
      : Expr(ExprKind::kAttr), name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class MetaExpr : public Expr {
 public:
  explicit MetaExpr(MetaAttr attr) : Expr(ExprKind::kMeta), attr_(attr) {}
  MetaAttr attr() const { return attr_; }
  std::string ToString() const override;

 private:
  MetaAttr attr_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}
  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class CallExpr : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kCall), name_(std::move(name)), args_(std::move(args)) {}
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// \brief Collects the plain attribute names referenced by `expr`
/// (deduplicated, in first-occurrence order). Used by the dataflow
/// checker to verify conditions against upstream schemas.
std::vector<std::string> ReferencedAttributes(const ExprPtr& expr);

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_AST_H_
