// StreamLoader: recursive-descent parser for the expression language.

#ifndef STREAMLOADER_EXPR_PARSER_H_
#define STREAMLOADER_EXPR_PARSER_H_

#include <string>

#include "expr/ast.h"
#include "expr/lexer.h"
#include "util/result.h"

namespace sl::expr {

/// \brief Parses a complete expression; trailing input is an error.
///
/// Grammar (precedence low to high): or, and, not, comparison
/// (non-associative), additive, multiplicative, unary minus, primary.
/// A single `=` is accepted as equality (conditions are written by
/// domain experts, §2).
Result<ExprPtr> ParseExpression(const std::string& source);

/// \brief Like ParseExpression, but failures are reported as coded
/// diagnostics (SL0001 lexical, SL0002 syntax) with byte-offset spans
/// into `source` instead of a bare Status. Returns nullptr after
/// appending to `diags` on failure. Successful parses carry spans on
/// every AST node (Expr::span()).
ExprPtr ParseExpressionWithDiagnostics(const std::string& source,
                                       std::vector<diag::Diagnostic>* diags);

/// \brief Parses one expression from a pre-tokenized stream starting at
/// `*pos`, advancing `*pos` past the expression. Used by the DSN parser
/// to parse embedded conditions.
Result<ExprPtr> ParseExpressionTokens(const std::vector<Token>& tokens,
                                      size_t* pos);

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_PARSER_H_
