// StreamLoader: static type checking for the expression language.
//
// The same typing rules the runtime binder (BoundExpr::Bind) enforces,
// packaged as an analysis pass: instead of stopping at the first Status,
// the checker walks the whole AST against a schema, accumulates coded
// diagnostics with source spans (SL1xxx), constant-folds literal
// subtrees to flag always-true/always-false predicates and literal
// division by zero (SL3xxx), and recovers from errors with the null
// wildcard type so one pass reports every problem in an expression.
//
// The operator typing rules live here and are shared with eval.cc, so
// the static checker and the runtime binder can never disagree.

#ifndef STREAMLOADER_EXPR_TYPECHECK_H_
#define STREAMLOADER_EXPR_TYPECHECK_H_

#include <optional>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "expr/ast.h"
#include "stt/schema.h"
#include "util/result.h"

namespace sl::expr {

// ---------------------------------------------------------------------
// Operator typing rules (single source of truth; eval.cc binds with
// these). kNull operands act as wildcards throughout, matching the SQL
// null semantics of the evaluator.

/// + - * / % over numbers, string concatenation with +, timestamp
/// arithmetic (ts - ts -> int, ts +- int -> ts). Division is always
/// double.
Result<stt::ValueType> ArithmeticResultType(BinaryOp op, stt::ValueType l,
                                            stt::ValueType r);

/// == != < <= > >= over mutually comparable types (numerics compare
/// across int/double; geopoints support only == and !=).
Result<stt::ValueType> ComparisonResultType(BinaryOp op, stt::ValueType l,
                                            stt::ValueType r);

/// and / or over bools.
Result<stt::ValueType> LogicalResultType(BinaryOp op, stt::ValueType l,
                                         stt::ValueType r);

/// Unary - over numbers, not over bools.
Result<stt::ValueType> UnaryResultType(UnaryOp op, stt::ValueType operand);

/// Type of a $meta pseudo-attribute ($ts: timestamp, $lat/$lon: double,
/// $sensor/$theme: string).
stt::ValueType MetaAttrType(MetaAttr attr);

// ---------------------------------------------------------------------
// Constant folding over literal operands. Mirrors BoundExpr evaluation
// (same null propagation, int/double promotion and division semantics)
// but bails out — returns nullopt — on anything the runtime would
// handle dynamically (overflow, calls, attribute access), so folding
// never claims more than eval does. Shared between the static checker
// (constant-predicate lints) and the binder (bind-time folding, so
// literal subtrees cost zero per tuple).

std::optional<stt::Value> FoldUnary(UnaryOp op, const stt::Value& v);
std::optional<stt::Value> FoldArithmetic(BinaryOp op,
                                         stt::ValueType result_type,
                                         const stt::Value& l,
                                         const stt::Value& r);
std::optional<stt::Value> FoldComparison(BinaryOp op, const stt::Value& l,
                                         const stt::Value& r);
/// Kleene three-valued logic, matching the short-circuit evaluator. A
/// dominant constant side (false for and, true for or) decides even
/// when the other side is not constant (nullopt).
std::optional<stt::Value> FoldLogical(BinaryOp op,
                                      const std::optional<stt::Value>& l,
                                      const std::optional<stt::Value>& r);

// ---------------------------------------------------------------------
// The analysis pass.

/// \brief Outcome of type-checking one expression.
struct TypecheckResult {
  /// Result type of the whole expression (kNull both for genuinely
  /// null-typed expressions and as the recovery wildcard after errors).
  stt::ValueType type = stt::ValueType::kNull;

  /// Errors and warnings, in source order. Node names are left empty;
  /// the dataflow validator fills them in.
  std::vector<diag::Diagnostic> diags;

  /// Set when the expression folds to a compile-time constant (literal
  /// subtree without calls or attribute references).
  std::optional<stt::Value> constant;

  /// True when no *error* was reported (warnings allowed).
  bool ok() const { return !diag::HasErrors(diags); }
};

/// What a boolean condition guards; tunes the constant-predicate lint
/// (an always-true join predicate is the idiomatic cross join, an
/// always-true filter is a no-op worth flagging).
enum class ConditionContext { kFilter, kJoin, kTrigger };

/// \brief Checks `expr` against `schema`. `source` (when given) is the
/// text the AST spans point into; it is attached to diagnostics so they
/// can render caret snippets on their own.
TypecheckResult TypecheckExpr(const ExprPtr& expr, const stt::Schema& schema,
                              const std::string& source = {});

/// \brief Parses `source` and checks it; parse failures surface as
/// SL0001/SL0002 diagnostics.
TypecheckResult TypecheckSource(const std::string& source,
                                const stt::Schema& schema);

/// \brief TypecheckSource plus condition rules: the expression must be
/// boolean (SL1008), and constant conditions are linted (SL3004) per
/// `context`.
TypecheckResult TypecheckCondition(const std::string& source,
                                   const stt::Schema& schema,
                                   ConditionContext context);

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_TYPECHECK_H_
