// StreamLoader: compiled expression programs.
//
// BoundExpr lowers its type-annotated tree into a flat postorder
// instruction array evaluated over a value stack — the single evaluator
// every non-blocking operator (filter, transform, virtual property) and
// the join residual run per tuple. A flat program touches one contiguous
// allocation instead of chasing child pointers, pre-folds literal
// subtrees at bind time, and implements Kleene and/or short-circuiting
// with forward jumps, so its observable semantics (results, null
// propagation, error surfacing order) are exactly those of the
// recursive interpreter it replaces.
//
// The program evaluates against a *row*, not only a materialized tuple:
// a PairView presents a prospective (left, right) join pair as if it
// were the concatenated joined tuple, so a join can run its residual
// predicate without copying either side's values (the pair is
// materialized only on a match).

#ifndef STREAMLOADER_EXPR_PROGRAM_H_
#define STREAMLOADER_EXPR_PROGRAM_H_

#include <vector>

#include "diag/diagnostic.h"
#include "expr/ast.h"
#include "expr/functions.h"
#include "stt/schema.h"
#include "stt/tuple.h"

namespace sl::expr {

// ---------------------------------------------------------------------
// Shared evaluation semantics. The interpreter (BoundExpr::EvalNode) and
// the compiled program both call these helpers, so the two evaluators
// can never disagree on null propagation, numeric promotion, domain
// errors, or comparison rules.

/// Defense in depth on attribute access: a tuple value whose type does
/// not match the schema the expression was bound against (a misbehaving
/// sensor) is a per-tuple type error, not silently-ordered garbage.
Status CheckAttrValueType(const stt::Value& v, stt::ValueType declared);

/// Unary - / not over a non-null operand.
stt::Value EvalUnaryOp(UnaryOp op, const stt::Value& v);

/// + - * / % over non-null operands: string concatenation, timestamp
/// arithmetic, int arithmetic (except /), double fallback with
/// division/modulo by zero and non-finite results yielding null.
/// `result_type` is the static type the binder derived for the node.
stt::Value EvalArithOp(BinaryOp op, stt::ValueType result_type,
                       const stt::Value& l, const stt::Value& r);

/// == != < <= > >= over non-null operands (numerics compare across
/// int/double through double).
stt::Value EvalCompareOp(BinaryOp op, const stt::Value& l,
                         const stt::Value& r);

// ---------------------------------------------------------------------
// Pair view.

/// \brief Zero-copy view of a prospective joined tuple: the first
/// `split` attributes read from `left`, the rest from `right`, and the
/// metadata pseudo-attributes mirror exactly what the materialized
/// joined tuple would carry (ts = the pre-truncated pair time, location
/// = left's if present else right's, sensor = "", theme = the output
/// schema's). Evaluating a predicate over a PairView is
/// indistinguishable from materializing the concatenated tuple first.
struct PairView {
  const stt::Tuple* left = nullptr;
  const stt::Tuple* right = nullptr;
  size_t split = 0;           ///< number of attributes taken from `left`
  Timestamp ts = 0;           ///< pair event time, already granule-truncated
  const stt::Schema* schema = nullptr;  ///< joined output schema ($theme)
};

// ---------------------------------------------------------------------
// The instruction set.

/// One instruction of a compiled expression program. Postorder: operand
/// instructions push onto the value stack, operator instructions pop
/// their operands and push one result.
struct ExprInsn {
  enum class Op : uint8_t {
    kPushLiteral,   ///< push `literal`
    kPushAttr,      ///< push row attribute `index` (type-checked)
    kPushMeta,      ///< push metadata pseudo-attribute `meta`
    kUnary,         ///< pop v, push uop(v) (null -> null)
    kArith,         ///< pop r, l; push l bop r (null -> null)
    kCompare,       ///< pop r, l; push l bop r (null -> null)
    kShortCircuit,  ///< peek top; if it decides the and/or, replace it
                    ///< with the dominant bool and jump to `jump`
    kLogicalMerge,  ///< pop r, l; push the Kleene and/or combination
    kCall,          ///< pop `index` args, push fn(args)
  };

  Op op = Op::kPushLiteral;
  stt::ValueType type = stt::ValueType::kNull;  ///< static result type
  stt::Value literal;                           ///< kPushLiteral
  uint32_t index = 0;     ///< kPushAttr: attribute; kCall: argument count
  MetaAttr meta = MetaAttr::kTimestamp;         ///< kPushMeta
  UnaryOp uop = UnaryOp::kNeg;                  ///< kUnary
  BinaryOp bop = BinaryOp::kAdd;                ///< kArith/kCompare/logical
  const FunctionDef* fn = nullptr;              ///< kCall
  uint32_t jump = 0;      ///< kShortCircuit: target instruction index
  /// Source span of the AST node this instruction was lowered from
  /// (expression-relative byte offsets). Never read on the evaluation
  /// hot path; carried for static analysis so sl-analyze can point a
  /// caret at, e.g., the divisor of a provable division by zero.
  diag::Span span;
};

/// \brief A compiled (flattened) expression. Built by BoundExpr at bind
/// time; immutable afterwards and safe to share across evaluations
/// (evaluation state lives on a per-call stack segment, so re-entrant
/// evaluation — an operator emitting into a downstream operator that
/// evaluates its own expression — is safe).
class ExprProgram {
 public:
  std::vector<ExprInsn>& insns() { return insns_; }
  const std::vector<ExprInsn>& insns() const { return insns_; }
  bool empty() const { return insns_.empty(); }

  /// Evaluates against a materialized tuple.
  Result<stt::Value> Run(const stt::Tuple& t) const;

  /// Evaluates against a prospective join pair without materializing it.
  Result<stt::Value> RunPair(const PairView& pair) const;

 private:
  std::vector<ExprInsn> insns_;
};

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_PROGRAM_H_
