#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace sl::expr {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kDollar: return "$meta";
    case TokenKind::kInt: return "int";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kColon: return ":";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kArrow: return "->";
    case TokenKind::kAt: return "@";
    case TokenKind::kDot: return ".";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdent: return text;
    case TokenKind::kDollar: return "$" + text;
    case TokenKind::kInt: return StrFormat("%lld", static_cast<long long>(int_value));
    case TokenKind::kDouble: return StrFormat("%g", double_value);
    case TokenKind::kString: return QuoteString(text);
    default: return TokenKindToString(kind);
  }
}

Result<std::vector<Token>> Tokenize(const std::string& source,
                                    size_t* error_offset) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  auto error = [&source, error_offset](size_t pos, const std::string& msg) {
    if (error_offset != nullptr) *error_offset = pos;
    return Status::ParseError(
        StrFormat("%s at offset %zu near '%.12s'", msg.c_str(), pos,
                  source.c_str() + pos));
  };
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Identifiers.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_'))
        ++i;
      tok.kind = TokenKind::kIdent;
      tok.text = source.substr(start, i - start);
      tok.end = i;
      tokens.push_back(std::move(tok));
      continue;
    }
    // $meta.
    if (c == '$') {
      size_t start = ++i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_'))
        ++i;
      if (i == start) return error(tok.offset, "expected name after '$'");
      tok.kind = TokenKind::kDollar;
      tok.text = source.substr(start, i - start);
      tok.end = i;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (source[i] == '+' || source[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
            ++i;
        } else {
          i = save;  // 'e' belongs to a following identifier
        }
      }
      std::string num = source.substr(start, i - start);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInt;
        errno = 0;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return error(start, "integer literal out of range");
        }
      }
      tok.end = i;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        char d = source[i];
        if (d == quote) {
          closed = true;
          ++i;
          break;
        }
        if (d == '\\' && i + 1 < n) {
          char e = source[i + 1];
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            case '\'': text.push_back('\''); break;
            default:
              return error(i, "unknown escape sequence");
          }
          i += 2;
          continue;
        }
        text.push_back(d);
        ++i;
      }
      if (!closed) return error(tok.offset, "unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      tok.end = i;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char next) { return i + 1 < n && source[i + 1] == next; };
    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; ++i; break;
      case ')': tok.kind = TokenKind::kRParen; ++i; break;
      case '{': tok.kind = TokenKind::kLBrace; ++i; break;
      case '}': tok.kind = TokenKind::kRBrace; ++i; break;
      case '[': tok.kind = TokenKind::kLBracket; ++i; break;
      case ']': tok.kind = TokenKind::kRBracket; ++i; break;
      case ',': tok.kind = TokenKind::kComma; ++i; break;
      case ';': tok.kind = TokenKind::kSemicolon; ++i; break;
      case ':': tok.kind = TokenKind::kColon; ++i; break;
      case '+': tok.kind = TokenKind::kPlus; ++i; break;
      case '*': tok.kind = TokenKind::kStar; ++i; break;
      case '/': tok.kind = TokenKind::kSlash; ++i; break;
      case '%': tok.kind = TokenKind::kPercent; ++i; break;
      case '@': tok.kind = TokenKind::kAt; ++i; break;
      case '.': tok.kind = TokenKind::kDot; ++i; break;
      case '-':
        if (two('>')) {
          tok.kind = TokenKind::kArrow;
          i += 2;
        } else {
          tok.kind = TokenKind::kMinus;
          ++i;
        }
        break;
      case '=':
        if (two('=')) {
          tok.kind = TokenKind::kEq;
          i += 2;
        } else {
          tok.kind = TokenKind::kEq;  // single '=' accepted as equality
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          tok.kind = TokenKind::kNe;
          i += 2;
        } else {
          return error(i, "unexpected '!'");
        }
        break;
      case '<':
        if (two('=')) {
          tok.kind = TokenKind::kLe;
          i += 2;
        } else if (two('>')) {
          tok.kind = TokenKind::kNe;
          i += 2;
        } else {
          tok.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          tok.kind = TokenKind::kGe;
          i += 2;
        } else {
          tok.kind = TokenKind::kGt;
          ++i;
        }
        break;
      default:
        return error(i, StrFormat("unexpected character '%c'", c));
    }
    tok.end = i;
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  end.end = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sl::expr
