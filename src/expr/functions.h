// StreamLoader: builtin functions of the expression language.
//
// These realize the transformation requirements of §2: unit-of-measure
// conversion, coordinate-standard conversion, virtual properties such as
// apparent temperature, and validation rules such as date-pattern checks.

#ifndef STREAMLOADER_EXPR_FUNCTIONS_H_
#define STREAMLOADER_EXPR_FUNCTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "stt/value.h"
#include "util/result.h"

namespace sl::expr {

/// \brief Signature and implementation of one builtin function.
struct FunctionDef {
  std::string name;      ///< lower-case call name
  size_t min_args;
  size_t max_args;       ///< SIZE_MAX for variadic
  /// One-line signature for documentation / error messages.
  std::string signature;

  /// Derives the result type from argument types; kNull arguments act as
  /// wildcards. Returns TypeError when the arguments don't fit.
  std::function<Result<stt::ValueType>(const std::vector<stt::ValueType>&)>
      check;

  /// When true (the default for most functions), a null argument makes
  /// the result null without invoking `eval`.
  bool propagate_null = true;

  /// Evaluates the function on non-null arguments (unless
  /// propagate_null is false, in which case nulls are passed through).
  /// Domain errors (e.g. unknown unit at runtime) surface as Status.
  std::function<Result<stt::Value>(const std::vector<stt::Value>&)> eval;
};

/// \brief The registry of builtin functions.
class FunctionRegistry {
 public:
  /// The process-global registry with all builtins installed.
  static const FunctionRegistry& Global();

  /// Looks up by lower-case name.
  Result<const FunctionDef*> Find(const std::string& name) const;

  /// All function names (sorted) — surfaced in the design environment.
  std::vector<std::string> Names() const;

 private:
  FunctionRegistry();
  std::vector<FunctionDef> functions_;
};

}  // namespace sl::expr

#endif  // STREAMLOADER_EXPR_FUNCTIONS_H_
