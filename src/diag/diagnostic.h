// StreamLoader: compiler-style diagnostics for the static analyzer.
//
// Every check in the front end (expression type checking, DSN parsing,
// dataflow validation) reports through one Diagnostic currency: a stable
// code (SL0xxx parse, SL1xxx type, SL2xxx graph, SL3xxx lint warning), a
// severity, a message, and a byte-offset span into the source text the
// construct came from. Diagnostics render either as one-line summaries
// (grep-friendly, stable across releases) or as caret snippets pointing
// at the offending characters, and serialize to JSON for tooling.

#ifndef STREAMLOADER_DIAG_DIAGNOSTIC_H_
#define STREAMLOADER_DIAG_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.h"

namespace sl::diag {

/// \brief Half-open byte range [begin, end) into a source string.
/// A default-constructed span ({0, 0}) means "no source location".
struct Span {
  size_t begin = 0;
  size_t end = 0;

  bool valid() const { return end > begin; }
  size_t size() const { return end - begin; }
  /// Shifts both endpoints by `delta` (re-anchoring an expression-relative
  /// span into the enclosing document).
  Span Offset(size_t delta) const { return {begin + delta, end + delta}; }

  friend bool operator==(const Span& a, const Span& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

enum class Severity { kError, kWarning, kNote };

const char* SeverityToString(Severity s);

/// Stable diagnostic codes. Numeric values are part of the tool's
/// contract (tests and CI artifacts reference them); never renumber,
/// only append.
enum class Code {
  kNone = 0,

  // SL00xx — lexical / syntactic.
  kLexError = 1,         ///< SL0001: tokenizer rejected the input
  kExprSyntax = 2,       ///< SL0002: expression parse error
  kDsnSyntax = 10,       ///< SL0010: DSN document parse error
  kDsnStructure = 11,    ///< SL0011: DSN well-formedness (dup names, flows)

  // SL10xx — type errors (expression + schema level).
  kUnknownColumn = 1001,    ///< SL1001: attribute not in the input schema
  kUnknownFunction = 1002,  ///< SL1002: call to an unregistered function
  kArity = 1003,            ///< SL1003: wrong number of call arguments
  kBadArgType = 1004,       ///< SL1004: argument type rejected by signature
  kBadOperandType = 1005,   ///< SL1005: arithmetic operand type mismatch
  kBadComparison = 1006,    ///< SL1006: incomparable operand types
  kBoolOperand = 1007,      ///< SL1007: and/or/not over non-bool
  kConditionNotBool = 1008, ///< SL1008: condition/predicate not boolean
  kAlwaysNullProperty = 1009, ///< SL1009: virtual property is always null
  kNonNumericAggregate = 1010, ///< SL1010: aggregated attribute not numeric
  kBadUnit = 1011,          ///< SL1011: unit annotation rejected

  // SL20xx — graph / dataflow consistency errors.
  kNoSources = 2001,        ///< SL2001: dataflow has no sources
  kUnknownSensor = 2002,    ///< SL2002: source sensor not published
  kEmptyQuery = 2003,       ///< SL2003: discovery query matches nothing
  kQuerySchemaMismatch = 2004, ///< SL2004: query matches unequal schemas
  kIntervalGranularity = 2005, ///< SL2005: interval not a granularity multiple
  kGranularityMismatch = 2006, ///< SL2006: incomparable join granularities
  kBadRegion = 2007,        ///< SL2007: degenerate cull time/space region
  kBadSinkTarget = 2008,    ///< SL2008: sink target missing/unusable
  kBadOpSpec = 2009,        ///< SL2009: operator spec inconsistent
  kMissingSchema = 2010,    ///< SL2010: sensor publishes no usable schema
  kBadPartition = 2011,     ///< SL2011: partition_by/parallelism misuse

  // SL30xx — lint warnings (suspicious but deployable).
  kNoSinks = 3001,          ///< SL3001: dataflow discards all results
  kUnreachableNode = 3002,  ///< SL3002: node reaches no sink
  kDeadVirtualProperty = 3003, ///< SL3003: virtual property never read
  kConstantPredicate = 3004,   ///< SL3004: condition folds to a constant
  kDivisionByZero = 3005,      ///< SL3005: literal division by zero
  kWindowNeverFires = 3006,    ///< SL3006: sliding window < check interval
  kUnknownTriggerTarget = 3007, ///< SL3007: trigger target not published
  kInstantGranularity = 3008,  ///< SL3008: blocking op over instant stream
  kNoEquiJoin = 3009,          ///< SL3009: join predicate has no equi-conjunct

  // SL40xx — whole-pipeline abstract-interpretation findings
  // (sl-analyze). Warnings: the program still deploys and runs
  // bit-identically; the analyzer only reports what the inferred
  // value ranges prove about it.
  kRangeConstantCondition = 4001, ///< SL4001: condition always false/true
                                  ///  given upstream value ranges
  kEmptyJoin = 4002,              ///< SL4002: equi-join keys provably disjoint
  kRangeDivisionByZero = 4003,    ///< SL4003: divisor range is exactly zero
  kRangeOverflow = 4004,          ///< SL4004: int arithmetic can exceed 64 bits
  kDeadStream = 4005,             ///< SL4005: no tuple can reach any sink
  kLatenessTooSmall = 4006,       ///< SL4006: bounded lateness < source max_delay
  kConstantPartitionKey = 4007,   ///< SL4007: partition key provably constant
};

/// "SL0002", "SL1003", ... (always two letters + four digits).
std::string CodeToString(Code code);

/// The default severity class of a code (3xxx and 4xxx codes are
/// warnings, everything else an error). kNone maps to kNote.
Severity CodeSeverity(Code code);

/// \brief An attached secondary message ("note: derived schema is ...").
struct DiagNote {
  std::string message;
  Span span;
};

/// \brief One finding of the static analyzer.
struct Diagnostic {
  Code code = Code::kNone;
  Severity severity = Severity::kError;
  std::string node;     ///< dataflow node / DSN service name, may be empty
  std::string message;  ///< human one-liner, no trailing period
  Span span;            ///< into `source` (or the enclosing document)
  std::string source;   ///< text the span points into, may be empty
  std::vector<DiagNote> notes;

  /// One-line summary: "error[SL1001] node 'hot': unknown column 'tmp'".
  std::string ToString() const;

  /// Multi-line caret rendering:
  ///   error[SL1001] node 'hot': unknown column 'tmp'
  ///     --> line 3, column 12
  ///      |   condition: tmp > 30;
  ///      |              ^^^
  /// Falls back to ToString() + newline when there is no usable span.
  std::string Render() const;

  /// Serializes into `w` as one JSON object (code, severity, node,
  /// message, span, notes).
  void ToJson(JsonWriter& w) const;
};

/// \brief Convenience constructor: severity defaults from the code.
Diagnostic MakeDiag(Code code, std::string node, std::string message,
                    Span span = {}, std::string source = {});

/// 1-based line/column of byte `offset` in `text` (tabs count as one).
struct LineCol {
  size_t line = 1;
  size_t column = 1;
};
LineCol LineColAt(const std::string& text, size_t offset);

/// \brief Renders a caret snippet for `span` inside `source`, each line
/// prefixed with `indent`. Empty when the span is invalid or outside the
/// source.
std::string RenderSnippet(const std::string& source, Span span,
                          const std::string& indent = "  ");

/// True if any diagnostic in `diags` is an error.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Sorts by (source order, code) and drops exact duplicates.
void SortAndDedup(std::vector<Diagnostic>& diags);

}  // namespace sl::diag

#endif  // STREAMLOADER_DIAG_DIAGNOSTIC_H_
