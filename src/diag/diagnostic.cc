#include "diag/diagnostic.h"

#include <algorithm>
#include <tuple>

#include "util/strings.h"

namespace sl::diag {

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string CodeToString(Code code) {
  return StrFormat("SL%04d", static_cast<int>(code));
}

Severity CodeSeverity(Code code) {
  int v = static_cast<int>(code);
  if (v == 0) return Severity::kNote;
  if (v >= 3000 && v < 5000) return Severity::kWarning;
  return Severity::kError;
}

std::string Diagnostic::ToString() const {
  std::string out = StrFormat("%s[%s]", SeverityToString(severity),
                              CodeToString(code).c_str());
  if (!node.empty()) out += StrFormat(" node '%s'", node.c_str());
  out += ": " + message;
  return out;
}

LineCol LineColAt(const std::string& text, size_t offset) {
  LineCol lc;
  if (offset > text.size()) offset = text.size();
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++lc.line;
      lc.column = 1;
    } else {
      ++lc.column;
    }
  }
  return lc;
}

std::string RenderSnippet(const std::string& source, Span span,
                          const std::string& indent) {
  if (!span.valid() || span.begin >= source.size()) return {};
  size_t end = std::min(span.end, source.size());
  // The line containing span.begin.
  size_t line_begin = source.rfind('\n', span.begin);
  line_begin = (line_begin == std::string::npos) ? 0 : line_begin + 1;
  size_t line_end = source.find('\n', span.begin);
  if (line_end == std::string::npos) line_end = source.size();

  LineCol lc = LineColAt(source, span.begin);
  std::string out =
      StrFormat("%s--> line %zu, column %zu\n", indent.c_str(), lc.line,
                lc.column);
  out += indent + " |   " + source.substr(line_begin, line_end - line_begin) +
         "\n";
  size_t caret_end = std::min(end, line_end);
  size_t caret_len = caret_end > span.begin ? caret_end - span.begin : 1;
  out += indent + " |   " + std::string(span.begin - line_begin, ' ') +
         std::string(caret_len, '^') + "\n";
  return out;
}

std::string Diagnostic::Render() const {
  std::string out = ToString() + "\n";
  std::string snippet = RenderSnippet(source, span);
  out += snippet;
  for (const auto& note : notes) {
    out += "  note: " + note.message + "\n";
    out += RenderSnippet(source, note.span, "    ");
  }
  return out;
}

void Diagnostic::ToJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("code");
  w.String(CodeToString(code));
  w.Key("severity");
  w.String(SeverityToString(severity));
  if (!node.empty()) {
    w.Key("node");
    w.String(node);
  }
  w.Key("message");
  w.String(message);
  if (span.valid()) {
    w.Key("span");
    w.BeginObject();
    w.Key("begin");
    w.Int(static_cast<int64_t>(span.begin));
    w.Key("end");
    w.Int(static_cast<int64_t>(span.end));
    if (!source.empty()) {
      LineCol lc = LineColAt(source, span.begin);
      w.Key("line");
      w.Int(static_cast<int64_t>(lc.line));
      w.Key("column");
      w.Int(static_cast<int64_t>(lc.column));
    }
    w.EndObject();
  }
  if (!notes.empty()) {
    w.Key("notes");
    w.BeginArray();
    for (const auto& note : notes) w.String(note.message);
    w.EndArray();
  }
  w.EndObject();
}

Diagnostic MakeDiag(Code code, std::string node, std::string message,
                    Span span, std::string source) {
  Diagnostic d;
  d.code = code;
  d.severity = CodeSeverity(code);
  d.node = std::move(node);
  d.message = std::move(message);
  d.span = span;
  d.source = std::move(source);
  return d;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

void SortAndDedup(std::vector<Diagnostic>& diags) {
  auto key = [](const Diagnostic& d) {
    return std::tuple<size_t, int, const std::string&, const std::string&>(
        d.span.begin, static_cast<int>(d.code), d.node, d.message);
  };
  std::stable_sort(diags.begin(), diags.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [&](const Diagnostic& a, const Diagnostic& b) {
                            return key(a) == key(b);
                          }),
              diags.end());
}

}  // namespace sl::diag
