// StreamLoader: status-based error model.
//
// Core StreamLoader libraries do not throw exceptions across API
// boundaries; fallible functions return a `Status` (or a `Result<T>`,
// see result.h) in the style of Arrow / RocksDB.

#ifndef STREAMLOADER_UTIL_STATUS_H_
#define STREAMLOADER_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace sl {

/// Machine-readable error category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed a malformed value
  kNotFound = 2,          ///< named entity does not exist
  kAlreadyExists = 3,     ///< named entity is already registered
  kFailedPrecondition = 4,///< system is in the wrong state for this call
  kOutOfRange = 5,        ///< index / interval outside the valid domain
  kUnimplemented = 6,     ///< feature intentionally not available
  kInternal = 7,          ///< invariant violation inside StreamLoader
  kParseError = 8,        ///< textual input (expression / DSN) rejected
  kTypeError = 9,         ///< schema / expression type mismatch
  kValidationError = 10,  ///< dataflow soundness check failed
  kCapacityExceeded = 11, ///< network node / cache resource exhausted
  kTimeout = 12,          ///< event did not occur within its deadline
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief The result of an operation that can fail but returns no value.
///
/// A Status is either OK (the default, carries no allocation) or an error
/// with a code and message. Statuses are cheap to copy when OK and
/// cheap to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk for an OK status.
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty for an OK status.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsValidationError() const { return code() == StatusCode::kValidationError; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy of this status with `context` prepended to the
  /// message, for adding call-site information while propagating errors.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace sl

/// Propagates an error status from an expression returning Status.
#define SL_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::sl::Status _sl_status = (expr);              \
    if (!_sl_status.ok()) return _sl_status;       \
  } while (false)

#define SL_CONCAT_IMPL(a, b) a##b
#define SL_CONCAT(a, b) SL_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, on failure returns the error status from the current function.
#define SL_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto SL_CONCAT(_sl_result_, __LINE__) = (expr);                   \
  if (!SL_CONCAT(_sl_result_, __LINE__).ok())                       \
    return SL_CONCAT(_sl_result_, __LINE__).status();               \
  lhs = std::move(SL_CONCAT(_sl_result_, __LINE__)).ValueOrDie()

#endif  // STREAMLOADER_UTIL_STATUS_H_
