#include "util/status.h"

namespace sl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kValidationError: return "ValidationError";
    case StatusCode::kCapacityExceeded: return "CapacityExceeded";
    case StatusCode::kTimeout: return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sl
