// StreamLoader: Result<T> — a value or an error Status.

#ifndef STREAMLOADER_UTIL_RESULT_H_
#define STREAMLOADER_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace sl {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result is never simultaneously "ok" and value-less: constructing one
/// from an OK status is an internal error (asserted in debug builds and
/// normalized to an Internal error otherwise).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff this result holds a value.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const { return ok() ? Status::OK() : status_; }

  /// The held value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The held value, or `fallback` when this result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Convenience dereference; must only be used when ok().
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sl

#endif  // STREAMLOADER_UTIL_RESULT_H_
