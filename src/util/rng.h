// StreamLoader: deterministic pseudo-random number generation.
//
// All randomness in the system (sensor simulators, workload generators,
// property tests) flows through Rng so that runs are reproducible from a
// single seed.

#ifndef STREAMLOADER_UTIL_RNG_H_
#define STREAMLOADER_UTIL_RNG_H_

#include <cstdint>

namespace sl {

/// \brief A small, fast, seedable PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; two Rngs with equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator (via SplitMix64 state expansion).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) via Lemire's method; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box–Muller).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// \brief Derives an independent child generator, e.g. one per sensor.
  /// Children with distinct salts have statistically independent streams.
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace sl

#endif  // STREAMLOADER_UTIL_RNG_H_
