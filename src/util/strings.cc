#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sl {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out = Split(text, sep);
  for (auto& s : out) s = std::string(Trim(s));
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_')
    return false;
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

bool MatchesDatePattern(std::string_view text, std::string_view pattern) {
  if (text.size() != pattern.size()) return false;
  for (size_t i = 0; i < pattern.size(); ++i) {
    char p = pattern[i];
    char c = text[i];
    switch (p) {
      case 'Y': case 'M': case 'D': case 'h': case 'm': case 's':
        if (!std::isdigit(static_cast<unsigned char>(c))) return false;
        break;
      default:
        if (c != p) return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string QuoteString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

bool UnquoteString(std::string_view in, std::string* out) {
  if (in.size() < 2 || in.front() != '"' || in.back() != '"') return false;
  out->clear();
  out->reserve(in.size() - 2);
  for (size_t i = 1; i + 1 < in.size(); ++i) {
    char c = in[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 2 >= in.size() + 1) return false;
    ++i;
    if (i + 1 > in.size() - 1) return false;
    switch (in[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 >= in.size()) return false;
        int v = 0;
        for (int k = 1; k <= 4; ++k) {
          char h = in[i + k];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= h - '0';
          else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
          else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
          else return false;
        }
        if (v > 0x7f) return false;  // core model is ASCII-escaped
        out->push_back(static_cast<char>(v));
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

}  // namespace sl
