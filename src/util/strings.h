// StreamLoader: small string utilities shared across modules.

#ifndef STREAMLOADER_UTIL_STRINGS_H_
#define STREAMLOADER_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sl {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on `sep` and trims ASCII whitespace from every field.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// ASCII upper-casing.
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True iff `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

/// \brief Matches `text` against a date/time pattern where Y, M, D, h, m,
/// s stand for digits and every other character matches itself — e.g.
/// "YYYY-MM-DD" or "hh:mm:ss". Used by the `matches_date` validation rule.
bool MatchesDatePattern(std::string_view text, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Quotes a string for embedding in DSN / JSON text, escaping
/// backslash, double quote, and control characters.
std::string QuoteString(std::string_view text);

/// Inverse of QuoteString; returns false on malformed escapes. `in` must
/// include the surrounding double quotes.
bool UnquoteString(std::string_view in, std::string* out);

}  // namespace sl

#endif  // STREAMLOADER_UTIL_STRINGS_H_
