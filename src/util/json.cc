#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/strings.h"

namespace sl {

std::string JsonEscape(std::string_view text) { return QuoteString(text); }

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  if (!has_value_.empty()) has_value_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  if (!has_value_.empty()) has_value_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += JsonEscape(key);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += JsonEscape(value);
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (std::isnan(value) || std::isinf(value)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
}

std::string JsonWriter::TakeString() {
  std::string result = std::move(out_);
  out_.clear();
  has_value_.clear();
  after_key_ = false;
  return result;
}

}  // namespace sl
