// StreamLoader: virtual time.
//
// The entire system is event-driven over a virtual clock so that runs are
// deterministic, seedable and much faster than wall-clock time. Timestamps
// are milliseconds since the Unix epoch; durations are milliseconds.

#ifndef STREAMLOADER_UTIL_CLOCK_H_
#define STREAMLOADER_UTIL_CLOCK_H_

#include <cstdint>
#include <string>

namespace sl {

/// Milliseconds since the Unix epoch (virtual).
using Timestamp = int64_t;

/// A span of virtual time in milliseconds.
using Duration = int64_t;

/// Common duration constants, in milliseconds.
namespace duration {
inline constexpr Duration kMillisecond = 1;
inline constexpr Duration kSecond = 1000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;
}  // namespace duration

/// \brief Formats a timestamp as "YYYY-MM-DDTHH:MM:SS.mmmZ" (UTC).
std::string FormatTimestamp(Timestamp ts);

/// \brief Parses "YYYY-MM-DD[THH:MM[:SS[.mmm]]][Z]" into a Timestamp.
/// Returns false when the text does not match the pattern or encodes an
/// impossible date (e.g. month 13, February 30th).
bool ParseTimestamp(const std::string& text, Timestamp* out);

/// \brief Formats a duration compactly and losslessly, e.g. "1.5s",
/// "250ms", "2m", "3h" (ParseDuration inverts it exactly).
std::string FormatDuration(Duration d);

/// \brief Parses a duration like "500ms", "1.5s", "2m", "1h" or a bare
/// number of milliseconds; unlike granularities, zero is allowed.
bool ParseDuration(const std::string& text, Duration* out);

/// \brief A monotonically advancing virtual clock.
///
/// Owned by the event loop; everything else reads it. Advancing backwards
/// is an internal error and is ignored.
class VirtualClock {
 public:
  /// Creates a clock starting at `start` (defaults to the epoch).
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  /// Current virtual time.
  Timestamp Now() const { return now_; }

  /// Advances to `t` if it is in the future; otherwise keeps the current
  /// time (the clock never moves backwards).
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

  /// Advances by a non-negative duration.
  void AdvanceBy(Duration d) {
    if (d > 0) now_ += d;
  }

 private:
  Timestamp now_;
};

}  // namespace sl

#endif  // STREAMLOADER_UTIL_CLOCK_H_
