// StreamLoader: a minimal streaming JSON writer.
//
// Used by the visualization sink (GeoJSON-like output), the monitor's
// machine-readable reports, and tests. Write-only by design: StreamLoader
// never needs to parse arbitrary JSON.

#ifndef STREAMLOADER_UTIL_JSON_H_
#define STREAMLOADER_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sl {

/// \brief Streaming JSON document writer.
///
/// Usage:
/// \code
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("temp_01");
///   w.Key("values"); w.BeginArray(); w.Double(24.5); w.EndArray();
///   w.EndObject();
///   std::string doc = w.TakeString();
/// \endcode
///
/// Structural misuse (e.g. EndObject without BeginObject) is tolerated and
/// produces malformed output rather than crashing; the writer is an output
/// formatter, not a validator.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Writes a pre-serialized JSON fragment verbatim.
  void Raw(std::string_view json);

  /// The document so far.
  const std::string& str() const { return out_; }

  /// Moves the document out, leaving the writer empty and reusable.
  std::string TakeString();

 private:
  void MaybeComma();

  std::string out_;
  // Tracks whether a value has been emitted at each nesting depth and
  // whether we are directly after a key.
  std::vector<bool> has_value_;
  bool after_key_ = false;
};

/// \brief Escapes `text` as a JSON string literal including quotes.
std::string JsonEscape(std::string_view text);

}  // namespace sl

#endif  // STREAMLOADER_UTIL_JSON_H_
