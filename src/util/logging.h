// StreamLoader: leveled logging.
//
// The monitor module consumes structured LogRecords; human-readable text
// goes through the global Logger. Logging is off (kWarning) by default in
// tests and benches to keep output clean.

#ifndef STREAMLOADER_UTIL_LOGGING_H_
#define STREAMLOADER_UTIL_LOGGING_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace sl {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

const char* LogLevelToString(LogLevel level);

/// \brief Process-global logger with a pluggable sink.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// The singleton logger.
  static Logger& Get();

  /// Minimum level that is emitted. Atomic: SL_LOG checks the level
  /// from every worker thread of the threaded runtime.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore
  /// the default sink. Thread-safe against concurrent Log calls.
  void set_sink(Sink sink);

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarning};
  std::mutex mu_;  ///< guards sink_ (swap vs. invoke from workers)
  Sink sink_;
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogMessageVoidify {
  // operator& has lower precedence than << but higher than ?:.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace sl

#define SL_LOG_IS_ON(severity) \
  (::sl::LogLevel::severity >= ::sl::Logger::Get().level())

#define SL_LOG(severity)                                          \
  !SL_LOG_IS_ON(severity)                                         \
      ? (void)0                                                   \
      : ::sl::internal::LogMessageVoidify() &                     \
            ::sl::internal::LogMessage(::sl::LogLevel::severity,  \
                                       __FILE__, __LINE__)        \
                .stream()

#endif  // STREAMLOADER_UTIL_LOGGING_H_
