#include "util/rng.h"

#include <cmath>

namespace sl {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t mix = s_[0] ^ Rotl(salt, 23) ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

}  // namespace sl
