// StreamLoader: Clang thread-safety annotations and annotated locking
// primitives.
//
// The SL_* macros expand to Clang's `capability` attribute family when
// compiling with a compiler that implements -Wthread-safety (Clang);
// under GCC they expand to nothing, so annotated code builds and runs
// identically everywhere. scripts/ci.sh adds a
// -Wthread-safety -Werror=thread-safety configuration when a Clang
// toolchain is available, turning the annotations into a static proof
// obligation for the threaded runtime's locking discipline.
//
// std::mutex is not an annotated capability, so the analysis cannot see
// through it; Mutex / MutexLock / CondVar below are the thin annotated
// wrappers the threaded runtime locks through instead. They add no
// state and no behavior — every method is a forwarded call on the
// underlying std primitive.

#ifndef STREAMLOADER_UTIL_THREAD_ANNOTATIONS_H_
#define STREAMLOADER_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SL_THREAD_ANNOTATION(x)  // no-op under GCC/MSVC
#endif

/// Declares a type to be a lockable capability ("mutex").
#define SL_CAPABILITY(x) SL_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SL_SCOPED_CAPABILITY SL_THREAD_ANNOTATION(scoped_lockable)

/// Data members: may only be read/written while holding `x`.
#define SL_GUARDED_BY(x) SL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the pointed-to data is protected by `x`.
#define SL_PT_GUARDED_BY(x) SL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the given capabilities.
#define SL_REQUIRES(...) \
  SL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions: acquire/release the given capabilities.
#define SL_ACQUIRE(...) SL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SL_RELEASE(...) SL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Functions: must NOT be called while holding the given capabilities
/// (deadlock prevention).
#define SL_EXCLUDES(...) SL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables analysis for one function.
#define SL_NO_THREAD_SAFETY_ANALYSIS \
  SL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sl {

/// \brief std::mutex as an annotated capability.
class SL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SL_ACQUIRE() { mu_.lock(); }
  void Unlock() SL_RELEASE() { mu_.unlock(); }

  /// The wrapped handle, for CondVar.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief Scoped lock over Mutex (std::lock_guard with annotations).
class SL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable usable under a held Mutex.
class CondVar {
 public:
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Releases `mu`, waits up to `timeout` (or a notification), and
  /// re-acquires `mu` before returning — the caller's critical section
  /// resumes exactly as std::condition_variable::wait_for would leave
  /// it. The adopt/release dance hands lock ownership to a temporary
  /// unique_lock for the duration of the wait only.
  template <class Rep, class Period>
  void WaitFor(Mutex* mu,
               std::chrono::duration<Rep, Period> timeout) SL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();  // the caller's scope still owns the re-taken lock
  }

 private:
  std::condition_variable cv_;
};

}  // namespace sl

#endif  // STREAMLOADER_UTIL_THREAD_ANNOTATIONS_H_
