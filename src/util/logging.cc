#include "util/logging.h"

#include <cstdio>

namespace sl {

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kNone: return "NONE";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", LogLevelToString(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "[%s] %s\n", LogLevelToString(level),
                   message.c_str());
    };
  }
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < this->level() || level == LogLevel::kNone) return;
  // The sink runs under the lock: serializes output lines and makes a
  // concurrent set_sink safe (previously a data race between a test
  // installing a capture sink and a worker thread logging).
  std::lock_guard<std::mutex> lock(mu_);
  sink_(level, message);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

}  // namespace internal
}  // namespace sl
