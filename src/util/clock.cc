#include "util/clock.h"

#include <cstdio>
#include <cstdlib>

namespace sl {

namespace {

constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDaysPerMonth[month - 1];
}

// Days since 1970-01-01 for a (validated) civil date. Howard Hinnant's
// algorithm, restricted to years >= 1.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

std::string FormatTimestamp(Timestamp ts) {
  int64_t ms = ts % 1000;
  int64_t secs = ts / 1000;
  if (ms < 0) {
    ms += 1000;
    secs -= 1;
  }
  int64_t days = secs / 86400;
  int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    days -= 1;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", y, m,
                d, static_cast<int>(sod / 3600), static_cast<int>(sod / 60 % 60),
                static_cast<int>(sod % 60), static_cast<int>(ms));
  return buf;
}

bool ParseTimestamp(const std::string& text, Timestamp* out) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0, ms = 0;
  const char* p = text.c_str();
  int n = 0;
  // The year may exceed 4 digits (distant-future timestamps round-trip).
  if (std::sscanf(p, "%9d-%2d-%2d%n", &y, &mo, &d, &n) != 3) return false;
  p += n;
  if (*p == 'T' || *p == ' ') {
    ++p;
    if (std::sscanf(p, "%2d:%2d%n", &h, &mi, &n) != 2) return false;
    p += n;
    if (*p == ':') {
      ++p;
      if (std::sscanf(p, "%2d%n", &s, &n) != 1) return false;
      p += n;
      if (*p == '.') {
        ++p;
        if (std::sscanf(p, "%3d%n", &ms, &n) != 1) return false;
        p += n;
      }
    }
  }
  if (*p == 'Z') ++p;
  if (*p != '\0') return false;
  if (y < 1 || mo < 1 || mo > 12 || d < 1 || d > DaysInMonth(y, mo))
    return false;
  if (h > 23 || mi > 59 || s > 59) return false;
  int64_t days = DaysFromCivil(y, mo, d);
  *out = ((days * 86400 + h * 3600 + mi * 60 + s) * 1000) + ms;
  return true;
}

std::string FormatDuration(Duration d) {
  // Lossless: the largest unit that divides the duration exactly (the
  // DSN serializer round-trips these strings). Half units keep the
  // common "1.5s" style readable and remain exact.
  char buf[48];
  const char* sign = d < 0 ? "-" : "";
  int64_t a = d < 0 ? -d : d;
  struct UnitDef {
    Duration scale;
    const char* suffix;
  };
  static constexpr UnitDef kUnits[] = {
      {duration::kDay, "d"},
      {duration::kHour, "h"},
      {duration::kMinute, "m"},
      {duration::kSecond, "s"},
  };
  for (const auto& u : kUnits) {
    if (a >= u.scale && a % u.scale == 0) {
      std::snprintf(buf, sizeof(buf), "%s%lld%s", sign,
                    static_cast<long long>(a / u.scale), u.suffix);
      return buf;
    }
    if (a >= u.scale && a % (u.scale / 2) == 0) {
      std::snprintf(buf, sizeof(buf), "%s%lld.5%s", sign,
                    static_cast<long long>(a / u.scale), u.suffix);
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%s%lldms", sign,
                static_cast<long long>(a));
  return buf;
}

bool ParseDuration(const std::string& text, Duration* out) {
  const char* p = text.c_str();
  while (*p == ' ' || *p == '\t') ++p;
  bool negative = false;
  if (*p == '-') {
    negative = true;
    ++p;
  }
  char* end = nullptr;
  double value = std::strtod(p, &end);
  if (end == p || value < 0) return false;
  std::string unit;
  for (const char* q = end; *q; ++q) {
    if (*q != ' ' && *q != '\t') unit.push_back(*q);
  }
  double scale;
  if (unit.empty() || unit == "ms") scale = duration::kMillisecond;
  else if (unit == "s" || unit == "sec") scale = duration::kSecond;
  else if (unit == "m" || unit == "min") scale = duration::kMinute;
  else if (unit == "h" || unit == "hour") scale = duration::kHour;
  else if (unit == "d" || unit == "day") scale = duration::kDay;
  else return false;
  double ms = value * scale;
  if (ms != static_cast<double>(static_cast<Duration>(ms))) return false;
  *out = static_cast<Duration>(ms) * (negative ? -1 : 1);
  return true;
}

}  // namespace sl
