#include "dataflow/graph.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace sl::dataflow {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource: return "source";
    case NodeKind::kOperator: return "operator";
    case NodeKind::kSink: return "sink";
  }
  return "?";
}

const char* SinkKindToString(SinkKind kind) {
  switch (kind) {
    case SinkKind::kWarehouse: return "WAREHOUSE";
    case SinkKind::kVisualization: return "VISUALIZATION";
    case SinkKind::kCsv: return "CSV";
    case SinkKind::kCollect: return "COLLECT";
  }
  return "?";
}

Result<SinkKind> SinkKindFromString(const std::string& name) {
  std::string n = ToUpper(name);
  if (n == "WAREHOUSE" || n == "EDW") return SinkKind::kWarehouse;
  if (n == "VISUALIZATION" || n == "VIS") return SinkKind::kVisualization;
  if (n == "CSV") return SinkKind::kCsv;
  if (n == "COLLECT") return SinkKind::kCollect;
  return Status::ParseError("unknown sink kind '" + name + "'");
}

std::string Node::ToString() const {
  switch (kind) {
    case NodeKind::kSource:
      if (by_query) {
        return StrFormat("%s: source(%s)", name.c_str(),
                         source_query.ToString().c_str());
      }
      return StrFormat("%s: source(sensor=%s)", name.c_str(),
                       sensor_id.c_str());
    case NodeKind::kOperator:
      return StrFormat("%s: %s %s <- [%s]", name.c_str(), OpKindToString(op),
                       SpecToString(op, spec).c_str(),
                       Join(inputs, ", ").c_str());
    case NodeKind::kSink:
      return StrFormat("%s: sink(%s%s%s) <- [%s]", name.c_str(),
                       SinkKindToString(sink),
                       sink_target.empty() ? "" : ", ",
                       sink_target.c_str(), Join(inputs, ", ").c_str());
  }
  return "?";
}

Result<const Node*> Dataflow::node(const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return Status::NotFound("no node '" + name + "' in dataflow '" + name_ +
                            "'");
  }
  return &it->second;
}

std::vector<std::string> Dataflow::Downstream(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [n, node] : nodes_) {
    if (std::find(node.inputs.begin(), node.inputs.end(), name) !=
        node.inputs.end()) {
      out.push_back(n);
    }
  }
  return out;
}

namespace {
std::vector<std::string> FilterByKind(const Dataflow& df, NodeKind kind) {
  std::vector<std::string> out;
  for (const auto& name : df.topological_order()) {
    if ((*df.node(name))->kind == kind) out.push_back(name);
  }
  return out;
}
}  // namespace

std::vector<std::string> Dataflow::SourceNames() const {
  return FilterByKind(*this, NodeKind::kSource);
}
std::vector<std::string> Dataflow::OperatorNames() const {
  return FilterByKind(*this, NodeKind::kOperator);
}
std::vector<std::string> Dataflow::SinkNames() const {
  return FilterByKind(*this, NodeKind::kSink);
}

std::string Dataflow::ToString() const {
  std::string out = "dataflow " + name_ + " {\n";
  for (const auto& name : topo_) {
    out += "  " + nodes_.at(name).ToString() + "\n";
  }
  out += "}";
  return out;
}

DataflowBuilder& DataflowBuilder::Add(Node node) {
  nodes_.push_back(std::move(node));
  return *this;
}

DataflowBuilder& DataflowBuilder::AddSource(const std::string& name,
                                            const std::string& sensor_id) {
  Node n;
  n.name = name;
  n.kind = NodeKind::kSource;
  n.sensor_id = sensor_id;
  return Add(std::move(n));
}

DataflowBuilder& DataflowBuilder::AddSourceByQuery(
    const std::string& name, pubsub::DiscoveryQuery query) {
  Node n;
  n.name = name;
  n.kind = NodeKind::kSource;
  n.by_query = true;
  n.source_query = std::move(query);
  return Add(std::move(n));
}

DataflowBuilder& DataflowBuilder::AddOperator(const std::string& name,
                                              OpKind op, OpSpec spec,
                                              std::vector<std::string> inputs) {
  Node n;
  n.name = name;
  n.kind = NodeKind::kOperator;
  n.op = op;
  n.spec = std::move(spec);
  n.inputs = std::move(inputs);
  return Add(std::move(n));
}

DataflowBuilder& DataflowBuilder::AddFilter(const std::string& name,
                                            const std::string& input,
                                            const std::string& condition) {
  return AddOperator(name, OpKind::kFilter, FilterSpec{condition}, {input});
}

DataflowBuilder& DataflowBuilder::AddTransform(const std::string& name,
                                               const std::string& input,
                                               const std::string& attribute,
                                               const std::string& expression,
                                               const std::string& new_unit) {
  return AddOperator(name, OpKind::kTransform,
                     TransformSpec{attribute, expression, new_unit}, {input});
}

DataflowBuilder& DataflowBuilder::AddVirtualProperty(
    const std::string& name, const std::string& input,
    const std::string& property, const std::string& specification,
    const std::string& unit) {
  return AddOperator(name, OpKind::kVirtualProperty,
                     VirtualPropertySpec{property, specification, unit},
                     {input});
}

DataflowBuilder& DataflowBuilder::AddCullTime(const std::string& name,
                                              const std::string& input,
                                              Timestamp t_begin,
                                              Timestamp t_end, double rate) {
  return AddOperator(name, OpKind::kCullTime,
                     CullTimeSpec{t_begin, t_end, rate}, {input});
}

DataflowBuilder& DataflowBuilder::AddCullSpace(const std::string& name,
                                               const std::string& input,
                                               stt::GeoPoint corner1,
                                               stt::GeoPoint corner2,
                                               double rate) {
  return AddOperator(name, OpKind::kCullSpace,
                     CullSpaceSpec{corner1, corner2, rate}, {input});
}

DataflowBuilder& DataflowBuilder::AddAggregation(
    const std::string& name, const std::string& input, Duration interval,
    AggFunc func, std::vector<std::string> attributes,
    std::vector<std::string> group_by, Duration window) {
  AggregationSpec spec;
  spec.interval = interval;
  spec.window = window;
  spec.func = func;
  spec.attributes = std::move(attributes);
  spec.group_by = std::move(group_by);
  return AddOperator(name, OpKind::kAggregation, std::move(spec), {input});
}

DataflowBuilder& DataflowBuilder::AddJoin(const std::string& name,
                                          const std::string& left,
                                          const std::string& right,
                                          Duration interval,
                                          const std::string& predicate,
                                          Duration window) {
  JoinSpec spec;
  spec.interval = interval;
  spec.window = window;
  spec.predicate = predicate;
  return AddOperator(name, OpKind::kJoin, std::move(spec), {left, right});
}

DataflowBuilder& DataflowBuilder::AddTriggerOn(
    const std::string& name, const std::string& input, Duration interval,
    const std::string& condition, std::vector<std::string> target_sensors,
    Duration window) {
  TriggerSpec spec;
  spec.interval = interval;
  spec.window = window;
  spec.condition = condition;
  spec.target_sensors = std::move(target_sensors);
  return AddOperator(name, OpKind::kTriggerOn, std::move(spec), {input});
}

DataflowBuilder& DataflowBuilder::AddTriggerOff(
    const std::string& name, const std::string& input, Duration interval,
    const std::string& condition, std::vector<std::string> target_sensors,
    Duration window) {
  TriggerSpec spec;
  spec.interval = interval;
  spec.window = window;
  spec.condition = condition;
  spec.target_sensors = std::move(target_sensors);
  return AddOperator(name, OpKind::kTriggerOff, std::move(spec), {input});
}

DataflowBuilder& DataflowBuilder::AddSink(const std::string& name,
                                          const std::string& input,
                                          SinkKind kind,
                                          const std::string& target) {
  Node n;
  n.name = name;
  n.kind = NodeKind::kSink;
  n.sink = kind;
  n.sink_target = target;
  n.inputs = {input};
  return Add(std::move(n));
}

Result<Dataflow> DataflowBuilder::Build() const {
  std::vector<std::string> errors = errors_;
  auto err = [&errors](const std::string& msg) { errors.push_back(msg); };

  if (!IsIdentifier(name_)) {
    err("dataflow name '" + name_ + "' is not a valid identifier");
  }

  // Unique, valid names.
  std::set<std::string> names;
  for (const auto& n : nodes_) {
    if (!IsIdentifier(n.name)) {
      err("node name '" + n.name + "' is not a valid identifier");
    }
    if (!names.insert(n.name).second) {
      err("duplicate node name '" + n.name + "'");
    }
  }

  // Edges and arity.
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kSource) {
      if (!n.inputs.empty()) err("source '" + n.name + "' must have no inputs");
      if (!n.by_query && n.sensor_id.empty()) {
        err("source '" + n.name + "' has no sensor id");
      }
      if (n.by_query && n.source_query.type.empty() &&
          n.source_query.theme.IsAny() && !n.source_query.area.has_value() &&
          n.source_query.max_period == 0 && n.source_query.node_id.empty()) {
        err("query source '" + n.name + "' has an unconstrained query");
      }
    } else {
      size_t expected =
          n.kind == NodeKind::kSink ? 1 : ExpectedInputs(n.op);
      if (n.inputs.size() != expected) {
        err(StrFormat("%s '%s' expects %zu input(s), got %zu",
                      NodeKindToString(n.kind), n.name.c_str(), expected,
                      n.inputs.size()));
      }
      for (const auto& in : n.inputs) {
        if (names.count(in) == 0) {
          err("node '" + n.name + "' consumes unknown node '" + in + "'");
        }
      }
    }
  }

  // Sinks must be terminal; sources cannot be sinks' peers etc.
  std::set<std::string> sink_names;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kSink) sink_names.insert(n.name);
  }
  for (const auto& n : nodes_) {
    for (const auto& in : n.inputs) {
      if (sink_names.count(in) > 0) {
        err("sink '" + in + "' cannot feed node '" + n.name + "'");
      }
    }
  }

  // Spec-level parameter sanity.
  for (const auto& n : nodes_) {
    if (n.kind != NodeKind::kOperator) continue;
    switch (n.op) {
      case OpKind::kAggregation: {
        const auto& s = std::get<AggregationSpec>(n.spec);
        if (s.interval <= 0)
          err("aggregation '" + n.name + "' needs a positive interval");
        if (s.attributes.empty() && s.func != AggFunc::kCount)
          err("aggregation '" + n.name + "' aggregates no attributes");
        // window < interval is deployable (old tuples are evicted
        // unprocessed); the Validator warns about it (SL3006).
        break;
      }
      case OpKind::kCullTime: {
        const auto& s = std::get<CullTimeSpec>(n.spec);
        if (s.t_end < s.t_begin)
          err("cull-time '" + n.name + "' has an empty interval");
        if (s.rate < 0.0 || s.rate > 1.0)
          err("cull-time '" + n.name + "' rate must be in [0,1]");
        break;
      }
      case OpKind::kCullSpace: {
        const auto& s = std::get<CullSpaceSpec>(n.spec);
        if (s.rate < 0.0 || s.rate > 1.0)
          err("cull-space '" + n.name + "' rate must be in [0,1]");
        break;
      }
      case OpKind::kFilter: {
        const auto& s = std::get<FilterSpec>(n.spec);
        if (Trim(s.condition).empty())
          err("filter '" + n.name + "' has an empty condition");
        break;
      }
      case OpKind::kJoin: {
        const auto& s = std::get<JoinSpec>(n.spec);
        if (s.interval <= 0)
          err("join '" + n.name + "' needs a positive interval");
        if (Trim(s.predicate).empty())
          err("join '" + n.name + "' has an empty predicate");
        break;
      }
      case OpKind::kTransform: {
        const auto& s = std::get<TransformSpec>(n.spec);
        if (!IsIdentifier(s.attribute))
          err("transform '" + n.name + "' has an invalid attribute name");
        if (Trim(s.expression).empty())
          err("transform '" + n.name + "' has an empty expression");
        break;
      }
      case OpKind::kTriggerOn:
      case OpKind::kTriggerOff: {
        const auto& s = std::get<TriggerSpec>(n.spec);
        if (s.interval <= 0)
          err("trigger '" + n.name + "' needs a positive interval");
        if (Trim(s.condition).empty())
          err("trigger '" + n.name + "' has an empty condition");
        if (s.target_sensors.empty())
          err("trigger '" + n.name + "' has no target sensors");
        break;
      }
      case OpKind::kVirtualProperty: {
        const auto& s = std::get<VirtualPropertySpec>(n.spec);
        if (!IsIdentifier(s.property))
          err("virtual-property '" + n.name + "' has an invalid property name");
        if (Trim(s.specification).empty())
          err("virtual-property '" + n.name + "' has an empty specification");
        break;
      }
    }
  }

  // Topological sort (Kahn, lexicographic tie-break) — also detects
  // cycles.
  std::map<std::string, size_t> indegree;
  std::map<std::string, std::vector<std::string>> downstream;
  for (const auto& n : nodes_) {
    indegree[n.name] = n.inputs.size();
    for (const auto& in : n.inputs) downstream[in].push_back(n.name);
  }
  std::set<std::string> ready;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) ready.insert(name);
  }
  std::vector<std::string> topo;
  while (!ready.empty()) {
    std::string next = *ready.begin();
    ready.erase(ready.begin());
    topo.push_back(next);
    for (const auto& d : downstream[next]) {
      if (--indegree[d] == 0) ready.insert(d);
    }
  }
  if (topo.size() != nodes_.size() && errors.empty()) {
    err("dataflow contains a cycle");
  }

  // Reachability: every operator/sink must descend from a source.
  if (errors.empty()) {
    std::set<std::string> reachable;
    for (const auto& n : nodes_) {
      if (n.kind == NodeKind::kSource) reachable.insert(n.name);
    }
    for (const auto& name : topo) {
      const Node* node = nullptr;
      for (const auto& n : nodes_) {
        if (n.name == name) {
          node = &n;
          break;
        }
      }
      if (node->kind == NodeKind::kSource) continue;
      bool all_inputs_reachable = !node->inputs.empty();
      for (const auto& in : node->inputs) {
        if (reachable.count(in) == 0) all_inputs_reachable = false;
      }
      if (all_inputs_reachable) {
        reachable.insert(name);
      } else {
        err("node '" + name + "' is not fed by any source");
      }
    }
  }

  if (!errors.empty()) {
    return Status::ValidationError("dataflow '" + name_ + "' is malformed:\n  " +
                                   Join(errors, "\n  "));
  }

  Dataflow df;
  df.name_ = name_;
  for (const auto& n : nodes_) df.nodes_.emplace(n.name, n);
  df.topo_ = std::move(topo);
  return df;
}

}  // namespace sl::dataflow
