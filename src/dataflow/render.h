// StreamLoader: textual rendering of the dataflow canvas.
//
// The web environment draws the conceptual dataflow on a canvas
// (Figure 2) and, at use time, annotates it "with information coming
// from the SCN about the execution" so that "the dataflow becomes live
// and the domain expert can monitor its execution" (§3). These renderers
// are the text-mode equivalent: a static canvas view of the DAG, and a
// live view merging the monitor's per-operation statistics into it.

#ifndef STREAMLOADER_DATAFLOW_RENDER_H_
#define STREAMLOADER_DATAFLOW_RENDER_H_

#include <map>
#include <string>

#include "dataflow/graph.h"
#include "dataflow/validate.h"

namespace sl::dataflow {

/// \brief Live annotation for one node of the canvas.
struct NodeAnnotation {
  std::string node_id;       ///< network node executing the operation
  double in_per_sec = -1;    ///< < 0 = unknown
  double out_per_sec = -1;
  size_t cache_size = 0;
  uint64_t trigger_fires = 0;
};

/// \brief Renders the dataflow as an indented tree, sources at the root,
/// one line per node with its operation in the paper's notation. Nodes
/// with multiple consumers appear once per consumer, marked with '^' on
/// repeats. When `schemas` is non-null (from a ValidationReport), each
/// line shows the node's derived output schema — the panel "placed at
/// the bottom of the canvas".
std::string RenderCanvas(
    const Dataflow& dataflow,
    const std::map<std::string, stt::SchemaPtr>* schemas = nullptr);

/// \brief Renders the live canvas: the same tree with per-node execution
/// annotations (assigned node, tuples/sec, cache, trigger fires).
std::string RenderLiveCanvas(
    const Dataflow& dataflow,
    const std::map<std::string, NodeAnnotation>& annotations);

}  // namespace sl::dataflow

#endif  // STREAMLOADER_DATAFLOW_RENDER_H_
