#include "dataflow/op_spec.h"

#include <memory>
#include <optional>

#include "util/strings.h"

namespace sl::dataflow {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kAggregation: return "AGGREGATION";
    case OpKind::kCullTime: return "CULL_TIME";
    case OpKind::kCullSpace: return "CULL_SPACE";
    case OpKind::kFilter: return "FILTER";
    case OpKind::kJoin: return "JOIN";
    case OpKind::kTransform: return "TRANSFORM";
    case OpKind::kTriggerOn: return "TRIGGER_ON";
    case OpKind::kTriggerOff: return "TRIGGER_OFF";
    case OpKind::kVirtualProperty: return "VIRTUAL_PROPERTY";
  }
  return "?";
}

Result<OpKind> OpKindFromString(const std::string& name) {
  std::string n = ToUpper(name);
  if (n == "AGGREGATION" || n == "AGG") return OpKind::kAggregation;
  if (n == "CULL_TIME") return OpKind::kCullTime;
  if (n == "CULL_SPACE") return OpKind::kCullSpace;
  if (n == "FILTER") return OpKind::kFilter;
  if (n == "JOIN") return OpKind::kJoin;
  if (n == "TRANSFORM") return OpKind::kTransform;
  if (n == "TRIGGER_ON") return OpKind::kTriggerOn;
  if (n == "TRIGGER_OFF") return OpKind::kTriggerOff;
  if (n == "VIRTUAL_PROPERTY" || n == "VPROP") return OpKind::kVirtualProperty;
  return Status::ParseError("unknown operation kind '" + name + "'");
}

bool IsBlocking(OpKind kind) {
  switch (kind) {
    case OpKind::kAggregation:
    case OpKind::kJoin:
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff:
      return true;
    default:
      return false;
  }
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

Result<AggFunc> AggFuncFromString(const std::string& name) {
  std::string n = ToUpper(name);
  if (n == "COUNT") return AggFunc::kCount;
  if (n == "AVG" || n == "MEAN") return AggFunc::kAvg;
  if (n == "SUM") return AggFunc::kSum;
  if (n == "MIN") return AggFunc::kMin;
  if (n == "MAX") return AggFunc::kMax;
  return Status::ParseError("unknown aggregation function '" + name + "'");
}

OpKind SpecKind(const OpSpec& spec, bool trigger_on) {
  switch (spec.index()) {
    case 0: return OpKind::kAggregation;
    case 1: return OpKind::kCullTime;
    case 2: return OpKind::kCullSpace;
    case 3: return OpKind::kFilter;
    case 4: return OpKind::kJoin;
    case 5: return OpKind::kTransform;
    case 6: return trigger_on ? OpKind::kTriggerOn : OpKind::kTriggerOff;
    case 7: return OpKind::kVirtualProperty;
  }
  return OpKind::kFilter;
}

bool SpecMatchesKind(const OpSpec& spec, OpKind kind) {
  return SpecKind(spec, kind != OpKind::kTriggerOff) == kind;
}

size_t ExpectedInputs(OpKind kind) {
  return kind == OpKind::kJoin ? 2 : 1;
}

std::string SpecToString(OpKind kind, const OpSpec& spec) {
  switch (kind) {
    case OpKind::kAggregation: {
      const auto& s = std::get<AggregationSpec>(spec);
      std::string win =
          s.window > 0 ? "/" + FormatDuration(s.window) : std::string();
      return StrFormat("@_{%s%s,{%s}}^%s", FormatDuration(s.interval).c_str(),
                       win.c_str(), Join(s.attributes, ",").c_str(),
                       AggFuncToString(s.func));
    }
    case OpKind::kCullTime: {
      const auto& s = std::get<CullTimeSpec>(spec);
      return StrFormat("gamma_%.2f(<%s, %s>)", s.rate,
                       FormatTimestamp(s.t_begin).c_str(),
                       FormatTimestamp(s.t_end).c_str());
    }
    case OpKind::kCullSpace: {
      const auto& s = std::get<CullSpaceSpec>(spec);
      return StrFormat("gamma_%.2f(<%s, %s>)", s.rate,
                       s.corner1.ToString().c_str(),
                       s.corner2.ToString().c_str());
    }
    case OpKind::kFilter: {
      const auto& s = std::get<FilterSpec>(spec);
      return "sigma(" + s.condition + ")";
    }
    case OpKind::kJoin: {
      const auto& s = std::get<JoinSpec>(spec);
      std::string win =
          s.window > 0 ? "/" + FormatDuration(s.window) : std::string();
      return StrFormat("|><|_{%s}^{%s%s}", s.predicate.c_str(),
                       FormatDuration(s.interval).c_str(), win.c_str());
    }
    case OpKind::kTransform: {
      const auto& s = std::get<TransformSpec>(spec);
      return "diamond(" + s.attribute + " := " + s.expression + ")";
    }
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff: {
      const auto& s = std::get<TriggerSpec>(spec);
      std::string win =
          s.window > 0 ? "/" + FormatDuration(s.window) : std::string();
      return StrFormat("(+)_{%s,%s%s}({%s}, %s)",
                       kind == OpKind::kTriggerOn ? "ON" : "OFF",
                       FormatDuration(s.interval).c_str(), win.c_str(),
                       Join(s.target_sensors, ",").c_str(),
                       s.condition.c_str());
    }
    case OpKind::kVirtualProperty: {
      const auto& s = std::get<VirtualPropertySpec>(spec);
      return "union<" + s.property + ", " + s.specification + ">";
    }
  }
  return "?";
}

Duration SpecInterval(const OpSpec& spec) {
  switch (spec.index()) {
    case 0: return std::get<AggregationSpec>(spec).interval;
    case 4: return std::get<JoinSpec>(spec).interval;
    case 6: return std::get<TriggerSpec>(spec).interval;
    default: return 0;
  }
}

size_t SpecParallelism(const OpSpec& spec) {
  switch (spec.index()) {
    case 0: return std::get<AggregationSpec>(spec).parallelism;
    case 4: return std::get<JoinSpec>(spec).parallelism;
    case 6: return std::get<TriggerSpec>(spec).parallelism;
    default: return 1;
  }
}

const std::vector<std::string>* SpecPartitionBy(const OpSpec& spec) {
  switch (spec.index()) {
    case 0: return &std::get<AggregationSpec>(spec).partition_by;
    case 4: return &std::get<JoinSpec>(spec).partition_by;
    case 6: return &std::get<TriggerSpec>(spec).partition_by;
    default: return nullptr;
  }
}

namespace {

/// Flattens the top-level `and` chain of `e` into `out` in source
/// (left-to-right) order.
void FlattenConjuncts(const expr::ExprPtr& e,
                      std::vector<expr::ExprPtr>* out) {
  if (e->kind() == expr::ExprKind::kBinary) {
    const auto& b = static_cast<const expr::BinaryExpr&>(*e);
    if (b.op() == expr::BinaryOp::kAnd) {
      FlattenConjuncts(b.left(), out);
      FlattenConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(e);
}

/// If `e` is `attr == attr` with one attribute from each side of the
/// split, returns the resolved conjunct.
std::optional<EquiConjunct> AsEquiConjunct(const expr::Expr& e,
                                           const stt::Schema& joined,
                                           size_t split) {
  if (e.kind() != expr::ExprKind::kBinary) return std::nullopt;
  const auto& b = static_cast<const expr::BinaryExpr&>(e);
  if (b.op() != expr::BinaryOp::kEq) return std::nullopt;
  if (b.left()->kind() != expr::ExprKind::kAttr ||
      b.right()->kind() != expr::ExprKind::kAttr) {
    return std::nullopt;
  }
  auto a = joined.FieldIndex(
      static_cast<const expr::AttrExpr&>(*b.left()).name());
  auto c = joined.FieldIndex(
      static_cast<const expr::AttrExpr&>(*b.right()).name());
  if (!a.ok() || !c.ok()) return std::nullopt;
  if (*a < split && *c >= split) return EquiConjunct{*a, *c};
  if (*c < split && *a >= split) return EquiConjunct{*c, *a};
  return std::nullopt;  // same-side equality is a filter, not a key
}

}  // namespace

JoinPredicateAnalysis AnalyzeJoinPredicate(const expr::ExprPtr& predicate,
                                           const stt::Schema& joined,
                                           size_t split) {
  JoinPredicateAnalysis analysis;
  if (predicate == nullptr) return analysis;
  std::vector<expr::ExprPtr> conjuncts;
  FlattenConjuncts(predicate, &conjuncts);
  std::vector<expr::ExprPtr> rest;
  for (const auto& c : conjuncts) {
    if (auto equi = AsEquiConjunct(*c, joined, split)) {
      analysis.equi.push_back(*equi);
    } else {
      rest.push_back(c);
    }
  }
  if (analysis.equi.empty()) {
    analysis.residual = predicate;  // nothing extracted: keep it whole
    return analysis;
  }
  for (const auto& c : rest) {
    analysis.residual =
        analysis.residual == nullptr
            ? c
            : std::make_shared<const expr::BinaryExpr>(
                  expr::BinaryOp::kAnd, analysis.residual, c);
  }
  return analysis;
}

}  // namespace sl::dataflow
