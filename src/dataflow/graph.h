// StreamLoader: the conceptual dataflow graph.
//
// The designer composes sources (bound to published sensors), Table 1
// operations, and sinks (Event Data Warehouse, visualization, files)
// into a DAG — this is the object the visual canvas of Figure 2 edits.
// DataflowBuilder gives the same drag-and-drop affordances as a fluent
// API; Dataflow::Build performs the structural subset of the soundness
// checks (the schema/granularity checks need the sensor registry and
// live in validate.h).

#ifndef STREAMLOADER_DATAFLOW_GRAPH_H_
#define STREAMLOADER_DATAFLOW_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "dataflow/op_spec.h"
#include "pubsub/broker.h"

namespace sl::dataflow {

/// Kind of a dataflow graph node.
enum class NodeKind { kSource, kOperator, kSink };

const char* NodeKindToString(NodeKind kind);

/// Destination kind of a sink node.
enum class SinkKind {
  kWarehouse,      ///< the Event Data Warehouse [6]
  kVisualization,  ///< the Sticker-style visualization stream [11]
  kCsv,            ///< CSV file/stream
  kCollect,        ///< in-memory collection (debugging, tests)
};

const char* SinkKindToString(SinkKind kind);
Result<SinkKind> SinkKindFromString(const std::string& name);

/// \brief One node of the conceptual dataflow.
struct Node {
  std::string name;
  NodeKind kind = NodeKind::kOperator;

  /// kSource: the published sensor this source binds to — or, when
  /// `by_query` is set, a discovery query it binds to ("sources ...
  /// specified by means of the sensor and location characteristics",
  /// §2): the source consumes every matching sensor, including sensors
  /// that join after deployment, provided their schemas agree.
  std::string sensor_id;
  bool by_query = false;
  pubsub::DiscoveryQuery source_query;

  /// kOperator: which Table 1 operation, with its parameters.
  OpKind op = OpKind::kFilter;
  OpSpec spec = FilterSpec{};

  /// kSink: destination and target (warehouse table / file path / ...).
  SinkKind sink = SinkKind::kCollect;
  std::string sink_target;

  /// Upstream node names in input order (join: exactly [left, right]).
  std::vector<std::string> inputs;

  std::string ToString() const;
};

/// \brief An immutable, structurally well-formed dataflow DAG.
class Dataflow {
 public:
  const std::string& name() const { return name_; }
  const std::map<std::string, Node>& nodes() const { return nodes_; }

  Result<const Node*> node(const std::string& name) const;
  bool HasNode(const std::string& name) const { return nodes_.count(name) > 0; }

  /// Node names in a topological order (sources first). The order is
  /// deterministic (lexicographic among ready nodes).
  const std::vector<std::string>& topological_order() const { return topo_; }

  /// Names of the nodes consuming `name`'s output.
  std::vector<std::string> Downstream(const std::string& name) const;

  /// All source / operator / sink node names, in topological order.
  std::vector<std::string> SourceNames() const;
  std::vector<std::string> OperatorNames() const;
  std::vector<std::string> SinkNames() const;

  /// Multi-line rendering of the graph (the textual "canvas").
  std::string ToString() const;

 private:
  friend class DataflowBuilder;
  std::string name_;
  std::map<std::string, Node> nodes_;
  std::vector<std::string> topo_;
};

/// \brief Fluent construction of a Dataflow.
///
/// Errors (duplicate names, unknown inputs, wrong arity, cycles) are
/// accumulated and reported by Build(), so a whole graph can be declared
/// before checking — mirroring how the visual canvas lets users draw
/// first and flags problems before activation.
class DataflowBuilder {
 public:
  explicit DataflowBuilder(std::string name) : name_(std::move(name)) {}

  /// Adds a source bound to a published sensor.
  DataflowBuilder& AddSource(const std::string& name,
                             const std::string& sensor_id);

  /// Adds a source bound to sensor/location characteristics. At
  /// validation, every matching sensor must share one schema; at run
  /// time the source consumes all of them, future joiners included.
  DataflowBuilder& AddSourceByQuery(const std::string& name,
                                    pubsub::DiscoveryQuery query);

  /// Adds any operator node explicitly.
  DataflowBuilder& AddOperator(const std::string& name, OpKind op, OpSpec spec,
                               std::vector<std::string> inputs);

  // Convenience wrappers, one per Table 1 operation.
  DataflowBuilder& AddFilter(const std::string& name, const std::string& input,
                             const std::string& condition);
  DataflowBuilder& AddTransform(const std::string& name,
                                const std::string& input,
                                const std::string& attribute,
                                const std::string& expression,
                                const std::string& new_unit = "");
  DataflowBuilder& AddVirtualProperty(const std::string& name,
                                      const std::string& input,
                                      const std::string& property,
                                      const std::string& specification,
                                      const std::string& unit = "");
  DataflowBuilder& AddCullTime(const std::string& name,
                               const std::string& input, Timestamp t_begin,
                               Timestamp t_end, double rate);
  DataflowBuilder& AddCullSpace(const std::string& name,
                                const std::string& input,
                                stt::GeoPoint corner1, stt::GeoPoint corner2,
                                double rate);
  /// `window` = 0 selects tumbling caches, > 0 sliding ones (see
  /// AggregationSpec::window) — for all the blocking operations below.
  DataflowBuilder& AddAggregation(const std::string& name,
                                  const std::string& input, Duration interval,
                                  AggFunc func,
                                  std::vector<std::string> attributes,
                                  std::vector<std::string> group_by = {},
                                  Duration window = 0);
  DataflowBuilder& AddJoin(const std::string& name, const std::string& left,
                           const std::string& right, Duration interval,
                           const std::string& predicate, Duration window = 0);
  DataflowBuilder& AddTriggerOn(const std::string& name,
                                const std::string& input, Duration interval,
                                const std::string& condition,
                                std::vector<std::string> target_sensors,
                                Duration window = 0);
  DataflowBuilder& AddTriggerOff(const std::string& name,
                                 const std::string& input, Duration interval,
                                 const std::string& condition,
                                 std::vector<std::string> target_sensors,
                                 Duration window = 0);
  DataflowBuilder& AddSink(const std::string& name, const std::string& input,
                           SinkKind kind, const std::string& target = "");

  /// Structural validation + DAG construction. Checks: valid unique
  /// names, known inputs, correct arity per operation, sources without
  /// inputs, sinks not feeding other nodes, acyclicity, every
  /// non-source reachable from a source, spec-level parameter sanity
  /// (positive intervals, rates in [0,1], non-empty conditions).
  Result<Dataflow> Build() const;

 private:
  DataflowBuilder& Add(Node node);

  std::string name_;
  std::vector<Node> nodes_;  // in insertion order
  std::vector<std::string> errors_;
};

}  // namespace sl::dataflow

#endif  // STREAMLOADER_DATAFLOW_GRAPH_H_
