#include "dataflow/render.h"

#include <set>

#include "util/strings.h"

namespace sl::dataflow {

namespace {

struct Renderer {
  const Dataflow& dataflow;
  const std::map<std::string, stt::SchemaPtr>* schemas;
  const std::map<std::string, NodeAnnotation>* annotations;
  std::set<std::string> expanded;
  std::string out;

  std::string Label(const Node& node) const {
    switch (node.kind) {
      case NodeKind::kSource:
        if (node.by_query) {
          return StrFormat("[source %s <- %s]", node.name.c_str(),
                           node.source_query.ToString().c_str());
        }
        return StrFormat("[source %s <- sensor %s]", node.name.c_str(),
                         node.sensor_id.c_str());
      case NodeKind::kOperator:
        return StrFormat("(%s: %s)", node.name.c_str(),
                         SpecToString(node.op, node.spec).c_str());
      case NodeKind::kSink:
        return StrFormat("[sink %s -> %s%s%s]", node.name.c_str(),
                         SinkKindToString(node.sink),
                         node.sink_target.empty() ? "" : " ",
                         node.sink_target.c_str());
    }
    return "?";
  }

  std::string Annotation(const std::string& name) const {
    std::string extra;
    if (annotations != nullptr) {
      auto it = annotations->find(name);
      if (it != annotations->end()) {
        const NodeAnnotation& a = it->second;
        extra += "  @" + (a.node_id.empty() ? "?" : a.node_id);
        if (a.in_per_sec >= 0) {
          extra += StrFormat("  %.1f->%.1f t/s", a.in_per_sec, a.out_per_sec);
        }
        if (a.cache_size > 0) {
          extra += StrFormat("  cache=%zu", a.cache_size);
        }
        if (a.trigger_fires > 0) {
          extra += StrFormat("  fires=%llu",
                             static_cast<unsigned long long>(a.trigger_fires));
        }
      }
    }
    if (schemas != nullptr) {
      auto it = schemas->find(name);
      if (it != schemas->end()) {
        extra += "\n" + std::string(8, ' ') + ": " + it->second->ToString();
      }
    }
    return extra;
  }

  void Render(const std::string& name, int depth) {
    const Node& node = **dataflow.node(name);
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    bool repeat = !expanded.insert(name).second;
    if (repeat) {
      out += "^ " + node.name + "\n";
      return;
    }
    out += Label(node);
    out += Annotation(name);
    out += "\n";
    for (const auto& consumer : dataflow.Downstream(name)) {
      Render(consumer, depth + 1);
    }
  }

  std::string Run() {
    out = "canvas '" + dataflow.name() + "'\n";
    for (const auto& source : dataflow.SourceNames()) {
      Render(source, 1);
    }
    return out;
  }
};

}  // namespace

std::string RenderCanvas(
    const Dataflow& dataflow,
    const std::map<std::string, stt::SchemaPtr>* schemas) {
  Renderer renderer{dataflow, schemas, nullptr, {}, {}};
  return renderer.Run();
}

std::string RenderLiveCanvas(
    const Dataflow& dataflow,
    const std::map<std::string, NodeAnnotation>& annotations) {
  Renderer renderer{dataflow, nullptr, &annotations, {}, {}};
  return renderer.Run();
}

}  // namespace sl::dataflow
