// StreamLoader: specifications of the Table 1 stream-processing
// operations.
//
// These are the *conceptual* parameters a designer fills in through the
// visual environment; src/ops turns a validated spec into a running
// operator process. Non-blocking operations (Filter, Cull Time/Space,
// Transform, Virtual Property) apply to each tuple as it passes;
// blocking operations (Aggregation, Join, Trigger On/Off) cache tuples
// and process them every `interval`.

#ifndef STREAMLOADER_DATAFLOW_OP_SPEC_H_
#define STREAMLOADER_DATAFLOW_OP_SPEC_H_

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "expr/ast.h"
#include "stt/geo.h"
#include "stt/schema.h"
#include "stt/value.h"
#include "util/clock.h"
#include "util/result.h"

namespace sl::dataflow {

/// The nine operations of Table 1.
enum class OpKind {
  kAggregation,      ///< @_{t,{a1..an}}^{op}(s)
  kCullTime,         ///< gamma_r(s, <t1, t2>)
  kCullSpace,        ///< gamma_r(s, <coord1, coord2>)
  kFilter,           ///< sigma(s, cond)
  kJoin,             ///< s1 |><|_{pred}^{t} s2
  kTransform,        ///< diamond_trans(s)
  kTriggerOn,        ///< (+)_{ON,t}(s, {s1..sn}, cond)
  kTriggerOff,       ///< (+)_{OFF,t}(s, {s1..sn}, cond)
  kVirtualProperty,  ///< s union <p, spec>
};

const char* OpKindToString(OpKind kind);
Result<OpKind> OpKindFromString(const std::string& name);

/// True for the operations that maintain a cache of tuples processed
/// every t time intervals (Table 1: aggregation, trigger, join).
bool IsBlocking(OpKind kind);

/// Aggregation functions supported by the Aggregation operation.
enum class AggFunc { kCount, kAvg, kSum, kMin, kMax };

const char* AggFuncToString(AggFunc f);
Result<AggFunc> AggFuncFromString(const std::string& name);

/// \brief @_{t,{a1..an}}^{op}(s): every `interval`, group the cached
/// tuples by `group_by` (empty = one global group) and emit, per group,
/// one tuple with the group keys followed by op(a) for every aggregated
/// attribute a.
///
/// `window` selects the caching regime shared by all blocking
/// operations: 0 (default) is *tumbling* — the cache is cleared after
/// each processing; a positive window is *sliding* — tuples stay cached
/// until their event time falls more than `window` behind the check
/// time, so each check sees "the last `window` of data" (the paper's
/// "temperature identified in the last hour" checked every t).
///
/// Windows are half-open on event time: a check at time T covers
/// `[T - window, T)` — a tuple timestamped exactly T belongs to the
/// *next* window, never to two. The same convention governs event-time
/// firing (ops::TimePolicy::kEvent), where T is a watermark-aligned
/// window end instead of the processing-time check instant.
struct AggregationSpec {
  Duration interval = duration::kMinute;
  Duration window = 0;  ///< 0 = tumbling; > 0 = sliding over this span
  std::vector<std::string> group_by;
  std::vector<std::string> attributes;  ///< attributes to aggregate
  AggFunc func = AggFunc::kAvg;
  /// Number of key-partitioned parallel instances (1 = single instance,
  /// byte-identical to the pre-partitioning runtime).
  size_t parallelism = 1;
  /// Columns whose hash routes each tuple to an instance. Must be a
  /// subset of `group_by`; empty defaults to all of `group_by`.
  std::vector<std::string> partition_by;
};

/// \brief gamma_r(s, <t1, t2>): tuples whose event time falls in
/// [t_begin, t_end) are decimated by the reducing rate `rate` in [0, 1]
/// (rate 0.75 keeps one tuple in four); tuples outside pass unchanged.
/// The range is half-open like every other time range in the system: a
/// tuple timestamped exactly t_end is outside the culled span.
/// Decimation is systematic (deterministic), preserving arrival order.
struct CullTimeSpec {
  Timestamp t_begin = 0;
  Timestamp t_end = 0;
  double rate = 0.5;
};

/// \brief gamma_r(s, <coord1, coord2>): like CullTime but the reduced
/// region is the bounding box of the two corners; tuples without a
/// location pass unchanged.
struct CullSpaceSpec {
  stt::GeoPoint corner1;
  stt::GeoPoint corner2;
  double rate = 0.5;
};

/// \brief sigma(s, cond): keeps only tuples satisfying `condition`
/// (an expression over the input schema evaluating to bool).
struct FilterSpec {
  std::string condition;
};

/// \brief s1 |><|_{pred}^{t} s2: every `interval`, join the cached tuples
/// of the two inputs on `predicate`. The output schema concatenates both
/// input schemas; name collisions are disambiguated with the upstream
/// node name as prefix ("left_temp"). Granularities must be comparable;
/// the output is at the coarser of each pair.
struct JoinSpec {
  Duration interval = duration::kMinute;
  /// 0 = tumbling; > 0 = sliding (see AggregationSpec::window). A
  /// sliding join emits a pair at most once: on the first check where
  /// both sides are cached together.
  Duration window = 0;
  std::string predicate;
  /// Number of key-partitioned parallel instances (1 = single instance).
  size_t parallelism = 1;
  /// Joined-schema column names whose hash routes each tuple; every name
  /// must resolve to an equi-conjunct column of `predicate`. Empty
  /// defaults to all equi-conjunct columns.
  std::vector<std::string> partition_by;
};

/// \brief diamond_trans(s): rewrites one attribute in place with
/// `expression` (over the input schema). The attribute's declared type
/// becomes the expression's type, and its unit of measure can be
/// rewritten too (e.g. convert_unit(dist, "yd", "m") with new_unit "m").
struct TransformSpec {
  std::string attribute;
  std::string expression;
  std::string new_unit;  ///< empty = keep the attribute's unit
};

/// \brief (+)_{ON/OFF,t}(s, {s1..sn}, cond): every `interval` the
/// condition is checked on the tuples collected from the input; if any
/// cached tuple satisfies it, the streams of `target_sensors` are
/// activated (TriggerOn) or de-activated (TriggerOff). The input stream
/// passes through unchanged, so triggers can be monitored and chained.
struct TriggerSpec {
  Duration interval = duration::kMinute;
  /// 0 = tumbling; > 0 = sliding (see AggregationSpec::window).
  Duration window = 0;
  std::string condition;
  std::vector<std::string> target_sensors;
  /// Number of key-partitioned parallel instances (1 = single instance).
  size_t parallelism = 1;
  /// Input-schema columns whose hash routes each tuple. Triggers have no
  /// implicit key, so parallelism > 1 requires an explicit list.
  std::vector<std::string> partition_by;
};

/// \brief s union <p, spec>: appends a new attribute `property` computed
/// by `specification` (over the input schema) to every tuple.
struct VirtualPropertySpec {
  std::string property;
  std::string specification;
  std::string unit;  ///< unit of the new attribute, may be empty
};

/// A tagged union over all operation specifications.
using OpSpec = std::variant<AggregationSpec, CullTimeSpec, CullSpaceSpec,
                            FilterSpec, JoinSpec, TransformSpec, TriggerSpec,
                            VirtualPropertySpec>;

/// The OpKind encoded by a spec value (TriggerSpec needs the
/// accompanying kind to distinguish On from Off, so it is passed in).
OpKind SpecKind(const OpSpec& spec, bool trigger_on = true);

/// True iff `spec` holds the alternative `kind` expects (a TriggerSpec
/// matches both trigger kinds).
bool SpecMatchesKind(const OpSpec& spec, OpKind kind);

/// Number of stream inputs the operation requires (2 for join, 1
/// otherwise).
size_t ExpectedInputs(OpKind kind);

/// Human-readable one-liner in the paper's notation, e.g.
/// "sigma(s, temp > 25)".
std::string SpecToString(OpKind kind, const OpSpec& spec);

/// The blocking interval of a spec (0 for non-blocking operations).
Duration SpecInterval(const OpSpec& spec);

/// The requested instance count of a spec (1 for non-blocking
/// operations, which have no parallelism knob).
size_t SpecParallelism(const OpSpec& spec);

/// The partition-key columns of a spec; nullptr for non-blocking
/// operations.
const std::vector<std::string>* SpecPartitionBy(const OpSpec& spec);

// ---------------------------------------------------------------------
// Join-predicate analysis.

/// One `left.a == right.b` conjunct of a join predicate, resolved to
/// column indexes of the *joined* (concatenated) schema: `left_index`
/// addresses a column contributed by the left input (< split),
/// `right_index` one contributed by the right (>= split).
struct EquiConjunct {
  size_t left_index = 0;
  size_t right_index = 0;
};

/// \brief Decomposition of a join predicate into hashable equality
/// conjuncts and the rest.
///
/// Under SQL null semantics an equi-conjunct that is false *or null*
/// makes the whole conjunction non-true, so a pair whose key columns
/// are unequal (or null) can never satisfy the predicate — which is
/// exactly what lets a join probe a hash index instead of enumerating
/// the cross product.
struct JoinPredicateAnalysis {
  /// The extracted equality conjuncts (hash-key columns).
  std::vector<EquiConjunct> equi;
  /// The remaining conjuncts re-joined with `and` in source order;
  /// nullptr when every conjunct is an equi-conjunct (residual is
  /// vacuously true). When `equi` is empty this is the whole predicate.
  expr::ExprPtr residual;

  bool has_equi() const { return !equi.empty(); }
};

/// \brief Extracts equi-conjuncts from a join predicate bound against
/// the joined schema with `split` left columns.
///
/// The predicate's top-level `and` chain is flattened; every conjunct of
/// the form `attr == attr` with one attribute from each side becomes an
/// EquiConjunct, everything else stays in the residual. Evaluating
/// (all equi-conjuncts) ∧ residual accepts exactly the pairs the full
/// predicate accepts (the decomposition only reorders `and` operands,
/// which Kleene conjunction permits).
JoinPredicateAnalysis AnalyzeJoinPredicate(const expr::ExprPtr& predicate,
                                           const stt::Schema& joined,
                                           size_t split);

}  // namespace sl::dataflow

#endif  // STREAMLOADER_DATAFLOW_OP_SPEC_H_
