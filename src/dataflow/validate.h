// StreamLoader: semantic validation of conceptual dataflows.
//
// "The user interface provides different checks in order to draw only
// dataflows that can be soundly translated in the DSN/SCN specification"
// (§3). The Validator performs those checks as a static-analysis pass:
// it resolves sources against the sensor registry, propagates schemas
// through every operation, type-checks all conditions/specifications
// (expr/typecheck), enforces the STT granularity-consistency constraints
// on composition, and lints for suspicious-but-deployable constructs
// (unreachable nodes, dead virtual properties, windows that silently
// drop data, constant predicates). Every finding carries a stable
// diagnostic code and, where the construct came from an expression, a
// byte-offset span into that expression for caret rendering.

#ifndef STREAMLOADER_DATAFLOW_VALIDATE_H_
#define STREAMLOADER_DATAFLOW_VALIDATE_H_

#include <map>
#include <string>
#include <vector>

#include "dataflow/graph.h"
#include "diag/diagnostic.h"
#include "pubsub/broker.h"
#include "stt/schema.h"

namespace sl::dataflow {

/// \brief One finding of the checker.
struct Issue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  diag::Code code = diag::Code::kNone;
  std::string node;     ///< offending node name ("" = whole dataflow)
  std::string message;
  diag::Span span;      ///< into `source` ({0,0} = no location)
  std::string source;   ///< the expression/spec text the span points into
  std::vector<std::string> notes;

  /// One-liner: "[error SL1001] f: unknown column 'wind'".
  std::string ToString() const;

  /// ToString plus a caret snippet into `source` and any notes.
  std::string Render() const;

  /// The diag-layer view of this issue (for JSON emission).
  diag::Diagnostic ToDiagnostic() const;
};

/// \brief Outcome of validation: the issues found plus, for every node
/// whose inputs checked out, its derived output schema — exactly what
/// the design environment displays under the canvas.
struct ValidationReport {
  std::vector<Issue> issues;
  std::map<std::string, stt::SchemaPtr> schemas;

  /// True iff no error-severity issue was found (warnings allowed).
  bool ok() const;

  size_t error_count() const;
  size_t warning_count() const;

  /// Multi-line report (one line per issue).
  std::string ToString() const;

  /// Multi-line report with caret snippets where spans are available.
  std::string Render() const;
};

/// \brief The dataflow soundness checker.
class Validator {
 public:
  /// `broker` resolves source sensors and trigger targets; must outlive
  /// the validator.
  explicit Validator(const pubsub::Broker* broker) : broker_(broker) {}

  /// Runs all checks. The returned report contains every issue found
  /// (it does not stop at the first); a Status error is returned only on
  /// internal failures.
  Result<ValidationReport> Validate(const Dataflow& dataflow) const;

  /// \brief Checks one operation against its input schemas, appending
  /// coded issues (node names left empty) to `issues`. Returns the
  /// derived output schema, or nullptr when an error prevents deriving
  /// one. This is the full analysis; DeriveSchema is the error-or-schema
  /// wrapper the runtime uses.
  static stt::SchemaPtr CheckOp(OpKind op, const OpSpec& spec,
                                const std::vector<stt::SchemaPtr>& inputs,
                                const std::vector<std::string>& input_names,
                                std::vector<Issue>* issues);

  /// \brief Derives the output schema of an operation applied to the
  /// given input schemas (also used by the runtime to build operators).
  /// `left_name`/`right_name` disambiguate join column collisions.
  /// Returns the first error found as a ValidationError status.
  static Result<stt::SchemaPtr> DeriveSchema(
      OpKind op, const OpSpec& spec,
      const std::vector<stt::SchemaPtr>& inputs,
      const std::vector<std::string>& input_names);

 private:
  const pubsub::Broker* broker_;
};

}  // namespace sl::dataflow

#endif  // STREAMLOADER_DATAFLOW_VALIDATE_H_
