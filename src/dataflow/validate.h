// StreamLoader: semantic validation of conceptual dataflows.
//
// "The user interface provides different checks in order to draw only
// dataflows that can be soundly translated in the DSN/SCN specification"
// (§3). The Validator performs those checks: it resolves sources against
// the sensor registry, propagates schemas through every operation,
// type-checks all conditions/specifications, and enforces the STT
// granularity-consistency constraints on composition.

#ifndef STREAMLOADER_DATAFLOW_VALIDATE_H_
#define STREAMLOADER_DATAFLOW_VALIDATE_H_

#include <map>
#include <string>
#include <vector>

#include "dataflow/graph.h"
#include "pubsub/broker.h"
#include "stt/schema.h"

namespace sl::dataflow {

/// \brief One finding of the checker.
struct Issue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string node;     ///< offending node name ("" = whole dataflow)
  std::string message;

  std::string ToString() const;
};

/// \brief Outcome of validation: the issues found plus, for every node
/// whose inputs checked out, its derived output schema — exactly what
/// the design environment displays under the canvas.
struct ValidationReport {
  std::vector<Issue> issues;
  std::map<std::string, stt::SchemaPtr> schemas;

  /// True iff no error-severity issue was found (warnings allowed).
  bool ok() const;

  size_t error_count() const;
  size_t warning_count() const;

  /// Multi-line report.
  std::string ToString() const;
};

/// \brief The dataflow soundness checker.
class Validator {
 public:
  /// `broker` resolves source sensors and trigger targets; must outlive
  /// the validator.
  explicit Validator(const pubsub::Broker* broker) : broker_(broker) {}

  /// Runs all checks. The returned report contains every issue found
  /// (it does not stop at the first); a Status error is returned only on
  /// internal failures.
  Result<ValidationReport> Validate(const Dataflow& dataflow) const;

  /// \brief Derives the output schema of an operation applied to the
  /// given input schemas (also used by the runtime to build operators).
  /// `left_name`/`right_name` disambiguate join column collisions.
  static Result<stt::SchemaPtr> DeriveSchema(
      OpKind op, const OpSpec& spec,
      const std::vector<stt::SchemaPtr>& inputs,
      const std::vector<std::string>& input_names);

 private:
  const pubsub::Broker* broker_;
};

}  // namespace sl::dataflow

#endif  // STREAMLOADER_DATAFLOW_VALIDATE_H_
