#include "dataflow/validate.h"

#include <algorithm>
#include <map>
#include <set>

#include "expr/ast.h"
#include "expr/parser.h"
#include "expr/typecheck.h"
#include "stt/units.h"
#include "util/strings.h"

namespace sl::dataflow {

using stt::Field;
using stt::Schema;
using stt::SchemaPtr;
using stt::ValueType;

std::string Issue::ToString() const {
  std::string out = StrFormat(
      "[%s %s] ", severity == Severity::kError ? "error" : "warning",
      diag::CodeToString(code).c_str());
  if (!node.empty()) out += node + ": ";
  out += message;
  return out;
}

diag::Diagnostic Issue::ToDiagnostic() const {
  diag::Diagnostic d;
  d.code = code;
  d.severity = severity == Severity::kError ? diag::Severity::kError
                                            : diag::Severity::kWarning;
  d.node = node;
  d.message = message;
  d.span = span;
  d.source = source;
  for (const auto& n : notes) d.notes.push_back({n, {}});
  return d;
}

std::string Issue::Render() const {
  std::string out = ToString() + "\n";
  out += diag::RenderSnippet(source, span);
  for (const auto& n : notes) out += "  note: " + n + "\n";
  return out;
}

bool ValidationReport::ok() const { return error_count() == 0; }

size_t ValidationReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(issues.begin(), issues.end(), [](const Issue& i) {
        return i.severity == Issue::Severity::kError;
      }));
}

size_t ValidationReport::warning_count() const {
  return issues.size() - error_count();
}

std::string ValidationReport::ToString() const {
  if (issues.empty()) return "validation: OK";
  std::string out = StrFormat("validation: %zu error(s), %zu warning(s)\n",
                              error_count(), warning_count());
  for (const auto& issue : issues) {
    out += "  " + issue.ToString() + "\n";
  }
  return out;
}

std::string ValidationReport::Render() const {
  if (issues.empty()) return "validation: OK\n";
  std::string out = StrFormat("validation: %zu error(s), %zu warning(s)\n",
                              error_count(), warning_count());
  for (const auto& issue : issues) {
    out += issue.Render();
  }
  return out;
}

namespace {

Issue MakeIssue(diag::Code code, std::string message, diag::Span span = {},
                std::string source = {}) {
  Issue i;
  i.severity = diag::CodeSeverity(code) == diag::Severity::kWarning
                   ? Issue::Severity::kWarning
                   : Issue::Severity::kError;
  i.code = code;
  i.message = std::move(message);
  i.span = span;
  i.source = std::move(source);
  return i;
}

// Lowers expression-checker diagnostics into dataflow issues; the node
// name is filled in by the caller.
void AppendDiags(const std::vector<diag::Diagnostic>& diags,
                 std::vector<Issue>* issues) {
  for (const auto& d : diags) {
    Issue i;
    i.severity = d.severity == diag::Severity::kWarning
                     ? Issue::Severity::kWarning
                     : Issue::Severity::kError;
    i.code = d.code;
    i.message = d.message;
    i.span = d.span;
    i.source = d.source;
    for (const auto& n : d.notes) i.notes.push_back(n.message);
    issues->push_back(std::move(i));
  }
}

bool HasErrorIssues(const std::vector<Issue>& issues) {
  return std::any_of(issues.begin(), issues.end(), [](const Issue& i) {
    return i.severity == Issue::Severity::kError;
  });
}

/// Merges two schemas for a join: collisions are prefixed with the
/// upstream node name.
Result<SchemaPtr> MergeForJoin(const SchemaPtr& left, const SchemaPtr& right,
                               const std::string& left_name,
                               const std::string& right_name) {
  // Granularity-consistency constraints (§3): the operands must be
  // comparable on both dimensions; the result is at the coarser.
  SL_ASSIGN_OR_RETURN(
      stt::TemporalGranularity tgran,
      left->temporal_granularity().JoinWith(right->temporal_granularity()));
  SL_ASSIGN_OR_RETURN(
      stt::SpatialGranularity sgran,
      left->spatial_granularity().JoinWith(right->spatial_granularity()));

  std::vector<Field> fields;
  for (const auto& f : left->fields()) {
    Field nf = f;
    if (right->HasField(f.name)) nf.name = left_name + "_" + f.name;
    fields.push_back(std::move(nf));
  }
  for (const auto& f : right->fields()) {
    Field nf = f;
    if (left->HasField(f.name)) nf.name = right_name + "_" + f.name;
    fields.push_back(std::move(nf));
  }
  stt::Theme theme = left->theme().CommonAncestor(right->theme());
  return Schema::Make(std::move(fields), tgran, sgran, std::move(theme));
}

// SL2005: blocking intervals must be multiples of the input temporal
// granularity, else check instants and tuple times can never align.
void CheckInterval(Duration interval, const SchemaPtr& in, const char* what,
                   std::vector<Issue>* issues) {
  Duration period = in->temporal_granularity().period();
  if (interval < period || interval % period != 0) {
    issues->push_back(MakeIssue(
        diag::Code::kIntervalGranularity,
        StrFormat("%s interval %s is not a multiple of the input temporal "
                  "granularity %s",
                  what, FormatDuration(interval).c_str(),
                  in->temporal_granularity().ToString().c_str())));
  }
}

// SL3006: a sliding window shorter than the check interval silently
// expires part of the stream between checks.
void CheckWindow(Duration interval, Duration window,
                 std::vector<Issue>* issues) {
  if (window > 0 && window < interval) {
    issues->push_back(MakeIssue(
        diag::Code::kWindowNeverFires,
        StrFormat("sliding window %s is shorter than the check interval %s: "
                  "tuples older than the window are evicted without ever "
                  "being processed",
                  FormatDuration(window).c_str(),
                  FormatDuration(interval).c_str())));
  }
}

// SL3008: blocking (and hence potentially event-time) operations over a
// stream that never declared a temporal granularity window-align on the
// 1 ms default, which is almost never intended (watermark misconfig).
void CheckInstantGranularity(const SchemaPtr& in,
                             std::vector<Issue>* issues) {
  if (in->temporal_granularity().period() <= 1) {
    Issue i = MakeIssue(
        diag::Code::kInstantGranularity,
        "input stream has instant (1 ms) temporal granularity; blocking and "
        "event-time windows will align on single milliseconds");
    i.notes.push_back(
        "declare a temporal granularity on the source sensor's schema");
    issues->push_back(std::move(i));
  }
}

}  // namespace

stt::SchemaPtr Validator::CheckOp(OpKind op, const OpSpec& spec,
                                  const std::vector<SchemaPtr>& inputs,
                                  const std::vector<std::string>& input_names,
                                  std::vector<Issue>* issues) {
  std::vector<Issue> found;
  SchemaPtr derived;
  auto fail = [&](diag::Code code, std::string message) {
    found.push_back(MakeIssue(code, std::move(message)));
  };

  // Structural spec/arity sanity (SL2009).
  if (!SpecMatchesKind(spec, op)) {
    fail(diag::Code::kBadOpSpec,
         StrFormat("operation spec does not match kind %s",
                   OpKindToString(op)));
  } else if (inputs.size() != ExpectedInputs(op)) {
    fail(diag::Code::kBadOpSpec,
         StrFormat("%s expects %zu input schemas, got %zu",
                   OpKindToString(op), ExpectedInputs(op), inputs.size()));
  } else if (std::any_of(inputs.begin(), inputs.end(),
                         [](const SchemaPtr& s) { return s == nullptr; })) {
    fail(diag::Code::kBadOpSpec, "null input schema");
  } else {
    const SchemaPtr& in = inputs[0];
    switch (op) {
      case OpKind::kFilter: {
        const auto& s = std::get<FilterSpec>(spec);
        auto tc = expr::TypecheckCondition(s.condition, *in,
                                           expr::ConditionContext::kFilter);
        AppendDiags(tc.diags, &found);
        derived = in;
        break;
      }
      case OpKind::kCullTime: {
        derived = in;  // parameters checked structurally at Build time
        break;
      }
      case OpKind::kCullSpace: {
        const auto& s = std::get<CullSpaceSpec>(spec);
        stt::BBox box = stt::NormalizeBBox(s.corner1, s.corner2);
        if (!box.IsValid()) {
          fail(diag::Code::kBadRegion, "cull-space region is invalid");
          break;
        }
        derived = in;
        break;
      }
      case OpKind::kTransform: {
        const auto& s = std::get<TransformSpec>(spec);
        auto field = in->FieldByName(s.attribute);
        if (!field.ok()) {
          fail(diag::Code::kUnknownColumn,
               StrFormat("transform attribute '%s' is not in the input "
                         "schema", s.attribute.c_str()));
        }
        auto tc = expr::TypecheckSource(s.expression, *in);
        AppendDiags(tc.diags, &found);
        std::string unit =
            s.new_unit.empty() && field.ok() ? field->unit : s.new_unit;
        if (!unit.empty() && !stt::UnitRegistry::Global().Contains(unit)) {
          fail(diag::Code::kBadUnit,
               "unknown unit '" + unit + "' in transform");
        }
        if (field.ok() && !HasErrorIssues(found)) {
          ValueType out_type =
              tc.type == ValueType::kNull ? field->type : tc.type;
          if (auto changed = in->WithFieldChanged(s.attribute, out_type, unit);
              changed.ok()) {
            derived = *changed;
          } else {
            fail(diag::Code::kBadOpSpec, changed.status().message());
          }
        }
        break;
      }
      case OpKind::kVirtualProperty: {
        const auto& s = std::get<VirtualPropertySpec>(spec);
        auto tc = expr::TypecheckSource(s.specification, *in);
        AppendDiags(tc.diags, &found);
        if (tc.ok() && tc.type == ValueType::kNull) {
          Issue i = MakeIssue(
              diag::Code::kAlwaysNullProperty,
              "virtual property specification always evaluates to null");
          i.source = s.specification;
          i.span = {0, s.specification.size()};
          found.push_back(std::move(i));
        }
        if (!s.unit.empty() &&
            !stt::UnitRegistry::Global().Contains(s.unit)) {
          fail(diag::Code::kBadUnit,
               "unknown unit '" + s.unit + "' in virtual property");
        }
        if (!HasErrorIssues(found)) {
          Field f;
          f.name = s.property;
          f.type = tc.type;
          f.unit = s.unit;
          f.nullable = true;
          if (auto added = in->AddField(f); added.ok()) {
            derived = *added;
          } else {
            fail(diag::Code::kBadOpSpec, added.status().message());
          }
        }
        break;
      }
      case OpKind::kAggregation: {
        const auto& s = std::get<AggregationSpec>(spec);
        CheckInterval(s.interval, in, "aggregation", &found);
        CheckWindow(s.interval, s.window, &found);
        CheckInstantGranularity(in, &found);
        std::vector<Field> fields;
        for (const auto& g : s.group_by) {
          auto f = in->FieldByName(g);
          if (!f.ok()) {
            fail(diag::Code::kUnknownColumn,
                 StrFormat("group-by attribute '%s' is not in the input "
                           "schema", g.c_str()));
            continue;
          }
          fields.push_back(std::move(*f));
        }
        // SL2011: the partition key must be derivable from the grouping
        // key, or instances would disagree on which one owns a group.
        if (s.parallelism == 0) {
          fail(diag::Code::kBadPartition,
               "aggregation parallelism must be >= 1");
        }
        if (s.parallelism > 1 && s.group_by.empty() &&
            s.partition_by.empty()) {
          fail(diag::Code::kBadPartition,
               "parallel aggregation needs a partition key: declare "
               "group_by (the default partition key) or partition_by");
        }
        for (const auto& p : s.partition_by) {
          if (std::find(s.group_by.begin(), s.group_by.end(), p) ==
              s.group_by.end()) {
            fail(diag::Code::kBadPartition,
                 StrFormat("partition_by attribute '%s' is not among the "
                           "group-by keys", p.c_str()));
          }
        }
        if (s.func == AggFunc::kCount && s.attributes.empty()) {
          fields.push_back({"count", ValueType::kInt, "count", false});
        }
        for (const auto& a : s.attributes) {
          auto f = in->FieldByName(a);
          if (!f.ok()) {
            fail(diag::Code::kUnknownColumn,
                 StrFormat("aggregated attribute '%s' is not in the input "
                           "schema", a.c_str()));
            continue;
          }
          if (s.func != AggFunc::kCount && !stt::IsNumeric(f->type)) {
            fail(diag::Code::kNonNumericAggregate,
                 StrFormat("cannot %s non-numeric attribute '%s' (%s)",
                           AggFuncToString(s.func), a.c_str(),
                           stt::ValueTypeToString(f->type)));
            continue;
          }
          Field out;
          out.name = ToLower(AggFuncToString(s.func)) + "_" + a;
          switch (s.func) {
            case AggFunc::kCount:
              out.type = ValueType::kInt;
              out.unit = "count";
              break;
            case AggFunc::kAvg:
            case AggFunc::kSum:
              out.type = ValueType::kDouble;
              out.unit = f->unit;
              break;
            case AggFunc::kMin:
            case AggFunc::kMax:
              out.type = f->type;
              out.unit = f->unit;
              break;
          }
          out.nullable = true;
          fields.push_back(std::move(out));
        }
        if (HasErrorIssues(found)) break;
        auto tgran = stt::TemporalGranularity::Make(s.interval);
        if (!tgran.ok()) {
          fail(diag::Code::kBadOpSpec, tgran.status().message());
          break;
        }
        if (auto schema =
                Schema::Make(std::move(fields), *tgran,
                             in->spatial_granularity(), in->theme());
            schema.ok()) {
          derived = *schema;
        } else {
          fail(diag::Code::kBadOpSpec, schema.status().message());
        }
        break;
      }
      case OpKind::kJoin: {
        const auto& s = std::get<JoinSpec>(spec);
        std::string left_name =
            !input_names.empty() ? input_names[0] : "left";
        std::string right_name =
            input_names.size() > 1 ? input_names[1] : "right";
        auto merged =
            MergeForJoin(inputs[0], inputs[1], left_name, right_name);
        if (!merged.ok()) {
          fail(diag::Code::kGranularityMismatch, merged.status().message());
          break;
        }
        CheckInterval(s.interval, *merged, "join", &found);
        CheckWindow(s.interval, s.window, &found);
        CheckInstantGranularity(inputs[0], &found);
        CheckInstantGranularity(inputs[1], &found);
        auto tc = expr::TypecheckCondition(s.predicate, **merged,
                                           expr::ConditionContext::kJoin);
        AppendDiags(tc.diags, &found);
        // SL3009: a non-constant predicate with no `left.a == right.b`
        // conjunct pairs every cached left tuple with every right tuple
        // — almost always an accidental cross join (a deliberate one is
        // written as the constant `true`, which SL3004 exempts).
        if (!HasErrorIssues(found) && !tc.constant.has_value()) {
          if (auto parsed = expr::ParseExpression(s.predicate); parsed.ok()) {
            auto analysis = AnalyzeJoinPredicate(
                *parsed, **merged, inputs[0]->fields().size());
            if (!analysis.has_equi()) {
              found.push_back(MakeIssue(
                  diag::Code::kNoEquiJoin,
                  "join predicate contains no equi-conjunct "
                  "(left.a == right.b): every pair of cached tuples is "
                  "enumerated — an accidental cross join?",
                  {0, s.predicate.size()}, s.predicate));
            }
          }
        }
        // SL2011: a partitioned join can only route by equi-conjunct
        // columns — any other key would split matching pairs across
        // instances.
        if (s.parallelism == 0) {
          fail(diag::Code::kBadPartition, "join parallelism must be >= 1");
        }
        if (!HasErrorIssues(found) &&
            (s.parallelism > 1 || !s.partition_by.empty())) {
          if (auto parsed = expr::ParseExpression(s.predicate); parsed.ok()) {
            auto analysis = AnalyzeJoinPredicate(
                *parsed, **merged, inputs[0]->fields().size());
            if (s.parallelism > 1 && !analysis.has_equi()) {
              fail(diag::Code::kBadPartition,
                   "parallel join requires an equi-conjunct "
                   "(left.a == right.b) in the predicate to partition on");
            }
            for (const auto& p : s.partition_by) {
              auto idx = (*merged)->FieldIndex(p);
              if (!idx.ok()) {
                fail(diag::Code::kBadPartition,
                     StrFormat("partition_by attribute '%s' is not in the "
                               "joined schema", p.c_str()));
                continue;
              }
              bool is_equi = false;
              for (const auto& e : analysis.equi) {
                if (e.left_index == *idx || e.right_index == *idx) {
                  is_equi = true;
                }
              }
              if (!is_equi) {
                fail(diag::Code::kBadPartition,
                     StrFormat("partition_by attribute '%s' is not an "
                               "equi-join key of the predicate", p.c_str()));
              }
            }
          }
        }
        if (!HasErrorIssues(found)) derived = *merged;
        break;
      }
      case OpKind::kTriggerOn:
      case OpKind::kTriggerOff: {
        const auto& s = std::get<TriggerSpec>(spec);
        CheckInterval(s.interval, in, "trigger", &found);
        CheckWindow(s.interval, s.window, &found);
        CheckInstantGranularity(in, &found);
        auto tc = expr::TypecheckCondition(s.condition, *in,
                                           expr::ConditionContext::kTrigger);
        AppendDiags(tc.diags, &found);
        // SL2011: triggers have no implicit key, so parallel deployment
        // needs an explicit, resolvable partition_by.
        if (s.parallelism == 0) {
          fail(diag::Code::kBadPartition, "trigger parallelism must be >= 1");
        }
        if (s.parallelism > 1 && s.partition_by.empty()) {
          fail(diag::Code::kBadPartition,
               "parallel trigger requires an explicit partition_by "
               "(triggers have no implicit grouping key)");
        }
        for (const auto& p : s.partition_by) {
          if (!in->HasField(p)) {
            fail(diag::Code::kBadPartition,
                 StrFormat("partition_by attribute '%s' is not in the "
                           "input schema", p.c_str()));
          }
        }
        if (!HasErrorIssues(found)) derived = in;  // pass-through
        break;
      }
    }
  }

  if (HasErrorIssues(found)) derived = nullptr;
  issues->insert(issues->end(), std::make_move_iterator(found.begin()),
                 std::make_move_iterator(found.end()));
  return derived;
}

Result<SchemaPtr> Validator::DeriveSchema(
    OpKind op, const OpSpec& spec, const std::vector<SchemaPtr>& inputs,
    const std::vector<std::string>& input_names) {
  std::vector<Issue> issues;
  SchemaPtr schema = CheckOp(op, spec, inputs, input_names, &issues);
  for (const auto& issue : issues) {
    if (issue.severity == Issue::Severity::kError) {
      return Status::ValidationError(
          StrFormat("[%s] %s", diag::CodeToString(issue.code).c_str(),
                    issue.message.c_str()));
    }
  }
  if (schema == nullptr) {
    return Status::Internal("no schema derived and no error reported");
  }
  return schema;
}

namespace {

// True when `node`'s own specification reads attribute `property` (for
// join inputs the attribute may be referenced under its collision-
// prefixed name, hence the suffix match). Parse failures count as a
// reference: liveness errs toward not warning.
bool ReferencesProperty(const Node& node, const std::string& property) {
  auto expr_refs = [&](const std::string& text) {
    auto parsed = expr::ParseExpression(text);
    if (!parsed.ok()) return true;
    for (const auto& name : expr::ReferencedAttributes(*parsed)) {
      if (name == property || EndsWith(name, "_" + property)) return true;
    }
    return false;
  };
  auto name_matches = [&](const std::string& name) {
    return name == property || EndsWith(name, "_" + property);
  };
  if (node.kind != NodeKind::kOperator) return false;
  switch (node.op) {
    case OpKind::kFilter:
      return expr_refs(std::get<FilterSpec>(node.spec).condition);
    case OpKind::kTransform: {
      const auto& s = std::get<TransformSpec>(node.spec);
      return name_matches(s.attribute) || expr_refs(s.expression);
    }
    case OpKind::kVirtualProperty:
      return expr_refs(std::get<VirtualPropertySpec>(node.spec).specification);
    case OpKind::kAggregation: {
      const auto& s = std::get<AggregationSpec>(node.spec);
      return std::any_of(s.group_by.begin(), s.group_by.end(), name_matches) ||
             std::any_of(s.attributes.begin(), s.attributes.end(),
                         name_matches);
    }
    case OpKind::kJoin:
      return expr_refs(std::get<JoinSpec>(node.spec).predicate);
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff:
      return expr_refs(std::get<TriggerSpec>(node.spec).condition);
    case OpKind::kCullTime:
    case OpKind::kCullSpace:
      return false;
  }
  return false;
}

}  // namespace

Result<ValidationReport> Validator::Validate(const Dataflow& dataflow) const {
  ValidationReport report;
  auto add = [&report](diag::Code code, const std::string& node,
                       const std::string& msg) {
    Issue i = MakeIssue(code, msg);
    i.node = node;
    report.issues.push_back(std::move(i));
  };

  if (dataflow.SourceNames().empty()) {
    add(diag::Code::kNoSources, "", "dataflow has no sources");
  }
  const std::vector<std::string> sinks = dataflow.SinkNames();
  if (sinks.empty()) {
    add(diag::Code::kNoSinks, "",
        "dataflow has no sinks: results will be discarded");
  }

  for (const auto& name : dataflow.topological_order()) {
    const Node& node = **dataflow.node(name);
    switch (node.kind) {
      case NodeKind::kSource: {
        if (node.by_query) {
          // Characteristic-bound source: every matching sensor must
          // share one schema (the stream type of the source).
          if (broker_ == nullptr) {
            add(diag::Code::kUnknownSensor, name,
                "no sensor registry to resolve the query against");
            break;
          }
          auto matches = broker_->Discover(node.source_query);
          if (matches.empty()) {
            add(diag::Code::kEmptyQuery, name,
                "no published sensor matches " +
                    node.source_query.ToString());
            break;
          }
          stt::SchemaPtr schema = matches.front().schema;
          bool consistent = schema != nullptr;
          for (const auto& info : matches) {
            if (info.schema == nullptr || !info.schema->Equals(*schema)) {
              consistent = false;
              add(diag::Code::kQuerySchemaMismatch, name,
                  "sensors matching the query have differing schemas "
                  "('" + matches.front().id + "' vs '" + info.id + "')");
              break;
            }
          }
          if (consistent) report.schemas[name] = schema;
          break;
        }
        if (broker_ == nullptr || !broker_->IsPublished(node.sensor_id)) {
          add(diag::Code::kUnknownSensor, name,
              "sensor '" + node.sensor_id + "' is not published");
          break;
        }
        auto info = broker_->Find(node.sensor_id);
        if (info->schema == nullptr) {
          add(diag::Code::kMissingSchema, name,
              "sensor '" + node.sensor_id + "' has no schema");
          break;
        }
        report.schemas[name] = info->schema;
        break;
      }
      case NodeKind::kOperator: {
        std::vector<SchemaPtr> inputs;
        bool inputs_ok = true;
        for (const auto& in : node.inputs) {
          auto it = report.schemas.find(in);
          if (it == report.schemas.end()) {
            inputs_ok = false;  // upstream already failed; don't cascade
            break;
          }
          inputs.push_back(it->second);
        }
        if (!inputs_ok) break;
        std::vector<Issue> op_issues;
        SchemaPtr derived =
            CheckOp(node.op, node.spec, inputs, node.inputs, &op_issues);
        for (auto& issue : op_issues) {
          issue.node = name;
          report.issues.push_back(std::move(issue));
        }
        if (derived != nullptr) report.schemas[name] = derived;
        // Trigger targets should exist (plug-and-play sensors may join
        // later, so a missing target is a warning, not an error).
        if (node.op == OpKind::kTriggerOn ||
            node.op == OpKind::kTriggerOff) {
          const auto& s = std::get<TriggerSpec>(node.spec);
          for (const auto& target : s.target_sensors) {
            if (broker_ == nullptr || !broker_->IsPublished(target)) {
              add(diag::Code::kUnknownTriggerTarget, name,
                  "trigger target sensor '" + target +
                      "' is not (yet) published");
            }
          }
        }
        break;
      }
      case NodeKind::kSink: {
        auto it = report.schemas.find(node.inputs[0]);
        if (it == report.schemas.end()) break;  // upstream failed
        if (node.sink == SinkKind::kWarehouse &&
            !IsIdentifier(node.sink_target)) {
          add(diag::Code::kBadSinkTarget, name,
              "warehouse sink needs a valid dataset name as target, got '" +
                  node.sink_target + "'");
          break;
        }
        report.schemas[name] = it->second;
        break;
      }
    }
  }

  // ------------------------------------------------------ graph lints
  // Direct-consumer map for reverse reachability.
  std::map<std::string, std::vector<std::string>> consumers;
  for (const auto& name : dataflow.topological_order()) {
    const Node& node = **dataflow.node(name);
    for (const auto& in : node.inputs) consumers[in].push_back(name);
  }

  // SL3002: a node whose output can never reach a sink does work that
  // is always discarded. Suppressed when the dataflow has no sinks at
  // all — SL3001 already covers that wholesale.
  std::set<std::string> reaches_sink;
  if (!sinks.empty()) {
    const auto& topo = dataflow.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const Node& node = **dataflow.node(*it);
      bool reaches = node.kind == NodeKind::kSink;
      for (const auto& c : consumers[*it]) {
        if (reaches_sink.count(c) != 0) {
          reaches = true;
          break;
        }
      }
      if (reaches) reaches_sink.insert(*it);
    }
    for (const auto& name : topo) {
      if (reaches_sink.count(name) == 0) {
        add(diag::Code::kUnreachableNode, name,
            "node output never reaches a sink and is discarded");
      }
    }
  }

  // SL3003: a virtual property that no downstream operator reads and
  // that is dropped (by aggregation/join renaming) before every sink is
  // a dead store. Only checked for nodes that do reach a sink — the
  // unreachable lint already covers the rest.
  for (const auto& name : dataflow.topological_order()) {
    const Node& node = **dataflow.node(name);
    if (node.kind != NodeKind::kOperator ||
        node.op != OpKind::kVirtualProperty) {
      continue;
    }
    if (!sinks.empty() && reaches_sink.count(name) == 0) continue;
    if (report.schemas.count(name) == 0) continue;  // node itself failed
    const std::string& property =
        std::get<VirtualPropertySpec>(node.spec).property;
    // BFS over transitive consumers.
    std::vector<std::string> frontier = consumers[name];
    std::set<std::string> visited;
    bool live = false;
    while (!frontier.empty() && !live) {
      std::string current = frontier.back();
      frontier.pop_back();
      if (!visited.insert(current).second) continue;
      const Node& down = **dataflow.node(current);
      if (down.kind == NodeKind::kSink) {
        auto it = report.schemas.find(current);
        if (it == report.schemas.end()) {
          live = true;  // sink schema unknown: assume delivered
        } else {
          for (const auto& f : it->second->fields()) {
            if (f.name == property || EndsWith(f.name, "_" + property)) {
              live = true;
              break;
            }
          }
        }
      } else if (ReferencesProperty(down, property)) {
        live = true;
      }
      for (const auto& c : consumers[current]) frontier.push_back(c);
    }
    if (!live) {
      Issue i = MakeIssue(
          diag::Code::kDeadVirtualProperty,
          StrFormat("virtual property '%s' is never referenced downstream "
                    "and does not reach any sink (dead store)",
                    property.c_str()));
      i.node = name;
      report.issues.push_back(std::move(i));
    }
  }

  return report;
}

}  // namespace sl::dataflow
