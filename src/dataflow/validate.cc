#include "dataflow/validate.h"

#include <algorithm>

#include "expr/eval.h"
#include "expr/parser.h"
#include "stt/units.h"
#include "util/strings.h"

namespace sl::dataflow {

using stt::Field;
using stt::Schema;
using stt::SchemaPtr;
using stt::ValueType;

std::string Issue::ToString() const {
  std::string out =
      severity == Severity::kError ? "[error] " : "[warning] ";
  if (!node.empty()) out += node + ": ";
  out += message;
  return out;
}

bool ValidationReport::ok() const { return error_count() == 0; }

size_t ValidationReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(issues.begin(), issues.end(), [](const Issue& i) {
        return i.severity == Issue::Severity::kError;
      }));
}

size_t ValidationReport::warning_count() const {
  return issues.size() - error_count();
}

std::string ValidationReport::ToString() const {
  if (issues.empty()) return "validation: OK";
  std::string out = StrFormat("validation: %zu error(s), %zu warning(s)\n",
                              error_count(), warning_count());
  for (const auto& issue : issues) {
    out += "  " + issue.ToString() + "\n";
  }
  return out;
}

namespace {

/// Merges two schemas for a join: collisions are prefixed with the
/// upstream node name.
Result<SchemaPtr> MergeForJoin(const SchemaPtr& left, const SchemaPtr& right,
                               const std::string& left_name,
                               const std::string& right_name) {
  // Granularity-consistency constraints (§3): the operands must be
  // comparable on both dimensions; the result is at the coarser.
  SL_ASSIGN_OR_RETURN(
      stt::TemporalGranularity tgran,
      left->temporal_granularity().JoinWith(right->temporal_granularity()));
  SL_ASSIGN_OR_RETURN(
      stt::SpatialGranularity sgran,
      left->spatial_granularity().JoinWith(right->spatial_granularity()));

  std::vector<Field> fields;
  for (const auto& f : left->fields()) {
    Field nf = f;
    if (right->HasField(f.name)) nf.name = left_name + "_" + f.name;
    fields.push_back(std::move(nf));
  }
  for (const auto& f : right->fields()) {
    Field nf = f;
    if (left->HasField(f.name)) nf.name = right_name + "_" + f.name;
    fields.push_back(std::move(nf));
  }
  stt::Theme theme = left->theme().CommonAncestor(right->theme());
  return Schema::Make(std::move(fields), tgran, sgran, std::move(theme));
}

}  // namespace

Result<SchemaPtr> Validator::DeriveSchema(
    OpKind op, const OpSpec& spec, const std::vector<SchemaPtr>& inputs,
    const std::vector<std::string>& input_names) {
  if (!SpecMatchesKind(spec, op)) {
    return Status::InvalidArgument(
        StrFormat("operation spec does not match kind %s",
                  OpKindToString(op)));
  }
  if (inputs.size() != ExpectedInputs(op)) {
    return Status::InvalidArgument(
        StrFormat("%s expects %zu input schemas, got %zu", OpKindToString(op),
                  ExpectedInputs(op), inputs.size()));
  }
  for (const auto& in : inputs) {
    if (in == nullptr) return Status::InvalidArgument("null input schema");
  }
  const SchemaPtr& in = inputs[0];
  switch (op) {
    case OpKind::kFilter: {
      const auto& s = std::get<FilterSpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      if (cond.result_type() != ValueType::kBool &&
          cond.result_type() != ValueType::kNull) {
        return Status::TypeError(
            StrFormat("filter condition has type %s, expected bool",
                      stt::ValueTypeToString(cond.result_type())));
      }
      return in;
    }
    case OpKind::kCullTime: {
      return in;  // parameters checked structurally at Build time
    }
    case OpKind::kCullSpace: {
      const auto& s = std::get<CullSpaceSpec>(spec);
      stt::BBox box = stt::NormalizeBBox(s.corner1, s.corner2);
      if (!box.IsValid()) {
        return Status::InvalidArgument("cull-space region is invalid");
      }
      return in;
    }
    case OpKind::kTransform: {
      const auto& s = std::get<TransformSpec>(spec);
      SL_ASSIGN_OR_RETURN(Field field, in->FieldByName(s.attribute));
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.expression, in));
      ValueType out_type = e.result_type() == ValueType::kNull
                               ? field.type
                               : e.result_type();
      std::string unit = s.new_unit.empty() ? field.unit : s.new_unit;
      if (!unit.empty() && !stt::UnitRegistry::Global().Contains(unit)) {
        return Status::ValidationError("unknown unit '" + unit +
                                       "' in transform");
      }
      return in->WithFieldChanged(s.attribute, out_type, unit);
    }
    case OpKind::kVirtualProperty: {
      const auto& s = std::get<VirtualPropertySpec>(spec);
      SL_ASSIGN_OR_RETURN(expr::BoundExpr e,
                          expr::BoundExpr::Parse(s.specification, in));
      if (e.result_type() == ValueType::kNull) {
        return Status::TypeError(
            "virtual property specification always evaluates to null");
      }
      if (!s.unit.empty() && !stt::UnitRegistry::Global().Contains(s.unit)) {
        return Status::ValidationError("unknown unit '" + s.unit +
                                       "' in virtual property");
      }
      Field f;
      f.name = s.property;
      f.type = e.result_type();
      f.unit = s.unit;
      f.nullable = true;
      return in->AddField(f);
    }
    case OpKind::kAggregation: {
      const auto& s = std::get<AggregationSpec>(spec);
      // Interval consistency with the input temporal granularity.
      Duration period = in->temporal_granularity().period();
      if (s.interval < period || s.interval % period != 0) {
        return Status::ValidationError(StrFormat(
            "aggregation interval %s is not a multiple of the input "
            "temporal granularity %s",
            FormatDuration(s.interval).c_str(),
            in->temporal_granularity().ToString().c_str()));
      }
      std::vector<Field> fields;
      for (const auto& g : s.group_by) {
        SL_ASSIGN_OR_RETURN(Field f, in->FieldByName(g));
        fields.push_back(std::move(f));
      }
      if (s.func == AggFunc::kCount && s.attributes.empty()) {
        fields.push_back({"count", ValueType::kInt, "count", false});
      }
      for (const auto& a : s.attributes) {
        SL_ASSIGN_OR_RETURN(Field f, in->FieldByName(a));
        if (s.func != AggFunc::kCount && !stt::IsNumeric(f.type)) {
          return Status::TypeError(StrFormat(
              "cannot %s non-numeric attribute '%s' (%s)",
              AggFuncToString(s.func), a.c_str(),
              stt::ValueTypeToString(f.type)));
        }
        Field out;
        out.name = ToLower(AggFuncToString(s.func)) + "_" + a;
        switch (s.func) {
          case AggFunc::kCount:
            out.type = ValueType::kInt;
            out.unit = "count";
            break;
          case AggFunc::kAvg:
          case AggFunc::kSum:
            out.type = ValueType::kDouble;
            out.unit = f.unit;
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            out.type = f.type;
            out.unit = f.unit;
            break;
        }
        out.nullable = true;
        fields.push_back(std::move(out));
      }
      SL_ASSIGN_OR_RETURN(stt::TemporalGranularity tgran,
                          stt::TemporalGranularity::Make(s.interval));
      return Schema::Make(std::move(fields), tgran,
                          in->spatial_granularity(), in->theme());
    }
    case OpKind::kJoin: {
      const auto& s = std::get<JoinSpec>(spec);
      std::string left_name =
          input_names.size() > 0 ? input_names[0] : "left";
      std::string right_name =
          input_names.size() > 1 ? input_names[1] : "right";
      SL_ASSIGN_OR_RETURN(
          SchemaPtr merged,
          MergeForJoin(inputs[0], inputs[1], left_name, right_name));
      // Interval consistency against the coarser granularity.
      Duration period = merged->temporal_granularity().period();
      if (s.interval < period || s.interval % period != 0) {
        return Status::ValidationError(StrFormat(
            "join interval %s is not a multiple of the operands' coarser "
            "temporal granularity %s",
            FormatDuration(s.interval).c_str(),
            merged->temporal_granularity().ToString().c_str()));
      }
      SL_ASSIGN_OR_RETURN(expr::BoundExpr pred,
                          expr::BoundExpr::Parse(s.predicate, merged));
      if (pred.result_type() != ValueType::kBool &&
          pred.result_type() != ValueType::kNull) {
        return Status::TypeError(
            StrFormat("join predicate has type %s, expected bool",
                      stt::ValueTypeToString(pred.result_type())));
      }
      return merged;
    }
    case OpKind::kTriggerOn:
    case OpKind::kTriggerOff: {
      const auto& s = std::get<TriggerSpec>(spec);
      Duration period = in->temporal_granularity().period();
      if (s.interval < period || s.interval % period != 0) {
        return Status::ValidationError(StrFormat(
            "trigger interval %s is not a multiple of the input temporal "
            "granularity %s",
            FormatDuration(s.interval).c_str(),
            in->temporal_granularity().ToString().c_str()));
      }
      SL_ASSIGN_OR_RETURN(expr::BoundExpr cond,
                          expr::BoundExpr::Parse(s.condition, in));
      if (cond.result_type() != ValueType::kBool &&
          cond.result_type() != ValueType::kNull) {
        return Status::TypeError(
            StrFormat("trigger condition has type %s, expected bool",
                      stt::ValueTypeToString(cond.result_type())));
      }
      return in;  // pass-through
    }
  }
  return Status::Internal("unreachable op kind in DeriveSchema");
}

Result<ValidationReport> Validator::Validate(const Dataflow& dataflow) const {
  ValidationReport report;
  auto error = [&report](const std::string& node, const std::string& msg) {
    report.issues.push_back({Issue::Severity::kError, node, msg});
  };
  auto warning = [&report](const std::string& node, const std::string& msg) {
    report.issues.push_back({Issue::Severity::kWarning, node, msg});
  };

  if (dataflow.SourceNames().empty()) {
    error("", "dataflow has no sources");
  }
  if (dataflow.SinkNames().empty()) {
    warning("", "dataflow has no sinks: results will be discarded");
  }

  for (const auto& name : dataflow.topological_order()) {
    const Node& node = **dataflow.node(name);
    switch (node.kind) {
      case NodeKind::kSource: {
        if (node.by_query) {
          // Characteristic-bound source: every matching sensor must
          // share one schema (the stream type of the source).
          if (broker_ == nullptr) {
            error(name, "no sensor registry to resolve the query against");
            break;
          }
          auto matches = broker_->Discover(node.source_query);
          if (matches.empty()) {
            error(name, "no published sensor matches " +
                            node.source_query.ToString());
            break;
          }
          stt::SchemaPtr schema = matches.front().schema;
          bool consistent = schema != nullptr;
          for (const auto& info : matches) {
            if (info.schema == nullptr || !info.schema->Equals(*schema)) {
              consistent = false;
              error(name,
                    "sensors matching the query have differing schemas "
                    "('" + matches.front().id + "' vs '" + info.id + "')");
              break;
            }
          }
          if (consistent) report.schemas[name] = schema;
          break;
        }
        if (broker_ == nullptr || !broker_->IsPublished(node.sensor_id)) {
          error(name, "sensor '" + node.sensor_id + "' is not published");
          break;
        }
        auto info = broker_->Find(node.sensor_id);
        if (info->schema == nullptr) {
          error(name, "sensor '" + node.sensor_id + "' has no schema");
          break;
        }
        report.schemas[name] = info->schema;
        break;
      }
      case NodeKind::kOperator: {
        std::vector<SchemaPtr> inputs;
        bool inputs_ok = true;
        for (const auto& in : node.inputs) {
          auto it = report.schemas.find(in);
          if (it == report.schemas.end()) {
            inputs_ok = false;  // upstream already failed; don't cascade
            break;
          }
          inputs.push_back(it->second);
        }
        if (!inputs_ok) break;
        auto derived =
            DeriveSchema(node.op, node.spec, inputs, node.inputs);
        if (!derived.ok()) {
          error(name, derived.status().message());
          break;
        }
        report.schemas[name] = *derived;
        // Trigger targets should exist (plug-and-play sensors may join
        // later, so a missing target is a warning, not an error).
        if (node.op == OpKind::kTriggerOn || node.op == OpKind::kTriggerOff) {
          const auto& s = std::get<TriggerSpec>(node.spec);
          for (const auto& target : s.target_sensors) {
            if (broker_ == nullptr || !broker_->IsPublished(target)) {
              warning(name, "trigger target sensor '" + target +
                                "' is not (yet) published");
            }
          }
        }
        break;
      }
      case NodeKind::kSink: {
        auto it = report.schemas.find(node.inputs[0]);
        if (it == report.schemas.end()) break;  // upstream failed
        if (node.sink == SinkKind::kWarehouse &&
            !IsIdentifier(node.sink_target)) {
          error(name,
                "warehouse sink needs a valid dataset name as target, got '" +
                    node.sink_target + "'");
          break;
        }
        report.schemas[name] = it->second;
        break;
      }
    }
  }
  return report;
}

}  // namespace sl::dataflow
