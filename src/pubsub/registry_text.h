// StreamLoader: textual sensor-registry files.
//
// The sl-lint CLI (and any offline tooling) needs the sensor
// advertisements a broker would hold at runtime, without a running
// broker. A registry file lists them in a DSN-flavoured syntax reusing
// the expression lexer ('#' starts a comment):
//
//   sensor "osaka_temp_01" {
//     type: "temperature";
//     period: "1m";
//     schema: "{temp:double[celsius]} @1m/0.01deg theme=weather/temp";
//     location: 34.6937, 135.5023;
//     node: "edge-osaka-1";
//     range: temp, -30, 50;     # declared bounds (analysis metadata)
//     max_delay: "2m";          # worst-case delivery delay
//   }
//
// `schema` uses the stt textual schema notation (schema_text.h) and is
// the only required property besides the sensor id. `range` may repeat,
// once per numeric property; it and `max_delay` are advisory metadata
// consumed by sl-analyze, never enforced by the runtime.

#ifndef STREAMLOADER_PUBSUB_REGISTRY_TEXT_H_
#define STREAMLOADER_PUBSUB_REGISTRY_TEXT_H_

#include <string>
#include <vector>

#include "pubsub/sensor_info.h"
#include "util/result.h"

namespace sl::pubsub {

/// \brief Parses a registry file into publishable sensor advertisements
/// (each already passes ValidateSensorInfo). ParseError on bad syntax.
Result<std::vector<SensorInfo>> ParseSensorRegistry(const std::string& text);

}  // namespace sl::pubsub

#endif  // STREAMLOADER_PUBSUB_REGISTRY_TEXT_H_
