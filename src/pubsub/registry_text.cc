#include "pubsub/registry_text.h"

#include "expr/lexer.h"
#include "stt/granularity.h"
#include "stt/schema_text.h"
#include "util/strings.h"

namespace sl::pubsub {

namespace {

using expr::Token;
using expr::TokenKind;

class RegistryParser {
 public:
  explicit RegistryParser(const std::vector<Token>& tokens)
      : tokens_(tokens) {}

  Result<std::vector<SensorInfo>> Parse() {
    std::vector<SensorInfo> sensors;
    while (Peek().kind != TokenKind::kEnd) {
      SL_ASSIGN_OR_RETURN(SensorInfo info, ParseSensor());
      sensors.push_back(std::move(info));
    }
    return sensors;
  }

 private:
  Result<SensorInfo> ParseSensor() {
    if (Peek().kind != TokenKind::kIdent || Peek().text != "sensor") {
      return Error("expected 'sensor'");
    }
    Advance();
    SensorInfo info;
    SL_ASSIGN_OR_RETURN(info.id, ExpectString());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    bool has_schema = false;
    while (Peek().kind != TokenKind::kRBrace) {
      SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
      SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      if (key == "type") {
        SL_ASSIGN_OR_RETURN(info.type, ExpectString());
      } else if (key == "period") {
        SL_ASSIGN_OR_RETURN(std::string text, ExpectString());
        if (!ParseDuration(text, &info.period)) {
          return Error("cannot parse period '" + text + "'");
        }
      } else if (key == "schema") {
        SL_ASSIGN_OR_RETURN(std::string text, ExpectString());
        SL_ASSIGN_OR_RETURN(info.schema, stt::ParseSchemaText(text));
        has_schema = true;
      } else if (key == "location") {
        SL_ASSIGN_OR_RETURN(double lat, ExpectNumber());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        SL_ASSIGN_OR_RETURN(double lon, ExpectNumber());
        info.location = stt::GeoPoint{lat, lon};
      } else if (key == "node") {
        SL_ASSIGN_OR_RETURN(info.node_id, ExpectString());
      } else if (key == "owner") {
        SL_ASSIGN_OR_RETURN(info.owner, ExpectString());
      } else if (key == "provides_timestamp") {
        SL_ASSIGN_OR_RETURN(info.provides_timestamp, ExpectBool());
      } else if (key == "provides_location") {
        SL_ASSIGN_OR_RETURN(info.provides_location, ExpectBool());
      } else if (key == "range") {
        PropertyRange range;
        SL_ASSIGN_OR_RETURN(range.property, ExpectIdent());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        SL_ASSIGN_OR_RETURN(range.lo, ExpectNumber());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        SL_ASSIGN_OR_RETURN(range.hi, ExpectNumber());
        info.ranges.push_back(std::move(range));
      } else if (key == "max_delay") {
        SL_ASSIGN_OR_RETURN(std::string text, ExpectString());
        if (!ParseDuration(text, &info.max_delay)) {
          return Error("cannot parse max_delay '" + text + "'");
        }
      } else {
        return Error("unknown sensor property '" + key + "'");
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (!has_schema) {
      return Error("sensor '" + info.id + "' declares no schema");
    }
    SL_RETURN_IF_ERROR(ValidateSensorInfo(info));
    return info;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected identifier, got " + Peek().ToString());
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }
  Result<std::string> ExpectString() {
    if (Peek().kind != TokenKind::kString) {
      return Error("expected a quoted string, got " + Peek().ToString());
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }
  Result<double> ExpectNumber() {
    bool negative = false;
    if (Peek().kind == TokenKind::kMinus) {
      negative = true;
      Advance();
    }
    double value = 0;
    if (Peek().kind == TokenKind::kInt) {
      value = static_cast<double>(Peek().int_value);
    } else if (Peek().kind == TokenKind::kDouble) {
      value = Peek().double_value;
    } else {
      return Error("expected a number, got " + Peek().ToString());
    }
    Advance();
    return negative ? -value : value;
  }
  Result<bool> ExpectBool() {
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "true" || Peek().text == "false")) {
      bool value = Peek().text == "true";
      Advance();
      return value;
    }
    return Error("expected true or false, got " + Peek().ToString());
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, got %s",
                             expr::TokenKindToString(kind),
                             Peek().ToString().c_str()));
    }
    Advance();
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("registry: %s (at offset %zu)", msg.c_str(),
                  Peek().offset));
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<SensorInfo>> ParseSensorRegistry(const std::string& text) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, expr::Tokenize(text));
  RegistryParser parser(tokens);
  return parser.Parse();
}

}  // namespace sl::pubsub
