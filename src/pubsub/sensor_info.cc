#include "pubsub/sensor_info.h"

#include "util/strings.h"

namespace sl::pubsub {

std::string SensorInfo::ToString() const {
  std::string out = StrFormat("sensor %s type=%s period=%s", id.c_str(),
                              type.c_str(), FormatDuration(period).c_str());
  if (location.has_value()) {
    out += " loc=" + location->ToString();
  }
  if (schema != nullptr) {
    out += " schema=" + schema->ToString();
  }
  if (!node_id.empty()) {
    out += " node=" + node_id;
  }
  return out;
}

const PropertyRange* SensorInfo::RangeOf(const std::string& property) const {
  for (const PropertyRange& r : ranges) {
    if (r.property == property) return &r;
  }
  return nullptr;
}

Status ValidateSensorInfo(const SensorInfo& info) {
  if (!IsIdentifier(info.id)) {
    return Status::InvalidArgument("sensor id '" + info.id +
                                   "' is not a valid identifier");
  }
  if (info.type.empty()) {
    return Status::InvalidArgument("sensor '" + info.id + "' has no type");
  }
  if (info.schema == nullptr) {
    return Status::InvalidArgument("sensor '" + info.id + "' has no schema");
  }
  if (info.period <= 0) {
    return Status::InvalidArgument(
        StrFormat("sensor '%s' has non-positive period %lld ms",
                  info.id.c_str(), static_cast<long long>(info.period)));
  }
  for (const PropertyRange& r : info.ranges) {
    if (!info.schema->HasField(r.property)) {
      return Status::InvalidArgument(
          StrFormat("sensor '%s' declares a range for unknown property '%s'",
                    info.id.c_str(), r.property.c_str()));
    }
    size_t idx = *info.schema->FieldIndex(r.property);
    stt::ValueType t = info.schema->fields()[idx].type;
    if (t != stt::ValueType::kInt && t != stt::ValueType::kDouble) {
      return Status::InvalidArgument(
          StrFormat("sensor '%s' declares a range for non-numeric "
                    "property '%s'",
                    info.id.c_str(), r.property.c_str()));
    }
    if (!(r.lo <= r.hi)) {
      return Status::InvalidArgument(
          StrFormat("sensor '%s' property '%s' range is empty (%g > %g)",
                    info.id.c_str(), r.property.c_str(), r.lo, r.hi));
    }
  }
  if (info.max_delay < 0) {
    return Status::InvalidArgument("sensor '" + info.id +
                                   "' has negative max_delay");
  }
  if (!info.provides_location && !info.location.has_value()) {
    return Status::InvalidArgument(
        "sensor '" + info.id +
        "' provides no tuple locations and has no installation point for "
        "pub/sub enrichment");
  }
  return Status::OK();
}

}  // namespace sl::pubsub
