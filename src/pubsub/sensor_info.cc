#include "pubsub/sensor_info.h"

#include "util/strings.h"

namespace sl::pubsub {

std::string SensorInfo::ToString() const {
  std::string out = StrFormat("sensor %s type=%s period=%s", id.c_str(),
                              type.c_str(), FormatDuration(period).c_str());
  if (location.has_value()) {
    out += " loc=" + location->ToString();
  }
  if (schema != nullptr) {
    out += " schema=" + schema->ToString();
  }
  if (!node_id.empty()) {
    out += " node=" + node_id;
  }
  return out;
}

Status ValidateSensorInfo(const SensorInfo& info) {
  if (!IsIdentifier(info.id)) {
    return Status::InvalidArgument("sensor id '" + info.id +
                                   "' is not a valid identifier");
  }
  if (info.type.empty()) {
    return Status::InvalidArgument("sensor '" + info.id + "' has no type");
  }
  if (info.schema == nullptr) {
    return Status::InvalidArgument("sensor '" + info.id + "' has no schema");
  }
  if (info.period <= 0) {
    return Status::InvalidArgument(
        StrFormat("sensor '%s' has non-positive period %lld ms",
                  info.id.c_str(), static_cast<long long>(info.period)));
  }
  if (!info.provides_location && !info.location.has_value()) {
    return Status::InvalidArgument(
        "sensor '" + info.id +
        "' provides no tuple locations and has no installation point for "
        "pub/sub enrichment");
  }
  return Status::OK();
}

}  // namespace sl::pubsub
