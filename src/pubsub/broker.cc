#include "pubsub/broker.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace sl::pubsub {

bool DiscoveryQuery::Matches(const SensorInfo& info) const {
  if (!type.empty() && info.type != type) return false;
  if (!theme.IsAny()) {
    if (info.schema == nullptr) return false;
    if (!theme.Subsumes(info.schema->theme())) return false;
  }
  if (area.has_value()) {
    if (!info.location.has_value()) return false;
    if (!area->Contains(*info.location)) return false;
  }
  if (max_period > 0 && info.period > max_period) return false;
  if (!node_id.empty() && info.node_id != node_id) return false;
  return true;
}

std::string DiscoveryQuery::ToString() const {
  std::string out = "discover[";
  std::vector<std::string> parts;
  if (!type.empty()) parts.push_back("type=" + type);
  if (!theme.IsAny()) parts.push_back("theme=" + theme.ToString());
  if (area.has_value()) parts.push_back("area=" + area->ToString());
  if (max_period > 0)
    parts.push_back("max_period=" + FormatDuration(max_period));
  if (!node_id.empty()) parts.push_back("node=" + node_id);
  out += Join(parts, ", ");
  out += "]";
  return out;
}

Status Broker::Publish(const SensorInfo& info) {
  SL_RETURN_IF_ERROR(ValidateSensorInfo(info));
  if (sensors_.count(info.id) > 0) {
    return Status::AlreadyExists("sensor '" + info.id +
                                 "' is already published");
  }
  sensors_.emplace(info.id, info);
  SL_LOG(kInfo) << "published " << info.ToString();
  NotifyRegistry({SensorEvent::Kind::kPublished, info, clock_->Now()});
  return Status::OK();
}

Status Broker::Unpublish(const std::string& sensor_id) {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor '" + sensor_id + "' is not published");
  }
  SensorInfo info = it->second;
  sensors_.erase(it);
  data_subs_.erase(sensor_id);
  SL_LOG(kInfo) << "unpublished sensor " << sensor_id;
  NotifyRegistry({SensorEvent::Kind::kUnpublished, info, clock_->Now()});
  return Status::OK();
}

Result<SensorInfo> Broker::Find(const std::string& sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor '" + sensor_id + "' is not published");
  }
  return it->second;
}

bool Broker::IsPublished(const std::string& sensor_id) const {
  return sensors_.count(sensor_id) > 0;
}

std::vector<SensorInfo> Broker::Discover(const DiscoveryQuery& query) const {
  std::vector<SensorInfo> out;
  for (const auto& [id, info] : sensors_) {
    if (query.Matches(info)) out.push_back(info);
  }
  return out;
}

std::vector<SensorInfo> Broker::All() const {
  return Discover(DiscoveryQuery{});
}

std::map<std::string, std::vector<std::string>> Broker::GroupBy(
    GroupCriterion criterion) const {
  std::map<std::string, std::vector<std::string>> groups;
  for (const auto& [id, info] : sensors_) {
    std::string key;
    switch (criterion) {
      case GroupCriterion::kType:
        key = info.type;
        break;
      case GroupCriterion::kTheme:
        key = info.schema != nullptr ? info.schema->theme().ToString() : "*";
        break;
      case GroupCriterion::kNode:
        key = info.node_id.empty() ? "(unassigned)" : info.node_id;
        break;
      case GroupCriterion::kOwner:
        key = info.owner.empty() ? "(unknown)" : info.owner;
        break;
      case GroupCriterion::kPeriod:
        key = FormatDuration(info.period);
        break;
      case GroupCriterion::kSpatialCell:
        if (info.location.has_value()) {
          key = StrFormat("cell(%d,%d)",
                          static_cast<int>(std::floor(info.location->lat)),
                          static_cast<int>(std::floor(info.location->lon)));
        } else {
          key = "(no location)";
        }
        break;
    }
    groups[key].push_back(id);
  }
  return groups;
}

Broker::SubscriptionId Broker::SubscribeRegistry(RegistryCallback callback) {
  SubscriptionId id = next_subscription_id_++;
  registry_subs_.emplace(id, std::move(callback));
  return id;
}

Result<Broker::SubscriptionId> Broker::SubscribeData(
    const std::string& sensor_id, DataCallback callback) {
  if (sensors_.count(sensor_id) == 0) {
    return Status::NotFound("cannot subscribe: sensor '" + sensor_id +
                            "' is not published");
  }
  SubscriptionId id = next_subscription_id_++;
  data_subs_[sensor_id].push_back({id, std::move(callback)});
  return id;
}

Broker::SubscriptionId Broker::SubscribeDataByQuery(DiscoveryQuery query,
                                                    DataCallback callback) {
  SubscriptionId id = next_subscription_id_++;
  query_subs_.push_back({id, std::move(query), std::move(callback)});
  return id;
}

void Broker::Unsubscribe(SubscriptionId id) {
  registry_subs_.erase(id);
  for (auto& [sensor, subs] : data_subs_) {
    subs.erase(std::remove_if(subs.begin(), subs.end(),
                              [id](const DataSub& s) { return s.id == id; }),
               subs.end());
  }
  query_subs_.erase(
      std::remove_if(query_subs_.begin(), query_subs_.end(),
                     [id](const QuerySub& s) { return s.id == id; }),
      query_subs_.end());
}

Status Broker::PublishTuple(const std::string& sensor_id,
                            stt::TupleRef tuple) {
  if (tuple == nullptr) return Status::InvalidArgument("null tuple");
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("tuple from unpublished sensor '" + sensor_id +
                            "'");
  }
  const SensorInfo& info = it->second;

  // Fault injection: a sensor managed by a crashed node cannot deliver.
  if (node_gate_ && !info.node_id.empty() && !node_gate_(info.node_id)) {
    ++tuples_suppressed_;
    return Status::OK();
  }

  // STT enrichment (§3): add the spatio-temporal information the sensor
  // cannot produce itself, then normalize event time to the stream's
  // temporal granularity.
  Timestamp ts = info.provides_timestamp ? tuple->timestamp() : clock_->Now();
  std::optional<stt::GeoPoint> loc =
      info.provides_location ? tuple->location() : info.location;
  if (!loc.has_value() && info.location.has_value()) loc = info.location;
  if (info.schema != nullptr) {
    ts = info.schema->temporal_granularity().Truncate(ts);
    if (loc.has_value() &&
        !info.schema->spatial_granularity().is_point()) {
      loc->lat = info.schema->spatial_granularity().SnapToCellCenter(loc->lat);
      loc->lon = info.schema->spatial_granularity().SnapToCellCenter(loc->lon);
    }
  }
  // Forward the incoming ref unchanged when enrichment would not alter the
  // header; otherwise mint one enriched tuple shared by all subscribers.
  const bool header_unchanged =
      ts == tuple->timestamp() &&
      loc.has_value() == tuple->location().has_value() &&
      (!loc.has_value() || (loc->lat == tuple->location()->lat &&
                            loc->lon == tuple->location()->lon));
  stt::TupleRef enriched =
      header_unchanged ? tuple : tuple->WithStt(tuple->schema(), ts, loc);
  ++tuples_ingested_;

  // Mint the sensor's low-watermark from the enriched event time: every
  // delivery below carries at most this promise, and sensors emit with
  // (mostly) monotone event times, so the max seen so far is the stream's
  // frontier.
  auto wm_it = watermarks_.find(sensor_id);
  if (wm_it == watermarks_.end()) {
    watermarks_.emplace(sensor_id, ts);
  } else if (ts > wm_it->second) {
    wm_it->second = ts;
  }

  auto subs_it = data_subs_.find(sensor_id);
  if (subs_it != data_subs_.end()) {
    // Copy: a callback may (un)subscribe re-entrantly.
    std::vector<DataSub> subs = subs_it->second;
    for (const auto& sub : subs) {
      sub.callback(enriched);
      ++tuples_delivered_;
    }
  }
  // Content-based routing: deliver to every query subscription the
  // producing sensor matches (including sensors published after the
  // subscription was made).
  if (!query_subs_.empty()) {
    std::vector<QuerySub> q_subs = query_subs_;  // re-entrancy, as above
    for (const auto& sub : q_subs) {
      if (sub.query.Matches(info)) {
        sub.callback(enriched);
        ++tuples_delivered_;
      }
    }
  }
  return Status::OK();
}

Timestamp Broker::WatermarkOf(const std::string& sensor_id) const {
  auto it = watermarks_.find(sensor_id);
  return it == watermarks_.end() ? stt::kNoWatermark : it->second;
}

Timestamp Broker::WatermarkOf(const DiscoveryQuery& query) const {
  Timestamp low = stt::kNoWatermark;
  bool any = false;
  for (const auto& [id, info] : sensors_) {
    if (!query.Matches(info)) continue;
    Timestamp wm = WatermarkOf(id);
    if (wm == stt::kNoWatermark) return stt::kNoWatermark;
    if (!any || wm < low) low = wm;
    any = true;
  }
  return any ? low : stt::kNoWatermark;
}

void Broker::NotifyRegistry(const SensorEvent& event) {
  // Copy: a callback may subscribe/unsubscribe re-entrantly.
  auto subs = registry_subs_;
  for (const auto& [id, cb] : subs) cb(event);
}

}  // namespace sl::pubsub
