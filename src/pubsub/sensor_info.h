// StreamLoader: published sensor metadata.
//
// "Each time a sensor is published, its type, schema, and frequency of
// data generation are made available to subscribers" (§3). SensorInfo is
// that advertisement, extended with the location/provenance attributes
// the discovery requirements of §2 call for.

#ifndef STREAMLOADER_PUBSUB_SENSOR_INFO_H_
#define STREAMLOADER_PUBSUB_SENSOR_INFO_H_

#include <optional>
#include <string>
#include <vector>

#include "stt/geo.h"
#include "stt/schema.h"
#include "util/clock.h"

namespace sl::pubsub {

/// \brief Declared physical bounds of one numeric schema property.
/// Advisory metadata for static analysis (sl-analyze seeds its interval
/// domain from these); the runtime never enforces them.
struct PropertyRange {
  std::string property;  ///< schema field name (must be numeric)
  double lo = 0;
  double hi = 0;
};

/// \brief The advertisement a sensor publishes when joining the network.
struct SensorInfo {
  /// Unique sensor identifier, e.g. "osaka_temp_03".
  std::string id;

  /// Sensor type, e.g. "temperature", "rain", "tweet", "traffic".
  std::string type;

  /// Schema of the tuples this sensor produces, including the STT
  /// granularities and theme.
  stt::SchemaPtr schema;

  /// Period between consecutive tuples (the published "frequency of data
  /// generation"); must be > 0.
  Duration period = duration::kSecond;

  /// Fixed installation point, when the sensor has one. Mobile/social
  /// sensors may have none.
  std::optional<stt::GeoPoint> location;

  /// Institute / agency / NPO making the sensor available (§1).
  std::string owner;

  /// Whether the sensor stamps its own tuples with event time; when
  /// false, the pub/sub layer adds arrival time (§3).
  bool provides_timestamp = true;

  /// Whether tuples carry their own location; when false, the pub/sub
  /// layer adds the sensor's installation point (§3).
  bool provides_location = true;

  /// Network node managing this sensor (Figure 1: "each node ... is in
  /// charge of managing a bunch of sensors").
  std::string node_id;

  /// Declared value ranges for numeric schema properties (analysis
  /// metadata; properties without a declared range are unbounded).
  std::vector<PropertyRange> ranges;

  /// Worst-case delivery delay the publisher vouches for (0 = none
  /// declared). Event-time operators whose bounded lateness is smaller
  /// than this can silently drop in-contract tuples (SL4006).
  Duration max_delay = 0;

  /// The declared range for `property`, if any.
  const PropertyRange* RangeOf(const std::string& property) const;

  /// One-line rendering for logs and the design environment.
  std::string ToString() const;
};

/// \brief Validates that an advertisement is complete enough to publish.
Status ValidateSensorInfo(const SensorInfo& info);

}  // namespace sl::pubsub

#endif  // STREAMLOADER_PUBSUB_SENSOR_INFO_H_
