// StreamLoader: the publish/subscribe sensor layer.
//
// Sensors are "handled by means of a publish-subscribe system in order to
// handle the dynamicity with which they can join and leave the network"
// (§2). The Broker keeps the registry of currently published sensors,
// answers discovery queries, notifies registry subscribers of join/leave
// events, fans tuples out to data subscribers, and enriches tuples with
// spatio-temporal information when the producing sensor cannot supply it
// (§3).
//
// The paper's broker is a *distributed* event-routing system [3]; here a
// single Broker instance serves the network simulator, with per-node
// attribution preserved through SensorInfo::node_id (see DESIGN.md §2 on
// substitutions).

#ifndef STREAMLOADER_PUBSUB_BROKER_H_
#define STREAMLOADER_PUBSUB_BROKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/sensor_info.h"
#include "stt/theme.h"
#include "stt/tuple.h"
#include "stt/watermark.h"
#include "util/clock.h"

namespace sl::pubsub {

/// Registry change notification.
struct SensorEvent {
  enum class Kind { kPublished, kUnpublished };
  Kind kind;
  SensorInfo info;
  Timestamp at = 0;
};

/// \brief Discovery predicate: all set criteria must match
/// ("sources ... specified by means of the sensor and location
/// characteristics", §2).
struct DiscoveryQuery {
  /// Exact sensor type; empty matches any.
  std::string type;
  /// Thematic filter by subsumption; the default any-theme matches all.
  stt::Theme theme;
  /// Spatial filter: the sensor's installation point must fall in the
  /// area. Sensors without a fixed location never match an area query.
  std::optional<stt::BBox> area;
  /// Maximum data-generation period (i.e. minimum frequency); 0 = any.
  Duration max_period = 0;
  /// Restrict to sensors managed by this node; empty = any.
  std::string node_id;

  bool Matches(const SensorInfo& info) const;
  std::string ToString() const;
};

/// Criteria for organizing sensors in the design environment
/// ("organized according to different criteria (temporal/spatial,
/// type/location)", §2).
enum class GroupCriterion {
  kType,
  kTheme,
  kNode,
  kOwner,
  kPeriod,       ///< by published generation period
  kSpatialCell,  ///< by 1-degree grid cell of the installation point
};

/// \brief The sensor registry + event router.
class Broker {
 public:
  using SubscriptionId = uint64_t;
  using RegistryCallback = std::function<void(const SensorEvent&)>;
  using DataCallback = std::function<void(const stt::TupleRef&)>;

  /// `clock` supplies arrival timestamps for enrichment; must outlive the
  /// broker.
  explicit Broker(const VirtualClock* clock) : clock_(clock) {}

  // -- control plane ------------------------------------------------------

  /// Publishes a sensor (it joins the network). Fails on invalid
  /// metadata or duplicate id.
  Status Publish(const SensorInfo& info);

  /// Unpublishes a sensor (it leaves). Data subscriptions to it are
  /// dropped; registry subscribers are notified.
  Status Unpublish(const std::string& sensor_id);

  /// Metadata of a published sensor.
  Result<SensorInfo> Find(const std::string& sensor_id) const;

  /// True iff the sensor is currently published.
  bool IsPublished(const std::string& sensor_id) const;

  /// All sensors matching the query, ordered by id.
  std::vector<SensorInfo> Discover(const DiscoveryQuery& query) const;

  /// All published sensors, ordered by id.
  std::vector<SensorInfo> All() const;

  /// Number of published sensors.
  size_t size() const { return sensors_.size(); }

  /// Groups published sensor ids by the given criterion; the map key is
  /// the group label shown in the design environment.
  std::map<std::string, std::vector<std::string>> GroupBy(
      GroupCriterion criterion) const;

  /// Subscribes to registry changes (join/leave).
  SubscriptionId SubscribeRegistry(RegistryCallback callback);

  // -- data plane ---------------------------------------------------------

  /// Subscribes to the tuples of one sensor. Fails when the sensor is
  /// not published.
  Result<SubscriptionId> SubscribeData(const std::string& sensor_id,
                                       DataCallback callback);

  /// \brief Subscribes to the tuples of *every* sensor matching `query`
  /// — including sensors that join later (the essence of content-based
  /// publish/subscribe routing [3]). Sensors leaving simply stop
  /// producing; the subscription persists.
  SubscriptionId SubscribeDataByQuery(DiscoveryQuery query,
                                      DataCallback callback);

  /// Cancels a registry or data subscription (idempotent).
  void Unsubscribe(SubscriptionId id);

  /// \brief Ingest one tuple from a sensor and fan it out to that
  /// sensor's data subscribers, enriching the STT header first:
  /// - sensors with provides_timestamp == false get the broker clock's
  ///   current time;
  /// - sensors with provides_location == false get the sensor's
  ///   installation point;
  /// - the event time is truncated to the schema's temporal granularity.
  /// Fails when the sensor is not published. Every subscriber receives the
  /// same shared (enriched) tuple; when enrichment is a no-op the incoming
  /// ref is forwarded unchanged.
  Status PublishTuple(const std::string& sensor_id, stt::TupleRef tuple);

  /// Convenience for producers still holding a tuple by value.
  Status PublishTuple(const std::string& sensor_id, stt::Tuple tuple) {
    return PublishTuple(sensor_id, stt::Tuple::Share(std::move(tuple)));
  }

  /// \brief Optional node-liveness gate (fault injection): when set,
  /// tuples from a sensor pinned to a node for which the gate returns
  /// false are silently suppressed — a crashed node's sensors stop
  /// feeding flows until the node restarts. Typically wired to
  /// net::Network::NodeIsUp. Sensors without a node binding are never
  /// gated. Pass nullptr to remove the gate.
  using NodeGate = std::function<bool(const std::string& node_id)>;
  void set_node_gate(NodeGate gate) { node_gate_ = std::move(gate); }

  // -- event time ---------------------------------------------------------

  /// \brief Low-watermark of one sensor's stream: the highest enriched
  /// (granularity-truncated) event time the broker has fanned out for it.
  /// The broker is the enrichment point (§3), so it is the one place
  /// that sees every tuple of a sensor before any delivery — making this
  /// the natural watermark mint. stt::kNoWatermark until the sensor has
  /// produced. Suppressed tuples (node gate) do not advance it.
  Timestamp WatermarkOf(const std::string& sensor_id) const;

  /// \brief Low-watermark of a query subscription's merged stream: the
  /// minimum over all currently published sensors matching `query`.
  /// stt::kNoWatermark when no sensor matches or any matching sensor has
  /// not produced yet — a merged stream can promise no more than its
  /// slowest member.
  Timestamp WatermarkOf(const DiscoveryQuery& query) const;

  // -- statistics ---------------------------------------------------------

  /// Tuples ingested via PublishTuple since construction.
  uint64_t tuples_ingested() const { return tuples_ingested_; }
  /// Tuple deliveries to data subscribers (one per subscriber per tuple).
  uint64_t tuples_delivered() const { return tuples_delivered_; }
  /// Tuples suppressed by the node-liveness gate (crashed-node sensors).
  uint64_t tuples_suppressed() const { return tuples_suppressed_; }

 private:
  struct DataSub {
    SubscriptionId id;
    DataCallback callback;
  };

  struct QuerySub {
    SubscriptionId id;
    DiscoveryQuery query;
    DataCallback callback;
  };

  const VirtualClock* clock_;
  std::map<std::string, SensorInfo> sensors_;
  std::map<std::string, Timestamp> watermarks_;  // by sensor id
  std::map<std::string, std::vector<DataSub>> data_subs_;  // by sensor id
  std::vector<QuerySub> query_subs_;
  std::map<SubscriptionId, RegistryCallback> registry_subs_;
  SubscriptionId next_subscription_id_ = 1;
  uint64_t tuples_ingested_ = 0;
  uint64_t tuples_delivered_ = 0;
  uint64_t tuples_suppressed_ = 0;
  NodeGate node_gate_;

  void NotifyRegistry(const SensorEvent& event);
};

}  // namespace sl::pubsub

#endif  // STREAMLOADER_PUBSUB_BROKER_H_
