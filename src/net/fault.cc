#include "net/fault.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strings.h"

namespace sl::net {

std::string FaultEvent::ToString() const {
  switch (kind) {
    case Kind::kCrashNode:
      return StrFormat("%s  CRASH %s", FormatTimestamp(at).c_str(), a.c_str());
    case Kind::kRestartNode:
      return StrFormat("%s  RESTART %s", FormatTimestamp(at).c_str(),
                       a.c_str());
    case Kind::kCutLink:
      return StrFormat("%s  CUT %s--%s", FormatTimestamp(at).c_str(),
                       a.c_str(), b.c_str());
    case Kind::kHealLink:
      return StrFormat("%s  HEAL %s--%s", FormatTimestamp(at).c_str(),
                       a.c_str(), b.c_str());
  }
  return "?";
}

FaultPlan& FaultPlan::set_link_profile(const std::string& a,
                                       const std::string& b,
                                       const FaultProfile& profile) {
  link_profiles_[Canonical(a, b)] = profile;
  return *this;
}

const FaultProfile& FaultPlan::link_profile(const std::string& a,
                                            const std::string& b) const {
  auto it = link_profiles_.find(Canonical(a, b));
  return it != link_profiles_.end() ? it->second : default_profile_;
}

FaultPlan& FaultPlan::CrashNode(const std::string& id, Timestamp at) {
  events_.push_back({FaultEvent::Kind::kCrashNode, at, id, ""});
  return *this;
}

FaultPlan& FaultPlan::RestartNode(const std::string& id, Timestamp at) {
  events_.push_back({FaultEvent::Kind::kRestartNode, at, id, ""});
  return *this;
}

FaultPlan& FaultPlan::CutLink(const std::string& a, const std::string& b,
                              Timestamp at) {
  events_.push_back({FaultEvent::Kind::kCutLink, at, a, b});
  return *this;
}

FaultPlan& FaultPlan::HealLink(const std::string& a, const std::string& b,
                               Timestamp at) {
  events_.push_back({FaultEvent::Kind::kHealLink, at, a, b});
  return *this;
}

bool FaultPlan::IsZero() const {
  if (!events_.empty()) return false;
  if (!default_profile_.IsZero()) return false;
  return std::all_of(link_profiles_.begin(), link_profiles_.end(),
                     [](const auto& kv) { return kv.second.IsZero(); });
}

std::string FaultPlan::ToString() const {
  std::string out = StrFormat("fault plan (seed %llu)\n",
                              static_cast<unsigned long long>(seed_));
  auto profile_line = [](const std::string& label, const FaultProfile& p) {
    return StrFormat(
        "  %s: drop %.3f dup %.3f delay %.3f (max +%s)\n", label.c_str(),
        p.drop_probability, p.duplicate_probability, p.delay_probability,
        FormatDuration(p.max_extra_delay).c_str());
  };
  out += profile_line("default", default_profile_);
  for (const auto& [link, profile] : link_profiles_) {
    out += profile_line(link.first + "--" + link.second, profile);
  }
  for (const auto& event : events_) out += "  " + event.ToString() + "\n";
  return out;
}

FaultPlan MakeRandomFaultPlan(
    uint64_t seed, const std::vector<std::string>& node_ids,
    const std::vector<std::pair<std::string, std::string>>& links,
    const RandomFaultOptions& options) {
  FaultPlan plan(seed);
  Rng rng(seed);

  FaultProfile profile;
  profile.drop_probability = rng.NextDouble(0, options.max_drop_probability);
  profile.duplicate_probability =
      rng.NextDouble(0, options.max_duplicate_probability);
  profile.delay_probability =
      rng.NextDouble(0, options.max_delay_probability);
  profile.max_extra_delay =
      options.max_extra_delay > 0 ? rng.NextInt(1, options.max_extra_delay)
                                  : 0;
  plan.set_default_profile(profile);

  // Crashes: spare node_ids[0] so the executor always has a live anchor
  // to recover onto; every crash restarts 2–10 s later.
  if (node_ids.size() > 1 && options.max_crashes > 0) {
    int crashes = static_cast<int>(rng.NextInt(0, options.max_crashes));
    for (int i = 0; i < crashes; ++i) {
      const std::string& victim =
          node_ids[rng.NextInt(1, static_cast<int64_t>(node_ids.size()) - 1)];
      Timestamp at = rng.NextInt(options.horizon / 10, options.horizon / 2);
      plan.CrashNode(victim, at);
      plan.RestartNode(victim,
                       at + rng.NextInt(2 * duration::kSecond,
                                        10 * duration::kSecond));
    }
  }

  // Link cuts: partition a random link for 1–5 s.
  if (!links.empty() && options.max_link_cuts > 0) {
    int cuts = static_cast<int>(rng.NextInt(0, options.max_link_cuts));
    for (int i = 0; i < cuts; ++i) {
      const auto& link =
          links[rng.NextBounded(static_cast<uint64_t>(links.size()))];
      Timestamp at = rng.NextInt(options.horizon / 10, options.horizon / 2);
      plan.CutLink(link.first, link.second, at);
      plan.HealLink(link.first, link.second,
                    at + rng.NextInt(1 * duration::kSecond,
                                     5 * duration::kSecond));
    }
  }
  return plan;
}

FaultPlan MakeDelayOnlyFaultPlan(uint64_t seed, Duration max_extra_delay,
                                 double delay_probability) {
  FaultPlan plan(seed);
  FaultProfile profile;
  profile.delay_probability = delay_probability;
  profile.max_extra_delay = max_extra_delay;
  plan.set_default_profile(profile);
  return plan;
}

}  // namespace sl::net
