#include "net/event_loop.h"

#include <limits>
#include <utility>

namespace sl::net {

EventLoop::TimerId EventLoop::Schedule(Timestamp at, Callback fn) {
  if (at < clock_.Now()) at = clock_.Now();
  TimerId id = next_id_++;
  entries_.emplace(id, Entry{std::move(fn), 0});
  queue_.push({at, next_seq_++, id});
  return id;
}

EventLoop::TimerId EventLoop::ScheduleAfter(Duration delay, Callback fn) {
  if (delay < 0) delay = 0;
  return Schedule(clock_.Now() + delay, std::move(fn));
}

EventLoop::TimerId EventLoop::SchedulePeriodic(Duration period, Callback fn,
                                               Timestamp first_at) {
  if (period <= 0) period = 1;
  if (first_at < 0) first_at = clock_.Now() + period;
  if (first_at < clock_.Now()) first_at = clock_.Now();
  TimerId id = next_id_++;
  entries_.emplace(id, Entry{std::move(fn), period});
  queue_.push({first_at, next_seq_++, id});
  return id;
}

bool EventLoop::Cancel(TimerId id) {
  // Lazy deletion: the queue item is skipped when popped.
  return entries_.erase(id) > 0;
}

bool EventLoop::RunOne(Timestamp limit) {
  while (!queue_.empty()) {
    QueueItem item = queue_.top();
    auto it = entries_.find(item.id);
    if (it == entries_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    if (item.at > limit) return false;
    queue_.pop();
    clock_.AdvanceTo(item.at);
    if (it->second.period > 0) {
      // Re-arm before running so the callback can Cancel() itself.
      queue_.push({item.at + it->second.period, next_seq_++, item.id});
      Callback& fn = it->second.fn;
      ++events_executed_;
      fn();
    } else {
      Callback fn = std::move(it->second.fn);
      entries_.erase(it);
      ++events_executed_;
      fn();
    }
    return true;
  }
  return false;
}

size_t EventLoop::RunUntil(Timestamp until) {
  size_t n = 0;
  while (RunOne(until)) ++n;
  clock_.AdvanceTo(until);
  return n;
}

size_t EventLoop::RunFor(Duration d) { return RunUntil(clock_.Now() + d); }

size_t EventLoop::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne(std::numeric_limits<Timestamp>::max())) ++n;
  return n;
}

}  // namespace sl::net
