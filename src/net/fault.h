// StreamLoader: deterministic fault injection for the programmable
// network.
//
// The paper's DSN/SCN deployment (§3) assumes nodes and links that can
// degrade at run time. A FaultPlan describes, ahead of a run, exactly
// *how* the simulated network misbehaves: per-link message corruption
// profiles (drop / duplicate / delay) and a schedule of topology events
// (node crash/restart, link cut/heal) pinned to virtual timestamps.
//
// Determinism: a plan carries a single seed. The Network derives its
// fault RNG from that seed and consumes it strictly in event-loop order,
// so on the single-threaded virtual clock two runs of the same seed are
// bit-for-bit identical — which is what makes the seed-replayable chaos
// harness in tests/test_util.h possible.

#ifndef STREAMLOADER_NET_FAULT_H_
#define STREAMLOADER_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace sl::net {

/// \brief Per-link message corruption probabilities. Each message
/// attempt rolls independently per traversed link.
struct FaultProfile {
  /// Probability the message vanishes on the link.
  double drop_probability = 0;
  /// Probability the link delivers the message twice (receivers of
  /// reliable transfers deduplicate).
  double duplicate_probability = 0;
  /// Probability the message is delayed beyond the modelled latency.
  double delay_probability = 0;
  /// Extra delay when delayed: uniform in [1, max_extra_delay] ms.
  Duration max_extra_delay = 0;

  bool IsZero() const {
    return drop_probability <= 0 && duplicate_probability <= 0 &&
           (delay_probability <= 0 || max_extra_delay <= 0);
  }
};

/// \brief One scheduled topology fault, applied at virtual time `at`.
struct FaultEvent {
  enum class Kind {
    kCrashNode,    ///< node goes down; its messages are lost
    kRestartNode,  ///< node comes back up (state was lost)
    kCutLink,      ///< link partitions; routing avoids it
    kHealLink,     ///< link carries traffic again
  };
  Kind kind = Kind::kCrashNode;
  Timestamp at = 0;
  std::string a;  ///< node id, or first link endpoint
  std::string b;  ///< second link endpoint (link events only)

  std::string ToString() const;
};

/// \brief A replayable script of network faults.
///
/// Install with Network::InstallFaultPlan. Profiles apply to message
/// attempts; events fire on the event loop at their virtual times.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Profile for links without a specific one (defaults to no faults).
  FaultPlan& set_default_profile(const FaultProfile& profile) {
    default_profile_ = profile;
    return *this;
  }
  const FaultProfile& default_profile() const { return default_profile_; }

  /// Profile for the link between `a` and `b` (order-insensitive).
  FaultPlan& set_link_profile(const std::string& a, const std::string& b,
                              const FaultProfile& profile);

  /// The profile governing link `a`--`b`.
  const FaultProfile& link_profile(const std::string& a,
                                   const std::string& b) const;

  // -- scheduled events ---------------------------------------------------

  FaultPlan& CrashNode(const std::string& id, Timestamp at);
  FaultPlan& RestartNode(const std::string& id, Timestamp at);
  FaultPlan& CutLink(const std::string& a, const std::string& b,
                     Timestamp at);
  FaultPlan& HealLink(const std::string& a, const std::string& b,
                      Timestamp at);

  const std::vector<FaultEvent>& events() const { return events_; }

  /// True when the plan injects nothing: no events and all-zero
  /// profiles. A zero plan wrapped around a run must reproduce the
  /// unwrapped baseline exactly (chaos_test property).
  bool IsZero() const;

  /// Human-readable dump for failing-seed diagnostics.
  std::string ToString() const;

 private:
  static std::pair<std::string, std::string> Canonical(const std::string& a,
                                                       const std::string& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  uint64_t seed_;
  FaultProfile default_profile_;
  std::map<std::pair<std::string, std::string>, FaultProfile> link_profiles_;
  std::vector<FaultEvent> events_;
};

/// \brief Knobs for MakeRandomFaultPlan.
struct RandomFaultOptions {
  /// Virtual-time window the plan covers.
  Duration horizon = 60 * duration::kSecond;
  /// Upper bounds for the uniformly drawn default link profile.
  double max_drop_probability = 0.05;
  double max_duplicate_probability = 0.02;
  double max_delay_probability = 0.10;
  Duration max_extra_delay = 200;
  /// Node crashes drawn in [0, max_crashes]; every crash gets a restart
  /// 2–10 s later. The first node id is never crashed so placement (and
  /// the chaos invariants) always have a live anchor.
  int max_crashes = 2;
  /// Link cuts drawn in [0, max_link_cuts]; every cut heals 1–5 s later.
  int max_link_cuts = 2;
};

/// \brief Derives a whole chaos scenario from one seed: a randomized
/// default link profile plus crash/restart and cut/heal schedules over
/// the given topology. Same seed + same topology ⇒ same plan.
FaultPlan MakeRandomFaultPlan(
    uint64_t seed, const std::vector<std::string>& node_ids,
    const std::vector<std::pair<std::string, std::string>>& links,
    const RandomFaultOptions& options = {});

/// \brief A delay-only plan: every link reorders messages (extra delay
/// uniform in [1, max_extra_delay] ms with probability
/// `delay_probability`) but never drops or duplicates, and the topology
/// stays intact. The workhorse of the event-time order-independence
/// oracle: under TimePolicy::kEvent with sufficient allowed lateness, a
/// delay-only run must produce exactly the zero-fault run's window
/// outputs (tests/order_independence_test.cpp).
FaultPlan MakeDelayOnlyFaultPlan(uint64_t seed, Duration max_extra_delay,
                                 double delay_probability = 0.5);

}  // namespace sl::net

#endif  // STREAMLOADER_NET_FAULT_H_
