#include "net/topology_text.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "expr/lexer.h"
#include "util/strings.h"

namespace sl::net {

using expr::Token;
using expr::TokenKind;

namespace {

constexpr double kBytesPerMsPerMbps = 125.0;  // 1 Mbps = 125 B/ms

/// Small recursive-descent parser over the shared lexical grammar.
class TopologyParser {
 public:
  explicit TopologyParser(const std::vector<Token>& tokens)
      : tokens_(tokens) {}

  Status Parse(std::vector<NodeConfig>* nodes, std::vector<LinkConfig>* links) {
    SL_RETURN_IF_ERROR(ExpectKeyword("network"));
    SL_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    (void)name;
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (Peek().kind != TokenKind::kRBrace) {
      if (IsKeyword("node")) {
        SL_ASSIGN_OR_RETURN(NodeConfig node, ParseNode());
        nodes->push_back(std::move(node));
      } else if (IsKeyword("link")) {
        SL_ASSIGN_OR_RETURN(LinkConfig link, ParseLink());
        links->push_back(std::move(link));
      } else {
        return Error("expected 'node' or 'link'");
      }
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after network block");
    }
    return Status::OK();
  }

 private:
  Result<NodeConfig> ParseNode() {
    Advance();  // 'node'
    NodeConfig config;
    SL_ASSIGN_OR_RETURN(config.id, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (Peek().kind != TokenKind::kRBrace) {
      SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
      SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      if (key == "capacity") {
        SL_ASSIGN_OR_RETURN(config.capacity_per_sec, ExpectNumber());
      } else if (key == "location") {
        SL_ASSIGN_OR_RETURN(config.location.lat, ExpectNumber());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        SL_ASSIGN_OR_RETURN(config.location.lon, ExpectNumber());
      } else {
        return Error("unknown node property '" + key + "'");
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return config;
  }

  Result<LinkConfig> ParseLink() {
    Advance();  // 'link'
    LinkConfig config;
    SL_ASSIGN_OR_RETURN(config.a, ExpectIdent());
    SL_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    SL_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    SL_ASSIGN_OR_RETURN(config.b, ExpectIdent());
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      while (Peek().kind != TokenKind::kRBracket) {
        SL_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
        SL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        if (key == "latency") {
          if (Peek().kind == TokenKind::kString) {
            if (!ParseDuration(Peek().text, &config.latency)) {
              return Error("cannot parse latency '" + Peek().text + "'");
            }
            Advance();
          } else {
            SL_ASSIGN_OR_RETURN(double ms, ExpectNumber());
            config.latency = static_cast<Duration>(ms);
          }
        } else if (key == "bandwidth_mbps") {
          SL_ASSIGN_OR_RETURN(double mbps, ExpectNumber());
          config.bandwidth_bytes_per_ms = mbps * kBytesPerMsPerMbps;
        } else {
          return Error("unknown link property '" + key + "'");
        }
        if (Peek().kind == TokenKind::kSemicolon) {
          Advance();
        } else if (Peek().kind != TokenKind::kRBracket) {
          return Error("expected ';' or ']' after link property");
        }
      }
      SL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    }
    SL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return config;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return Error(std::string("expected '") + kw + "'");
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected identifier, got " + Peek().ToString());
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }
  Result<double> ExpectNumber() {
    bool negative = false;
    if (Peek().kind == TokenKind::kMinus) {
      negative = true;
      Advance();
    }
    double v;
    if (Peek().kind == TokenKind::kInt) {
      v = static_cast<double>(Peek().int_value);
    } else if (Peek().kind == TokenKind::kDouble) {
      v = Peek().double_value;
    } else {
      return Error("expected a number, got " + Peek().ToString());
    }
    Advance();
    return negative ? -v : v;
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, got %s",
                             expr::TokenKindToString(kind),
                             Peek().ToString().c_str()));
    }
    Advance();
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(StrFormat("topology: %s (at offset %zu)",
                                        msg.c_str(), Peek().offset));
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Status BuildTopologyFromText(Network* net, const std::string& text) {
  if (net == nullptr) return Status::InvalidArgument("null network");
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, expr::Tokenize(text));
  std::vector<NodeConfig> nodes;
  std::vector<LinkConfig> links;
  TopologyParser parser(tokens);
  SL_RETURN_IF_ERROR(parser.Parse(&nodes, &links));
  // Validate the whole document against existing state before mutating
  // anything, so failures leave the network untouched.
  std::set<std::string> known;
  for (const auto& id : net->NodeIds()) known.insert(id);
  for (const auto& node : nodes) {
    if (!IsIdentifier(node.id) || node.capacity_per_sec <= 0) {
      return Status::InvalidArgument("invalid node '" + node.id + "'");
    }
    if (!known.insert(node.id).second) {
      return Status::AlreadyExists("node '" + node.id +
                                   "' already exists in the network");
    }
  }
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& link : net->links()) {
    edges.insert({std::min(link.config.a, link.config.b),
                  std::max(link.config.a, link.config.b)});
  }
  for (const auto& link : links) {
    if (known.count(link.a) == 0 || known.count(link.b) == 0) {
      return Status::NotFound(StrFormat("link %s -- %s references an unknown node",
                                        link.a.c_str(), link.b.c_str()));
    }
    if (link.a == link.b || link.latency < 0 ||
        link.bandwidth_bytes_per_ms <= 0) {
      return Status::InvalidArgument(StrFormat("invalid link %s -- %s",
                                               link.a.c_str(),
                                               link.b.c_str()));
    }
    if (!edges.insert({std::min(link.a, link.b), std::max(link.a, link.b)})
             .second) {
      return Status::AlreadyExists(StrFormat("duplicate link %s -- %s",
                                             link.a.c_str(), link.b.c_str()));
    }
  }
  for (const auto& node : nodes) {
    SL_RETURN_IF_ERROR(net->AddNode(node));
  }
  for (const auto& link : links) {
    SL_RETURN_IF_ERROR(net->AddLink(link));
  }
  return Status::OK();
}

Result<std::string> SerializeTopology(const Network& net,
                                      const std::string& name) {
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("network name '" + name +
                                   "' is not a valid identifier");
  }
  std::string out = "network " + name + " {\n";
  for (const auto& id : net.NodeIds()) {
    const NodeState* state = *net.node(id);
    out += StrFormat("  node %s { capacity: %.10g; location: %.10g, %.10g; }\n",
                     id.c_str(), state->config.capacity_per_sec,
                     state->config.location.lat, state->config.location.lon);
  }
  for (const auto& link : net.links()) {
    out += StrFormat(
        "  link %s -- %s [latency: \"%s\"; bandwidth_mbps: %.10g];\n",
        link.config.a.c_str(), link.config.b.c_str(),
        FormatDuration(link.config.latency).c_str(),
        link.config.bandwidth_bytes_per_ms / kBytesPerMsPerMbps);
  }
  out += "}\n";
  return out;
}

}  // namespace sl::net
