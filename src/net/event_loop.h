// StreamLoader: the discrete-event engine.
//
// The whole system — sensor emissions, blocking-operator flushes, network
// message delivery, SCN monitoring ticks — runs as events on one
// EventLoop over a virtual clock. This makes every run deterministic and
// lets benches simulate hours of stream time in milliseconds.

#ifndef STREAMLOADER_NET_EVENT_LOOP_H_
#define STREAMLOADER_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/clock.h"

namespace sl::net {

/// \brief A single-threaded virtual-time event loop.
///
/// Events scheduled for the same instant run in scheduling order (stable
/// FIFO tie-break), which the operator semantics rely on.
class EventLoop {
 public:
  using TimerId = uint64_t;
  using Callback = std::function<void()>;

  explicit EventLoop(Timestamp start = 0) : clock_(start) {}

  /// The loop's clock (advanced only by Run* methods).
  const VirtualClock& clock() const { return clock_; }
  Timestamp Now() const { return clock_.Now(); }

  /// Schedules `fn` at absolute time `at`; times in the past run at the
  /// current time. Returns an id usable with Cancel.
  TimerId Schedule(Timestamp at, Callback fn);

  /// Schedules `fn` after a non-negative delay.
  TimerId ScheduleAfter(Duration delay, Callback fn);

  /// Schedules `fn` every `period` (> 0), first at `first_at` (defaults
  /// to now + period), until cancelled.
  TimerId SchedulePeriodic(Duration period, Callback fn,
                           Timestamp first_at = -1);

  /// Cancels a pending (or periodic) timer; returns false when the id is
  /// unknown or already fired.
  bool Cancel(TimerId id);

  /// Runs all events with time <= `until`, then advances the clock to
  /// `until`. Returns the number of events executed.
  size_t RunUntil(Timestamp until);

  /// RunUntil(now + d).
  size_t RunFor(Duration d);

  /// Runs events (advancing the clock as needed) until none remain or
  /// `max_events` have executed. Beware: periodic timers never drain.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  /// Pending (non-cancelled) event count.
  size_t pending() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total events executed over the loop's lifetime.
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct QueueItem {
    Timestamp at;
    uint64_t seq;
    TimerId id;
    bool operator>(const QueueItem& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  struct Entry {
    Callback fn;
    Duration period = 0;  // > 0 for periodic timers
  };

  /// Pops and runs the next due event (<= limit); returns false if none.
  bool RunOne(Timestamp limit);

  VirtualClock clock_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue_;
  std::unordered_map<TimerId, Entry> entries_;
  TimerId next_id_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
};

}  // namespace sl::net

#endif  // STREAMLOADER_NET_EVENT_LOOP_H_
