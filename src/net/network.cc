#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/strings.h"

namespace sl::net {

Status Network::AddNode(const NodeConfig& config) {
  if (!IsIdentifier(config.id)) {
    return Status::InvalidArgument("node id '" + config.id +
                                   "' is not a valid identifier");
  }
  if (nodes_.count(config.id) > 0) {
    return Status::AlreadyExists("node '" + config.id + "' already exists");
  }
  if (config.capacity_per_sec <= 0) {
    return Status::InvalidArgument(
        StrFormat("node '%s' has non-positive capacity %g", config.id.c_str(),
                  config.capacity_per_sec));
  }
  NodeState state;
  state.config = config;
  nodes_.emplace(config.id, std::move(state));
  adj_.emplace(config.id, std::vector<std::pair<std::string, size_t>>{});
  return Status::OK();
}

namespace {

/// Index of the link between neighbors `a` and `b` in `adj`, or -1.
int64_t LinkIndexBetween(
    const std::map<std::string,
                   std::vector<std::pair<std::string, size_t>>>& adj,
    const std::string& a, const std::string& b) {
  auto it = adj.find(a);
  if (it == adj.end()) return -1;
  for (const auto& [nbr, idx] : it->second) {
    if (nbr == b) return static_cast<int64_t>(idx);
  }
  return -1;
}

}  // namespace

Status Network::AddLink(const LinkConfig& config) {
  if (nodes_.count(config.a) == 0) {
    return Status::NotFound("link endpoint '" + config.a + "' does not exist");
  }
  if (nodes_.count(config.b) == 0) {
    return Status::NotFound("link endpoint '" + config.b + "' does not exist");
  }
  if (config.a == config.b) {
    return Status::InvalidArgument("self-link on node '" + config.a + "'");
  }
  if (config.latency < 0 || config.bandwidth_bytes_per_ms <= 0) {
    return Status::InvalidArgument(
        StrFormat("link %s-%s has invalid latency/bandwidth", config.a.c_str(),
                  config.b.c_str()));
  }
  for (const auto& [nbr, idx] : adj_[config.a]) {
    if (nbr == config.b) {
      return Status::AlreadyExists(
          StrFormat("link %s-%s already exists", config.a.c_str(),
                    config.b.c_str()));
    }
  }
  size_t idx = links_.size();
  LinkState state;
  state.config = config;
  state.faults = default_fault_profile_;
  links_.push_back(std::move(state));
  adj_[config.a].emplace_back(config.b, idx);
  adj_[config.b].emplace_back(config.a, idx);
  return Status::OK();
}

Status Network::RemoveNode(const std::string& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + id + "' does not exist");
  }
  if (it->second.process_count > 0) {
    return Status::FailedPrecondition(
        StrFormat("node '%s' still hosts %d processes", id.c_str(),
                  it->second.process_count));
  }
  nodes_.erase(it);
  adj_.erase(id);
  // Drop links touching the node. Link indices change, so rebuild the
  // adjacency structure.
  std::vector<LinkState> kept;
  for (auto& link : links_) {
    if (link.config.a != id && link.config.b != id) {
      kept.push_back(std::move(link));
    }
  }
  links_ = std::move(kept);
  for (auto& [node, neighbors] : adj_) neighbors.clear();
  for (size_t i = 0; i < links_.size(); ++i) {
    adj_[links_[i].config.a].emplace_back(links_[i].config.b, i);
    adj_[links_[i].config.b].emplace_back(links_[i].config.a, i);
  }
  return Status::OK();
}

Status Network::RemoveLink(const std::string& a, const std::string& b) {
  bool found = false;
  std::vector<LinkState> kept;
  for (auto& link : links_) {
    bool match = (link.config.a == a && link.config.b == b) ||
                 (link.config.a == b && link.config.b == a);
    if (match) {
      found = true;
    } else {
      kept.push_back(std::move(link));
    }
  }
  if (!found) {
    return Status::NotFound(
        StrFormat("no link between '%s' and '%s'", a.c_str(), b.c_str()));
  }
  links_ = std::move(kept);
  for (auto& [node, neighbors] : adj_) neighbors.clear();
  for (size_t i = 0; i < links_.size(); ++i) {
    adj_[links_[i].config.a].emplace_back(links_[i].config.b, i);
    adj_[links_[i].config.b].emplace_back(links_[i].config.a, i);
  }
  return Status::OK();
}

Result<const NodeState*> Network::node(const std::string& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + id + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Network::NodeIds() const {
  std::vector<std::string> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) ids.push_back(id);
  return ids;
}

Result<std::vector<std::string>> Network::Route(const std::string& from,
                                                const std::string& to) const {
  auto from_it = nodes_.find(from);
  if (from_it == nodes_.end()) {
    return Status::NotFound("route source '" + from + "' does not exist");
  }
  auto to_it = nodes_.find(to);
  if (to_it == nodes_.end()) {
    return Status::NotFound("route target '" + to + "' does not exist");
  }
  if (!from_it->second.up) {
    return Status::NotFound("route source '" + from + "' is down");
  }
  if (!to_it->second.up) {
    return Status::NotFound("route target '" + to + "' is down");
  }
  if (from == to) return std::vector<std::string>{from};

  // Dijkstra over link latencies, skipping down links and nodes.
  std::map<std::string, Duration> dist;
  std::map<std::string, std::string> prev;
  using QItem = std::pair<Duration, std::string>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[from] = 0;
  pq.emplace(0, from);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    auto adj_it = adj_.find(u);
    if (adj_it == adj_.end()) continue;
    for (const auto& [v, link_idx] : adj_it->second) {
      if (!links_[link_idx].up || !nodes_.at(v).up) continue;
      Duration nd = d + links_[link_idx].config.latency;
      auto dit = dist.find(v);
      if (dit == dist.end() || nd < dit->second) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist.count(to) == 0) {
    return Status::NotFound(
        StrFormat("no path from '%s' to '%s'", from.c_str(), to.c_str()));
  }
  std::vector<std::string> path;
  for (std::string cur = to; ; cur = prev[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<Duration> Network::TransferDelay(const std::string& from,
                                        const std::string& to,
                                        size_t bytes) const {
  if (from == to) return Duration{0};
  SL_ASSIGN_OR_RETURN(std::vector<std::string> path, Route(from, to));
  Duration latency = 0;
  double min_bw = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Find the link between path[i] and path[i+1].
    const auto& neighbors = adj_.at(path[i]);
    for (const auto& [nbr, idx] : neighbors) {
      if (nbr == path[i + 1]) {
        latency += links_[idx].config.latency;
        min_bw = std::min(min_bw, links_[idx].config.bandwidth_bytes_per_ms);
        break;
      }
    }
  }
  Duration serialization =
      static_cast<Duration>(static_cast<double>(bytes) / min_bw);
  return latency + serialization;
}

Status Network::Transfer(const std::string& from, const std::string& to,
                         size_t bytes, std::function<void()> on_delivered,
                         TransferOptions options) {
  if (!faults_enabled_ && !options.reliable) {
    // Fair-weather fast path: identical behaviour (and event ordering) to
    // the pre-fault-injection network.
    if (from == to) {
      if (nodes_.count(from) == 0) {
        return Status::NotFound("node '" + from + "' does not exist");
      }
      loop_->ScheduleAfter(0, std::move(on_delivered));
      return Status::OK();
    }
    SL_ASSIGN_OR_RETURN(std::vector<std::string> path, Route(from, to));
    SL_ASSIGN_OR_RETURN(Duration delay, TransferDelay(from, to, bytes));
    // Account bytes on every traversed link.
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      for (const auto& [nbr, idx] : adj_.at(path[i])) {
        if (nbr == path[i + 1]) {
          links_[idx].bytes_transferred += bytes;
          links_[idx].messages += 1;
          break;
        }
      }
    }
    total_bytes_sent_ += bytes;
    total_messages_ += 1;
    loop_->ScheduleAfter(delay, std::move(on_delivered));
    return Status::OK();
  }

  if (nodes_.count(from) == 0) {
    return Status::NotFound("node '" + from + "' does not exist");
  }
  if (nodes_.count(to) == 0) {
    return Status::NotFound("node '" + to + "' does not exist");
  }
  uint64_t id = next_transfer_id_++;
  PendingTransfer p;
  p.id = id;
  p.from = from;
  p.to = to;
  p.bytes = bytes;
  p.on_delivered = std::move(on_delivered);
  p.options = std::move(options);
  pending_.emplace(id, std::move(p));
  Attempt(id);
  return Status::OK();
}

void Network::Attempt(uint64_t transfer_id) {
  auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;
  PendingTransfer& p = it->second;

  auto from_it = nodes_.find(p.from);
  if (from_it == nodes_.end() || !from_it->second.up) {
    // A crashed sender cannot send or retransmit.
    ConcludeLost(transfer_id);
    return;
  }

  auto route = Route(p.from, p.to);
  if (route.ok()) {
    const std::vector<std::string>& path = (*route);
    Duration extra = 0;
    bool duplicated = false;
    bool survived = TraverseLinks(path, p.bytes, &extra, &duplicated);
    total_bytes_sent_ += p.bytes;
    total_messages_ += 1;
    if (survived) {
      Duration delay = PathDelay(path, p.bytes) + extra;
      ++p.outstanding_arrivals;
      loop_->ScheduleAfter(delay,
                           [this, transfer_id] { OnDataArrival(transfer_id); });
      if (duplicated) {
        ++p.outstanding_arrivals;
        loop_->ScheduleAfter(
            delay, [this, transfer_id] { OnDataArrival(transfer_id); });
      }
    } else {
      ++fault_stats_.messages_dropped;
      if (!p.options.reliable) {
        ConcludeLost(transfer_id);
        return;
      }
    }
  } else {
    // No path: receiver down or partitioned away. Unreliable messages are
    // lost outright; reliable ones wait for the retry timer — the route
    // is recomputed per attempt, so a healed link or restarted node
    // rescues the flow.
    if (!p.options.reliable) {
      ConcludeLost(transfer_id);
      return;
    }
  }

  if (p.options.reliable && !p.delivered) {
    Duration timeout = p.options.ack_timeout
                       << std::min(p.attempt, 20);  // exponential backoff
    p.retry_timer = loop_->ScheduleAfter(
        timeout, [this, transfer_id] { OnRetryTimeout(transfer_id); });
  }
}

void Network::OnDataArrival(uint64_t transfer_id) {
  auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;  // already concluded
  PendingTransfer& p = it->second;
  if (p.outstanding_arrivals > 0) --p.outstanding_arrivals;

  auto to_it = nodes_.find(p.to);
  if (to_it == nodes_.end() || !to_it->second.up) {
    // Crashed receiver eats the message on arrival.
    if (p.options.reliable) {
      MaybeFinish(transfer_id);  // retry timer decides the fate
    } else {
      ConcludeLost(transfer_id);
    }
    return;
  }

  bool first = !p.delivered;
  p.delivered = true;
  // Ack every copy, not just the first: a retransmit implies the previous
  // ack never made it back.
  if (p.options.reliable) SendAck(&p);
  if (first && p.on_delivered) {
    auto cb = std::move(p.on_delivered);
    p.on_delivered = nullptr;
    cb();  // may reenter Transfer; map nodes are stable under insertion
  }
  MaybeFinish(transfer_id);
}

void Network::OnAckArrival(uint64_t transfer_id) {
  auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;  // duplicate ack; already finished
  PendingTransfer& p = it->second;
  auto from_it = nodes_.find(p.from);
  if (from_it == nodes_.end() || !from_it->second.up) {
    // The sender crashed before the ack landed; leave the entry for the
    // retry timer (which concludes the loss when it fires).
    return;
  }
  if (p.retry_timer != 0) {
    loop_->Cancel(p.retry_timer);
    p.retry_timer = 0;
  }
  pending_.erase(it);
}

void Network::OnRetryTimeout(uint64_t transfer_id) {
  auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;
  PendingTransfer& p = it->second;
  p.retry_timer = 0;
  if (p.attempt >= p.options.max_retransmits) {
    ConcludeLost(transfer_id);
    return;
  }
  ++p.attempt;
  ++fault_stats_.retransmits;
  if (p.options.on_retransmit) p.options.on_retransmit(p.attempt);
  Attempt(transfer_id);
}

void Network::SendAck(PendingTransfer* transfer) {
  ++fault_stats_.acks_sent;
  auto route = Route(transfer->to, transfer->from);
  if (!route.ok()) {
    ++fault_stats_.acks_dropped;
    return;
  }
  Duration extra = 0;
  bool duplicated = false;
  if (!TraverseLinks((*route), transfer->options.ack_bytes, &extra,
                     &duplicated)) {
    ++fault_stats_.acks_dropped;
    return;
  }
  total_bytes_sent_ += transfer->options.ack_bytes;
  total_messages_ += 1;
  uint64_t id = transfer->id;
  Duration delay = PathDelay((*route), transfer->options.ack_bytes) +
                   extra;
  loop_->ScheduleAfter(delay, [this, id] { OnAckArrival(id); });
  if (duplicated) {
    loop_->ScheduleAfter(delay, [this, id] { OnAckArrival(id); });
  }
}

void Network::ConcludeLost(uint64_t transfer_id) {
  auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;
  PendingTransfer& p = it->second;
  if (p.retry_timer != 0) {
    loop_->Cancel(p.retry_timer);
    p.retry_timer = 0;
  }
  if (p.delivered) {
    // Delivered but never acked within budget: not a loss, just done.
    pending_.erase(it);
    return;
  }
  ++fault_stats_.messages_lost;
  auto on_lost = std::move(p.options.on_lost);
  pending_.erase(it);
  if (on_lost) on_lost();
}

void Network::MaybeFinish(uint64_t transfer_id) {
  auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;
  PendingTransfer& p = it->second;
  // Unreliable transfers are done once delivered and no duplicate copy is
  // still in flight. Reliable ones finish in OnAckArrival/ConcludeLost.
  if (!p.options.reliable && p.delivered && p.outstanding_arrivals == 0) {
    pending_.erase(it);
  }
}

bool Network::TraverseLinks(const std::vector<std::string>& path,
                            size_t bytes, Duration* extra_delay,
                            bool* duplicated) {
  *extra_delay = 0;
  *duplicated = false;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    int64_t idx = LinkIndexBetween(adj_, path[i], path[i + 1]);
    if (idx < 0) continue;  // topology changed underfoot; skip
    LinkState& link = links_[static_cast<size_t>(idx)];
    link.bytes_transferred += bytes;
    link.messages += 1;
    // Zero-probability rolls consume no randomness, so a zero-fault plan
    // leaves the RNG stream untouched (byte-identical-baseline property).
    const FaultProfile& f = link.faults;
    if (f.drop_probability > 0 && fault_rng_.NextBool(f.drop_probability)) {
      link.messages_dropped += 1;
      return false;
    }
    if (f.duplicate_probability > 0 &&
        fault_rng_.NextBool(f.duplicate_probability)) {
      ++fault_stats_.messages_duplicated;
      *duplicated = true;
    }
    if (f.delay_probability > 0 && f.max_extra_delay > 0 &&
        fault_rng_.NextBool(f.delay_probability)) {
      ++fault_stats_.messages_delayed;
      *extra_delay +=
          static_cast<Duration>(fault_rng_.NextInt(1, f.max_extra_delay));
    }
  }
  return true;
}

Duration Network::PathDelay(const std::vector<std::string>& path,
                            size_t bytes) const {
  if (path.size() < 2) return 0;
  Duration latency = 0;
  double min_bw = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    int64_t idx = LinkIndexBetween(adj_, path[i], path[i + 1]);
    if (idx < 0) continue;
    latency += links_[static_cast<size_t>(idx)].config.latency;
    min_bw = std::min(
        min_bw, links_[static_cast<size_t>(idx)].config.bandwidth_bytes_per_ms);
  }
  if (!std::isfinite(min_bw)) return latency;
  return latency +
         static_cast<Duration>(static_cast<double>(bytes) / min_bw);
}

Status Network::InstallFaultPlan(const FaultPlan& plan) {
  faults_enabled_ = true;
  installed_plan_ = plan;
  fault_rng_.Seed(plan.seed());
  default_fault_profile_ = plan.default_profile();
  for (auto& link : links_) {
    link.faults = plan.link_profile(link.config.a, link.config.b);
  }
  for (const FaultEvent& event : plan.events()) {
    loop_->Schedule(event.at, [this, event] {
      switch (event.kind) {
        case FaultEvent::Kind::kCrashNode:
          SetNodeUp(event.a, false);
          break;
        case FaultEvent::Kind::kRestartNode:
          SetNodeUp(event.a, true);
          break;
        case FaultEvent::Kind::kCutLink:
          SetLinkUp(event.a, event.b, false);
          break;
        case FaultEvent::Kind::kHealLink:
          SetLinkUp(event.a, event.b, true);
          break;
      }
    });
  }
  return Status::OK();
}

Status Network::SetNodeUp(const std::string& id, bool up) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + id + "' does not exist");
  }
  if (it->second.up == up) return Status::OK();
  it->second.up = up;
  if (up) {
    ++fault_stats_.node_restarts;
  } else {
    ++fault_stats_.node_crashes;
  }
  return Status::OK();
}

Status Network::SetLinkUp(const std::string& a, const std::string& b,
                          bool up) {
  int64_t idx = LinkIndexBetween(adj_, a, b);
  if (idx < 0) {
    return Status::NotFound(
        StrFormat("no link between '%s' and '%s'", a.c_str(), b.c_str()));
  }
  links_[static_cast<size_t>(idx)].up = up;
  return Status::OK();
}

bool Network::NodeIsUp(const std::string& id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.up;
}

Status Network::ReportWork(const std::string& node_id, double work_units) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + node_id + "' does not exist");
  }
  it->second.work_in_window += work_units;
  it->second.work_total += work_units;
  return Status::OK();
}

Status Network::AdjustProcessCount(const std::string& node_id, int delta) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + node_id + "' does not exist");
  }
  it->second.process_count += delta;
  if (it->second.process_count < 0) {
    it->second.process_count = 0;
    return Status::Internal("process count underflow on node '" + node_id +
                            "'");
  }
  return Status::OK();
}

void Network::ResetWindows() {
  for (auto& [id, state] : nodes_) state.work_in_window = 0;
}

Status BuildRingTopology(Network* net, size_t n, double capacity_per_sec,
                         Duration latency, double bandwidth_bytes_per_ms) {
  if (n == 0) return Status::InvalidArgument("ring topology needs >= 1 node");
  for (size_t i = 0; i < n; ++i) {
    NodeConfig node;
    node.id = StrFormat("node_%zu", i);
    node.capacity_per_sec = capacity_per_sec;
    // Spread nodes around the Osaka area so locality placement has
    // something to work with.
    node.location = {34.65 + 0.02 * static_cast<double>(i % 8),
                     135.45 + 0.02 * static_cast<double>(i / 8)};
    SL_RETURN_IF_ERROR(net->AddNode(node));
  }
  if (n == 1) return Status::OK();
  for (size_t i = 0; i < n; ++i) {
    LinkConfig link;
    link.a = StrFormat("node_%zu", i);
    link.b = StrFormat("node_%zu", (i + 1) % n);
    link.latency = latency;
    link.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms;
    if (n == 2 && i == 1) break;  // avoid duplicate link in a 2-ring
    SL_RETURN_IF_ERROR(net->AddLink(link));
  }
  return Status::OK();
}

}  // namespace sl::net
