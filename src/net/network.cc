#include "net/network.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/strings.h"

namespace sl::net {

Status Network::AddNode(const NodeConfig& config) {
  if (!IsIdentifier(config.id)) {
    return Status::InvalidArgument("node id '" + config.id +
                                   "' is not a valid identifier");
  }
  if (nodes_.count(config.id) > 0) {
    return Status::AlreadyExists("node '" + config.id + "' already exists");
  }
  if (config.capacity_per_sec <= 0) {
    return Status::InvalidArgument(
        StrFormat("node '%s' has non-positive capacity %g", config.id.c_str(),
                  config.capacity_per_sec));
  }
  NodeState state;
  state.config = config;
  nodes_.emplace(config.id, std::move(state));
  adj_.emplace(config.id, std::vector<std::pair<std::string, size_t>>{});
  return Status::OK();
}

Status Network::AddLink(const LinkConfig& config) {
  if (nodes_.count(config.a) == 0) {
    return Status::NotFound("link endpoint '" + config.a + "' does not exist");
  }
  if (nodes_.count(config.b) == 0) {
    return Status::NotFound("link endpoint '" + config.b + "' does not exist");
  }
  if (config.a == config.b) {
    return Status::InvalidArgument("self-link on node '" + config.a + "'");
  }
  if (config.latency < 0 || config.bandwidth_bytes_per_ms <= 0) {
    return Status::InvalidArgument(
        StrFormat("link %s-%s has invalid latency/bandwidth", config.a.c_str(),
                  config.b.c_str()));
  }
  for (const auto& [nbr, idx] : adj_[config.a]) {
    if (nbr == config.b) {
      return Status::AlreadyExists(
          StrFormat("link %s-%s already exists", config.a.c_str(),
                    config.b.c_str()));
    }
  }
  size_t idx = links_.size();
  LinkState state;
  state.config = config;
  links_.push_back(std::move(state));
  adj_[config.a].emplace_back(config.b, idx);
  adj_[config.b].emplace_back(config.a, idx);
  return Status::OK();
}

Status Network::RemoveNode(const std::string& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + id + "' does not exist");
  }
  if (it->second.process_count > 0) {
    return Status::FailedPrecondition(
        StrFormat("node '%s' still hosts %d processes", id.c_str(),
                  it->second.process_count));
  }
  nodes_.erase(it);
  adj_.erase(id);
  // Drop links touching the node. Link indices change, so rebuild the
  // adjacency structure.
  std::vector<LinkState> kept;
  for (auto& link : links_) {
    if (link.config.a != id && link.config.b != id) {
      kept.push_back(std::move(link));
    }
  }
  links_ = std::move(kept);
  for (auto& [node, neighbors] : adj_) neighbors.clear();
  for (size_t i = 0; i < links_.size(); ++i) {
    adj_[links_[i].config.a].emplace_back(links_[i].config.b, i);
    adj_[links_[i].config.b].emplace_back(links_[i].config.a, i);
  }
  return Status::OK();
}

Status Network::RemoveLink(const std::string& a, const std::string& b) {
  bool found = false;
  std::vector<LinkState> kept;
  for (auto& link : links_) {
    bool match = (link.config.a == a && link.config.b == b) ||
                 (link.config.a == b && link.config.b == a);
    if (match) {
      found = true;
    } else {
      kept.push_back(std::move(link));
    }
  }
  if (!found) {
    return Status::NotFound(
        StrFormat("no link between '%s' and '%s'", a.c_str(), b.c_str()));
  }
  links_ = std::move(kept);
  for (auto& [node, neighbors] : adj_) neighbors.clear();
  for (size_t i = 0; i < links_.size(); ++i) {
    adj_[links_[i].config.a].emplace_back(links_[i].config.b, i);
    adj_[links_[i].config.b].emplace_back(links_[i].config.a, i);
  }
  return Status::OK();
}

Result<const NodeState*> Network::node(const std::string& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + id + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Network::NodeIds() const {
  std::vector<std::string> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) ids.push_back(id);
  return ids;
}

Result<std::vector<std::string>> Network::Route(const std::string& from,
                                                const std::string& to) const {
  if (nodes_.count(from) == 0) {
    return Status::NotFound("route source '" + from + "' does not exist");
  }
  if (nodes_.count(to) == 0) {
    return Status::NotFound("route target '" + to + "' does not exist");
  }
  if (from == to) return std::vector<std::string>{from};

  // Dijkstra over link latencies.
  std::map<std::string, Duration> dist;
  std::map<std::string, std::string> prev;
  using QItem = std::pair<Duration, std::string>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[from] = 0;
  pq.emplace(0, from);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    auto adj_it = adj_.find(u);
    if (adj_it == adj_.end()) continue;
    for (const auto& [v, link_idx] : adj_it->second) {
      Duration nd = d + links_[link_idx].config.latency;
      auto dit = dist.find(v);
      if (dit == dist.end() || nd < dit->second) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist.count(to) == 0) {
    return Status::NotFound(
        StrFormat("no path from '%s' to '%s'", from.c_str(), to.c_str()));
  }
  std::vector<std::string> path;
  for (std::string cur = to; ; cur = prev[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<Duration> Network::TransferDelay(const std::string& from,
                                        const std::string& to,
                                        size_t bytes) const {
  if (from == to) return Duration{0};
  SL_ASSIGN_OR_RETURN(std::vector<std::string> path, Route(from, to));
  Duration latency = 0;
  double min_bw = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Find the link between path[i] and path[i+1].
    const auto& neighbors = adj_.at(path[i]);
    for (const auto& [nbr, idx] : neighbors) {
      if (nbr == path[i + 1]) {
        latency += links_[idx].config.latency;
        min_bw = std::min(min_bw, links_[idx].config.bandwidth_bytes_per_ms);
        break;
      }
    }
  }
  Duration serialization =
      static_cast<Duration>(static_cast<double>(bytes) / min_bw);
  return latency + serialization;
}

Status Network::Transfer(const std::string& from, const std::string& to,
                         size_t bytes, std::function<void()> on_delivered) {
  if (from == to) {
    if (nodes_.count(from) == 0) {
      return Status::NotFound("node '" + from + "' does not exist");
    }
    loop_->ScheduleAfter(0, std::move(on_delivered));
    return Status::OK();
  }
  SL_ASSIGN_OR_RETURN(std::vector<std::string> path, Route(from, to));
  SL_ASSIGN_OR_RETURN(Duration delay, TransferDelay(from, to, bytes));
  // Account bytes on every traversed link.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    for (const auto& [nbr, idx] : adj_.at(path[i])) {
      if (nbr == path[i + 1]) {
        links_[idx].bytes_transferred += bytes;
        links_[idx].messages += 1;
        break;
      }
    }
  }
  total_bytes_sent_ += bytes;
  total_messages_ += 1;
  loop_->ScheduleAfter(delay, std::move(on_delivered));
  return Status::OK();
}

Status Network::ReportWork(const std::string& node_id, double work_units) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + node_id + "' does not exist");
  }
  it->second.work_in_window += work_units;
  it->second.work_total += work_units;
  return Status::OK();
}

Status Network::AdjustProcessCount(const std::string& node_id, int delta) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + node_id + "' does not exist");
  }
  it->second.process_count += delta;
  if (it->second.process_count < 0) {
    it->second.process_count = 0;
    return Status::Internal("process count underflow on node '" + node_id +
                            "'");
  }
  return Status::OK();
}

void Network::ResetWindows() {
  for (auto& [id, state] : nodes_) state.work_in_window = 0;
}

Status BuildRingTopology(Network* net, size_t n, double capacity_per_sec,
                         Duration latency, double bandwidth_bytes_per_ms) {
  if (n == 0) return Status::InvalidArgument("ring topology needs >= 1 node");
  for (size_t i = 0; i < n; ++i) {
    NodeConfig node;
    node.id = StrFormat("node_%zu", i);
    node.capacity_per_sec = capacity_per_sec;
    // Spread nodes around the Osaka area so locality placement has
    // something to work with.
    node.location = {34.65 + 0.02 * static_cast<double>(i % 8),
                     135.45 + 0.02 * static_cast<double>(i / 8)};
    SL_RETURN_IF_ERROR(net->AddNode(node));
  }
  if (n == 1) return Status::OK();
  for (size_t i = 0; i < n; ++i) {
    LinkConfig link;
    link.a = StrFormat("node_%zu", i);
    link.b = StrFormat("node_%zu", (i + 1) % n);
    link.latency = latency;
    link.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms;
    if (n == 2 && i == 1) break;  // avoid duplicate link in a 2-ring
    SL_RETURN_IF_ERROR(net->AddLink(link));
  }
  return Status::OK();
}

}  // namespace sl::net
