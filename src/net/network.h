// StreamLoader: the programmable-network simulator.
//
// Figure 1's bottom layer: a network of nodes, each managing a bunch of
// sensors and able to execute ETL stream-processing operations. The SCN
// controller (src/dsn) configures data flows over it; the executor
// (src/exec) places operator processes on nodes; the monitor reads its
// per-node and per-link statistics.
//
// Simulation model:
// - a message from node A to node B follows the minimum-latency path
//   (Dijkstra over link latencies, skipping down nodes/links) and
//   arrives after sum(link latency) + bytes / min(link bandwidth);
// - per-link byte counters account every traversed link;
// - nodes have a processing capacity (work units per second) and a
//   work-in-window counter the monitor samples and resets;
// - contention is not modelled at the queueing level (messages do not
//   delay each other) — adequate for reproducing placement and
//   monitoring behaviour, see DESIGN.md.
//
// Fault model (DESIGN.md §"Fault model"): an installed FaultPlan can
// drop/duplicate/delay messages per link and crash/restart nodes or
// cut/heal links at scheduled virtual times. Reliable transfers add a
// per-flow ack/timeout/retransmit state machine with exponential
// backoff and a bounded retransmit budget. With no plan installed and
// reliable off, Transfer behaves exactly as the fair-weather seed.

#ifndef STREAMLOADER_NET_NETWORK_H_
#define STREAMLOADER_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/fault.h"
#include "stt/geo.h"
#include "util/result.h"
#include "util/rng.h"

namespace sl::net {

/// \brief Static configuration of a node.
struct NodeConfig {
  std::string id;
  /// Work units (≈ tuples) the node can process per second.
  double capacity_per_sec = 10000.0;
  /// Geographic position of the node (for locality-aware placement).
  stt::GeoPoint location;
};

/// \brief Static configuration of a bidirectional link.
struct LinkConfig {
  std::string a;
  std::string b;
  Duration latency = 1;                  ///< one-way, ms
  double bandwidth_bytes_per_ms = 1e6;   ///< 1 GB/s default
};

/// \brief Runtime state of a node.
struct NodeState {
  NodeConfig config;
  /// Work units executed since the last monitoring-window reset.
  double work_in_window = 0;
  /// Work units executed since the node was added.
  double work_total = 0;
  /// Number of operator processes currently placed here.
  int process_count = 0;
  /// False while crashed (fault injection); down nodes neither send,
  /// receive nor forward messages.
  bool up = true;

  /// Utilization over a window of `window_ms`: work done divided by the
  /// capacity available in the window (may exceed 1 when overloaded).
  double Utilization(Duration window_ms) const {
    double available =
        config.capacity_per_sec * static_cast<double>(window_ms) / 1000.0;
    return available > 0 ? work_in_window / available : 0.0;
  }
};

/// \brief Runtime state of a link.
struct LinkState {
  LinkConfig config;
  uint64_t bytes_transferred = 0;
  uint64_t messages = 0;
  /// False while partitioned (fault injection); routing avoids down
  /// links, re-computed per message.
  bool up = true;
  /// Messages the fault injector dropped on this link.
  uint64_t messages_dropped = 0;
  /// Per-link corruption profile (set by InstallFaultPlan).
  FaultProfile faults;
};

/// \brief Per-transfer delivery options.
struct TransferOptions {
  /// Reliable delivery: the receiver acks, the sender retransmits on
  /// timeout with exponential backoff until acked or the budget is
  /// spent. Duplicates (retransmits racing delayed acks, or link-level
  /// duplication) are delivered to `on_delivered` exactly once.
  bool reliable = false;
  /// Initial ack timeout; doubles per retransmit. Should comfortably
  /// exceed the flow's round-trip time or spurious (harmless, deduped)
  /// retransmits occur.
  Duration ack_timeout = 250;
  /// Retransmit budget; after this many retries an undelivered message
  /// is conclusively lost (`on_lost` fires).
  int max_retransmits = 4;
  /// Bytes an ack occupies on the reverse path.
  size_t ack_bytes = 16;
  /// Runs once when the message is conclusively lost: dropped without
  /// reliability, retransmit budget exhausted undelivered, or an
  /// endpoint crashed. Never runs after `on_delivered`.
  std::function<void()> on_lost;
  /// Runs per retransmission with the attempt number (1-based).
  std::function<void(int)> on_retransmit;
};

/// \brief The simulated network.
class Network {
 public:
  /// `loop` delivers messages; must outlive the network.
  explicit Network(EventLoop* loop) : loop_(loop) {}

  // -- topology -----------------------------------------------------------

  /// Adds a node; fails on duplicate id.
  Status AddNode(const NodeConfig& config);

  /// Adds a bidirectional link between two existing nodes.
  Status AddLink(const LinkConfig& config);

  /// Removes a node and all its links (P3: on-the-fly reconfiguration).
  Status RemoveNode(const std::string& id);

  /// Removes the link between `a` and `b` (either direction). Traffic
  /// re-routes on the next Transfer — routing is computed per message,
  /// so no flows need re-provisioning.
  Status RemoveLink(const std::string& a, const std::string& b);

  bool HasNode(const std::string& id) const { return nodes_.count(id) > 0; }
  Result<const NodeState*> node(const std::string& id) const;
  std::vector<std::string> NodeIds() const;
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<LinkState>& links() const { return links_; }

  // -- fault injection ----------------------------------------------------

  /// \brief Installs a fault plan: seeds the fault RNG, applies the
  /// per-link profiles, and schedules the plan's crash/restart/cut/heal
  /// events on the event loop. The network must outlive those events.
  /// Replaces any previously installed plan's profiles (already
  /// scheduled events keep firing).
  Status InstallFaultPlan(const FaultPlan& plan);

  /// True once a plan is installed (fault rolls are active).
  bool fault_plan_installed() const { return faults_enabled_; }

  /// The most recently installed plan (a default-constructed zero plan
  /// until InstallFaultPlan runs). Lets callers that cannot honor
  /// faults — e.g. StreamLoader::RunThreaded — distinguish a harmless
  /// all-zero plan from one that would actually perturb delivery.
  const FaultPlan& installed_fault_plan() const { return installed_plan_; }

  /// Crashes (`up == false`) or restarts a node. While down it neither
  /// sends, receives nor forwards; in-flight messages to it are lost.
  Status SetNodeUp(const std::string& id, bool up);

  /// Cuts or heals the link between `a` and `b`; routing recomputes per
  /// message, reliable transfers retry across the partition.
  Status SetLinkUp(const std::string& a, const std::string& b, bool up);

  /// True iff the node exists and is not crashed.
  bool NodeIsUp(const std::string& id) const;

  /// \brief Cumulative fault-injection and reliable-delivery counters.
  struct FaultStats {
    uint64_t messages_dropped = 0;    ///< data messages dropped on a link
    uint64_t messages_duplicated = 0; ///< link-level duplications
    uint64_t messages_delayed = 0;    ///< link-level extra delays
    uint64_t acks_sent = 0;           ///< acks emitted by receivers
    uint64_t acks_dropped = 0;        ///< acks lost to link faults
    uint64_t retransmits = 0;         ///< reliable retransmissions
    uint64_t messages_lost = 0;       ///< conclusively lost messages
    uint64_t node_crashes = 0;        ///< up -> down transitions
    uint64_t node_restarts = 0;       ///< down -> up transitions

    bool operator==(const FaultStats&) const = default;
  };
  const FaultStats& fault_stats() const { return fault_stats_; }

  // -- routing ------------------------------------------------------------

  /// Minimum-latency node path from `from` to `to` (inclusive of both).
  /// Fails when no path exists.
  Result<std::vector<std::string>> Route(const std::string& from,
                                         const std::string& to) const;

  /// One-way delivery delay for a message of `bytes` from `from` to `to`.
  Result<Duration> TransferDelay(const std::string& from,
                                 const std::string& to, size_t bytes) const;

  // -- data movement ------------------------------------------------------

  /// \brief Sends `bytes` from node `from` to node `to`; `on_delivered`
  /// runs on the event loop when the message arrives (at most once).
  /// Accounts bytes on every traversed link. Local delivery (from == to)
  /// is immediate (scheduled at now).
  ///
  /// With a fault plan installed or `options.reliable` set, delivery is
  /// asynchronous-only: a missing route (partition) or an injected drop
  /// is not a synchronous error — reliable transfers retransmit, and a
  /// conclusive loss fires `options.on_lost`.
  ///
  /// Event-time watermarks piggyback inside `on_delivered`: the executor
  /// captures the sender's low-watermark in the delivery closure, so
  /// watermark propagation costs zero extra messages and leaves the
  /// network's event schedule (and its fault RNG consumption) untouched.
  Status Transfer(const std::string& from, const std::string& to,
                  size_t bytes, std::function<void()> on_delivered,
                  TransferOptions options = {});

  // -- load accounting ----------------------------------------------------

  /// Records `work_units` of processing on a node (executor calls this
  /// for every batch an operator processes).
  Status ReportWork(const std::string& node_id, double work_units);

  /// Adjusts the process count on a node (placement / migration).
  Status AdjustProcessCount(const std::string& node_id, int delta);

  /// Zeroes every node's work-in-window counter (monitor tick).
  void ResetWindows();

  // -- statistics ---------------------------------------------------------

  uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  uint64_t total_messages() const { return total_messages_; }

 private:
  /// State of one in-flight (possibly reliable) transfer.
  struct PendingTransfer {
    uint64_t id = 0;
    std::string from;
    std::string to;
    size_t bytes = 0;
    std::function<void()> on_delivered;
    TransferOptions options;
    bool delivered = false;  ///< on_delivered has run (receiver dedup)
    int attempt = 0;         ///< retransmissions so far
    EventLoop::TimerId retry_timer = 0;
    int outstanding_arrivals = 0;  ///< scheduled arrival events
  };

  /// Sends one attempt of a pending transfer: rolls per-link faults,
  /// accounts bytes, schedules arrival(s) and — for reliable transfers —
  /// arms the retransmit timer.
  void Attempt(uint64_t transfer_id);
  void OnDataArrival(uint64_t transfer_id);
  void OnAckArrival(uint64_t transfer_id);
  void OnRetryTimeout(uint64_t transfer_id);
  void SendAck(PendingTransfer* transfer);
  void ConcludeLost(uint64_t transfer_id);
  /// Erases the pending entry when nothing references it any more.
  void MaybeFinish(uint64_t transfer_id);

  /// Accounts one attempt on the links of `path`; returns false and
  /// counts a drop when a link-fault roll eats the message. `extra_delay`
  /// and `duplicated` report delay/duplication rolls.
  bool TraverseLinks(const std::vector<std::string>& path, size_t bytes,
                     Duration* extra_delay, bool* duplicated);
  Duration PathDelay(const std::vector<std::string>& path,
                     size_t bytes) const;

  EventLoop* loop_;
  std::map<std::string, NodeState> nodes_;
  std::vector<LinkState> links_;
  uint64_t total_bytes_sent_ = 0;
  uint64_t total_messages_ = 0;

  // Adjacency: node -> (neighbor, link index).
  std::map<std::string, std::vector<std::pair<std::string, size_t>>> adj_;

  // Fault injection + reliable delivery.
  bool faults_enabled_ = false;
  FaultPlan installed_plan_;            ///< copy of the last installed plan
  FaultProfile default_fault_profile_;  ///< applied to links added later
  Rng fault_rng_;
  FaultStats fault_stats_;
  std::map<uint64_t, PendingTransfer> pending_;
  uint64_t next_transfer_id_ = 1;
};

/// \brief Populates `net` with a ring topology of `n` nodes named
/// "node_0".."node_{n-1}" (each linked to its successor, ring closed),
/// with uniform capacity and link parameters — the shape used by the
/// demo network. Convenience for examples and benches.
Status BuildRingTopology(Network* net, size_t n, double capacity_per_sec,
                         Duration latency, double bandwidth_bytes_per_ms);

}  // namespace sl::net

#endif  // STREAMLOADER_NET_NETWORK_H_
