// StreamLoader: the programmable-network simulator.
//
// Figure 1's bottom layer: a network of nodes, each managing a bunch of
// sensors and able to execute ETL stream-processing operations. The SCN
// controller (src/dsn) configures data flows over it; the executor
// (src/exec) places operator processes on nodes; the monitor reads its
// per-node and per-link statistics.
//
// Simulation model:
// - a message from node A to node B follows the minimum-latency path
//   (Dijkstra over link latencies) and arrives after
//   sum(link latency) + bytes / min(link bandwidth along the path);
// - per-link byte counters account every traversed link;
// - nodes have a processing capacity (work units per second) and a
//   work-in-window counter the monitor samples and resets;
// - contention is not modelled at the queueing level (messages do not
//   delay each other) — adequate for reproducing placement and
//   monitoring behaviour, see DESIGN.md.

#ifndef STREAMLOADER_NET_NETWORK_H_
#define STREAMLOADER_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "stt/geo.h"
#include "util/result.h"

namespace sl::net {

/// \brief Static configuration of a node.
struct NodeConfig {
  std::string id;
  /// Work units (≈ tuples) the node can process per second.
  double capacity_per_sec = 10000.0;
  /// Geographic position of the node (for locality-aware placement).
  stt::GeoPoint location;
};

/// \brief Static configuration of a bidirectional link.
struct LinkConfig {
  std::string a;
  std::string b;
  Duration latency = 1;                  ///< one-way, ms
  double bandwidth_bytes_per_ms = 1e6;   ///< 1 GB/s default
};

/// \brief Runtime state of a node.
struct NodeState {
  NodeConfig config;
  /// Work units executed since the last monitoring-window reset.
  double work_in_window = 0;
  /// Work units executed since the node was added.
  double work_total = 0;
  /// Number of operator processes currently placed here.
  int process_count = 0;

  /// Utilization over a window of `window_ms`: work done divided by the
  /// capacity available in the window (may exceed 1 when overloaded).
  double Utilization(Duration window_ms) const {
    double available =
        config.capacity_per_sec * static_cast<double>(window_ms) / 1000.0;
    return available > 0 ? work_in_window / available : 0.0;
  }
};

/// \brief Runtime state of a link.
struct LinkState {
  LinkConfig config;
  uint64_t bytes_transferred = 0;
  uint64_t messages = 0;
};

/// \brief The simulated network.
class Network {
 public:
  /// `loop` delivers messages; must outlive the network.
  explicit Network(EventLoop* loop) : loop_(loop) {}

  // -- topology -----------------------------------------------------------

  /// Adds a node; fails on duplicate id.
  Status AddNode(const NodeConfig& config);

  /// Adds a bidirectional link between two existing nodes.
  Status AddLink(const LinkConfig& config);

  /// Removes a node and all its links (P3: on-the-fly reconfiguration).
  Status RemoveNode(const std::string& id);

  /// Removes the link between `a` and `b` (either direction). Traffic
  /// re-routes on the next Transfer — routing is computed per message,
  /// so no flows need re-provisioning.
  Status RemoveLink(const std::string& a, const std::string& b);

  bool HasNode(const std::string& id) const { return nodes_.count(id) > 0; }
  Result<const NodeState*> node(const std::string& id) const;
  std::vector<std::string> NodeIds() const;
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<LinkState>& links() const { return links_; }

  // -- routing ------------------------------------------------------------

  /// Minimum-latency node path from `from` to `to` (inclusive of both).
  /// Fails when no path exists.
  Result<std::vector<std::string>> Route(const std::string& from,
                                         const std::string& to) const;

  /// One-way delivery delay for a message of `bytes` from `from` to `to`.
  Result<Duration> TransferDelay(const std::string& from,
                                 const std::string& to, size_t bytes) const;

  // -- data movement ------------------------------------------------------

  /// \brief Sends `bytes` from node `from` to node `to`; `on_delivered`
  /// runs on the event loop when the message arrives. Accounts bytes on
  /// every traversed link. Local delivery (from == to) is immediate
  /// (scheduled at now).
  Status Transfer(const std::string& from, const std::string& to,
                  size_t bytes, std::function<void()> on_delivered);

  // -- load accounting ----------------------------------------------------

  /// Records `work_units` of processing on a node (executor calls this
  /// for every batch an operator processes).
  Status ReportWork(const std::string& node_id, double work_units);

  /// Adjusts the process count on a node (placement / migration).
  Status AdjustProcessCount(const std::string& node_id, int delta);

  /// Zeroes every node's work-in-window counter (monitor tick).
  void ResetWindows();

  // -- statistics ---------------------------------------------------------

  uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  uint64_t total_messages() const { return total_messages_; }

 private:
  EventLoop* loop_;
  std::map<std::string, NodeState> nodes_;
  std::vector<LinkState> links_;
  uint64_t total_bytes_sent_ = 0;
  uint64_t total_messages_ = 0;

  // Adjacency: node -> (neighbor, link index).
  std::map<std::string, std::vector<std::pair<std::string, size_t>>> adj_;
};

/// \brief Populates `net` with a ring topology of `n` nodes named
/// "node_0".."node_{n-1}" (each linked to its successor, ring closed),
/// with uniform capacity and link parameters — the shape used by the
/// demo network. Convenience for examples and benches.
Status BuildRingTopology(Network* net, size_t n, double capacity_per_sec,
                         Duration latency, double bandwidth_bytes_per_ms);

}  // namespace sl::net

#endif  // STREAMLOADER_NET_NETWORK_H_
