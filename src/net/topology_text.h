// StreamLoader: declarative network-topology notation.
//
// §2 motivates the whole DSN/SCN layer with the observation that
// "hard-coded configurations of network architectures and paths where
// data traffics are routed are not an easy task and prevent the
// possibility to adapt to new user requirements". The topology itself
// gets the same treatment as dataflows: a declarative text form that can
// be versioned, diffed, and fed to StreamLoader instead of C++ calls.
//
//   network osaka_net {
//     node node_0 { capacity: 10000; location: 34.65, 135.45; }
//     node node_1 { capacity: 5000; }
//     link node_0 -- node_1 [latency: "2ms"; bandwidth_mbps: 800];
//   }
//
// `capacity` is work units (≈ tuples) per second; `location` is WGS84
// lat, lon; `bandwidth_mbps` converts to the simulator's bytes/ms
// (1 Mbps = 125 bytes/ms). Round-trip safe: parsing Serialize's output
// reproduces an equivalent network.

#ifndef STREAMLOADER_NET_TOPOLOGY_TEXT_H_
#define STREAMLOADER_NET_TOPOLOGY_TEXT_H_

#include <string>

#include "net/network.h"

namespace sl::net {

/// \brief Populates `net` (which may already hold nodes) from a topology
/// document. Fails atomically on parse errors — nothing is added — and
/// with AlreadyExists when the document collides with existing state.
Status BuildTopologyFromText(Network* net, const std::string& text);

/// \brief Serializes the network's current topology as a document named
/// `name` (runtime state — loads, process counts — is not topology and
/// is not serialized).
Result<std::string> SerializeTopology(const Network& net,
                                      const std::string& name);

}  // namespace sl::net

#endif  // STREAMLOADER_NET_TOPOLOGY_TEXT_H_
