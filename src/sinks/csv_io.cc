#include "sinks/csv_io.h"

#include <cstdlib>

#include "sinks/streams.h"
#include "util/strings.h"

namespace sl::sinks {

using stt::Value;
using stt::ValueType;

namespace {

/// Splits one CSV line honoring double-quoted fields with "" escapes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted field in CSV line: " +
                              line);
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseValue(const std::string& text, const stt::Field& field) {
  if (text.empty()) {
    if (!field.nullable) {
      return Status::TypeError("empty value for non-nullable field '" +
                               field.name + "'");
    }
    return Value::Null();
  }
  switch (field.type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      if (text == "true") return Value::Bool(true);
      if (text == "false") return Value::Bool(false);
      return Status::ParseError("invalid bool '" + text + "' for field '" +
                                field.name + "'");
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::ParseError("invalid int '" + text + "' for field '" +
                                  field.name + "'");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::ParseError("invalid double '" + text +
                                  "' for field '" + field.name + "'");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kTimestamp: {
      Timestamp ts;
      if (!ParseTimestamp(text, &ts)) {
        return Status::ParseError("invalid timestamp '" + text +
                                  "' for field '" + field.name + "'");
      }
      return Value::Time(ts);
    }
    case ValueType::kGeoPoint: {
      // "(lat, lon)" form.
      std::string t(Trim(text));
      if (t.size() < 5 || t.front() != '(' || t.back() != ')') {
        return Status::ParseError("invalid geopoint '" + text + "'");
      }
      auto parts = SplitAndTrim(t.substr(1, t.size() - 2), ',');
      if (parts.size() != 2) {
        return Status::ParseError("invalid geopoint '" + text + "'");
      }
      return Value::Geo({std::strtod(parts[0].c_str(), nullptr),
                         std::strtod(parts[1].c_str(), nullptr)});
    }
  }
  return Status::Internal("unreachable value type");
}

}  // namespace

Result<std::vector<stt::Tuple>> ParseRecordingCsv(const std::string& csv,
                                                  stt::SchemaPtr schema) {
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  std::vector<stt::Tuple> tuples;
  bool header_seen = false;
  size_t line_no = 0;
  for (const auto& raw_line : Split(csv, '\n')) {
    ++line_no;
    std::string line(Trim(raw_line));
    if (line.empty() || line.front() == '#') continue;
    SL_ASSIGN_OR_RETURN(std::vector<std::string> cols, SplitCsvLine(line));
    if (!header_seen) {
      // Validate the header against the schema.
      if (cols.size() != 4 + schema->num_fields() || cols[0] != "ts" ||
          cols[1] != "lat" || cols[2] != "lon" || cols[3] != "sensor") {
        return Status::ParseError(
            "recording header must be 'ts,lat,lon,sensor,<fields>', got: " +
            line);
      }
      for (size_t i = 0; i < schema->num_fields(); ++i) {
        if (cols[4 + i] != schema->fields()[i].name) {
          return Status::ParseError(StrFormat(
              "header column %zu is '%s' but the schema field is '%s'",
              4 + i, cols[4 + i].c_str(), schema->fields()[i].name.c_str()));
        }
      }
      header_seen = true;
      continue;
    }
    if (cols.size() != 4 + schema->num_fields()) {
      return Status::ParseError(
          StrFormat("line %zu has %zu columns, expected %zu", line_no,
                    cols.size(), 4 + schema->num_fields()));
    }
    Timestamp ts;
    if (!ParseTimestamp(cols[0], &ts)) {
      return Status::ParseError(StrFormat("line %zu: invalid ts '%s'",
                                          line_no, cols[0].c_str()));
    }
    std::optional<stt::GeoPoint> location;
    if (!cols[1].empty() && !cols[2].empty()) {
      location = stt::GeoPoint{std::strtod(cols[1].c_str(), nullptr),
                               std::strtod(cols[2].c_str(), nullptr)};
    }
    std::vector<Value> values;
    values.reserve(schema->num_fields());
    for (size_t i = 0; i < schema->num_fields(); ++i) {
      SL_ASSIGN_OR_RETURN(Value v,
                          ParseValue(cols[4 + i], schema->fields()[i]));
      values.push_back(std::move(v));
    }
    SL_ASSIGN_OR_RETURN(stt::Tuple tuple,
                        stt::Tuple::Make(schema, std::move(values), ts,
                                         location, cols[3]));
    tuples.push_back(std::move(tuple));
  }
  if (!header_seen) {
    return Status::ParseError("recording has no header line");
  }
  return tuples;
}

Result<std::string> WriteRecordingCsv(const std::vector<stt::Tuple>& tuples) {
  if (tuples.empty()) {
    return Status::InvalidArgument("cannot serialize an empty recording");
  }
  std::string out;
  CsvSink sink("recording",
                      [&out](const std::string& line) {
                        out += line;
                        out += "\n";
                      });
  for (const auto& t : tuples) {
    SL_RETURN_IF_ERROR(sink.WriteRow(t));
  }
  return out;
}

Result<std::string> WriteRecordingCsv(const std::vector<stt::TupleRef>& tuples) {
  if (tuples.empty()) {
    return Status::InvalidArgument("cannot serialize an empty recording");
  }
  std::string out;
  CsvSink sink("recording",
                      [&out](const std::string& line) {
                        out += line;
                        out += "\n";
                      });
  for (const auto& t : tuples) {
    SL_RETURN_IF_ERROR(sink.WriteRow(*t));
  }
  return out;
}


}  // namespace sl::sinks
