// StreamLoader: CSV tuple serialization (the CsvSink line format).
//
// One format closes the loop across the system: the CsvSink writes it,
// the warehouse exports/imports datasets in it, and the sensors layer
// replays recordings of it (sensors/recording.h).
//
//   ts,lat,lon,sensor,<field>,<field>,...
//   2016-03-15T08:00:00.000Z,34.69,135.50,temp_01,24.5,osaka
//
// Empty lat/lon mean "no location"; empty field values are nulls;
// `#`-prefixed lines are comments.

#ifndef STREAMLOADER_SINKS_CSV_IO_H_
#define STREAMLOADER_SINKS_CSV_IO_H_

#include <string>
#include <vector>

#include "stt/schema.h"
#include "stt/tuple.h"

namespace sl::sinks {

/// \brief Parses a CSV recording into tuples conforming to `schema`.
/// The header must name the schema fields in order after the fixed
/// `ts,lat,lon,sensor` columns.
Result<std::vector<stt::Tuple>> ParseRecordingCsv(const std::string& csv,
                                                  stt::SchemaPtr schema);

/// \brief Serializes tuples (sharing one schema) as a CSV recording.
Result<std::string> WriteRecordingCsv(const std::vector<stt::Tuple>& tuples);
Result<std::string> WriteRecordingCsv(const std::vector<stt::TupleRef>& tuples);

}  // namespace sl::sinks

#endif  // STREAMLOADER_SINKS_CSV_IO_H_
