#include "sinks/factory.h"

namespace sl::sinks {

Result<std::unique_ptr<Sink>> MakeSink(const std::string& name,
                                       dataflow::SinkKind kind,
                                       const std::string& target,
                                       const SinkContext& context) {
  switch (kind) {
    case dataflow::SinkKind::kWarehouse:
      if (context.warehouse == nullptr) {
        return Status::InvalidArgument(
            "warehouse sink '" + name +
            "' needs SinkContext::warehouse to be set");
      }
      return std::unique_ptr<Sink>(
          new WarehouseSink(name, context.warehouse, target));
    case dataflow::SinkKind::kVisualization:
      return std::unique_ptr<Sink>(
          new VisualizationSink(name, context.visualization_consumer));
    case dataflow::SinkKind::kCsv:
      return std::unique_ptr<Sink>(new CsvSink(name, context.csv_consumer));
    case dataflow::SinkKind::kCollect:
      return std::unique_ptr<Sink>(new CollectSink(name));
  }
  return Status::Internal("unreachable sink kind");
}

}  // namespace sl::sinks
