// StreamLoader: load targets of a dataflow.
//
// "The acquired data can be stored in a data-warehouse or sent to a
// visualization tool in order to perform further analysis" (§3). Sinks
// are push targets like operators, but terminal.

#ifndef STREAMLOADER_SINKS_SINK_H_
#define STREAMLOADER_SINKS_SINK_H_

#include <memory>
#include <string>

#include "stt/tuple.h"

namespace sl::sinks {

/// \brief Base class of all load targets.
class Sink {
 public:
  virtual ~Sink() = default;

  const std::string& name() const { return name_; }

  /// Loads one tuple. The sink may retain the ref (collect/warehouse
  /// sinks do); it must never mutate the pointee.
  virtual Status Write(const stt::TupleRef& tuple) = 0;

  /// Convenience for callers still holding a tuple by value. Derived
  /// classes overriding the ref form should `using Sink::Write;` to keep
  /// this overload visible.
  Status Write(stt::Tuple tuple) {
    return Write(stt::Tuple::Share(std::move(tuple)));
  }

  /// Completes any buffered output (end of run).
  virtual Status Finish() { return Status::OK(); }

  /// Tuples successfully written.
  uint64_t tuples_written() const { return tuples_written_; }

 protected:
  explicit Sink(std::string name) : name_(std::move(name)) {}
  void CountWrite() { ++tuples_written_; }

 private:
  std::string name_;
  uint64_t tuples_written_ = 0;
};

}  // namespace sl::sinks

#endif  // STREAMLOADER_SINKS_SINK_H_
