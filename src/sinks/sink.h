// StreamLoader: load targets of a dataflow.
//
// "The acquired data can be stored in a data-warehouse or sent to a
// visualization tool in order to perform further analysis" (§3). Sinks
// are push targets like operators, but terminal.

#ifndef STREAMLOADER_SINKS_SINK_H_
#define STREAMLOADER_SINKS_SINK_H_

#include <memory>
#include <string>

#include "stt/tuple.h"

namespace sl::sinks {

/// \brief Base class of all load targets.
class Sink {
 public:
  virtual ~Sink() = default;

  const std::string& name() const { return name_; }

  /// Loads one tuple.
  virtual Status Write(const stt::Tuple& tuple) = 0;

  /// Completes any buffered output (end of run).
  virtual Status Finish() { return Status::OK(); }

  /// Tuples successfully written.
  uint64_t tuples_written() const { return tuples_written_; }

 protected:
  explicit Sink(std::string name) : name_(std::move(name)) {}
  void CountWrite() { ++tuples_written_; }

 private:
  std::string name_;
  uint64_t tuples_written_ = 0;
};

}  // namespace sl::sinks

#endif  // STREAMLOADER_SINKS_SINK_H_
