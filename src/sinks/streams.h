// StreamLoader: streaming sinks — visualization (GeoJSON feature lines,
// standing in for the Sticker tool [11]), CSV export, and in-memory
// collection for tests and the design environment.

#ifndef STREAMLOADER_SINKS_STREAMS_H_
#define STREAMLOADER_SINKS_STREAMS_H_

#include <functional>
#include <string>
#include <vector>

#include "sinks/sink.h"

namespace sl::sinks {

/// Receives one formatted output line.
using LineConsumer = std::function<void(const std::string&)>;

/// \brief Emits one GeoJSON-like Feature per tuple:
///   {"type":"Feature","geometry":{...},"properties":{...}}
/// Properties carry every attribute plus "ts", "theme" and "sensor";
/// tuples without a location get a null geometry. One line per tuple
/// (ND-JSON), as a live visualization front-end would consume.
class VisualizationSink : public Sink {
 public:
  /// Lines go to `consumer`; when none is given they are collected in
  /// memory (see lines()).
  explicit VisualizationSink(std::string name, LineConsumer consumer = nullptr)
      : Sink(std::move(name)), consumer_(std::move(consumer)) {}

  using Sink::Write;
  Status Write(const stt::TupleRef& tuple) override;

  /// Collected lines (only populated without an external consumer).
  const std::vector<std::string>& lines() const { return lines_; }

  /// Formats one tuple as a GeoJSON feature line (exposed for tests).
  static std::string ToFeature(const stt::Tuple& tuple);

 private:
  LineConsumer consumer_;
  std::vector<std::string> lines_;
};

/// \brief Emits CSV: a header line (on the first tuple), then one line
/// per tuple with ts, lat, lon, sensor and all attributes. Values are
/// quoted when they contain separators.
class CsvSink : public Sink {
 public:
  explicit CsvSink(std::string name, LineConsumer consumer = nullptr)
      : Sink(std::move(name)), consumer_(std::move(consumer)) {}

  using Sink::Write;
  Status Write(const stt::TupleRef& tuple) override;

  /// Formats and emits one tuple (header on first use) without going
  /// through shared ownership — for bulk CSV export of value vectors.
  Status WriteRow(const stt::Tuple& tuple);

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  void EmitLine(const std::string& line);

  LineConsumer consumer_;
  std::vector<std::string> lines_;
  bool header_written_ = false;
};

/// \brief Collects tuple refs in memory. Stored refs share ownership
/// with the rest of the dataflow — pointer equality across sinks means
/// the same tuple was fanned out, not copied.
class CollectSink : public Sink {
 public:
  explicit CollectSink(std::string name) : Sink(std::move(name)) {}

  using Sink::Write;
  Status Write(const stt::TupleRef& tuple) override {
    tuples_.push_back(tuple);
    CountWrite();
    return Status::OK();
  }

  const std::vector<stt::TupleRef>& tuples() const { return tuples_; }
  void Clear() { tuples_.clear(); }

 private:
  std::vector<stt::TupleRef> tuples_;
};

/// \brief The late-side output of event-time blocking operators
/// (ops::LatePolicy::kSideOutput): tuples that arrived behind the fired
/// window horizon are diverted here instead of silently vanishing, so a
/// downstream consumer can reconcile them (re-aggregate, audit, alert).
/// One per deployment (Executor::LateSinkOf); written locally by the
/// operator's node — the tuple already took its network hop.
class LateSink : public Sink {
 public:
  explicit LateSink(std::string name) : Sink(std::move(name)) {}

  using Sink::Write;
  Status Write(const stt::TupleRef& tuple) override {
    tuples_.push_back(tuple);
    CountWrite();
    return Status::OK();
  }

  const std::vector<stt::TupleRef>& tuples() const { return tuples_; }
  void Clear() { tuples_.clear(); }

 private:
  std::vector<stt::TupleRef> tuples_;
};

}  // namespace sl::sinks

#endif  // STREAMLOADER_SINKS_STREAMS_H_
