#include "sinks/warehouse.h"

#include <algorithm>

#include "expr/eval.h"
#include "sinks/csv_io.h"
#include "stt/schema_text.h"
#include "util/strings.h"

namespace sl::sinks {

Status EventDataWarehouse::Load(const std::string& dataset,
                                stt::TupleRef tuple) {
  if (tuple == nullptr) {
    return Status::InvalidArgument("null tuple");
  }
  if (!IsIdentifier(dataset)) {
    return Status::InvalidArgument("dataset name '" + dataset +
                                   "' is not a valid identifier");
  }
  if (tuple->schema() == nullptr) {
    return Status::InvalidArgument("tuple without schema");
  }
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    Dataset ds;
    ds.schema = tuple->schema();
    it = datasets_.emplace(dataset, std::move(ds)).first;
  } else if (it->second.schema != tuple->schema() &&
             !it->second.schema->Equals(*tuple->schema())) {
    return Status::TypeError(StrFormat(
        "schema drift in dataset '%s': stored %s, incoming %s",
        dataset.c_str(), it->second.schema->ToString().c_str(),
        tuple->schema()->ToString().c_str()));
  }
  // Insert keeping event-time order (streams are mostly in order, so the
  // common case is an append).
  auto& rows = it->second.rows;
  if (rows.empty() || rows.back()->timestamp() <= tuple->timestamp()) {
    rows.push_back(std::move(tuple));
  } else {
    Timestamp ts = tuple->timestamp();
    auto pos = std::upper_bound(rows.begin(), rows.end(), ts,
                                [](Timestamp t, const stt::TupleRef& r) {
                                  return t < r->timestamp();
                                });
    rows.insert(pos, std::move(tuple));
  }
  ++total_events_;
  return Status::OK();
}

std::vector<std::string> EventDataWarehouse::DatasetNames() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) names.push_back(name);
  return names;
}

size_t EventDataWarehouse::DatasetSize(const std::string& dataset) const {
  auto it = datasets_.find(dataset);
  return it == datasets_.end() ? 0 : it->second.rows.size();
}

Result<stt::SchemaPtr> EventDataWarehouse::DatasetSchema(
    const std::string& dataset) const {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + dataset + "'");
  }
  return it->second.schema;
}

Result<std::vector<stt::TupleRef>> EventDataWarehouse::Query(
    const std::string& dataset, const EventQuery& query) const {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + dataset + "'");
  }
  const auto& rows = it->second.rows;

  // Narrow by time using the sorted order.
  auto begin = rows.begin();
  auto end = rows.end();
  if (query.time_begin.has_value()) {
    begin = std::lower_bound(rows.begin(), rows.end(), *query.time_begin,
                             [](const stt::TupleRef& t, Timestamp ts) {
                               return t->timestamp() < ts;
                             });
  }
  if (query.time_end.has_value()) {
    end = std::upper_bound(begin, rows.end(), *query.time_end,
                           [](Timestamp ts, const stt::TupleRef& t) {
                             return ts < t->timestamp();
                           });
  }

  // Optional attribute condition.
  expr::BoundExpr condition;
  bool has_condition = !Trim(query.condition).empty();
  if (has_condition) {
    SL_ASSIGN_OR_RETURN(
        condition, expr::BoundExpr::Parse(query.condition, it->second.schema));
  }

  std::vector<stt::TupleRef> out;
  for (auto row = begin; row != end; ++row) {
    const stt::Tuple& t = **row;
    if (query.area.has_value()) {
      if (!t.location().has_value() ||
          !query.area->Contains(*t.location())) {
        continue;
      }
    }
    if (!query.theme.IsAny()) {
      if (!query.theme.Subsumes(t.schema()->theme())) continue;
    }
    if (has_condition) {
      SL_ASSIGN_OR_RETURN(bool pass, condition.EvalPredicate(t));
      if (!pass) continue;
    }
    out.push_back(*row);
    if (query.limit > 0 && out.size() >= query.limit) break;
  }
  return out;
}

Result<std::vector<EventDataWarehouse::AggregateRow>>
EventDataWarehouse::QueryAggregate(const std::string& dataset,
                                   const EventQuery& query,
                                   const std::string& attribute,
                                   Duration bucket) const {
  if (bucket <= 0) {
    return Status::InvalidArgument("bucket must be a positive duration");
  }
  SL_ASSIGN_OR_RETURN(stt::SchemaPtr schema, DatasetSchema(dataset));
  SL_ASSIGN_OR_RETURN(stt::Field field, schema->FieldByName(attribute));
  if (!stt::IsNumeric(field.type)) {
    return Status::TypeError("attribute '" + attribute + "' is " +
                             stt::ValueTypeToString(field.type) +
                             ", aggregates need a numeric attribute");
  }
  SL_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(attribute));
  SL_ASSIGN_OR_RETURN(std::vector<stt::TupleRef> rows, Query(dataset, query));

  std::vector<AggregateRow> out;
  SL_ASSIGN_OR_RETURN(stt::TemporalGranularity gran,
                      stt::TemporalGranularity::Make(bucket));
  for (const auto& row : rows) {
    const stt::Value& v = row->value(idx);
    if (v.is_null()) continue;
    double x = *v.ToNumeric();
    Timestamp start = gran.Truncate(row->timestamp());
    if (out.empty() || out.back().bucket_start != start) {
      AggregateRow r;
      r.bucket_start = start;
      r.count = 1;
      r.sum = r.avg = r.min = r.max = x;
      out.push_back(r);
    } else {
      AggregateRow& r = out.back();
      ++r.count;
      r.sum += x;
      r.min = std::min(r.min, x);
      r.max = std::max(r.max, x);
      r.avg = r.sum / static_cast<double>(r.count);
    }
  }
  return out;
}

void EventDataWarehouse::DropDataset(const std::string& dataset) {
  auto it = datasets_.find(dataset);
  if (it != datasets_.end()) {
    total_events_ -= it->second.rows.size();
    datasets_.erase(it);
  }
}

Result<std::string> EventDataWarehouse::ExportCsv(
    const std::string& dataset) const {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + dataset + "'");
  }
  if (it->second.rows.empty()) {
    return Status::FailedPrecondition("dataset '" + dataset + "' is empty");
  }
  std::string out = "# schema: " + it->second.schema->ToString() + "\n";
  SL_ASSIGN_OR_RETURN(std::string body, WriteRecordingCsv(it->second.rows));
  out += body;
  return out;
}

Status EventDataWarehouse::ImportCsv(const std::string& dataset,
                                     const std::string& csv) {
  // Recover the schema from the leading comment.
  stt::SchemaPtr schema;
  for (const auto& raw_line : Split(csv, '\n')) {
    std::string line(Trim(raw_line));
    if (line.empty()) continue;
    if (StartsWith(line, "# schema:")) {
      SL_ASSIGN_OR_RETURN(
          schema, stt::ParseSchemaText(std::string(Trim(line.substr(9)))));
    }
    break;  // the schema comment must be the first non-empty line
  }
  if (schema == nullptr) {
    return Status::ParseError(
        "import needs a leading '# schema: ...' line (ExportCsv format)");
  }
  SL_ASSIGN_OR_RETURN(std::vector<stt::Tuple> tuples,
                      ParseRecordingCsv(csv, schema));
  for (auto& t : tuples) {
    SL_RETURN_IF_ERROR(Load(dataset, std::move(t)));
  }
  return Status::OK();
}

}  // namespace sl::sinks
