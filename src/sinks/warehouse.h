// StreamLoader: the Event Data Warehouse.
//
// Stand-in for the NICT "Event Data Warehouse" [6], the paper's primary
// load destination: an event-oriented store queried along the STT
// dimensions (time interval, spatial area, theme) plus arbitrary
// attribute conditions. In-memory, with a sorted-by-time index per
// dataset (see DESIGN.md §2 on substitutions).

#ifndef STREAMLOADER_SINKS_WAREHOUSE_H_
#define STREAMLOADER_SINKS_WAREHOUSE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sinks/sink.h"
#include "stt/geo.h"
#include "stt/theme.h"
#include "stt/tuple.h"

namespace sl::sinks {

/// \brief STT query over one warehouse dataset. Unset criteria match
/// everything.
struct EventQuery {
  std::optional<Timestamp> time_begin;
  std::optional<Timestamp> time_end;       ///< inclusive
  std::optional<stt::BBox> area;           ///< tuples without location never match
  stt::Theme theme;                        ///< subsumption on the dataset theme
  std::string condition;                   ///< expression over the dataset schema
  size_t limit = 0;                        ///< 0 = unlimited
};

/// \brief The in-memory event data warehouse.
///
/// Datasets are created on first load; within a dataset all tuples share
/// the schema of the first tuple loaded (schema drift is rejected so
/// queries stay well-typed).
class EventDataWarehouse {
 public:
  EventDataWarehouse() = default;

  /// Loads one tuple into `dataset` (created on demand). The warehouse
  /// retains the ref; rows share ownership with the dataflow that
  /// produced them.
  Status Load(const std::string& dataset, stt::TupleRef tuple);

  /// Convenience for callers holding a tuple by value.
  Status Load(const std::string& dataset, stt::Tuple tuple) {
    return Load(dataset, stt::Tuple::Share(std::move(tuple)));
  }

  /// Names of all datasets (sorted).
  std::vector<std::string> DatasetNames() const;

  /// Number of events in a dataset (0 when absent).
  size_t DatasetSize(const std::string& dataset) const;

  /// Schema of a dataset.
  Result<stt::SchemaPtr> DatasetSchema(const std::string& dataset) const;

  /// Runs an STT query; results are in event-time order. Returned refs
  /// share ownership with the stored rows (no copies).
  Result<std::vector<stt::TupleRef>> Query(const std::string& dataset,
                                           const EventQuery& query) const;

  /// One row of a time-bucketed aggregate query.
  struct AggregateRow {
    Timestamp bucket_start = 0;
    int64_t count = 0;   ///< non-null values in the bucket
    double sum = 0;
    double avg = 0;
    double min = 0;
    double max = 0;
  };

  /// \brief Aggregates a numeric attribute of the events matching
  /// `query`, grouped into time buckets of `bucket` ms (the analytical
  /// face of the Event Data Warehouse [6]). Rows are in bucket order;
  /// empty buckets are omitted.
  Result<std::vector<AggregateRow>> QueryAggregate(
      const std::string& dataset, const EventQuery& query,
      const std::string& attribute, Duration bucket) const;

  /// Events loaded across all datasets.
  uint64_t total_events() const { return total_events_; }

  /// Drops a dataset (idempotent).
  void DropDataset(const std::string& dataset);

  /// \brief Exports a dataset as a CSV recording (the CsvSink format,
  /// loadable by sensors::ParseRecordingCsv — datasets can be replayed
  /// as sensors). A one-line `# schema: ...` comment precedes the data
  /// so ImportCsv can restore the exact schema.
  Result<std::string> ExportCsv(const std::string& dataset) const;

  /// \brief Imports a CSV produced by ExportCsv into `dataset` (created
  /// or appended; appended data must match the stored schema).
  Status ImportCsv(const std::string& dataset, const std::string& csv);

 private:
  struct Dataset {
    stt::SchemaPtr schema;
    std::vector<stt::TupleRef> rows;  // kept sorted by timestamp
  };
  std::map<std::string, Dataset> datasets_;
  uint64_t total_events_ = 0;
};

/// \brief Sink adapter writing one dataflow output into a warehouse
/// dataset.
class WarehouseSink : public Sink {
 public:
  WarehouseSink(std::string name, EventDataWarehouse* warehouse,
                std::string dataset)
      : Sink(std::move(name)),
        warehouse_(warehouse),
        dataset_(std::move(dataset)) {}

  using Sink::Write;
  Status Write(const stt::TupleRef& tuple) override {
    SL_RETURN_IF_ERROR(warehouse_->Load(dataset_, tuple));
    CountWrite();
    return Status::OK();
  }

  const std::string& dataset() const { return dataset_; }

 private:
  EventDataWarehouse* warehouse_;
  std::string dataset_;
};

}  // namespace sl::sinks

#endif  // STREAMLOADER_SINKS_WAREHOUSE_H_
