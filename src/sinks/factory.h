// StreamLoader: construction of sinks from dataflow sink nodes.

#ifndef STREAMLOADER_SINKS_FACTORY_H_
#define STREAMLOADER_SINKS_FACTORY_H_

#include <memory>
#include <string>

#include "dataflow/graph.h"
#include "sinks/streams.h"
#include "sinks/warehouse.h"

namespace sl::sinks {

/// \brief Shared resources sink construction draws from.
struct SinkContext {
  /// Destination for WAREHOUSE sinks; required when any is used.
  EventDataWarehouse* warehouse = nullptr;
  /// Receives visualization feature lines (optional: collected in
  /// memory when unset).
  LineConsumer visualization_consumer;
  /// Receives CSV lines (optional, as above).
  LineConsumer csv_consumer;
};

/// \brief Builds the sink for a dataflow sink node.
Result<std::unique_ptr<Sink>> MakeSink(const std::string& name,
                                       dataflow::SinkKind kind,
                                       const std::string& target,
                                       const SinkContext& context);

}  // namespace sl::sinks

#endif  // STREAMLOADER_SINKS_FACTORY_H_
