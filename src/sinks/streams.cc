#include "sinks/streams.h"

#include "util/json.h"
#include "util/strings.h"

namespace sl::sinks {

std::string VisualizationSink::ToFeature(const stt::Tuple& tuple) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type");
  w.String("Feature");
  w.Key("geometry");
  if (tuple.location().has_value()) {
    w.BeginObject();
    w.Key("type");
    w.String("Point");
    w.Key("coordinates");
    w.BeginArray();
    w.Double(tuple.location()->lon);
    w.Double(tuple.location()->lat);
    w.EndArray();
    w.EndObject();
  } else {
    w.Null();
  }
  w.Key("properties");
  w.BeginObject();
  w.Key("ts");
  w.String(FormatTimestamp(tuple.timestamp()));
  if (tuple.schema() != nullptr) {
    w.Key("theme");
    w.String(tuple.schema()->theme().ToString());
    for (size_t i = 0; i < tuple.schema()->num_fields(); ++i) {
      const auto& field = tuple.schema()->fields()[i];
      const auto& value = tuple.value(i);
      w.Key(field.name);
      if (value.is_null()) {
        w.Null();
      } else {
        switch (value.type()) {
          case stt::ValueType::kBool: w.Bool(value.AsBool()); break;
          case stt::ValueType::kInt: w.Int(value.AsInt()); break;
          case stt::ValueType::kDouble: w.Double(value.AsDouble()); break;
          default: w.String(value.ToString());
        }
      }
    }
  }
  if (!tuple.sensor_id().empty()) {
    w.Key("sensor");
    w.String(tuple.sensor_id());
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

Status VisualizationSink::Write(const stt::TupleRef& tuple) {
  std::string line = ToFeature(*tuple);
  if (consumer_) {
    consumer_(line);
  } else {
    lines_.push_back(std::move(line));
  }
  CountWrite();
  return Status::OK();
}

namespace {
std::string CsvQuote(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

void CsvSink::EmitLine(const std::string& line) {
  if (consumer_) {
    consumer_(line);
  } else {
    lines_.push_back(line);
  }
}

Status CsvSink::Write(const stt::TupleRef& tuple) {
  return WriteRow(*tuple);
}

Status CsvSink::WriteRow(const stt::Tuple& tuple) {
  if (tuple.schema() == nullptr) {
    return Status::InvalidArgument("tuple without schema");
  }
  if (!header_written_) {
    std::string header = "ts,lat,lon,sensor";
    for (const auto& f : tuple.schema()->fields()) {
      header += ",";
      header += f.name;
    }
    EmitLine(header);
    header_written_ = true;
  }
  std::string line = FormatTimestamp(tuple.timestamp());
  if (tuple.location().has_value()) {
    line += StrFormat(",%.6f,%.6f", tuple.location()->lat,
                      tuple.location()->lon);
  } else {
    line += ",,";
  }
  line += ",";
  line += CsvQuote(tuple.sensor_id());
  for (const auto& v : tuple.values()) {
    line += ",";
    line += v.is_null() ? "" : CsvQuote(v.ToString());
  }
  EmitLine(line);
  CountWrite();
  return Status::OK();
}

}  // namespace sl::sinks
