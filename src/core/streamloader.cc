#include "core/streamloader.h"

#include "util/logging.h"

namespace sl {

StreamLoader::StreamLoader(const StreamLoaderOptions& options)
    : options_(options) {
  loop_ = std::make_unique<net::EventLoop>(options.start_time);
  network_ = std::make_unique<net::Network>(loop_.get());
  if (options.network_nodes > 0) {
    Status s = net::BuildRingTopology(
        network_.get(), options.network_nodes, options.node_capacity_per_sec,
        options.link_latency, options.link_bandwidth_bytes_per_ms);
    if (!s.ok()) {
      SL_LOG(kError) << "topology construction failed: " << s.ToString();
    }
  }
  broker_ = std::make_unique<pubsub::Broker>(&loop_->clock());
  fleet_ = std::make_unique<sensors::SensorFleet>(loop_.get(), broker_.get());
  monitor_ = std::make_unique<monitor::Monitor>(loop_.get(), network_.get());
  monitor_->set_window(options.monitor_window);
  warehouse_ = std::make_unique<sinks::EventDataWarehouse>();

  sinks::SinkContext sink_context;
  sink_context.warehouse = warehouse_.get();
  exec::ExecutorOptions exec_options;
  exec_options.placement = options.placement;
  exec_options.rebalance_threshold = options.rebalance_threshold;
  exec_options.naive_blocking = options.naive_blocking;
  exec_options.columnar_batch = options.columnar_batch;
  executor_ = std::make_unique<exec::Executor>(loop_.get(), network_.get(),
                                               broker_.get(), monitor_.get(),
                                               sink_context, exec_options);
  executor_->set_fleet(fleet_.get());
  Status ms = monitor_->Start();
  if (!ms.ok()) {
    SL_LOG(kError) << "monitor start failed: " << ms.ToString();
  }
}

StreamLoader::~StreamLoader() {
  // Executor teardown unsubscribes from the broker; the monitor timer is
  // cancelled by its own destructor. Order matters: executor first.
  executor_.reset();
  monitor_.reset();
  fleet_.reset();
  broker_.reset();
  network_.reset();
  loop_.reset();
}

Status StreamLoader::AddSensor(
    std::unique_ptr<sensors::SensorSimulator> sensor, bool start_active) {
  return fleet_->Add(std::move(sensor), start_active);
}

Result<dataflow::ValidationReport> StreamLoader::Validate(
    const dataflow::Dataflow& dataflow) const {
  dataflow::Validator validator(broker_.get());
  return validator.Validate(dataflow);
}

Result<ops::DebugResult> StreamLoader::DebugRun(
    const dataflow::Dataflow& dataflow,
    const std::map<std::string, std::vector<stt::Tuple>>& samples) const {
  ops::DataflowDebugger debugger(broker_.get());
  return debugger.Run(dataflow, samples);
}

Result<std::string> StreamLoader::Translate(
    const dataflow::Dataflow& dataflow) const {
  SL_ASSIGN_OR_RETURN(dataflow::ValidationReport report, Validate(dataflow));
  if (!report.ok()) {
    return Status::ValidationError(
        "dataflow is not consistent; translation refused:\n" +
        report.Render());
  }
  SL_ASSIGN_OR_RETURN(dsn::DsnSpec spec, dsn::TranslateToDsn(dataflow));
  return spec.ToString();
}

Result<exec::DeploymentId> StreamLoader::Deploy(
    const dataflow::Dataflow& dataflow) {
  // The full paper path: consistency checks, automatic translation,
  // actuation of the textual DSN at network level.
  SL_ASSIGN_OR_RETURN(std::string dsn_text, Translate(dataflow));
  return DeployDsn(dsn_text);
}

Result<exec::DeploymentId> StreamLoader::DeployDsn(
    const std::string& dsn_text) {
  SL_ASSIGN_OR_RETURN(dsn::DsnSpec spec, dsn::ParseDsn(dsn_text));
  return executor_->Deploy(spec);
}

Result<exec::ThreadedRunResult> StreamLoader::RunThreaded(
    const dataflow::Dataflow& dataflow, const exec::InputTrace& trace,
    Timestamp end_time, exec::ThreadedOptions options) {
  // The threaded runtime does not simulate network faults: a delay
  // fault could carry a tuple across a flush boundary the punctuation
  // cannot see and silently produce wrong windows. Refuse a session
  // whose network has a plan that would actually perturb delivery,
  // unless the caller explicitly opts in.
  if (network_->fault_plan_installed() &&
      !network_->installed_fault_plan().IsZero() &&
      !options.allow_fault_plan) {
    return Status::FailedPrecondition(
        "RunThreaded: a non-zero fault plan is installed on this session's "
        "network, but threaded mode does not simulate faults — results "
        "would silently diverge from the simulator. Set "
        "ThreadedOptions::allow_fault_plan to run anyway.");
  }
  options.naive_blocking = options.naive_blocking || options_.naive_blocking;
  sinks::SinkContext sink_context;
  sink_context.warehouse = warehouse_.get();
  exec::ThreadedRuntime runtime(dataflow, broker_.get(), sink_context,
                                std::move(options));
  return runtime.RunTrace(trace, end_time);
}

std::string StreamLoader::MonitorView() const {
  const monitor::MonitorReport* latest = monitor_->latest();
  if (latest == nullptr) return "(no monitor report yet)";
  return latest->ToString();
}

}  // namespace sl
