// StreamLoader: the top-level facade — the paper's primary contribution
// as one API.
//
// A StreamLoader session owns the whole Figure 1 stack: the event loop,
// the programmable-network simulator, the publish/subscribe sensor
// layer, the sensor fleet, the monitor, the executor/SCN controller and
// the Event Data Warehouse. The designer-facing workflow is:
//
//   StreamLoader sl;                                   // the platform
//   ... add sensors (or BuildOsakaFleet) ...           // discovery (P1)
//   auto df = sl.NewDataflow("demo")... .Build();      // design  (P1)
//   sl.Validate(df); sl.DebugRun(df, samples);         // checks + samples
//   auto dsn = sl.Translate(df);                       // DSN/SCN  (P2)
//   auto id = sl.Deploy(df);                           // network level
//   sl.RunFor(duration::kHour);                        // event-driven run
//   sl.MonitorView();                                  // Figure 3
//
// Deploy() exercises the full textual path — validate, translate to DSN
// text, re-parse, deploy — so what runs is exactly what the DSN document
// says.

#ifndef STREAMLOADER_CORE_STREAMLOADER_H_
#define STREAMLOADER_CORE_STREAMLOADER_H_

#include <memory>
#include <string>

#include "dataflow/graph.h"
#include "dataflow/validate.h"
#include "dsn/parser.h"
#include "dsn/translate.h"
#include "exec/executor.h"
#include "exec/threaded_runtime.h"
#include "monitor/monitor.h"
#include "net/event_loop.h"
#include "net/network.h"
#include "ops/debugger.h"
#include "pubsub/broker.h"
#include "sensors/simulator.h"
#include "sinks/warehouse.h"

namespace sl {

/// \brief Configuration of a StreamLoader session.
struct StreamLoaderOptions {
  /// Ring-topology network size (the demo network shape); use 0 to start
  /// with an empty network and build a custom topology via network().
  size_t network_nodes = 8;
  double node_capacity_per_sec = 10000.0;
  Duration link_latency = 2;
  double link_bandwidth_bytes_per_ms = 1e5;  ///< 100 MB/s
  /// Monitoring window (Figure 3 refresh).
  Duration monitor_window = 10 * duration::kSecond;
  exec::PlacementStrategy placement = exec::PlacementStrategy::kLeastLoaded;
  /// Auto-migration threshold (0 disables).
  double rebalance_threshold = 1.0;
  /// Virtual start time; defaults to 2016-03-15T00:00Z (the EDBT demo
  /// week) so diurnal generators behave realistically.
  Timestamp start_time = 1458000000000;
  /// Deploy blocking operators with the reference implementations
  /// (nested-loop join, full-recompute aggregation) instead of the
  /// hash/incremental fast paths — for equivalence checks and ablations.
  bool naive_blocking = false;
  /// Columnar batch execution in the simulator executor
  /// (exec::ExecutorOptions::columnar_batch): coalesce same-edge
  /// delivery runs into vectorized ProcessBatch calls. Off by default;
  /// sink output is bit-identical either way.
  bool columnar_batch = false;
  /// Which runtime RunThreaded-style execution uses. kSimulated (the
  /// default) keeps every Deploy on the deterministic discrete-event
  /// simulator — the semantic reference; kThreaded marks the session as
  /// intending wall-clock execution (RunThreaded works in either mode,
  /// this records the designer's choice and seeds its options).
  exec::ExecutionMode execution = exec::ExecutionMode::kSimulated;
};

/// \brief One complete StreamLoader platform instance.
class StreamLoader {
 public:
  explicit StreamLoader(const StreamLoaderOptions& options = {});
  ~StreamLoader();

  StreamLoader(const StreamLoader&) = delete;
  StreamLoader& operator=(const StreamLoader&) = delete;

  // -- subsystem access ----------------------------------------------------
  net::EventLoop& loop() { return *loop_; }
  net::Network& network() { return *network_; }
  pubsub::Broker& broker() { return *broker_; }
  sensors::SensorFleet& fleet() { return *fleet_; }
  monitor::Monitor& monitor() { return *monitor_; }
  exec::Executor& executor() { return *executor_; }
  sinks::EventDataWarehouse& warehouse() { return *warehouse_; }

  // -- designer workflow ----------------------------------------------------

  /// Adds (publishes) a simulated sensor; active sensors emit
  /// immediately, inactive ones wait for a Trigger On (or Activate).
  Status AddSensor(std::unique_ptr<sensors::SensorSimulator> sensor,
                   bool start_active = true);

  /// Starts a new dataflow design.
  dataflow::DataflowBuilder NewDataflow(const std::string& name) {
    return dataflow::DataflowBuilder(name);
  }

  /// Runs the soundness checks of the design environment.
  Result<dataflow::ValidationReport> Validate(
      const dataflow::Dataflow& dataflow) const;

  /// Sample-based step debugging (P1).
  Result<ops::DebugResult> DebugRun(
      const dataflow::Dataflow& dataflow,
      const std::map<std::string, std::vector<stt::Tuple>>& samples) const;

  /// Translates a dataflow to DSN text (P2).
  Result<std::string> Translate(const dataflow::Dataflow& dataflow) const;

  /// Validate -> translate -> parse -> deploy at network level.
  Result<exec::DeploymentId> Deploy(const dataflow::Dataflow& dataflow);

  /// Deploys directly from DSN text.
  Result<exec::DeploymentId> DeployDsn(const std::string& dsn_text);

  /// Executes `dataflow` on the wall-clock multithreaded runtime
  /// (exec::ThreadedRuntime): validates against this session's broker,
  /// replays `trace` (tuples per source with virtual ingestion times —
  /// typically captured from a simulated run via
  /// ExecutorOptions::source_tap) and drains at `end_time`. The
  /// session's naive_blocking choice is inherited unless the options
  /// already set it. The simulator deployments are untouched: this is
  /// the ExecutionMode::kThreaded path, and the simulated run of the
  /// same trace is its correctness oracle. Fails fast when the
  /// session's network carries a non-zero fault plan (threaded mode
  /// does not simulate faults); ThreadedOptions::allow_fault_plan
  /// overrides the check.
  Result<exec::ThreadedRunResult> RunThreaded(
      const dataflow::Dataflow& dataflow, const exec::InputTrace& trace,
      Timestamp end_time, exec::ThreadedOptions options = {});

  Status Undeploy(exec::DeploymentId id) { return executor_->Undeploy(id); }

  /// Advances virtual time, running all due events.
  size_t RunFor(Duration d) { return loop_->RunFor(d); }

  /// Current virtual time.
  Timestamp Now() const { return loop_->Now(); }

  /// The latest monitor report rendered as text (Figure 3), or a
  /// placeholder when no tick has happened yet.
  std::string MonitorView() const;

 private:
  StreamLoaderOptions options_;
  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<pubsub::Broker> broker_;
  std::unique_ptr<sensors::SensorFleet> fleet_;
  std::unique_ptr<monitor::Monitor> monitor_;
  std::unique_ptr<sinks::EventDataWarehouse> warehouse_;
  std::unique_ptr<exec::Executor> executor_;
};

}  // namespace sl

#endif  // STREAMLOADER_CORE_STREAMLOADER_H_
