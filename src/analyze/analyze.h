// StreamLoader: whole-pipeline abstract interpretation (sl-analyze).
//
// Propagates per-property abstract values (analyze/domain.h) from
// registry-declared sensor metadata through every operator of a
// validated dataflow, in topological order — a fixpoint in one pass,
// since the graph is a DAG and every transfer function is monotone over
// the domain. On top of the inferred facts it emits the SL4xxx
// diagnostic family: findings a *local* check cannot see because they
// only follow from what upstream operators let through (a filter made
// vacuous by declared sensor ranges, an equi-join whose key intervals
// cannot overlap, a division whose divisor the pipeline pins to zero).
//
// Everything here is advisory. The analysis never rewrites the
// dataflow and the runtime never reads its results, so a program with
// SL4xxx warnings runs bit-identically to one without (the
// behavior-neutrality contract, pinned by the analyze_test seed
// battery).

#ifndef STREAMLOADER_ANALYZE_ANALYZE_H_
#define STREAMLOADER_ANALYZE_ANALYZE_H_

#include <map>
#include <string>
#include <vector>

#include "analyze/domain.h"
#include "dataflow/graph.h"
#include "dataflow/validate.h"
#include "diag/diagnostic.h"
#include "pubsub/broker.h"
#include "util/json.h"

namespace sl::analyze {

/// \brief Analysis-only knobs that live outside the Dataflow proper.
struct AnalyzeOptions {
  /// A declared bounded-lateness contract for one blocking node (the
  /// DSN `lateness:` property — dropped by translation, so it cannot
  /// affect the runtime). `text` is the raw property value, kept so
  /// SL4006 can be re-anchored onto it in the document.
  struct Lateness {
    Duration bound = 0;
    std::string text;
  };
  std::map<std::string, Lateness> lateness;  ///< keyed by node name
};

/// \brief The facts flowing over one graph edge (`from` → `to`): the
/// output facts of `from` as `to` consumes them.
struct EdgeFacts {
  std::string from;
  std::string to;
  StreamFacts facts;
};

/// \brief Everything the analysis produced for one dataflow.
struct Analysis {
  /// SL4xxx findings. Spans are relative to each diagnostic's `source`
  /// (an expression/spec string); dsn::LintDsnProgram re-anchors them
  /// into the document like every other lint finding.
  std::vector<diag::Diagnostic> diags;

  /// Output facts per node, keyed by node name.
  std::map<std::string, StreamFacts> node_facts;

  /// Facts per edge, in (topological, input-order) order.
  std::vector<EdgeFacts> edges;

  /// Serializes the per-edge facts as one JSON object (keys: "edges").
  void WriteJson(JsonWriter& w) const;

  /// Human-readable per-edge fact listing.
  std::string RenderFacts() const;
};

/// \brief Analyzes a dataflow that already passed validation. `report`
/// must be the Validator's report for `dataflow` (its derived schemas
/// drive the propagation); analysis of nodes whose schema derivation
/// failed is skipped. `broker` seeds source facts from the registry
/// metadata (ranges, periods, max_delay); nullptr degrades every
/// source to Top.
Result<Analysis> AnalyzeDataflow(const dataflow::Dataflow& dataflow,
                                 const pubsub::Broker* broker,
                                 const dataflow::ValidationReport& report,
                                 const AnalyzeOptions& options = {});

}  // namespace sl::analyze

#endif  // STREAMLOADER_ANALYZE_ANALYZE_H_
