// StreamLoader: abstract execution of compiled expression programs.
//
// The analyzer runs the *same* postorder ExprInsn programs the runtime
// evaluates per tuple (expr/program.h), but over AbstractValues instead
// of Values: each instruction's transfer function over-approximates the
// concrete EvalUnaryOp/EvalArithOp/EvalCompareOp semantics, including
// SQL null propagation and the null-on-domain-error rule (division by
// zero, non-finite results). Short-circuit jumps are ignored — the
// abstract Kleene merge of both operands subsumes every path the
// concrete short-circuit can take, so skipping the jump is sound.
//
// Findings the evaluation itself can prove (a divisor whose interval is
// exactly zero, integer arithmetic whose inferred operand ranges exceed
// 64 bits) are reported with the instruction's source span so the
// caller can anchor a caret at the offending subexpression.

#ifndef STREAMLOADER_ANALYZE_ABSTRACT_EVAL_H_
#define STREAMLOADER_ANALYZE_ABSTRACT_EVAL_H_

#include <string>
#include <vector>

#include "analyze/domain.h"
#include "diag/diagnostic.h"
#include "expr/ast.h"
#include "expr/program.h"
#include "stt/schema.h"

namespace sl::analyze {

/// \brief Abstract counterpart of a tuple: one AbstractValue per schema
/// attribute plus the metadata pseudo-attributes.
struct AbstractRow {
  const stt::Schema* schema = nullptr;
  std::vector<AbstractValue> attrs;
  AbstractValue ts;
  AbstractValue lat;
  AbstractValue lon;
  AbstractValue sensor;
  AbstractValue theme;

  /// Builds the row an edge with `facts` presents to an expression.
  static AbstractRow FromFacts(const StreamFacts& facts);
};

/// \brief Something abstract evaluation proved about a subexpression
/// (reachable division by zero, possible 64-bit overflow). `span` is
/// relative to the expression source the program was compiled from.
struct ExprFinding {
  diag::Code code = diag::Code::kNone;
  diag::Span span;
  std::string message;
};

/// \brief Runs `program` over `row`, returning the abstract result.
/// Appends any provable findings to `findings` (may be nullptr).
AbstractValue EvalAbstract(const expr::ExprProgram& program,
                           const AbstractRow& row,
                           std::vector<ExprFinding>* findings);

/// \brief Narrows `row` to the tuples on which `condition` evaluates to
/// true (the filter's pass branch): walks the predicate's and-spine and,
/// for each `attr cmp constant` conjunct, tightens the attribute's
/// interval / string set; attributes compared under null-propagating
/// operators also become non-null (a null conjunct is non-true, so the
/// tuple is dropped). Purely a refinement — never widens anything.
void NarrowByCondition(const expr::Expr& condition, AbstractRow* row);

}  // namespace sl::analyze

#endif  // STREAMLOADER_ANALYZE_ABSTRACT_EVAL_H_
