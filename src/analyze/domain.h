// StreamLoader: abstract domains for whole-pipeline value analysis.
//
// sl-analyze propagates, per stream property, an *abstract value*: a
// numeric interval joined with null-ness, NaN-ness, boolean outcome
// possibilities, and a small string-constant set. The domain is a
// lattice: Join over-approximates set union (what a property *may*
// hold), Meet under... intersects (what it must hold on both
// approximations). The analyzer seeds the domain from registry-declared
// sensor ranges and runs the operators' transfer functions over it;
// everything here is purely descriptive — the runtime never consults it
// (the behavior-neutrality contract of DESIGN.md §13).

#ifndef STREAMLOADER_ANALYZE_DOMAIN_H_
#define STREAMLOADER_ANALYZE_DOMAIN_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "stt/schema.h"
#include "stt/value.h"
#include "util/clock.h"

namespace sl::analyze {

/// \brief What the analyzer knows about one property of one stream edge.
///
/// The components are interpreted per the static `type`:
///  - kInt / kDouble / kTimestamp: `[lo, hi]` bounds the non-null,
///    non-NaN values (±inf = unbounded);
///  - kDouble additionally: `may_nan` — whether NaN can occur;
///  - kBool: `may_true` / `may_false` — which outcomes are possible;
///  - kString: `strings`, when engaged, is an exhaustive constant set
///    (at most kMaxStrings; wider sets decay to "any string").
/// `may_null` applies to every type. A value about which nothing is
/// known is Top (unbounded, nullable, NaN-able).
struct AbstractValue {
  static constexpr size_t kMaxStrings = 8;
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  stt::ValueType type = stt::ValueType::kNull;
  double lo = -kInf;
  double hi = kInf;
  bool may_null = true;
  bool may_nan = false;
  bool may_true = true;    ///< kBool only
  bool may_false = true;   ///< kBool only
  std::optional<std::vector<std::string>> strings;  ///< kString only

  /// Top of a type: everything that type can hold.
  static AbstractValue TopOf(stt::ValueType t);

  /// The abstraction of one concrete value (a literal).
  static AbstractValue Constant(const stt::Value& v);

  /// A non-null numeric interval of the given type.
  static AbstractValue Interval(stt::ValueType t, double lo, double hi);

  /// True when exactly one concrete non-null value is possible.
  bool IsConstant() const;

  /// True when *no* non-null value is possible (empty interval / empty
  /// string set) — the pointwise bottom. may_null may still be true.
  bool IsEmptyValue() const;

  /// "[0, 160] null?" / "{\"R1\",\"R2\"}" / "bool{true}" ...
  std::string ToString() const;
};

/// Least upper bound: describes every value either operand describes.
AbstractValue Join(const AbstractValue& a, const AbstractValue& b);

/// Greatest lower bound: describes only values both operands describe.
/// The result can be empty (IsEmptyValue) — e.g. disjoint join keys.
AbstractValue Meet(const AbstractValue& a, const AbstractValue& b);

/// \brief Everything inferred about one stream edge: the schema it
/// carries, one abstract value per schema field, whether any tuple can
/// flow at all, and delivery metadata folded in from the sources.
struct StreamFacts {
  stt::SchemaPtr schema;
  std::vector<AbstractValue> props;  ///< parallel to schema->fields()

  /// False when the analysis proves no tuple ever traverses this edge
  /// (an always-false filter upstream, a provably-empty join) — the
  /// stream-level bottom.
  bool may_produce = true;

  /// Upper bound on the tuple rate in tuples per millisecond (sums the
  /// matched sensors' declared periods; +inf when unbounded, e.g.
  /// downstream of a join). Bounds aggregation counts per window.
  double rate_per_ms = std::numeric_limits<double>::infinity();

  /// Worst-case delivery delay any contributing source declared
  /// (max over the upstream registry `max_delay`s; 0 = none declared).
  Duration max_delay = 0;

  /// Multi-line "name: facts" rendering, indented with `indent`.
  std::string ToString(const std::string& indent = "") const;
};

}  // namespace sl::analyze

#endif  // STREAMLOADER_ANALYZE_DOMAIN_H_
