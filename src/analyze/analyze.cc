#include "analyze/analyze.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "analyze/abstract_eval.h"
#include "expr/eval.h"
#include "expr/parser.h"
#include "util/strings.h"

namespace sl::analyze {

using dataflow::AggFunc;
using dataflow::AggregationSpec;
using dataflow::FilterSpec;
using dataflow::JoinSpec;
using dataflow::Node;
using dataflow::NodeKind;
using dataflow::OpKind;
using dataflow::TransformSpec;
using dataflow::TriggerSpec;
using dataflow::VirtualPropertySpec;
using expr::BoundExpr;
using stt::ValueType;

namespace {

constexpr double kInf = AbstractValue::kInf;

diag::Span WholeSpan(const std::string& text) {
  return diag::Span{0, text.size()};
}

// (The constant-predicate suppression lives in
// Analyzer::DecidedWithoutRanges: SL4001 only fires when the verdict
// genuinely depends on the propagated value ranges.)

class Analyzer {
 public:
  Analyzer(const dataflow::Dataflow& df, const pubsub::Broker* broker,
           const dataflow::ValidationReport& report,
           const AnalyzeOptions& options)
      : df_(df), broker_(broker), report_(report), options_(options) {}

  Analysis Run() {
    for (const std::string& name : df_.topological_order()) {
      const Node& node = df_.nodes().at(name);
      switch (node.kind) {
        case NodeKind::kSource: AnalyzeSource(node); break;
        case NodeKind::kOperator: AnalyzeOperator(node); break;
        case NodeKind::kSink: AnalyzeSink(node); break;
      }
      CheckLateness(node);
    }
    CheckDeadStreams();
    CollectEdges();
    diag::SortAndDedup(out_.diags);
    return std::move(out_);
  }

 private:
  /// The derived output schema of `name`, or nullptr when validation
  /// could not derive one (the node is then skipped: facts stay absent
  /// and downstream nodes degrade to Top).
  stt::SchemaPtr SchemaOf(const std::string& name) const {
    auto it = report_.schemas.find(name);
    return it == report_.schemas.end() ? nullptr : it->second;
  }

  const StreamFacts* FactsOf(const std::string& name) const {
    auto it = out_.node_facts.find(name);
    return it == out_.node_facts.end() ? nullptr : &it->second;
  }

  /// Facts of `name`, or Top over its derived schema when the input
  /// was skipped. Returns false when no schema exists either.
  bool InputFacts(const std::string& name, StreamFacts* facts) const {
    if (const StreamFacts* f = FactsOf(name)) {
      *facts = *f;
      return true;
    }
    stt::SchemaPtr schema = SchemaOf(name);
    if (schema == nullptr) return false;
    *facts = TopFacts(schema);
    return true;
  }

  /// True when the condition's outcome is already decided over a Top
  /// row — i.e. without consulting any propagated value ranges. That is
  /// the constant-predicate case SL3004 reports at typecheck level,
  /// which SL4001 must not duplicate.
  bool DecidedWithoutRanges(const BoundExpr& bound,
                            const stt::SchemaPtr& schema) const {
    AbstractRow row = AbstractRow::FromFacts(TopFacts(schema));
    AbstractValue cond = EvalAbstract(bound.program(), row, nullptr);
    return !cond.may_true || (!cond.may_false && !cond.may_null);
  }

  static StreamFacts TopFacts(const stt::SchemaPtr& schema) {
    StreamFacts facts;
    facts.schema = schema;
    for (const auto& f : schema->fields()) {
      AbstractValue v = AbstractValue::TopOf(f.type);
      v.may_null = f.nullable;
      facts.props.push_back(std::move(v));
    }
    return facts;
  }

  void Warn(diag::Code code, const std::string& node, std::string message,
            diag::Span span = {}, std::string source = {}) {
    out_.diags.push_back(diag::MakeDiag(code, node, std::move(message), span,
                                        std::move(source)));
  }

  void EmitExprFindings(const std::string& node, const std::string& source,
                        const std::vector<ExprFinding>& findings) {
    for (const ExprFinding& f : findings) {
      Warn(f.code, node, f.message, f.span, source);
    }
  }

  // -- sources --------------------------------------------------------

  void AnalyzeSource(const Node& node) {
    stt::SchemaPtr schema = SchemaOf(node.name);
    if (schema == nullptr) return;
    std::vector<pubsub::SensorInfo> sensors;
    if (broker_ != nullptr) {
      if (node.by_query) {
        sensors = broker_->Discover(node.source_query);
      } else if (auto info = broker_->Find(node.sensor_id); info.ok()) {
        sensors.push_back(std::move(*info));
      }
    }
    StreamFacts facts;
    facts.schema = schema;
    for (const auto& field : schema->fields()) {
      AbstractValue joined;
      bool first = true;
      for (const auto& info : sensors) {
        AbstractValue v;
        if (const pubsub::PropertyRange* r = info.RangeOf(field.name)) {
          // A declared range vouches for finite, non-null readings.
          v = AbstractValue::Interval(field.type, r->lo, r->hi);
        } else {
          v = AbstractValue::TopOf(field.type);
          v.may_null = field.nullable;
        }
        joined = first ? v : Join(joined, v);
        first = false;
      }
      if (first) {
        joined = AbstractValue::TopOf(field.type);
        joined.may_null = field.nullable;
      }
      facts.props.push_back(std::move(joined));
    }
    facts.rate_per_ms = 0;
    for (const auto& info : sensors) {
      facts.rate_per_ms +=
          info.period > 0 ? 1.0 / static_cast<double>(info.period) : kInf;
      facts.max_delay = std::max(facts.max_delay, info.max_delay);
    }
    if (sensors.empty()) facts.rate_per_ms = kInf;
    out_.node_facts[node.name] = std::move(facts);
  }

  // -- operators ------------------------------------------------------

  void AnalyzeOperator(const Node& node) {
    switch (node.op) {
      case OpKind::kFilter: AnalyzeFilter(node); break;
      case OpKind::kTransform: AnalyzeTransform(node); break;
      case OpKind::kVirtualProperty: AnalyzeVirtualProperty(node); break;
      case OpKind::kCullTime:
      case OpKind::kCullSpace: AnalyzePassThrough(node); break;
      case OpKind::kAggregation: AnalyzeAggregation(node); break;
      case OpKind::kJoin: AnalyzeJoin(node); break;
      case OpKind::kTriggerOn:
      case OpKind::kTriggerOff: AnalyzeTrigger(node); break;
    }
  }

  void AnalyzePassThrough(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    out_.node_facts[node.name] = std::move(in);
  }

  void AnalyzeFilter(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    const auto& spec = std::get<FilterSpec>(node.spec);
    StreamFacts out = in;
    auto bound = BoundExpr::Parse(spec.condition, in.schema);
    if (bound.ok()) {
      AbstractRow row = AbstractRow::FromFacts(in);
      std::vector<ExprFinding> findings;
      AbstractValue cond = EvalAbstract(bound->program(), row, &findings);
      EmitExprFindings(node.name, spec.condition, findings);
      if (!DecidedWithoutRanges(*bound, in.schema) && in.may_produce) {
        if (!cond.may_true) {
          Warn(diag::Code::kRangeConstantCondition, node.name,
               "filter condition is always false given upstream value "
               "ranges: no tuple can ever pass",
               WholeSpan(spec.condition), spec.condition);
          out.may_produce = false;
        } else if (!cond.may_false && !cond.may_null) {
          Warn(diag::Code::kRangeConstantCondition, node.name,
               "filter condition is always true given upstream value "
               "ranges: the filter never drops anything",
               WholeSpan(spec.condition), spec.condition);
        }
      }
      NarrowByCondition(*bound->expr(), &row);
      out.props = std::move(row.attrs);
    }
    out_.node_facts[node.name] = std::move(out);
  }

  void AnalyzeTransform(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    stt::SchemaPtr schema = SchemaOf(node.name);
    if (schema == nullptr) return;
    const auto& spec = std::get<TransformSpec>(node.spec);
    StreamFacts out = in;
    out.schema = schema;
    auto idx = in.schema->FieldIndex(spec.attribute);
    auto bound = BoundExpr::Parse(spec.expression, in.schema);
    if (bound.ok() && idx.ok() && *idx < out.props.size()) {
      AbstractRow row = AbstractRow::FromFacts(in);
      std::vector<ExprFinding> findings;
      AbstractValue v = EvalAbstract(bound->program(), row, &findings);
      EmitExprFindings(node.name, spec.expression, findings);
      v.type = schema->fields()[*idx].type;
      out.props[*idx] = std::move(v);
    }
    out_.node_facts[node.name] = std::move(out);
  }

  void AnalyzeVirtualProperty(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    stt::SchemaPtr schema = SchemaOf(node.name);
    if (schema == nullptr) return;
    const auto& spec = std::get<VirtualPropertySpec>(node.spec);
    StreamFacts out = in;
    out.schema = schema;
    auto bound = BoundExpr::Parse(spec.specification, in.schema);
    AbstractValue v;
    if (bound.ok()) {
      AbstractRow row = AbstractRow::FromFacts(in);
      std::vector<ExprFinding> findings;
      v = EvalAbstract(bound->program(), row, &findings);
      EmitExprFindings(node.name, spec.specification, findings);
    } else {
      v = AbstractValue::TopOf(schema->fields().back().type);
    }
    v.type = schema->fields().back().type;
    out.props.push_back(std::move(v));
    out_.node_facts[node.name] = std::move(out);
  }

  void AnalyzeTrigger(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    const auto& spec = std::get<TriggerSpec>(node.spec);
    auto bound = BoundExpr::Parse(spec.condition, in.schema);
    if (bound.ok()) {
      AbstractRow row = AbstractRow::FromFacts(in);
      std::vector<ExprFinding> findings;
      AbstractValue cond = EvalAbstract(bound->program(), row, &findings);
      EmitExprFindings(node.name, spec.condition, findings);
      if (!DecidedWithoutRanges(*bound, in.schema) && in.may_produce &&
          !cond.may_true) {
        // The input still passes through; only the target activation is
        // provably dead, so may_produce is untouched.
        Warn(diag::Code::kRangeConstantCondition, node.name,
             "trigger condition can never be satisfied given upstream "
             "value ranges: the targets are never switched",
             WholeSpan(spec.condition), spec.condition);
      }
    }
    CheckConstantPartitionKey(node, spec.parallelism, spec.partition_by, in);
    out_.node_facts[node.name] = std::move(in);
  }

  void AnalyzeAggregation(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    stt::SchemaPtr schema = SchemaOf(node.name);
    if (schema == nullptr) return;
    const auto& spec = std::get<AggregationSpec>(node.spec);

    Duration window = spec.window > 0 ? spec.window : spec.interval;
    double max_n = kInf;
    if (std::isfinite(in.rate_per_ms)) {
      max_n = std::max(1.0, std::ceil(in.rate_per_ms *
                                      static_cast<double>(window)));
    }

    StreamFacts out;
    out.schema = schema;
    out.may_produce = in.may_produce;
    out.max_delay = in.max_delay;
    auto input_prop = [&](const std::string& name) {
      auto idx = in.schema->FieldIndex(name);
      if (idx.ok() && *idx < in.props.size()) return in.props[*idx];
      return AbstractValue::TopOf(ValueType::kNull);
    };

    for (const auto& g : spec.group_by) {
      out.props.push_back(input_prop(g));
    }
    if (spec.func == AggFunc::kCount && spec.attributes.empty()) {
      AbstractValue count = AbstractValue::Interval(ValueType::kInt, 1, max_n);
      out.props.push_back(std::move(count));
    }
    for (const auto& a : spec.attributes) {
      AbstractValue p = input_prop(a);
      AbstractValue v;
      switch (spec.func) {
        case AggFunc::kCount:
          v = AbstractValue::Interval(ValueType::kInt, 1, max_n);
          break;
        case AggFunc::kSum:
          v = AbstractValue::Interval(ValueType::kDouble,
                                      p.lo >= 0 ? p.lo : p.lo * max_n,
                                      p.hi <= 0 ? p.hi : p.hi * max_n);
          v.may_null = p.may_null;
          v.may_nan = p.may_nan;
          break;
        case AggFunc::kAvg:
          v = AbstractValue::Interval(ValueType::kDouble, p.lo, p.hi);
          v.may_null = p.may_null;
          v.may_nan = p.may_nan;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          v = p;
          break;
      }
      out.props.push_back(std::move(v));
    }
    // The schema may carry more fields than we derived (a validation
    // issue suppressed some); pad with Top so props stays parallel.
    while (out.props.size() < schema->fields().size()) {
      out.props.push_back(
          AbstractValue::TopOf(schema->fields()[out.props.size()].type));
    }

    // Output rate: one tuple per group per interval.
    if (spec.group_by.empty()) {
      out.rate_per_ms = 1.0 / static_cast<double>(spec.interval);
    } else {
      double groups = kInf;
      for (const auto& g : spec.group_by) {
        AbstractValue p = input_prop(g);
        if (p.strings.has_value()) {
          groups = std::min(groups, static_cast<double>(p.strings->size()));
        } else if (p.lo == p.hi && std::isfinite(p.lo)) {
          groups = std::min(groups, 1.0);
        }
      }
      out.rate_per_ms = groups / static_cast<double>(spec.interval);
    }

    const std::vector<std::string>& keys =
        spec.partition_by.empty() ? spec.group_by : spec.partition_by;
    CheckConstantPartitionKey(node, spec.parallelism, keys, in);
    out_.node_facts[node.name] = std::move(out);
  }

  void AnalyzeJoin(const Node& node) {
    StreamFacts left, right;
    if (!InputFacts(node.inputs[0], &left) ||
        !InputFacts(node.inputs[1], &right)) {
      return;
    }
    stt::SchemaPtr schema = SchemaOf(node.name);
    if (schema == nullptr) return;
    const auto& spec = std::get<JoinSpec>(node.spec);

    StreamFacts out;
    out.schema = schema;
    out.may_produce = left.may_produce && right.may_produce;
    out.max_delay = std::max(left.max_delay, right.max_delay);
    out.rate_per_ms = kInf;
    size_t split = left.schema->fields().size();
    out.props = left.props;
    out.props.insert(out.props.end(), right.props.begin(), right.props.end());
    while (out.props.size() < schema->fields().size()) {
      out.props.push_back(
          AbstractValue::TopOf(schema->fields()[out.props.size()].type));
    }

    auto parsed = expr::ParseExpression(spec.predicate);
    std::vector<dataflow::EquiConjunct> equi;
    if (parsed.ok()) {
      equi = dataflow::AnalyzeJoinPredicate(*parsed, *schema, split).equi;
    }
    bool keys_disjoint = false;
    std::vector<AbstractValue> met_keys;
    for (const auto& eq : equi) {
      if (eq.left_index >= out.props.size() ||
          eq.right_index >= out.props.size()) {
        continue;
      }
      AbstractValue met =
          Meet(out.props[eq.left_index], out.props[eq.right_index]);
      // An equi-match implies both key columns are equal and non-null.
      met.may_null = false;
      if (met.IsEmptyValue() && out.may_produce) {
        Warn(diag::Code::kEmptyJoin, node.name,
             StrFormat("equi-join is provably empty: key ranges %s and %s "
                       "cannot overlap, so no pair ever matches",
                       out.props[eq.left_index].ToString().c_str(),
                       out.props[eq.right_index].ToString().c_str()),
             WholeSpan(spec.predicate), spec.predicate);
        keys_disjoint = true;
      }
      met_keys.push_back(met);
      out.props[eq.left_index] = met;
      out.props[eq.right_index] = std::move(met);
    }
    if (keys_disjoint) out.may_produce = false;

    auto bound = BoundExpr::Parse(spec.predicate, schema);
    if (bound.ok()) {
      StreamFacts joined = out;
      AbstractRow row = AbstractRow::FromFacts(joined);
      std::vector<ExprFinding> findings;
      AbstractValue pred = EvalAbstract(bound->program(), row, &findings);
      EmitExprFindings(node.name, spec.predicate, findings);
      if (!DecidedWithoutRanges(*bound, schema) && !keys_disjoint &&
          out.may_produce && !pred.may_true) {
        Warn(diag::Code::kEmptyJoin, node.name,
             "join predicate can never be satisfied given upstream value "
             "ranges: the join is provably empty",
             WholeSpan(spec.predicate), spec.predicate);
        out.may_produce = false;
      }
      NarrowByCondition(*bound->expr(), &row);
      out.props = std::move(row.attrs);
    }

    // Partition key: the explicit partition_by columns, else the
    // equi-conjunct key columns the instances hash on.
    if (spec.parallelism > 1) {
      bool all_constant = true;
      bool any_key = false;
      std::vector<std::string> names;
      if (!spec.partition_by.empty()) {
        for (const auto& p : spec.partition_by) {
          auto idx = schema->FieldIndex(p);
          if (!idx.ok() || *idx >= out.props.size()) continue;
          any_key = true;
          names.push_back(p);
          all_constant = all_constant && out.props[*idx].IsConstant();
        }
      } else {
        for (const auto& m : met_keys) {
          any_key = true;
          all_constant = all_constant && m.IsConstant();
        }
        for (const auto& eq : equi) {
          if (eq.left_index < schema->fields().size()) {
            names.push_back(schema->fields()[eq.left_index].name);
          }
        }
      }
      if (any_key && all_constant) {
        WarnConstantKey(node.name, spec.parallelism, names);
      }
    }
    out_.node_facts[node.name] = std::move(out);
  }

  void AnalyzeSink(const Node& node) {
    StreamFacts in;
    if (!InputFacts(node.inputs[0], &in)) return;
    out_.node_facts[node.name] = std::move(in);
  }

  // -- cross-cutting checks -------------------------------------------

  void CheckConstantPartitionKey(const Node& node, size_t parallelism,
                                 const std::vector<std::string>& keys,
                                 const StreamFacts& in) {
    if (parallelism <= 1 || keys.empty() || in.schema == nullptr) return;
    for (const auto& k : keys) {
      auto idx = in.schema->FieldIndex(k);
      if (!idx.ok() || *idx >= in.props.size()) return;
      if (!in.props[*idx].IsConstant()) return;
    }
    WarnConstantKey(node.name, parallelism, keys);
  }

  void WarnConstantKey(const std::string& node, size_t parallelism,
                       const std::vector<std::string>& keys) {
    std::string key_list;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0) key_list += ", ";
      key_list += "'" + keys[i] + "'";
    }
    Warn(diag::Code::kConstantPartitionKey, node,
         StrFormat("partition key %s is provably constant: every tuple "
                   "hashes to one of the %zu instances and the other "
                   "%zu do no work",
                   key_list.c_str(), parallelism, parallelism - 1));
  }

  void CheckLateness(const Node& node) {
    auto it = options_.lateness.find(node.name);
    if (it == options_.lateness.end()) return;
    const StreamFacts* facts = FactsOf(node.name);
    if (facts == nullptr || facts->max_delay <= 0) return;
    if (it->second.bound >= facts->max_delay) return;
    Warn(diag::Code::kLatenessTooSmall, node.name,
         StrFormat("bounded lateness %s is smaller than the %s max_delay "
                   "an upstream source declares in the registry: "
                   "in-contract tuples will be treated as late",
                   FormatDuration(it->second.bound).c_str(),
                   FormatDuration(facts->max_delay).c_str()),
         WholeSpan(it->second.text), it->second.text);
  }

  void CheckDeadStreams() {
    // Structural sink-reachability (what SL3002 checks) vs. semantic
    // deliverability: a node that *could* reach a sink on the graph but
    // whose every path crosses a provably-empty stream is dead — its
    // tuples are produced and then provably discarded.
    std::map<std::string, bool> structural, deliver;
    const auto& topo = df_.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const Node& node = df_.nodes().at(*it);
      const StreamFacts* facts = FactsOf(*it);
      bool produces = facts == nullptr || facts->may_produce;
      if (node.kind == NodeKind::kSink) {
        structural[*it] = true;
        deliver[*it] = produces;
        continue;
      }
      bool s = false, d = false;
      for (const std::string& down : df_.Downstream(*it)) {
        s = s || structural[down];
        d = d || deliver[down];
      }
      structural[*it] = s;
      deliver[*it] = produces && d;
    }
    for (const std::string& name : topo) {
      const Node& node = df_.nodes().at(name);
      if (node.kind == NodeKind::kSink) continue;
      const StreamFacts* facts = FactsOf(name);
      bool produces = facts == nullptr || facts->may_produce;
      if (structural[name] && produces && !deliver[name]) {
        Warn(diag::Code::kDeadStream, name,
             "dead stream: every path from this node to a sink crosses a "
             "provably-empty stream, so its output is always discarded");
      }
    }
  }

  void CollectEdges() {
    for (const std::string& name : df_.topological_order()) {
      const Node& node = df_.nodes().at(name);
      for (const std::string& input : node.inputs) {
        if (const StreamFacts* f = FactsOf(input)) {
          out_.edges.push_back({input, name, *f});
        }
      }
    }
  }

  const dataflow::Dataflow& df_;
  const pubsub::Broker* broker_;
  const dataflow::ValidationReport& report_;
  const AnalyzeOptions& options_;
  Analysis out_;
};

void WriteAbstractValue(JsonWriter& w, const stt::Field& field,
                        const AbstractValue& v) {
  w.BeginObject();
  w.Key("name");
  w.String(field.name);
  w.Key("type");
  w.String(stt::ValueTypeToString(v.type));
  if (std::isfinite(v.lo)) {
    w.Key("lo");
    w.Double(v.lo);
  }
  if (std::isfinite(v.hi)) {
    w.Key("hi");
    w.Double(v.hi);
  }
  w.Key("may_null");
  w.Bool(v.may_null);
  if (v.type == ValueType::kDouble) {
    w.Key("may_nan");
    w.Bool(v.may_nan);
  }
  if (v.type == ValueType::kBool) {
    w.Key("may_true");
    w.Bool(v.may_true);
    w.Key("may_false");
    w.Bool(v.may_false);
  }
  if (v.strings.has_value()) {
    w.Key("strings");
    w.BeginArray();
    for (const auto& s : *v.strings) w.String(s);
    w.EndArray();
  }
  w.EndObject();
}

}  // namespace

void Analysis::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("edges");
  w.BeginArray();
  for (const EdgeFacts& edge : edges) {
    w.BeginObject();
    w.Key("from");
    w.String(edge.from);
    w.Key("to");
    w.String(edge.to);
    w.Key("may_produce");
    w.Bool(edge.facts.may_produce);
    if (std::isfinite(edge.facts.rate_per_ms)) {
      w.Key("max_tuples_per_sec");
      w.Double(edge.facts.rate_per_ms * 1000.0);
    }
    if (edge.facts.max_delay > 0) {
      w.Key("max_delay_ms");
      w.Int(static_cast<int64_t>(edge.facts.max_delay));
    }
    w.Key("props");
    w.BeginArray();
    if (edge.facts.schema != nullptr) {
      const auto& fields = edge.facts.schema->fields();
      for (size_t i = 0; i < fields.size() && i < edge.facts.props.size();
           ++i) {
        WriteAbstractValue(w, fields[i], edge.facts.props[i]);
      }
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string Analysis::RenderFacts() const {
  std::string out;
  for (const EdgeFacts& edge : edges) {
    out += edge.from + " -> " + edge.to;
    if (!edge.facts.may_produce) out += "  (provably empty)";
    out += "\n";
    if (edge.facts.schema != nullptr) {
      const auto& fields = edge.facts.schema->fields();
      for (size_t i = 0; i < fields.size() && i < edge.facts.props.size();
           ++i) {
        out += "  " + fields[i].name + ": " +
               edge.facts.props[i].ToString() + "\n";
      }
    }
  }
  return out;
}

Result<Analysis> AnalyzeDataflow(const dataflow::Dataflow& dataflow,
                                 const pubsub::Broker* broker,
                                 const dataflow::ValidationReport& report,
                                 const AnalyzeOptions& options) {
  if (!report.ok()) {
    return Status::FailedPrecondition(
        "cannot analyze a dataflow with validation errors");
  }
  Analyzer analyzer(dataflow, broker, report, options);
  return analyzer.Run();
}

}  // namespace sl::analyze
