#include "analyze/abstract_eval.h"

#include <algorithm>
#include <cmath>

#include "expr/typecheck.h"
#include "util/strings.h"

namespace sl::analyze {

using expr::BinaryOp;
using expr::ExprInsn;
using expr::MetaAttr;
using expr::UnaryOp;
using stt::ValueType;

namespace {

constexpr double kInf = AbstractValue::kInf;
// Smallest double at or above 2^63: int64 results must stay below it.
constexpr double kInt64Lo = -9223372036854775808.0;
constexpr double kInt64Hi = 9223372036854775808.0;

bool Bounded(const AbstractValue& v) {
  return std::isfinite(v.lo) && std::isfinite(v.hi) && v.lo <= v.hi;
}

AbstractValue NumericTop(ValueType t) { return AbstractValue::TopOf(t); }

/// Interval of l op r over the four endpoint combinations (add/sub/mul).
void EndpointInterval(BinaryOp op, const AbstractValue& l,
                      const AbstractValue& r, double* lo, double* hi) {
  auto apply = [op](double a, double b) {
    switch (op) {
      case BinaryOp::kAdd: return a + b;
      case BinaryOp::kSub: return a - b;
      case BinaryOp::kMul: {
        // 0 * inf is NaN under IEEE but 0 under interval semantics.
        if (a == 0 || b == 0) return 0.0;
        return a * b;
      }
      default: return 0.0;
    }
  };
  double c1 = apply(l.lo, r.lo), c2 = apply(l.lo, r.hi);
  double c3 = apply(l.hi, r.lo), c4 = apply(l.hi, r.hi);
  *lo = std::min(std::min(c1, c2), std::min(c3, c4));
  *hi = std::max(std::max(c1, c2), std::max(c3, c4));
}

AbstractValue AbstractArith(const ExprInsn& insn, const AbstractValue& l,
                            const AbstractValue& r, bool r_is_literal,
                            std::vector<ExprFinding>* findings) {
  AbstractValue out = AbstractValue::TopOf(insn.type);
  out.may_null = l.may_null || r.may_null;
  // Concrete arithmetic never yields NaN: non-finite results become null
  // (EvalArithOp), so the NaN bit is cleared and nullability widened.
  out.may_nan = false;
  if (l.may_nan || r.may_nan) out.may_null = true;
  if (l.IsEmptyValue() || r.IsEmptyValue()) {
    // No non-null operand pair exists; the result is only ever null.
    out.lo = kInf;
    out.hi = -kInf;
    out.may_null = true;
    return out;
  }

  if (insn.type == ValueType::kString && insn.bop == BinaryOp::kAdd) {
    if (l.strings.has_value() && r.strings.has_value() &&
        l.strings->size() * r.strings->size() <= AbstractValue::kMaxStrings) {
      std::vector<std::string> cat;
      for (const auto& a : *l.strings) {
        for (const auto& b : *r.strings) cat.push_back(a + b);
      }
      std::sort(cat.begin(), cat.end());
      cat.erase(std::unique(cat.begin(), cat.end()), cat.end());
      out.strings = std::move(cat);
    }
    return out;
  }
  if (!stt::IsNumeric(l.type) && l.type != ValueType::kTimestamp) return out;

  switch (insn.bop) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      EndpointInterval(insn.bop, l, r, &out.lo, &out.hi);
      if (insn.type == ValueType::kInt && Bounded(l) && Bounded(r) &&
          (out.lo < kInt64Lo || out.hi >= kInt64Hi) && findings != nullptr) {
        findings->push_back(
            {diag::Code::kRangeOverflow, insn.span,
             StrFormat("integer arithmetic can overflow 64 bits: inferred "
                       "result range [%g, %g] exceeds [-2^63, 2^63)",
                       out.lo, out.hi)});
      }
      if (insn.type != ValueType::kDouble) break;
      // Non-finite double results become null at run time.
      if (!std::isfinite(out.lo) || !std::isfinite(out.hi)) {
        out.may_null = true;
      }
      break;
    }
    case BinaryOp::kDiv: {
      bool divisor_may_zero = r.lo <= 0 && r.hi >= 0;
      bool divisor_only_zero = r.lo == 0 && r.hi == 0 && !r.may_nan;
      if (divisor_only_zero) {
        if (findings != nullptr && !r_is_literal) {
          findings->push_back(
              {diag::Code::kRangeDivisionByZero, insn.span,
               "division by zero is reachable: the divisor's inferred "
               "range is exactly [0, 0]"});
        }
        out.lo = kInf;  // every evaluation yields null
        out.hi = -kInf;
        out.may_null = true;
        break;
      }
      if (divisor_may_zero) out.may_null = true;
      if (Bounded(l) && Bounded(r) && !divisor_may_zero) {
        double c1 = l.lo / r.lo, c2 = l.lo / r.hi;
        double c3 = l.hi / r.lo, c4 = l.hi / r.hi;
        out.lo = std::min(std::min(c1, c2), std::min(c3, c4));
        out.hi = std::max(std::max(c1, c2), std::max(c3, c4));
      }
      break;
    }
    case BinaryOp::kMod: {
      bool divisor_may_zero = r.lo <= 0 && r.hi >= 0;
      if (divisor_may_zero) out.may_null = true;
      if (r.lo == 0 && r.hi == 0 && !r.may_nan) {
        if (findings != nullptr && !r_is_literal) {
          findings->push_back(
              {diag::Code::kRangeDivisionByZero, insn.span,
               "modulo by zero is reachable: the divisor's inferred range "
               "is exactly [0, 0]"});
        }
        out.lo = kInf;
        out.hi = -kInf;
        break;
      }
      if (Bounded(r)) {
        double m = std::max(std::abs(r.lo), std::abs(r.hi));
        out.lo = -m;
        out.hi = m;
      }
      break;
    }
    default:
      break;
  }
  return out;
}

AbstractValue AbstractCompare(const ExprInsn& insn, const AbstractValue& l,
                              const AbstractValue& r) {
  AbstractValue out = AbstractValue::TopOf(ValueType::kBool);
  out.may_null = l.may_null || r.may_null;
  out.may_nan = false;
  if (l.IsEmptyValue() || r.IsEmptyValue()) {
    out.may_true = out.may_false = false;
    out.may_null = true;
    return out;
  }

  bool numeric = (stt::IsNumeric(l.type) || l.type == ValueType::kTimestamp) &&
                 (stt::IsNumeric(r.type) || r.type == ValueType::kTimestamp);
  if (numeric) {
    switch (insn.bop) {
      case BinaryOp::kLt:
        out.may_true = l.lo < r.hi;
        out.may_false = l.hi >= r.lo;
        break;
      case BinaryOp::kLe:
        out.may_true = l.lo <= r.hi;
        out.may_false = l.hi > r.lo;
        break;
      case BinaryOp::kGt:
        out.may_true = l.hi > r.lo;
        out.may_false = l.lo <= r.hi;
        break;
      case BinaryOp::kGe:
        out.may_true = l.hi >= r.lo;
        out.may_false = l.lo < r.hi;
        break;
      case BinaryOp::kEq:
        out.may_true = l.lo <= r.hi && r.lo <= l.hi;
        out.may_false = !(l.lo == l.hi && r.lo == r.hi && l.lo == r.lo);
        break;
      case BinaryOp::kNe:
        out.may_true = !(l.lo == l.hi && r.lo == r.hi && l.lo == r.lo);
        out.may_false = l.lo <= r.hi && r.lo <= l.hi;
        break;
      default:
        break;
    }
    // A NaN operand compares false under every operator except !=.
    if (l.may_nan || r.may_nan) {
      if (insn.bop == BinaryOp::kNe) {
        out.may_true = true;
      } else {
        out.may_false = true;
      }
    }
    return out;
  }

  if (l.type == ValueType::kString && r.type == ValueType::kString &&
      (insn.bop == BinaryOp::kEq || insn.bop == BinaryOp::kNe)) {
    if (l.strings.has_value() && r.strings.has_value()) {
      bool overlap = false;
      for (const auto& s : *l.strings) {
        if (std::find(r.strings->begin(), r.strings->end(), s) !=
            r.strings->end()) {
          overlap = true;
          break;
        }
      }
      bool both_constant = l.strings->size() == 1 && r.strings->size() == 1;
      bool eq_may_true = overlap;
      bool eq_may_false = !(both_constant && overlap);
      if (insn.bop == BinaryOp::kEq) {
        out.may_true = eq_may_true;
        out.may_false = eq_may_false;
      } else {
        out.may_true = eq_may_false;
        out.may_false = eq_may_true;
      }
    }
    return out;
  }

  if (l.type == ValueType::kBool && r.type == ValueType::kBool &&
      (insn.bop == BinaryOp::kEq || insn.bop == BinaryOp::kNe)) {
    bool eq_may_true = (l.may_true && r.may_true) || (l.may_false && r.may_false);
    bool eq_may_false = (l.may_true && r.may_false) || (l.may_false && r.may_true);
    if (insn.bop == BinaryOp::kEq) {
      out.may_true = eq_may_true;
      out.may_false = eq_may_false;
    } else {
      out.may_true = eq_may_false;
      out.may_false = eq_may_true;
    }
  }
  // String </<= and remaining shapes stay Top (both outcomes possible).
  return out;
}

/// Kleene three-valued and/or. Nullability is over-approximated: the
/// merge may report null wherever either operand can be null, even when
/// a dominant false/true would concretely absorb it.
AbstractValue AbstractLogical(BinaryOp op, const AbstractValue& l,
                              const AbstractValue& r) {
  AbstractValue out = AbstractValue::TopOf(ValueType::kBool);
  out.may_nan = false;
  if (op == BinaryOp::kAnd) {
    out.may_true = l.may_true && r.may_true;
    out.may_false = l.may_false || r.may_false;
    out.may_null = (l.may_null && (r.may_true || r.may_null)) ||
                   (r.may_null && (l.may_true || l.may_null));
  } else {
    out.may_true = l.may_true || r.may_true;
    out.may_false = l.may_false && r.may_false;
    out.may_null = (l.may_null && (r.may_false || r.may_null)) ||
                   (r.may_null && (l.may_false || l.may_null));
  }
  return out;
}

AbstractValue AbstractUnary(UnaryOp op, ValueType type,
                            const AbstractValue& v) {
  AbstractValue out = v;
  out.type = type;
  if (op == UnaryOp::kNeg) {
    out.lo = -v.hi;
    out.hi = -v.lo;
  } else {  // not
    out.may_true = v.may_false;
    out.may_false = v.may_true;
  }
  return out;
}

AbstractValue AbstractCall(const ExprInsn& insn,
                           const std::vector<AbstractValue>& args) {
  AbstractValue out = AbstractValue::TopOf(insn.type);
  // Functions can return null on domain errors regardless of inputs.
  out.may_null = true;
  // But concrete function results are finite values or null, never NaN.
  out.may_nan = false;
  if (insn.fn != nullptr) {
    // A few bounds worth knowing without modelling each function fully.
    if (insn.fn->name == "length" || insn.fn->name == "abs") {
      out.lo = 0;
    }
  }
  (void)args;
  return out;
}

}  // namespace

AbstractRow AbstractRow::FromFacts(const StreamFacts& facts) {
  AbstractRow row;
  row.schema = facts.schema.get();
  row.attrs = facts.props;
  row.ts = AbstractValue::TopOf(ValueType::kTimestamp);
  row.ts.may_null = false;
  row.ts.lo = 0;  // event time is never negative in this system
  row.lat = AbstractValue::TopOf(ValueType::kDouble);
  row.lat.may_nan = false;
  row.lat.lo = -90;
  row.lat.hi = 90;
  row.lon = AbstractValue::TopOf(ValueType::kDouble);
  row.lon.may_nan = false;
  row.lon.lo = -180;
  row.lon.hi = 180;
  row.sensor = AbstractValue::TopOf(ValueType::kString);
  row.sensor.may_null = false;
  row.theme = AbstractValue::TopOf(ValueType::kString);
  row.theme.may_null = false;
  if (facts.schema != nullptr) {
    row.theme.strings =
        std::vector<std::string>{facts.schema->theme().ToString()};
  }
  return row;
}

AbstractValue EvalAbstract(const expr::ExprProgram& program,
                           const AbstractRow& row,
                           std::vector<ExprFinding>* findings) {
  struct Slot {
    AbstractValue value;
    bool is_literal = false;  // pushed by kPushLiteral (suppresses SL4003,
                              // which SL3005 already reports at lint level)
  };
  std::vector<Slot> stack;
  stack.reserve(program.insns().size());

  for (const ExprInsn& insn : program.insns()) {
    switch (insn.op) {
      case ExprInsn::Op::kPushLiteral:
        stack.push_back({AbstractValue::Constant(insn.literal), true});
        break;
      case ExprInsn::Op::kPushAttr: {
        AbstractValue v = insn.index < row.attrs.size()
                              ? row.attrs[insn.index]
                              : AbstractValue::TopOf(insn.type);
        stack.push_back({std::move(v), false});
        break;
      }
      case ExprInsn::Op::kPushMeta: {
        const AbstractValue* v = nullptr;
        switch (insn.meta) {
          case MetaAttr::kTimestamp: v = &row.ts; break;
          case MetaAttr::kLat: v = &row.lat; break;
          case MetaAttr::kLon: v = &row.lon; break;
          case MetaAttr::kSensor: v = &row.sensor; break;
          case MetaAttr::kTheme: v = &row.theme; break;
        }
        stack.push_back({*v, false});
        break;
      }
      case ExprInsn::Op::kUnary: {
        Slot v = std::move(stack.back());
        stack.pop_back();
        stack.push_back({AbstractUnary(insn.uop, insn.type, v.value), false});
        break;
      }
      case ExprInsn::Op::kArith: {
        Slot r = std::move(stack.back());
        stack.pop_back();
        Slot l = std::move(stack.back());
        stack.pop_back();
        stack.push_back(
            {AbstractArith(insn, l.value, r.value, r.is_literal, findings),
             false});
        break;
      }
      case ExprInsn::Op::kCompare: {
        Slot r = std::move(stack.back());
        stack.pop_back();
        Slot l = std::move(stack.back());
        stack.pop_back();
        stack.push_back({AbstractCompare(insn, l.value, r.value), false});
        break;
      }
      case ExprInsn::Op::kShortCircuit:
        // Never taken abstractly: evaluating the right operand and
        // merging subsumes the jump's effect (the merge result covers
        // the dominant-bool case the jump would have pinned).
        break;
      case ExprInsn::Op::kLogicalMerge: {
        Slot r = std::move(stack.back());
        stack.pop_back();
        Slot l = std::move(stack.back());
        stack.pop_back();
        stack.push_back({AbstractLogical(insn.bop, l.value, r.value), false});
        break;
      }
      case ExprInsn::Op::kCall: {
        std::vector<AbstractValue> args(insn.index);
        for (size_t i = 0; i < insn.index; ++i) {
          args[insn.index - 1 - i] = std::move(stack.back().value);
          stack.pop_back();
        }
        AbstractValue out = AbstractCall(insn, args);
        // Null propagation: if no argument can be null, a
        // null-propagating function still may return null on domain
        // errors, so may_null stays true; nothing to refine soundly.
        stack.push_back({std::move(out), false});
        break;
      }
    }
  }
  if (stack.size() != 1) return AbstractValue::TopOf(ValueType::kNull);
  return std::move(stack.back().value);
}

namespace {

/// The constant a conjunct side denotes, if it is a literal (possibly
/// under unary minus — the parser keeps the sign as a node).
std::optional<stt::Value> LiteralOf(const expr::Expr& e) {
  if (e.kind() == expr::ExprKind::kLiteral) {
    return static_cast<const expr::LiteralExpr&>(e).value();
  }
  if (e.kind() == expr::ExprKind::kUnary) {
    const auto& u = static_cast<const expr::UnaryExpr&>(e);
    if (u.op() == UnaryOp::kNeg) {
      auto inner = LiteralOf(*u.operand());
      if (inner.has_value()) {
        if (inner->type() == ValueType::kInt) {
          return stt::Value::Int(-inner->AsInt());
        }
        if (inner->type() == ValueType::kDouble) {
          return stt::Value::Double(-inner->AsDouble());
        }
      }
    }
  }
  return std::nullopt;
}

double NumericOf(const stt::Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsDouble();
}

/// Collects attribute names whose null would make `e` evaluate to null
/// (attrs reachable without crossing a function call — arithmetic,
/// comparisons and unary operators all propagate null).
void NullStrictAttrs(const expr::Expr& e, std::vector<std::string>* out) {
  switch (e.kind()) {
    case expr::ExprKind::kAttr:
      out->push_back(static_cast<const expr::AttrExpr&>(e).name());
      break;
    case expr::ExprKind::kUnary:
      NullStrictAttrs(*static_cast<const expr::UnaryExpr&>(e).operand(), out);
      break;
    case expr::ExprKind::kBinary: {
      const auto& b = static_cast<const expr::BinaryExpr&>(e);
      if (b.op() == BinaryOp::kAnd || b.op() == BinaryOp::kOr) break;
      NullStrictAttrs(*b.left(), out);
      NullStrictAttrs(*b.right(), out);
      break;
    }
    default:
      break;  // calls may swallow nulls; literals/meta have no attrs
  }
}

void NarrowAttr(AbstractRow* row, const std::string& name, BinaryOp op,
                const stt::Value& lit) {
  if (row->schema == nullptr) return;
  auto idx = row->schema->FieldIndex(name);
  if (!idx.ok() || *idx >= row->attrs.size()) return;
  AbstractValue& v = row->attrs[*idx];

  if (lit.type() == ValueType::kString && v.type == ValueType::kString) {
    if (op == BinaryOp::kEq) {
      v.strings = std::vector<std::string>{lit.AsString()};
      v.may_null = false;
    } else if (op == BinaryOp::kNe && v.strings.has_value()) {
      v.strings->erase(
          std::remove(v.strings->begin(), v.strings->end(), lit.AsString()),
          v.strings->end());
      v.may_null = false;
    }
    return;
  }
  if (lit.type() != ValueType::kInt && lit.type() != ValueType::kDouble) {
    return;
  }
  if (!stt::IsNumeric(v.type)) return;
  double c = NumericOf(lit);
  bool is_int = v.type == ValueType::kInt;
  switch (op) {
    case BinaryOp::kEq:
      v.lo = std::max(v.lo, c);
      v.hi = std::min(v.hi, c);
      break;
    case BinaryOp::kLt:
      // Integer attrs tighten to the nearest representable value.
      v.hi = std::min(v.hi, is_int ? std::ceil(c) - 1 : c);
      break;
    case BinaryOp::kLe:
      v.hi = std::min(v.hi, c);
      break;
    case BinaryOp::kGt:
      v.lo = std::max(v.lo, is_int ? std::floor(c) + 1 : c);
      break;
    case BinaryOp::kGe:
      v.lo = std::max(v.lo, c);
      break;
    default:
      break;  // != does not tighten an interval
  }
  v.may_null = false;
  v.may_nan = false;  // NaN satisfies no comparison, so the pass branch
                      // excludes it (except !=, which never narrows).
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // == and != are symmetric
  }
}

}  // namespace

void NarrowByCondition(const expr::Expr& condition, AbstractRow* row) {
  if (condition.kind() == expr::ExprKind::kBinary) {
    const auto& b = static_cast<const expr::BinaryExpr&>(condition);
    if (b.op() == BinaryOp::kAnd) {
      // Both conjuncts must hold on the pass branch.
      NarrowByCondition(*b.left(), row);
      NarrowByCondition(*b.right(), row);
      return;
    }
    switch (b.op()) {
      case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
      case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe: {
        // A null conjunct is non-true: every null-strict attribute of a
        // passing tuple is non-null, whatever the comparison's shape.
        std::vector<std::string> strict;
        NullStrictAttrs(b, &strict);
        for (const std::string& name : strict) {
          if (row->schema == nullptr) break;
          auto idx = row->schema->FieldIndex(name);
          if (idx.ok() && *idx < row->attrs.size()) {
            row->attrs[*idx].may_null = false;
          }
        }
        // attr cmp literal (either orientation) tightens the interval.
        if (b.left()->kind() == expr::ExprKind::kAttr) {
          auto lit = LiteralOf(*b.right());
          if (lit.has_value()) {
            NarrowAttr(row, static_cast<const expr::AttrExpr&>(*b.left()).name(),
                       b.op(), *lit);
          }
        } else if (b.right()->kind() == expr::ExprKind::kAttr) {
          auto lit = LiteralOf(*b.left());
          if (lit.has_value()) {
            NarrowAttr(row,
                       static_cast<const expr::AttrExpr&>(*b.right()).name(),
                       FlipComparison(b.op()), *lit);
          }
        }
        return;
      }
      default:
        return;  // `or` and arithmetic shapes refine nothing soundly
    }
  }
}

}  // namespace sl::analyze
