#include "analyze/domain.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace sl::analyze {

using stt::Value;
using stt::ValueType;

AbstractValue AbstractValue::TopOf(ValueType t) {
  AbstractValue v;
  v.type = t;
  v.may_nan = (t == ValueType::kDouble);
  return v;
}

AbstractValue AbstractValue::Constant(const Value& value) {
  AbstractValue v;
  v.type = value.type();
  v.may_null = false;
  v.may_nan = false;
  switch (value.type()) {
    case ValueType::kNull:
      v.may_null = true;
      v.lo = kInf;  // empty interval: no non-null value possible
      v.hi = -kInf;
      v.may_true = v.may_false = false;
      v.strings.emplace();
      break;
    case ValueType::kBool:
      v.may_true = value.AsBool();
      v.may_false = !value.AsBool();
      break;
    case ValueType::kInt:
      v.lo = v.hi = static_cast<double>(value.AsInt());
      break;
    case ValueType::kDouble:
      v.lo = v.hi = value.AsDouble();
      v.may_nan = std::isnan(value.AsDouble());
      break;
    case ValueType::kString:
      v.strings = std::vector<std::string>{value.AsString()};
      break;
    case ValueType::kTimestamp:
      v.lo = v.hi = static_cast<double>(value.AsTime());
      break;
    case ValueType::kGeoPoint:
      break;  // no interval structure tracked for locations
  }
  return v;
}

AbstractValue AbstractValue::Interval(ValueType t, double lo, double hi) {
  AbstractValue v;
  v.type = t;
  v.lo = lo;
  v.hi = hi;
  v.may_null = false;
  v.may_nan = false;
  return v;
}

bool AbstractValue::IsConstant() const {
  if (may_null) return false;
  switch (type) {
    case ValueType::kBool:
      return may_true != may_false;
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kTimestamp:
      return !may_nan && lo == hi && std::isfinite(lo);
    case ValueType::kString:
      return strings.has_value() && strings->size() == 1;
    default:
      return false;
  }
}

bool AbstractValue::IsEmptyValue() const {
  switch (type) {
    case ValueType::kBool:
      return !may_true && !may_false;
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kTimestamp:
      return lo > hi && !may_nan;
    case ValueType::kString:
      return strings.has_value() && strings->empty();
    default:
      return false;
  }
}

std::string AbstractValue::ToString() const {
  std::string out;
  switch (type) {
    case ValueType::kBool:
      out = "bool{";
      if (may_true) out += "true";
      if (may_true && may_false) out += ",";
      if (may_false) out += "false";
      out += "}";
      break;
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kTimestamp:
      if (lo > hi) {
        out = "(empty)";
      } else {
        out = StrFormat("[%g, %g]", lo, hi);
      }
      if (may_nan) out += " nan?";
      break;
    case ValueType::kString:
      if (strings.has_value()) {
        out = "{";
        for (size_t i = 0; i < strings->size(); ++i) {
          if (i > 0) out += ",";
          out += "\"" + (*strings)[i] + "\"";
        }
        out += "}";
      } else {
        out = "string";
      }
      break;
    default:
      out = stt::ValueTypeToString(type);
      break;
  }
  if (may_null) out += " null?";
  return out;
}

namespace {

/// Union of two string-constant sets; disengages (any string) when
/// either side is unbounded or the union exceeds kMaxStrings.
std::optional<std::vector<std::string>> JoinStrings(
    const std::optional<std::vector<std::string>>& a,
    const std::optional<std::vector<std::string>>& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  std::vector<std::string> out = *a;
  for (const std::string& s : *b) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  if (out.size() > AbstractValue::kMaxStrings) return std::nullopt;
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<std::string>> MeetStrings(
    const std::optional<std::vector<std::string>>& a,
    const std::optional<std::vector<std::string>>& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  std::vector<std::string> out;
  for (const std::string& s : *a) {
    if (std::find(b->begin(), b->end(), s) != b->end()) out.push_back(s);
  }
  return out;
}

}  // namespace

AbstractValue Join(const AbstractValue& a, const AbstractValue& b) {
  AbstractValue v;
  v.type = a.type == b.type ? a.type : stt::ValueType::kNull;
  v.lo = std::min(a.lo, b.lo);
  v.hi = std::max(a.hi, b.hi);
  v.may_null = a.may_null || b.may_null;
  v.may_nan = a.may_nan || b.may_nan;
  v.may_true = a.may_true || b.may_true;
  v.may_false = a.may_false || b.may_false;
  v.strings = JoinStrings(a.strings, b.strings);
  return v;
}

AbstractValue Meet(const AbstractValue& a, const AbstractValue& b) {
  AbstractValue v;
  v.type = a.type == stt::ValueType::kNull ? b.type : a.type;
  v.lo = std::max(a.lo, b.lo);
  v.hi = std::min(a.hi, b.hi);
  v.may_null = a.may_null && b.may_null;
  v.may_nan = a.may_nan && b.may_nan;
  v.may_true = a.may_true && b.may_true;
  v.may_false = a.may_false && b.may_false;
  v.strings = MeetStrings(a.strings, b.strings);
  return v;
}

std::string StreamFacts::ToString(const std::string& indent) const {
  std::string out;
  if (!may_produce) out += indent + "(provably empty stream)\n";
  if (schema == nullptr) return out;
  for (size_t i = 0; i < schema->fields().size() && i < props.size(); ++i) {
    out += indent + schema->fields()[i].name + ": " + props[i].ToString() +
           "\n";
  }
  return out;
}

}  // namespace sl::analyze
