// StreamLoader: stream schemas.
//
// Each sensor publishes the schema of the tuples it produces; operators
// derive their output schema from their input schemas, and the visual
// environment shows "the schema of data that are processed by the
// operation" at every dataflow step (§3). Schemas are immutable and
// shared between all tuples of a stream.

#ifndef STREAMLOADER_STT_SCHEMA_H_
#define STREAMLOADER_STT_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "stt/granularity.h"
#include "stt/theme.h"
#include "stt/value.h"

namespace sl::stt {

/// \brief One attribute of a stream schema.
struct Field {
  std::string name;          ///< identifier, unique within the schema
  ValueType type = ValueType::kNull;
  std::string unit;          ///< unit of measure, empty when dimensionless
  bool nullable = true;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type && unit == o.unit &&
           nullable == o.nullable;
  }
  std::string ToString() const;
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// \brief An immutable ordered collection of fields plus the STT stream
/// metadata: the temporal and spatial granularities at which values are
/// reported and the stream's theme.
class Schema {
 public:
  /// Builds a schema; fails on duplicate or invalid field names.
  static Result<SchemaPtr> Make(std::vector<Field> fields,
                                TemporalGranularity tgran = {},
                                SpatialGranularity sgran = {},
                                Theme theme = {});

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  const TemporalGranularity& temporal_granularity() const { return tgran_; }
  const SpatialGranularity& spatial_granularity() const { return sgran_; }
  const Theme& theme() const { return theme_; }

  /// Index of the named field, or error when absent.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True iff a field with this name exists.
  bool HasField(const std::string& name) const;

  /// The named field.
  Result<Field> FieldByName(const std::string& name) const;

  /// Derived schema with one more field appended (Virtual Property).
  Result<SchemaPtr> AddField(const Field& field) const;

  /// Derived schema keeping only the named fields, in the given order.
  Result<SchemaPtr> Project(const std::vector<std::string>& names) const;

  /// Derived schema with the same fields but different STT metadata.
  SchemaPtr WithStt(TemporalGranularity tgran, SpatialGranularity sgran,
                    Theme theme) const;

  /// Derived schema with one field's type/unit rewritten (Transform).
  Result<SchemaPtr> WithFieldChanged(const std::string& name, ValueType type,
                                     const std::string& unit) const;

  /// Structural equality including STT metadata.
  bool Equals(const Schema& other) const;

  /// "{a:int, b:double[celsius]} @1m/0.01deg theme=weather/rain".
  std::string ToString() const;

 private:
  Schema(std::vector<Field> fields, TemporalGranularity tgran,
         SpatialGranularity sgran, Theme theme)
      : fields_(std::move(fields)),
        tgran_(tgran),
        sgran_(sgran),
        theme_(std::move(theme)) {}

  std::vector<Field> fields_;
  TemporalGranularity tgran_;
  SpatialGranularity sgran_;
  Theme theme_;
};

}  // namespace sl::stt

#endif  // STREAMLOADER_STT_SCHEMA_H_
