// StreamLoader: dynamically-typed attribute values.
//
// Sensor schemas are not fixed ("data schema are not fixed but depend on
// the sensors", §3), so tuples carry dynamically typed values checked
// against a per-stream Schema.

#ifndef STREAMLOADER_STT_VALUE_H_
#define STREAMLOADER_STT_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "stt/geo.h"
#include "util/clock.h"
#include "util/result.h"

namespace sl::stt {

/// The dynamic type of a Value / the declared type of a schema field.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kTimestamp,
  kGeoPoint,
};

const char* ValueTypeToString(ValueType type);
Result<ValueType> ValueTypeFromString(const std::string& name);

/// True for kInt and kDouble.
bool IsNumeric(ValueType type);

/// \brief A single dynamically-typed attribute value.
///
/// Timestamps are a distinct type from ints so that schema checking can
/// enforce temporal semantics; they share the underlying representation
/// (ms since the epoch).
class Value {
 public:
  /// Constructs a null value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Time(Timestamp ts) { return Value(Rep(TimestampRep{ts})); }
  static Value Geo(GeoPoint p) { return Value(Rep(p)); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const { return IsNumeric(type()); }

  /// Typed accessors; calling the wrong one is undefined (asserted).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  Timestamp AsTime() const { return std::get<TimestampRep>(rep_).ts; }
  const GeoPoint& AsGeo() const { return std::get<GeoPoint>(rep_); }

  /// Numeric view: int and double widen to double; fails otherwise.
  Result<double> ToNumeric() const;

  /// \brief Coerces to `target` where a safe conversion exists
  /// (int<->double with truncation toward zero, int->timestamp,
  /// timestamp->int, anything->string via ToString); fails otherwise.
  /// Null coerces to null of any type.
  Result<Value> CoerceTo(ValueType target) const;

  /// Display form (unquoted strings); "null" for null.
  std::string ToString() const;

  /// Deep equality; null == null. Int/double compare numerically only if
  /// both are the same type (schema-level typing keeps streams uniform).
  bool operator==(const Value& o) const { return rep_ == o.rep_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// \brief Total order within a type for sorting / MIN / MAX; values of
  /// different types order by type id. Null sorts first.
  static int Compare(const Value& a, const Value& b);

  /// Hash for grouping.
  size_t Hash() const;

 private:
  struct TimestampRep {
    Timestamp ts;
    bool operator==(const TimestampRep& o) const { return ts == o.ts; }
  };
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           TimestampRep, GeoPoint>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

}  // namespace sl::stt

#endif  // STREAMLOADER_STT_VALUE_H_
