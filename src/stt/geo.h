// StreamLoader: geometry and coordinate reference systems.
//
// Sensor data arrives in heterogeneous coordinate standards (§2: "changing
// geographical coordinates from one standard to another one"). The model
// CRS is WGS84 latitude/longitude in decimal degrees; conversions to and
// from Web Mercator metric coordinates and the legacy Tokyo datum are
// provided for reconciling sources.

#ifndef STREAMLOADER_STT_GEO_H_
#define STREAMLOADER_STT_GEO_H_

#include <string>

#include "util/result.h"

namespace sl::stt {

/// Coordinate reference systems StreamLoader can reconcile.
enum class Crs {
  kWgs84,        ///< latitude / longitude, decimal degrees (model CRS)
  kWebMercator,  ///< EPSG:3857 x/y meters
  kTokyoDatum,   ///< legacy Japanese geodetic datum lat/lon degrees
};

const char* CrsToString(Crs crs);
Result<Crs> CrsFromString(const std::string& name);

/// \brief A geographic point. Interpretation of the two coordinates
/// depends on the CRS; the canonical in-model form is WGS84 degrees with
/// `lat` in [-90, 90] and `lon` in [-180, 180].
struct GeoPoint {
  double lat = 0.0;  ///< latitude (deg) or y (m) depending on CRS
  double lon = 0.0;  ///< longitude (deg) or x (m) depending on CRS

  bool operator==(const GeoPoint& o) const {
    return lat == o.lat && lon == o.lon;
  }
  std::string ToString() const;
};

/// \brief An axis-aligned bounding box in WGS84 degrees; `lo` is the
/// south-west corner, `hi` the north-east corner.
struct BBox {
  GeoPoint lo;
  GeoPoint hi;

  /// True iff `p` lies inside the box (borders inclusive).
  bool Contains(const GeoPoint& p) const {
    return p.lat >= lo.lat && p.lat <= hi.lat && p.lon >= lo.lon &&
           p.lon <= hi.lon;
  }

  /// True iff the two boxes overlap (touching counts).
  bool Intersects(const BBox& o) const {
    return lo.lat <= o.hi.lat && hi.lat >= o.lo.lat && lo.lon <= o.hi.lon &&
           hi.lon >= o.lo.lon;
  }

  /// True iff lo <= hi on both axes.
  bool IsValid() const { return lo.lat <= hi.lat && lo.lon <= hi.lon; }

  std::string ToString() const;
};

/// \brief Normalizes the corners of a box given as two arbitrary opposite
/// corners (the Cull Space operator accepts ⟨coord1, coord2⟩ in any
/// order).
BBox NormalizeBBox(const GeoPoint& a, const GeoPoint& b);

/// \brief Great-circle distance between two WGS84 points, in meters
/// (haversine on a spherical earth, R = 6371.0088 km).
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// \brief Converts a point between coordinate reference systems.
///
/// WGS84 <-> Web Mercator uses the spherical-mercator equations (latitude
/// clamped to ±85.051129°); WGS84 <-> Tokyo datum uses the standard
/// three-parameter Molodensky approximation in its widely used
/// closed-form degree version (≈ meter-level accuracy, adequate for
/// sensor reconciliation).
Result<GeoPoint> ConvertCrs(const GeoPoint& p, Crs from, Crs to);

}  // namespace sl::stt

#endif  // STREAMLOADER_STT_GEO_H_
