// StreamLoader: STT tuples and batches.
//
// A tuple is one *event* in the STT model: a row of attribute values plus
// the space-time header (when, where, at which granularities) and its
// provenance (which sensor produced it). Streams move through operators
// as Batches sharing one schema.
//
// Once a tuple enters the dataflow it is immutable; layers pass it around
// as a TupleRef (shared_ptr<const Tuple>) so broker fan-out, network hops
// and blocking-operator caches share one allocation instead of deep
// copying. Deriving operators (transform, virtual property, enrichment)
// mint a fresh tuple via the With* constructors, which return new refs.

#ifndef STREAMLOADER_STT_TUPLE_H_
#define STREAMLOADER_STT_TUPLE_H_

#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stt/schema.h"

namespace sl::stt {

class Tuple;

/// \brief Shared immutable ownership of one tuple — the unit of tuple
/// movement across broker, executor, network hops, operators and sinks.
using TupleRef = std::shared_ptr<const Tuple>;

/// \brief One STT event.
class Tuple {
 public:
  Tuple() = default;

  // Copies/moves transfer the memoized byte size with relaxed loads —
  // the atomic member deletes the defaults. A stale kBytesUnset costs
  // one recompute, never a wrong answer.
  Tuple(const Tuple& other)
      : schema_(other.schema_),
        values_(other.values_),
        ts_(other.ts_),
        location_(other.location_),
        sensor_id_(other.sensor_id_),
        value_bytes_(other.value_bytes_.load(std::memory_order_relaxed)) {}
  Tuple(Tuple&& other) noexcept
      : schema_(std::move(other.schema_)),
        values_(std::move(other.values_)),
        ts_(other.ts_),
        location_(std::move(other.location_)),
        sensor_id_(std::move(other.sensor_id_)),
        value_bytes_(other.value_bytes_.load(std::memory_order_relaxed)) {}
  Tuple& operator=(const Tuple& other) {
    if (this == &other) return *this;
    schema_ = other.schema_;
    values_ = other.values_;
    ts_ = other.ts_;
    location_ = other.location_;
    sensor_id_ = other.sensor_id_;
    value_bytes_.store(other.value_bytes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    schema_ = std::move(other.schema_);
    values_ = std::move(other.values_);
    ts_ = other.ts_;
    location_ = std::move(other.location_);
    sensor_id_ = std::move(other.sensor_id_);
    value_bytes_.store(other.value_bytes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// Creates a tuple after validating `values` against `schema` (arity,
  /// types, nullability).
  static Result<Tuple> Make(SchemaPtr schema, std::vector<Value> values,
                            Timestamp ts, std::optional<GeoPoint> location,
                            std::string sensor_id = "");

  /// Creates a tuple without validation. Use only on hot paths where the
  /// producer guarantees conformance (operators do; user code should not).
  static Tuple MakeUnsafe(SchemaPtr schema, std::vector<Value> values,
                          Timestamp ts, std::optional<GeoPoint> location,
                          std::string sensor_id = "");

  /// Validating constructor that immediately wraps the tuple in shared
  /// ownership — what producers feeding the dataflow should use.
  static Result<TupleRef> MakeShared(SchemaPtr schema,
                                     std::vector<Value> values, Timestamp ts,
                                     std::optional<GeoPoint> location,
                                     std::string sensor_id = "");

  /// Moves an already-built tuple into shared ownership.
  static TupleRef Share(Tuple t) {
    return std::make_shared<const Tuple>(std::move(t));
  }

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }

  /// Event time (ms since epoch, already truncated or not — operators
  /// interpret it at the schema's temporal granularity).
  Timestamp timestamp() const { return ts_; }

  /// Event location; nullopt when the sensor has no spatial reference
  /// (the pub/sub layer enriches such tuples, §3).
  const std::optional<GeoPoint>& location() const { return location_; }

  /// Id of the producing sensor ("" for derived tuples).
  const std::string& sensor_id() const { return sensor_id_; }

  /// Value of the i-th field.
  const Value& value(size_t i) const { return values_[i]; }

  /// Value of the named field; error if absent.
  Result<Value> ValueByName(const std::string& name) const;

  /// New shared tuple with a value appended (for Virtual Property) — the
  /// caller supplies the new schema.
  TupleRef WithAppended(SchemaPtr new_schema, Value v) const;

  /// New shared tuple with the i-th value replaced (for Transform).
  TupleRef WithValueAt(SchemaPtr new_schema, size_t i, Value v) const;

  /// New shared tuple with a new timestamp and/or location (granularity
  /// coarsening).
  TupleRef WithStt(SchemaPtr new_schema, Timestamp ts,
                   std::optional<GeoPoint> location) const;

  /// Rough serialized size of the value vector in bytes, memoized — the
  /// executor charges this (plus a fixed header) to every network hop, so
  /// it must not be recomputed per edge.
  size_t ApproxValueBytes() const;

  /// "(v1, v2, ...) @ts loc=(lat,lon) from=sensor".
  std::string ToString() const;

  /// Deep equality of values and STT header (schema compared
  /// structurally).
  bool EqualsIgnoringSensor(const Tuple& other) const;

 private:
  static constexpr size_t kBytesUnset = std::numeric_limits<size_t>::max();

  SchemaPtr schema_;
  std::vector<Value> values_;
  Timestamp ts_ = 0;
  std::optional<GeoPoint> location_;
  std::string sensor_id_;
  // Lazily computed by ApproxValueBytes(); value-preserving derivations
  // (WithStt) keep it, value-changing ones (WithAppended/WithValueAt)
  // reset it. Atomic because the threaded runtime calls
  // ApproxValueBytes from every producer thread that pushes the shared
  // (immutable) tuple onto an edge: the relaxed load/store race is a
  // duplicated computation of the same value, not a torn read (plain
  // size_t here was a TSan-reportable data race on fan-out edges).
  mutable std::atomic<size_t> value_bytes_{kBytesUnset};
};

/// \brief A batch of tuples sharing one schema — the unit in which
/// streams move between operators and across network links.
class Batch {
 public:
  Batch() = default;
  explicit Batch(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }
  void set_schema(SchemaPtr schema) { schema_ = std::move(schema); }

  /// Appends a tuple; in debug builds asserts the schema pointer matches.
  void Add(Tuple tuple);

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }

  void Clear() { tuples_.clear(); }

  /// Rough serialized size in bytes, used by the network simulator for
  /// link-bandwidth accounting.
  size_t ApproxBytes() const;

 private:
  SchemaPtr schema_;
  std::vector<Tuple> tuples_;
};

/// \brief A batch of shared tuple refs — what blocking operators emit from
/// a flush so every downstream edge forwards the same allocations.
class RefBatch {
 public:
  RefBatch() = default;
  explicit RefBatch(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }
  void set_schema(SchemaPtr schema) { schema_ = std::move(schema); }

  /// Appends a ref; in debug builds asserts the schema pointer matches.
  void Add(TupleRef tuple);

  const std::vector<TupleRef>& tuples() const { return tuples_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const TupleRef& operator[](size_t i) const { return tuples_[i]; }

  void Clear() { tuples_.clear(); }

  /// Rough serialized size in bytes (memoized per tuple).
  size_t ApproxBytes() const;

 private:
  SchemaPtr schema_;
  std::vector<TupleRef> tuples_;
};

/// \brief Validates one value vector against a schema (arity, type,
/// nullability). Exposed for sensors and tests.
Status ValidateValues(const Schema& schema, const std::vector<Value>& values);

}  // namespace sl::stt

#endif  // STREAMLOADER_STT_TUPLE_H_
