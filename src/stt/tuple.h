// StreamLoader: STT tuples and batches.
//
// A tuple is one *event* in the STT model: a row of attribute values plus
// the space-time header (when, where, at which granularities) and its
// provenance (which sensor produced it). Streams move through operators
// as Batches sharing one schema.

#ifndef STREAMLOADER_STT_TUPLE_H_
#define STREAMLOADER_STT_TUPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "stt/schema.h"

namespace sl::stt {

/// \brief One STT event.
class Tuple {
 public:
  Tuple() = default;

  /// Creates a tuple after validating `values` against `schema` (arity,
  /// types, nullability).
  static Result<Tuple> Make(SchemaPtr schema, std::vector<Value> values,
                            Timestamp ts, std::optional<GeoPoint> location,
                            std::string sensor_id = "");

  /// Creates a tuple without validation. Use only on hot paths where the
  /// producer guarantees conformance (operators do; user code should not).
  static Tuple MakeUnsafe(SchemaPtr schema, std::vector<Value> values,
                          Timestamp ts, std::optional<GeoPoint> location,
                          std::string sensor_id = "");

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }

  /// Event time (ms since epoch, already truncated or not — operators
  /// interpret it at the schema's temporal granularity).
  Timestamp timestamp() const { return ts_; }

  /// Event location; nullopt when the sensor has no spatial reference
  /// (the pub/sub layer enriches such tuples, §3).
  const std::optional<GeoPoint>& location() const { return location_; }

  /// Id of the producing sensor ("" for derived tuples).
  const std::string& sensor_id() const { return sensor_id_; }

  /// Value of the i-th field.
  const Value& value(size_t i) const { return values_[i]; }

  /// Value of the named field; error if absent.
  Result<Value> ValueByName(const std::string& name) const;

  /// Copy with a value appended (for Virtual Property) — the caller
  /// supplies the new schema.
  Tuple WithAppended(SchemaPtr new_schema, Value v) const;

  /// Copy with the i-th value replaced (for Transform).
  Tuple WithValueAt(SchemaPtr new_schema, size_t i, Value v) const;

  /// Copy with a new timestamp and/or location (granularity coarsening).
  Tuple WithStt(SchemaPtr new_schema, Timestamp ts,
                std::optional<GeoPoint> location) const;

  /// "(v1, v2, ...) @ts loc=(lat,lon) from=sensor".
  std::string ToString() const;

  /// Deep equality of values and STT header (schema compared
  /// structurally).
  bool EqualsIgnoringSensor(const Tuple& other) const;

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  Timestamp ts_ = 0;
  std::optional<GeoPoint> location_;
  std::string sensor_id_;
};

/// \brief A batch of tuples sharing one schema — the unit in which
/// streams move between operators and across network links.
class Batch {
 public:
  Batch() = default;
  explicit Batch(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }
  void set_schema(SchemaPtr schema) { schema_ = std::move(schema); }

  /// Appends a tuple; in debug builds asserts the schema pointer matches.
  void Add(Tuple tuple);

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }

  void Clear() { tuples_.clear(); }

  /// Rough serialized size in bytes, used by the network simulator for
  /// link-bandwidth accounting.
  size_t ApproxBytes() const;

 private:
  SchemaPtr schema_;
  std::vector<Tuple> tuples_;
};

/// \brief Validates one value vector against a schema (arity, type,
/// nullability). Exposed for sensors and tests.
Status ValidateValues(const Schema& schema, const std::vector<Value>& values);

}  // namespace sl::stt

#endif  // STREAMLOADER_STT_TUPLE_H_
